"""The declared sanitizer-cell inventory, machine-readable.

The runtime race sanitizer (:mod:`.races`) watches exactly the cells
the code remembers to ``note_access`` — its guarantee is as strong as
that inventory.  This module makes the inventory a *checked contract*:

* :data:`DECLARED_CELLS` is the registry — one :class:`CellDecl` per
  cell family, mirroring the cell table in docs/INTERNALS.md §1, with
  the attribute names each cell guards.  The static auditor
  (:mod:`.cells`) diffs it against the code.
* :func:`extract_note_sites` recovers the *actual* inventory from the
  AST: every ``note_access(...)`` call in a file set, with the cell
  name resolved — through f-strings, locals, attribute/dict stores,
  helper methods, and :func:`repro.simcore.cell_name` calls — into a
  :class:`Shape` (literal runs + ``<hole>`` placeholders).
* :func:`registry_freshness` reports both drift directions: a noted
  cell family no declaration covers, and (via RACE202 in the auditor)
  a declaration no write site ever notes.

Name resolution is deliberately conservative: a cell-name expression
the resolver cannot reduce to a string template is reported as
*unresolved* rather than silently matched, so the registry can never
look fresh by accident.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..simcore.cells import cell_name

__all__ = [
    "CellDecl",
    "DECLARED_CELLS",
    "NoteSite",
    "Shape",
    "extract_note_sites",
    "parse_race_cells",
    "registry_freshness",
    "shape_of_pattern",
    "shapes_intersect",
]

#: marker for one entity-id hole in a cell-name template
HOLE = "\x00"


@dataclass(frozen=True)
class Shape:
    """A normalized cell-name template: literal runs split by holes.

    ``tokens`` alternates literal strings with :data:`HOLE` markers;
    the hole's *content* (``<j>`` vs ``{tid}``) is erased, so a
    declared pattern and a noted f-string compare equal exactly when
    their literal skeletons agree.
    """

    tokens: tuple[str, ...]

    def render(self) -> str:
        return "".join("<…>" if t == HOLE else t for t in self.tokens)

    @property
    def has_adjacent_holes(self) -> bool:
        """Two holes with no literal between them: the name cannot be
        parsed back into its entity ids, so distinct id pairs collide
        (``t=1,n=12`` vs ``t=11,n=2``)."""
        return any(
            a == HOLE and b == HOLE
            for a, b in zip(self.tokens, self.tokens[1:])
        )


def _normalize(parts: list[str]) -> Shape:
    """Merge adjacent literals, drop empties, return a Shape."""
    tokens: list[str] = []
    for part in parts:
        if part == "":
            continue
        if part != HOLE and tokens and tokens[-1] != HOLE:
            tokens[-1] += part
        else:
            tokens.append(part)
    return Shape(tuple(tokens))


def shape_of_pattern(pattern: str) -> Shape:
    """Shape of a registry pattern: ``<...>`` spans become holes."""
    parts: list[str] = []
    rest = pattern
    while True:
        lo = rest.find("<")
        hi = rest.find(">", lo + 1)
        if lo < 0 or hi < 0:
            parts.append(rest)
            break
        parts.append(rest[:lo])
        parts.append(HOLE)
        rest = rest[hi + 1:]
    return _normalize(parts)


def shapes_intersect(a: Shape, b: Shape) -> bool:
    """Can two distinct templates produce the same concrete name?

    Holes stand for arbitrary *non-empty* strings; the check is the
    standard product construction over the two wildcard patterns.
    Two families that intersect can collide across entities — the
    RACE204 condition.
    """
    def atoms(shape: Shape) -> list[str]:
        out: list[str] = []
        for tok in shape.tokens:
            if tok == HOLE:
                out.append("\x01")  # exactly one arbitrary char
                out.append("\x02")  # zero or more arbitrary chars
            else:
                out.extend(tok)
        return out

    aa, bb = atoms(a), atoms(b)
    seen: set[tuple[int, int]] = set()
    stack = [(0, 0)]
    while stack:
        i, j = stack.pop()
        if (i, j) in seen:
            continue
        seen.add((i, j))
        if i == len(aa) and j == len(bb):
            return True
        # Stars may match the empty string.
        if i < len(aa) and aa[i] == "\x02":
            stack.append((i + 1, j))
        if j < len(bb) and bb[j] == "\x02":
            stack.append((i, j + 1))
        if i < len(aa) and j < len(bb):
            x, y = aa[i], bb[j]
            wild_x = x in ("\x01", "\x02")
            wild_y = y in ("\x01", "\x02")
            if wild_x or wild_y or x == y:
                # Jointly consume one character; a star stays put.
                for ni in ((i,) if x == "\x02" else (i + 1,)):
                    for nj in ((j,) if y == "\x02" else (j + 1,)):
                        stack.append((ni, nj))
    return False


# ---------------------------------------------------------------------------
# the declared registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CellDecl:
    """One declared cell family."""

    pattern: str  #: name template, ``<x>`` spans are entity-id holes
    component: str  #: dotted module suffix owning the writers
    attrs: tuple[str, ...]  #: instance attributes the cell guards
    why: str  #: one-line rationale (mirrors the INTERNALS table)
    path: str = ""  #: declaration site (fixture ``RACE_CELLS``) if any
    line: int = 0

    @property
    def shape(self) -> Shape:
        return shape_of_pattern(self.pattern)


_REGISTRY_PATH = os.path.abspath(__file__)


def _decl(pattern: str, component: str, attrs: tuple[str, ...], why: str) -> CellDecl:
    return CellDecl(pattern, component, attrs, why, path=_REGISTRY_PATH, line=1)


#: The in-tree inventory.  One entry per cell family in the INTERNALS
#: §1 cell table; ``attrs`` lists the shared mutable attributes each
#: cell guards (the auditor reports RACE203 when one is written in a
#: function that never notes an access).  Entity-id formatting for the
#: parameterized families comes from :func:`repro.simcore.cell_name`,
#: the same helper the writers use, so the two cannot drift.
DECLARED_CELLS: tuple[CellDecl, ...] = (
    _decl(
        "cache.<name>",
        "core.cache",
        ("_sizes", "_stored", "_used", "_raw_used"),
        "the byte budget couples entries: any insert can evict any path",
    ),
    _decl(
        "s<id>.inflight:<path>",
        "core.server",
        ("_inflight",),
        "per-path fetch-dedup slot decides which request fetches and "
        "which wait",
    ),
    _decl(
        "view.<owner>.m<sid>",
        "membership.view",
        ("_state", "_inc", "_stamp", "_since"),
        "one member's lattice slot in one membership view; adoptions "
        "are tagged (sid, inc, state)",
    ),
    _decl(
        "limiter.<name>",
        "cluster.network",
        ("_ready",),
        "throttle is read-modify-write on the shared rate reservation",
    ),
    _decl(
        cell_name("tenancy.quota", "t", "<j>"),
        "tenancy.quota",
        ("_used_bytes", "_used_files"),
        "charges and releases land from whichever server's data mover "
        "inserts or evicts; the byte budget couples the byte/file pair",
    ),
    _decl(
        cell_name("prefetch.queue", "s", "<id>"),
        "prefetch.scheduler",
        ("_credits",),
        "one staging worker's credit pool; single-writer by design, "
        "celled so a second writer is caught",
    ),
    _decl(
        "fuzz.reads.<label>",
        "fuzz.executor",
        ("started", "done"),
        "per-reader invariant counters; the epoch watchdog reads them "
        "all at the deadline",
    ),
    _decl(
        "fuzz.autopilot.corpus",
        "fuzz.autopilot",
        ("corpus",),
        "digest-keyed corpus folds; driver-side today, celled so "
        "in-loop feedback stays sanitizer-visible",
    ),
)


def parse_race_cells(tree: ast.Module, path: str) -> list[CellDecl]:
    """Module-level ``RACE_CELLS`` declarations in one file.

    The convention lets a module (or a lint fixture) declare cells
    adjacent to the code that notes them::

        RACE_CELLS = (
            ("board.slot.k<k>", ("slots",), "why this is one cell"),
        )

    Each entry is ``(pattern, attrs)`` or ``(pattern, attrs, why)``.
    """
    out: list[CellDecl] = []
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "RACE_CELLS"
            for t in node.targets
        ):
            continue
        try:
            value = ast.literal_eval(node.value)
        except (ValueError, SyntaxError):
            continue
        for entry in value:
            if not entry or not isinstance(entry[0], str):
                continue
            attrs = tuple(entry[1]) if len(entry) > 1 else ()
            why = entry[2] if len(entry) > 2 else ""
            out.append(
                CellDecl(
                    entry[0],
                    _module_suffix(path),
                    attrs,
                    why,
                    path=path,
                    line=node.lineno,
                )
            )
    return out


def _module_suffix(path: str) -> str:
    norm = os.path.normpath(path)
    if norm.endswith(".py"):
        norm = norm[:-3]
    parts = [p for p in norm.split(os.sep) if p not in ("", ".", "..")]
    return ".".join(parts)


# ---------------------------------------------------------------------------
# note-site extraction
# ---------------------------------------------------------------------------

@dataclass
class NoteSite:
    """One ``note_access(...)`` call, with its resolved name family."""

    path: str
    line: int
    col: int
    module: str
    func: str  #: enclosing qualname ("" at module level)
    mode: str  #: "r" | "w" | "?" when not a literal
    shapes: tuple[Shape, ...]  #: resolved templates (empty = unresolved)
    raw: str  #: the name expression as written
    forwarded: bool = False  #: the name is a bare parameter pass-through
    #: (the engine's ``note_access`` shim) — not an origination site

    @property
    def resolved(self) -> bool:
        return bool(self.shapes)


@dataclass
class _TemplateIndex:
    """File-set-wide stores feeding cell-name resolution."""

    #: (class, attr) -> exprs directly assigned (self.attr = expr)
    direct: dict[tuple[str, str], list[ast.expr]] = field(default_factory=dict)
    #: (class, attr) -> element exprs (subscript stores, dict values,
    #: dict-comp values, setdefault defaults)
    elements: dict[tuple[str, str], list[ast.expr]] = field(default_factory=dict)
    #: (class, func) -> returned string-template exprs
    returns: dict[tuple[str, str], list[ast.expr]] = field(default_factory=dict)
    #: per-expr context: id(expr) -> (class, self-name) where collected
    ctx: dict[int, tuple[str, str]] = field(default_factory=dict)


class _IndexBuilder(ast.NodeVisitor):
    def __init__(self, index: _TemplateIndex):
        self.index = index
        self._class_stack: list[str] = []
        self._self = "self"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    @property
    def _klass(self) -> str:
        return self._class_stack[-1] if self._class_stack else ""

    def _visit_func(self, node) -> None:
        args = [*node.args.posonlyargs, *node.args.args]
        saved, self._self = self._self, (args[0].arg if args else "self")
        for stmt in ast.walk(node):
            if (
                isinstance(stmt, ast.Return)
                and stmt.value is not None
                and isinstance(stmt.value, (ast.JoinedStr, ast.Constant, ast.Call))
            ):
                self.index.returns.setdefault(
                    (self._klass, node.name), []
                ).append(stmt.value)
                self._ctx(stmt.value)
        self.generic_visit(node)
        self._self = saved

    visit_FunctionDef = visit_AsyncFunctionDef = _visit_func

    def _ctx(self, expr: ast.expr) -> None:
        # simlint: waive SIM009 -- lookup-only map (AST node identity); never iterated
        self.index.ctx[id(expr)] = (self._klass, self._self)

    def _is_self(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id in (self._self, "self", "cls")

    def _store(self, target: ast.expr, value: ast.expr | None) -> None:
        if value is None:
            return
        if isinstance(target, ast.Attribute) and self._is_self(target.value):
            key = (self._klass, target.attr)
            if isinstance(value, ast.Dict):
                for v in value.values:
                    if v is not None:
                        self.index.elements.setdefault(key, []).append(v)
                        self._ctx(v)
            elif isinstance(value, ast.DictComp):
                self.index.elements.setdefault(key, []).append(value.value)
                self._ctx(value.value)
            else:
                self.index.direct.setdefault(key, []).append(value)
                self._ctx(value)
        elif (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and self._is_self(target.value.value)
        ):
            key = (self._klass, target.value.attr)
            self.index.elements.setdefault(key, []).append(value)
            self._ctx(value)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._store(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._store(node.target, node.value)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "setdefault"
            and isinstance(func.value, ast.Attribute)
            and self._is_self(func.value.value)
            and len(node.args) >= 2
        ):
            key = (self._klass, func.value.attr)
            self.index.elements.setdefault(key, []).append(node.args[1])
            self._ctx(node.args[1])
        self.generic_visit(node)


class _Resolver:
    """Reduce a cell-name expression to its :class:`Shape` templates."""

    _MAX_DEPTH = 6

    def __init__(self, index: _TemplateIndex):
        self.index = index

    def resolve(
        self,
        expr: ast.expr,
        klass: str,
        self_name: str,
        local_assigns: dict[str, list[ast.expr]],
        depth: int = 0,
    ) -> list[Shape]:
        if depth > self._MAX_DEPTH:
            return []
        rec = lambda e, k=klass, s=self_name: self.resolve(  # noqa: E731
            e, k, s, local_assigns, depth + 1
        )
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return [_normalize([expr.value])]
        if isinstance(expr, ast.JoinedStr):
            parts: list[str] = []
            for piece in expr.values:
                if isinstance(piece, ast.Constant):
                    parts.append(str(piece.value))
                else:
                    parts.append(HOLE)
            return [_normalize(parts)]
        if isinstance(expr, ast.Name):
            out: list[Shape] = []
            for value in local_assigns.get(expr.id, ()):
                out.extend(rec(value))
            return _dedup(out)
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id in (
                self_name, "self", "cls",
            ):
                return self._from_store(
                    expr.attr, klass, "direct", local_assigns, depth
                )
            # foo.attr on a non-self object: fall back to any function/
            # property of that name returning a template (duck-typed
            # hop, e.g. a dict-comp over ``u.cell``).
            return self._from_returns(expr.attr, None, local_assigns, depth)
        if isinstance(expr, ast.Subscript):
            container = expr.value
            if (
                isinstance(container, ast.Attribute)
                and isinstance(container.value, ast.Name)
                and container.value.id in (self_name, "self", "cls")
            ):
                return self._from_store(
                    container.attr, klass, "elements", local_assigns, depth
                )
            if isinstance(container, ast.Name):
                out = []
                for value in local_assigns.get(container.id, ()):
                    if isinstance(value, ast.Dict):
                        for v in value.values:
                            if v is not None:
                                out.extend(rec(v))
                    elif isinstance(value, ast.DictComp):
                        out.extend(rec(value.value))
                return _dedup(out)
            return []
        if isinstance(expr, ast.Call):
            func = expr.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name == "cell_name":
                return self._from_cell_name(expr)
            if (
                name == "get"
                and isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in (self_name, "self", "cls")
            ):
                return self._from_store(
                    func.value.attr, klass, "elements", local_assigns, depth
                )
            if name is not None:
                # Helper method/function returning the template.
                receiver_is_self = isinstance(func, ast.Attribute) and (
                    isinstance(func.value, ast.Name)
                    and func.value.id in (self_name, "self", "cls")
                )
                return self._from_returns(
                    name, klass if receiver_is_self else None,
                    local_assigns, depth,
                )
        return []

    def _from_cell_name(self, call: ast.Call) -> list[Shape]:
        if len(call.args) < 3:
            return []
        family, entity, ident = call.args[:3]
        if not (
            isinstance(family, ast.Constant) and isinstance(family.value, str)
            and isinstance(entity, ast.Constant) and isinstance(entity.value, str)
        ):
            return []
        tail: list[str]
        if isinstance(ident, ast.Constant):
            tail = [str(ident.value)]
        else:
            tail = [HOLE]
        # Mirror cell_name()'s join exactly — the helper is the
        # formatting authority (see repro/simcore/cells.py).
        head = cell_name(family.value, entity.value, "")
        return [_normalize([head, *tail])]

    def _from_store(
        self,
        attr: str,
        klass: str,
        kind: str,
        local_assigns: dict[str, list[ast.expr]],
        depth: int,
    ) -> list[Shape]:
        table = getattr(self.index, kind)
        exprs = table.get((klass, attr))
        if exprs is None:
            # Same attribute declared in a different class (duck-typed
            # receiver): accept a unique cross-class match.
            hits = [v for (k, a), vs in table.items() if a == attr for v in vs]
            exprs = hits or None
        out: list[Shape] = []
        for value in exprs or ():
            k, s = self.index.ctx.get(id(value), (klass, "self"))
            out.extend(self.resolve(value, k, s, local_assigns, depth + 1))
        return _dedup(out)

    def _from_returns(
        self,
        name: str,
        klass: Optional[str],
        local_assigns: dict[str, list[ast.expr]],
        depth: int,
    ) -> list[Shape]:
        exprs: list[ast.expr] = []
        if klass is not None:
            exprs = list(self.index.returns.get((klass, name), ()))
        if not exprs:
            exprs = [
                v
                for (_k, fname), vs in self.index.returns.items()
                if fname == name
                for v in vs
            ]
        out: list[Shape] = []
        for value in exprs:
            k, s = self.index.ctx.get(id(value), ("", "self"))
            out.extend(self.resolve(value, k, s, local_assigns, depth + 1))
        return _dedup(out)


def _dedup(shapes: list[Shape]) -> list[Shape]:
    seen: set[tuple[str, ...]] = set()
    out: list[Shape] = []
    for s in shapes:
        if s.tokens not in seen:
            seen.add(s.tokens)
            out.append(s)
    return out


class _NoteScanner(ast.NodeVisitor):
    """Find ``note_access`` calls and resolve their name argument."""

    def __init__(self, path: str, module: str, index: _TemplateIndex):
        self.path = path
        self.module = module
        self.index = index
        self.resolver = _Resolver(index)
        self.sites: list[NoteSite] = []
        self._class_stack: list[str] = []
        self._func_stack: list[str] = []
        self._self = "self"
        #: per-enclosing-function local assignments, name -> exprs
        self._locals: list[dict[str, list[ast.expr]]] = []
        #: the enclosing top-level function's parameter names
        self._params: set[str] = set()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_func(self, node) -> None:
        top_level = not self._func_stack
        self._func_stack.append(node.name)
        if top_level:
            args = [*node.args.posonlyargs, *node.args.args]
            self._saved_self = self._self
            self._self = args[0].arg if (args and self._class_stack) else "self"
            self._locals.append({})
            self._saved_params = self._params
            self._params = {
                a.arg
                for a in (
                    *node.args.posonlyargs,
                    *node.args.args,
                    *node.args.kwonlyargs,
                )
            }
        self.generic_visit(node)
        self._func_stack.pop()
        if top_level:
            self._locals.pop()
            self._self = self._saved_self
            self._params = self._saved_params

    visit_FunctionDef = visit_AsyncFunctionDef = _visit_func

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._locals:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._locals[-1].setdefault(target.id, []).append(node.value)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name == "note_access" and node.args:
            mode = "?"
            if len(node.args) > 1 and isinstance(node.args[1], ast.Constant):
                mode = str(node.args[1].value)
            for kw in node.keywords:
                if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                    mode = str(kw.value.value)
            klass = self._class_stack[-1] if self._class_stack else ""
            cell_arg = node.args[0]
            forwarded = (
                isinstance(cell_arg, ast.Name)
                and cell_arg.id in self._params
                and cell_arg.id not in (
                    self._locals[-1] if self._locals else {}
                )
            )
            shapes = () if forwarded else self.resolver.resolve(
                cell_arg,
                klass,
                self._self,
                self._locals[-1] if self._locals else {},
            )
            qual = ".".join(
                [*self._class_stack, *self._func_stack[:1]]
            ) if self._func_stack else ""
            self.sites.append(
                NoteSite(
                    path=self.path,
                    line=node.lineno,
                    col=node.col_offset,
                    module=self.module,
                    func=qual,
                    mode=mode,
                    shapes=tuple(shapes),
                    raw=ast.unparse(cell_arg),
                    forwarded=forwarded,
                )
            )
        self.generic_visit(node)


def extract_note_sites(
    parsed: Iterable[tuple[str, ast.Module]],
) -> list[NoteSite]:
    """Every ``note_access`` call across ``(path, tree)`` pairs, with
    cell names resolved against a file-set-wide template index."""
    parsed = list(parsed)
    index = _TemplateIndex()
    for path, tree in parsed:
        _IndexBuilder(index).visit(tree)
    sites: list[NoteSite] = []
    for path, tree in parsed:
        scanner = _NoteScanner(path, _module_suffix(path), index)
        scanner.visit(tree)
        sites.extend(scanner.sites)
    return sites


def registry_freshness(
    parsed: Iterable[tuple[str, ast.Module]],
    registry: Iterable[CellDecl] = DECLARED_CELLS,
) -> list[str]:
    """Drift between the declared registry and the noted inventory.

    Returns human-readable error lines; empty means fresh.  Covers the
    noted→declared direction (an undeclared family, or an unresolvable
    name expression); the declared→noted direction is the auditor's
    RACE202.
    """
    sites = extract_note_sites(parsed)
    declared = {d.shape.tokens for d in registry}
    errors: list[str] = []
    for site in sites:
        if site.forwarded:
            continue
        if not site.resolved:
            errors.append(
                f"{site.path}:{site.line}: note_access name {site.raw!r} "
                "could not be resolved to a template — register the "
                "store/helper shape or simplify the expression"
            )
            continue
        for shape in site.shapes:
            if shape.tokens not in declared:
                errors.append(
                    f"{site.path}:{site.line}: note_access names cell "
                    f"family '{shape.render()}' which no "
                    "cell_registry.DECLARED_CELLS entry declares"
                )
    return errors
