"""SIM013 fixture (clean): the same two-hop call shape, but the
producer sorts before returning, so the order crossing the return
boundaries is deterministic."""


def candidates():
    return sorted({"a", "b", "c"})


def pick():
    return candidates()


def drain(out):
    for name in pick():
        out.append(name)
