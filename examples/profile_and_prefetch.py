#!/usr/bin/env python3
"""The HVAC adoption workflow: profile, deploy, prefetch.

Recreates how the paper describes HVAC entering a workload (§III-F):

1. **Profile** the DL loader's I/O with the tracing layer and confirm
   the whole-file ``<open, one read, close>`` pattern that makes
   LD_PRELOAD interception sufficient.
2. **Deploy** HVAC and run training epochs — epoch 1 pays the PFS once.
3. **Prefetch** (the paper's future work): pre-populate the cache so
   even epoch 1 runs at cached speed.

    python examples/profile_and_prefetch.py
"""

from repro.analysis import format_kv, format_table
from repro.cluster import Allocation, SUMMIT
from repro.core import CachePrefetcher, HVACDeployment
from repro.dl import IMAGENET21K, SyntheticDataset
from repro.posix import TracingBackend
from repro.simcore import AllOf, Environment
from repro.storage import GPFS

N_NODES = 8
N_FILES = 600


def loader_epoch(env, dataset, backend_for_node, epoch=0):
    """A DL data-loading epoch: shuffled whole-file reads, all nodes."""

    def node_loader(node_id):
        backend = backend_for_node(node_id)
        order = dataset.epoch_order(epoch)
        for idx in order[node_id::N_NODES]:
            idx = int(idx)
            yield from backend.read_file(dataset.path(idx), dataset.size(idx), node_id)

    t0 = env.now
    procs = [env.process(node_loader(n)) for n in range(N_NODES)]

    def wait():
        yield AllOf(env, procs)

    env.run(env.process(wait()))
    return env.now - t0


def main() -> None:
    dataset, _ = SyntheticDataset.scaled(IMAGENET21K, N_FILES)

    # -- 1. profile the loader against plain GPFS -------------------------
    env = Environment()
    pfs = GPFS(env, SUMMIT.pfs, N_NODES, SUMMIT.network.nic_bandwidth)
    traced = TracingBackend(env, pfs)
    loader_epoch(env, dataset, lambda n: traced)
    log = traced.log
    print(format_kv({
        "opens": len(log.ops("open")),
        "reads": len(log.ops("read")),
        "closes": len(log.ops("close")),
        "bytes read": log.total_bytes,
        "mean read latency (ms)": 1e3 * log.summary()["read"]["mean_latency"],
        "whole-file single-read pattern": log.is_whole_file_single_read_pattern(),
    }, title="1. Profile of the DL loader on GPFS (paper §III-F)"))
    print("   -> interception of <open, read, close> is sufficient.\n")

    # -- 2. deploy HVAC, cold start -----------------------------------------
    env = Environment()
    alloc = Allocation(env, SUMMIT, N_NODES)
    pfs = GPFS(env, SUMMIT.pfs, N_NODES, SUMMIT.network.nic_bandwidth)
    dep = HVACDeployment(alloc, pfs)
    cold_e1 = loader_epoch(env, dataset, dep.client, epoch=0)
    warm = loader_epoch(env, dataset, dep.client, epoch=1)
    dep.teardown()

    # -- 3. deploy HVAC with prefetch ------------------------------------------
    env = Environment()
    alloc = Allocation(env, SUMMIT, N_NODES)
    pfs = GPFS(env, SUMMIT.pfs, N_NODES, SUMMIT.network.nic_bandwidth)
    dep = HVACDeployment(alloc, pfs)
    prefetcher = CachePrefetcher(dep, dataset.paths(), dataset.sizes)
    t0 = env.now
    env.run(prefetcher.start())
    prefetch_time = env.now - t0
    warmed_e1 = loader_epoch(env, dataset, dep.client, epoch=0)
    dep.teardown()

    print(format_table(
        ["phase", "seconds"],
        [
            ["epoch-1, cold cache", cold_e1],
            ["steady-state epoch", warm],
            ["prefetch pass (overlappable with setup)", prefetch_time],
            ["epoch-1 after prefetch", warmed_e1],
        ],
        title="2-3. Epoch times with and without cache pre-population",
        float_fmt="{:.4f}",
    ))
    print(f"\nprefetch removed {100 * (1 - warmed_e1 / cold_e1):.0f}% "
          "of the first-epoch penalty (paper §IV-C future work).")


if __name__ == "__main__":
    main()
