"""Cluster hardware models: nodes, NVMe devices, fabric, calibrated specs."""

from .network import Fabric, RateLimiter
from .node import Allocation, ComputeNode
from .nvme import DeviceFull, NVMeDevice
from .specs import (
    FRONTIER,
    GB,
    GiB,
    KB,
    KiB,
    MB,
    MiB,
    SUMMIT,
    TB,
    TESTING,
    TiB,
    ClusterSpec,
    HVACSpec,
    NetworkSpec,
    NodeSpec,
    NVMeSpec,
    PFSSpec,
)

__all__ = [
    "Allocation",
    "ClusterSpec",
    "ComputeNode",
    "DeviceFull",
    "Fabric",
    "FRONTIER",
    "GB",
    "GiB",
    "HVACSpec",
    "KB",
    "KiB",
    "MB",
    "MiB",
    "NetworkSpec",
    "NodeSpec",
    "NVMeDevice",
    "NVMeSpec",
    "PFSSpec",
    "RateLimiter",
    "SUMMIT",
    "TB",
    "TESTING",
    "TiB",
]
