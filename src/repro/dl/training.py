"""Distributed data-parallel training over a simulated storage backend.

The simulation executes the *I/O* of training faithfully — every file
read is a real simulated transaction against GPFS / XFS / HVAC — while
GPU compute and gradient allreduce are charged as analytic virtual time
per iteration (their costs don't depend on storage and modelling them
as events would add nothing but overhead).

Pipelining: DL data loaders prefetch.  Each rank lets its I/O run up to
``prefetch_depth`` batches ahead of the virtual GPU, which is exactly a
bounded prefetch queue: iteration ``i``'s reads can't start before the
GPU has finished iteration ``i - prefetch_depth``.  Within the window,
I/O time hides behind compute and vice versa.

Epoch timing: all ranks barrier at each epoch boundary (synchronous SGD
finishes an epoch together); per-epoch wall time is the max over ranks.

Scaling: when the dataset is a scaled sample (see
``SyntheticDataset.scaled``), multiply reported times by the scale
factor; the request stream is stationary within an epoch (uniform
shuffle), making the extrapolation exact in expectation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Generator

import numpy as np

from ..simcore import AllOf, Environment
from ..storage.base import FileBackend
from .dataset import SyntheticDataset
from .loader import make_epoch_plan
from .models import ModelSpec

__all__ = ["TrainingConfig", "TrainingResult", "TrainingJob"]


@dataclass(frozen=True)
class TrainingConfig:
    """Everything that defines one training run's I/O behaviour."""

    model: ModelSpec
    dataset: SyntheticDataset
    n_nodes: int
    procs_per_node: int = 6  # one rank per GPU (Summit: 6 V100s)
    batch_size: int = 0  # 0 → the model's paper default
    epochs: int = 10
    #: how many batches I/O may run ahead of the GPU.  The paper's
    #: profile (§III-F) shows files "all read in prior to each
    #: iteration" — synchronous loading — so the default is 1.
    prefetch_depth: int = 1
    shuffle_seed: int = 0
    #: NIC bandwidth used for the analytic allreduce term
    allreduce_bandwidth: float = 12.5e9
    #: multiplier applied to reported times (dataset sampling factor)
    scale_factor: float = 1.0
    #: disable compute/comm to measure pure I/O (MDTest-like runs)
    io_only: bool = False
    #: batch granularity used by the simulation loop.  Compute and
    #: allreduce are charged *per sample* against the real
    #: ``batch_size``, so shrinking ``sim_batch_size`` only coarsens
    #: pipelining granularity while cutting event counts — demand rates,
    #: saturation points and I/O:compute ratios are unchanged.  0 → use
    #: the real batch size.
    sim_batch_size: int = 0
    #: fraction of the allreduce hidden behind backward compute.
    #: Horovod's tensor fusion + NCCL overlap gradient exchange with
    #: backprop; the paper's flat Fig 12 (batch size 4→128 moves training
    #: time only 2–4%) confirms communication was not per-iteration
    #: visible on Summit, so the default hides it fully.  Set <1 to
    #: expose (1 - comm_overlap) of the allreduce per iteration.
    comm_overlap: float = 1.0
    #: fixed per-iteration framework cost (data-loader step, kernel
    #: launches) — the "round-trips" the paper says bigger batches
    #: amortize, producing its observed 2–4% improvement.
    iteration_overhead: float = 0.5e-3
    #: how the epoch time is estimated from per-rank completions.
    #: "barrier" (default): the synchronous-SGD wall time, max over
    #: ranks.  "mean-rank": the mean rank completion — the right
    #: estimator for *scaled samples* of a saturated system, where the
    #: barrier is dominated by extreme-value straggler noise that
    #: vanishes at the real (hundreds-of-times larger) files-per-rank
    #: counts (see EXPERIMENTS.md, scale factors).
    epoch_estimator: str = "barrier"

    def __post_init__(self):
        if not 0.0 <= self.comm_overlap <= 1.0:
            raise ValueError("comm_overlap must be in [0, 1]")
        if self.iteration_overhead < 0:
            raise ValueError("iteration_overhead must be >= 0")
        if self.epoch_estimator not in ("barrier", "mean-rank"):
            raise ValueError(f"unknown epoch estimator {self.epoch_estimator!r}")
        self._validate_shape()

    def _validate_shape(self):
        if self.n_nodes < 1 or self.procs_per_node < 1:
            raise ValueError("n_nodes and procs_per_node must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.prefetch_depth < 1:
            raise ValueError("prefetch_depth must be >= 1")

    @property
    def n_ranks(self) -> int:
        return self.n_nodes * self.procs_per_node

    @property
    def effective_batch_size(self) -> int:
        return self.batch_size or self.model.default_batch_size


@dataclass
class TrainingResult:
    """Per-epoch wall times (already scale-corrected) + derived views."""

    config_label: str
    system_label: str
    epoch_times: list[float] = field(default_factory=list)
    cache_hit_rate: float = 0.0

    @property
    def total_time(self) -> float:
        return float(sum(self.epoch_times))

    @property
    def total_minutes(self) -> float:
        return self.total_time / 60.0

    @property
    def first_epoch(self) -> float:
        return self.epoch_times[0]

    @property
    def warm_epochs(self) -> list[float]:
        return self.epoch_times[1:]

    @property
    def best_random_epoch(self) -> float:
        """The paper's R_epoch: best epoch excluding the first."""
        return min(self.warm_epochs) if self.warm_epochs else self.first_epoch

    @property
    def avg_epoch(self) -> float:
        return self.total_time / len(self.epoch_times)

    def extrapolate_total(self, epochs: int) -> float:
        """Total for ``epochs`` epochs from cold + steady-state times.

        Simulating 2 epochs and extrapolating to 80 is the documented
        event-count optimization (DESIGN.md §4): epoch 1 is the only
        cold epoch, later epochs are statistically identical.
        """
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if epochs <= len(self.epoch_times):
            return float(sum(self.epoch_times[:epochs]))
        warm = self.warm_epochs or [self.first_epoch]
        warm_mean = float(np.mean(warm))
        return self.first_epoch + warm_mean * (epochs - 1)


class TrainingJob:
    """One data-parallel training job bound to a storage backend."""

    def __init__(
        self,
        env: Environment,
        config: TrainingConfig,
        backend_for_node: Callable[[int], FileBackend],
        system_label: str = "storage",
    ):
        self.env = env
        self.config = config
        self.backend_for_node = backend_for_node
        self.system_label = system_label
        self.result = TrainingResult(
            config_label=f"{config.model.name}/{config.dataset.spec.name}"
            f"@{config.n_nodes}n",
            system_label=system_label,
        )

    # -- the per-rank epoch process ------------------------------------------
    def _rank_epoch(self, rank: int, indices: np.ndarray) -> Generator:
        cfg = self.config
        env = self.env
        node_id = rank // cfg.procs_per_node
        backend = self.backend_for_node(node_id)
        dataset = cfg.dataset
        real_batch = cfg.effective_batch_size
        sim_batch = cfg.sim_batch_size or real_batch

        if cfg.io_only:
            per_sample_cost = 0.0
        else:
            # Per-sample accounting keeps demand rates independent of
            # the simulation batch granularity; per-iteration costs
            # (exposed allreduce + framework overhead) are amortized
            # over the *real* batch (one ring per real iteration).
            exposed_comm = (1.0 - cfg.comm_overlap) * cfg.model.allreduce_time(
                cfg.n_ranks, cfg.allreduce_bandwidth
            )
            per_sample_cost = (
                cfg.model.compute_time(1)
                + (exposed_comm + cfg.iteration_overhead) / real_batch
            )

        # Virtual-GPU completion times of the last `prefetch_depth` batches.
        gpu_done: deque[float] = deque(maxlen=cfg.prefetch_depth)
        gpu_free = env.now

        for start in range(0, len(indices), sim_batch):
            # Bounded prefetch: don't read ahead of the window.
            if len(gpu_done) == cfg.prefetch_depth and env.now < gpu_done[0]:
                yield env.timeout(gpu_done[0] - env.now)
            chunk = indices[start : start + sim_batch]
            for idx in chunk:
                idx = int(idx)
                yield from backend.read_file(
                    dataset.path(idx), dataset.size(idx), node_id
                )
            gpu_start = max(env.now, gpu_free)
            gpu_free = gpu_start + per_sample_cost * len(chunk)
            gpu_done.append(gpu_free)

        # Drain: the GPU finishes its queued work.
        if env.now < gpu_free:
            yield env.timeout(gpu_free - env.now)
        return env.now

    def _epoch(self, epoch: int) -> Generator:
        cfg = self.config
        plan = make_epoch_plan(
            cfg.dataset,
            epoch,
            cfg.n_ranks,
            shuffle_seed=cfg.shuffle_seed,
            drop_remainder=True,
        )
        t0 = self.env.now
        ranks = [
            self.env.process(
                self._rank_epoch(shard.rank, shard.indices),
                name=f"rank{shard.rank}.e{epoch}",
            )
            for shard in plan.shards
        ]
        completions = yield AllOf(self.env, ranks)  # the epoch barrier
        if cfg.epoch_estimator == "mean-rank":
            finish_times = [v for v in completions.values()]
            elapsed = (sum(finish_times) / len(finish_times) - t0) * cfg.scale_factor
        else:
            elapsed = (self.env.now - t0) * cfg.scale_factor
        self.result.epoch_times.append(elapsed)

    def run_process(self) -> Generator:
        """Run all configured epochs; returns the populated result."""
        for epoch in range(self.config.epochs):
            yield from self._epoch(epoch)
        return self.result

    def run(self) -> TrainingResult:
        """Convenience: drive the environment to completion."""
        return self.env.run(self.env.process(self.run_process(), name="job"))
