"""Fig 1: the motivating claim — I/O dominates training time at scale.

The paper's Figure 1 caption: "DL applications running at large-scale
training environments spend 67-85% of their execution time performing
I/O to a PFS as reported in several recent works."  In this model the
number is derivable: at a saturated-GPFS scale, the I/O fraction is
1 − (compute-only epoch ÷ GPFS epoch).  This bench checks that our
calibrated system lands inside the published band at the paper's scales
— and that HVAC removes most of it, which is the whole point.
"""

import pytest

from repro.analysis import format_table
from repro.cluster import SUMMIT
from repro.dl import IMAGENET21K, RESNET50
from repro.model import AnalyticModel

SCALES = [64, 256, 512, 1024]


def _run():
    rows = []
    for n_nodes in SCALES:
        m = AnalyticModel(SUMMIT, RESNET50, IMAGENET21K, n_nodes)
        compute_epoch = (
            m.files_per_epoch * m.compute_sec_per_file / m.n_ranks
        )
        gpfs_epoch = m.predict_gpfs().epoch_seconds
        hvac_epoch = m.predict_hvac(4).epoch_seconds
        io_frac_gpfs = 1.0 - compute_epoch / gpfs_epoch
        io_frac_hvac = 1.0 - compute_epoch / hvac_epoch
        rows.append((n_nodes, io_frac_gpfs, io_frac_hvac))
    return rows


@pytest.mark.benchmark(group="fig01")
def test_fig01_io_fraction(benchmark, capsys):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["nodes", "I/O fraction on GPFS", "I/O fraction on HVAC(4x1)"],
            [[n, f"{g:.0%}", f"{h:.0%}"] for n, g, h in rows],
            title=("Fig 1's motivating claim: time spent in I/O "
                   "(ResNet50/ImageNet21K)"),
        ))

    by_nodes = {n: (g, h) for n, g, h in rows}
    # At the paper's saturated scales, GPFS I/O consumes the published
    # 67-85% band of execution time.
    for n in (512, 1024):
        g, _ = by_nodes[n]
        assert 0.60 <= g <= 0.90
    # Below saturation the fraction is small — the bottleneck is emergent.
    assert by_nodes[64][0] < 0.40
    # And HVAC removes most of the I/O share at every scale.
    for n in SCALES:
        g, h = by_nodes[n]
        assert h < g * 0.6 or h < 0.25
