"""Clairvoyant prefetch experiment: reactive vs look-ahead vs compressed.

The driver behind ``repro prefetch``.  One seeded multi-epoch training
run — every node sweeping its shard of a reshuffled dataset that does
NOT fit the aggregate node-local cache, with a mid-run server crash —
is replayed under three prefetch configurations:

* ``reactive``     — the paper's §IV-C baseline: bulk cache
  pre-population at job start (:class:`~repro.core.CachePrefetcher`)
  racing the epoch-1 demand stream, in placement order, blind to the
  access schedule;
* ``clairvoyant``  — NoPFS-style look-ahead staging: the seeded shuffle
  makes every epoch's access order known in advance, so the
  :class:`~repro.prefetch.LookaheadScheduler` stages exactly the next-k
  files per client, just in time, in access order;
* ``clairvoyant+compressed`` — the same staging over a FanStore-style
  compressed cache tier: residents at ``compression_ratio`` of raw
  size (so the dataset fits), every hit charged a deterministic
  decompression cost.

Reported per mode on the SLO window grid: epoch-1 read time and its
penalty over the steady-state epochs, steady-state p99 and degraded
fraction, PFS bytes moved, cache hit rate, staging/invalidations, and
the decompression CPU budget spent.  The dominance claim mirrors
``repro tenancy``: **clairvoyant strictly beats reactive on epoch-1
read time and steady-state p99, and the compressed tier strictly
reduces PFS bytes at a bounded decompression cost.**
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace

from ..analysis import degradation_dashboard, format_table
from ..cluster import ClusterSpec
from ..core import CachePrefetcher
from ..dl import SyntheticDataset, make_epoch_plan
from ..dl.dataset import DatasetSpec
from ..obs import SLOReport, SpanRecorder, compute_slo
from ..prefetch import ClairvoyantPlanner, LookaheadScheduler
from ..simcore import AllOf
from .resilience import _build, _fault_spec

__all__ = [
    "PREFETCH_MODES",
    "PREFETCH_SPEC_OVERRIDES",
    "PrefetchResult",
    "prefetch_comparison",
]

PREFETCH_MODES = ("reactive", "clairvoyant", "clairvoyant+compressed")

#: contention tuning: global LRU so eviction order is schedule-driven,
#: fast first-hand failure detection with a short probation (the crash
#: leg's outage is tens of milliseconds at TESTING scale), and a
#: bounded retry walk so reads degrade to the PFS instead of burning
#: long backoffs against the dead server.
PREFETCH_SPEC_OVERRIDES = dict(
    eviction_policy="lru",
    rpc_max_retries=2,
    rpc_backoff_base=1e-4,
    rpc_backoff_cap=1e-3,
    suspect_after=2,
    probation_period=0.02,
    # High-vnode consistent hashing: at toy file counts the modulo
    # placement can home half the dataset on one server, turning the
    # contention regime into a study of hash luck instead of capacity.
    hash_scheme="consistent",
    consistent_vnodes=512,
)


@dataclass
class ModeOutcome:
    """Everything one prefetch mode's run produced."""

    mode: str
    epoch1_seconds: float = math.nan
    steady_epoch_seconds: float = math.nan
    #: epoch-1 read time over the mean steady-state epoch (>= 1.0; the
    #: cold-cache penalty prefetching is supposed to erase)
    epoch1_penalty: float = math.nan
    steady_p99: float = math.nan
    steady_degraded_fraction: float = 0.0
    total_seconds: float = 0.0
    pfs_bytes: int = 0
    hit_rate: float = 0.0
    files_staged: int = 0
    invalidations: int = 0
    divergences: int = 0
    decompress_seconds: float = 0.0
    slo: SLOReport | None = None


@dataclass
class PrefetchResult:
    """Three-mode prefetch comparison under contention and a crash."""

    n_nodes: int
    n_files: int
    file_size: int
    epochs: int
    windows: int
    lookahead: int
    compression_ratio: float
    decompress_budget: float
    fault: bool
    outcomes: dict[str, ModeOutcome] = field(default_factory=dict)
    dashboard: str = ""

    def rows(self) -> list[list]:
        out = []
        for mode, oc in self.outcomes.items():
            out.append([
                mode,
                oc.epoch1_seconds,
                f"{oc.epoch1_penalty:.2f}x",
                oc.steady_p99,
                f"{oc.steady_degraded_fraction:.1%}",
                oc.pfs_bytes,
                f"{oc.hit_rate:.1%}",
                oc.files_staged,
                oc.invalidations,
                oc.decompress_seconds,
            ])
        return out

    def dominates(self) -> bool:
        """The acceptance predicate: clairvoyant staging strictly beats
        the reactive bulk baseline on epoch-1 read time *and*
        steady-state p99, and the compressed tier strictly reduces PFS
        bytes below both uncompressed modes while spending at most
        ``decompress_budget`` seconds of decompression CPU."""
        reactive = self.outcomes["reactive"]
        clair = self.outcomes["clairvoyant"]
        comp = self.outcomes["clairvoyant+compressed"]
        return (
            clair.epoch1_seconds < reactive.epoch1_seconds
            and clair.steady_p99 < reactive.steady_p99
            and comp.pfs_bytes < clair.pfs_bytes
            and comp.pfs_bytes < reactive.pfs_bytes
            and comp.decompress_seconds <= self.decompress_budget
        )

    def render(self) -> str:
        blocks = [format_table(
            ["mode", "epoch1 (s)", "penalty", "steady p99", "degr",
             "PFS B", "hits", "staged", "invalid", "decomp (s)"],
            self.rows(),
            title=(f"Clairvoyant prefetch ({self.n_nodes} nodes x "
                   f"{self.epochs} epochs over {self.n_files}x"
                   f"{self.file_size}B, lookahead {self.lookahead}, "
                   f"compressed ratio {self.compression_ratio:g}"
                   + (", mid-run crash" if self.fault else "") + ")"),
            float_fmt="{:.4f}",
        )]
        verdict = "yes" if self.dominates() else "NO"
        blocks.append(
            "clairvoyant strictly dominates reactive (epoch-1 read time, "
            "steady p99) and the compressed tier reduces PFS bytes within "
            f"a {self.decompress_budget:g}s decompression budget: {verdict}"
        )
        if self.dashboard:
            blocks.append(self.dashboard)
        return "\n\n".join(blocks)

    def window_log(self) -> str:
        """The determinism artifact: every total SLO window of every
        mode's run, machine-checkably ordered."""
        lines = []
        for mode, oc in self.outcomes.items():
            lines.append(f"== {mode} ==")
            if oc.slo is None:
                continue
            for w in oc.slo.totals.windows:
                lines.append(
                    f"[{w.t0:.9f},{w.t1:.9f}) n={w.n_reads} "
                    f"degraded={w.degraded} p99={w.p99:.9f}"
                )
        return "\n".join(lines) + "\n"

    def write_artifacts(self, outdir: str) -> dict[str, str]:
        """Write ``report.txt`` + ``windows.log``; returns
        ``{artifact name: path}``."""
        os.makedirs(outdir, exist_ok=True)
        paths: dict[str, str] = {}
        report = os.path.join(outdir, "report.txt")
        with open(report, "w", encoding="utf-8") as fh:
            fh.write(self.render() + "\n")
        paths["report"] = report
        log = os.path.join(outdir, "windows.log")
        with open(log, "w", encoding="utf-8") as fh:
            fh.write(self.window_log())
        paths["windows"] = log
        return paths


def _dataset(n_files: int, file_size: int, seed: int) -> SyntheticDataset:
    """A uniform-size synthetic dataset under the TESTING PFS prefix."""
    spec = DatasetSpec(
        name="prefetch",
        n_train_files=n_files,
        n_valid_files=1,
        mean_file_bytes=float(file_size),
        size_sigma=0.0,
        pfs_dir="/pfs/prefetch",
    )
    return SyntheticDataset(spec, seed=seed)


def _pfs_read_bytes(metrics) -> int:
    t = metrics.tally("gpfs.read_bytes")
    return int(t.mean * t.n) if t.n else 0


def _decompress_seconds(dep) -> float:
    total = 0.0
    for server in dep.servers:
        t = server.cache.metrics.tally(f"{server.cache.name}.decompress_seconds")
        if t.n:
            total += t.mean * t.n
    return total


def _run_mode(
    mode: str,
    spec: ClusterSpec,
    dataset: SyntheticDataset,
    n_nodes: int,
    epochs: int,
    windows: int,
    lookahead: int,
    outstanding: int,
    seed: int,
    fault: bool,
    outage: float,
    trace=None,
) -> ModeOutcome:
    """One multi-epoch training run under one prefetch configuration."""
    oc = ModeOutcome(mode=mode)
    rec = SpanRecorder()
    env, dep, pfs = _build(spec, n_nodes, seed, spans=rec, trace=trace)
    m = dep.metrics

    plans = [
        make_epoch_plan(dataset, epoch, n_nodes, shuffle_seed=seed)
        for epoch in range(epochs)
    ]
    scheduler = None
    if mode == "reactive":
        # Bulk pre-population in placement order, racing epoch 1.
        paths = dataset.paths()
        sizes = [dataset.size(i) for i in range(len(dataset))]
        CachePrefetcher(dep, paths, sizes, max_outstanding=outstanding).start()
    else:
        planner = ClairvoyantPlanner.from_epoch_plans(
            dataset, n_nodes, epochs, shuffle_seed=seed
        )
        scheduler = LookaheadScheduler(
            dep, planner, lookahead=lookahead, outstanding=outstanding
        )
        dep.attach_prefetch(scheduler)
        scheduler.start()

    #: node -> epoch -> completion sim time, in read order
    epoch_ends: dict[int, list[float]] = {n: [] for n in range(n_nodes)}
    epoch2_started = env.event()

    def reader(node):
        cli = dep.client(node)
        for epoch in range(epochs):
            if epoch == 1 and node == 0 and not epoch2_started.triggered:
                epoch2_started.succeed()
            for idx in plans[epoch].shards[node].indices:
                i = int(idx)
                yield from cli.read_file(dataset.path(i), dataset.size(i), node)
            epoch_ends[node].append(env.now)

    # Crash target: the node homing the fewest dataset files.  The
    # consistent hash skews badly at toy file counts (one server can
    # home half the dataset); crashing the smallest slice keeps the
    # fault leg about fault *handling*, not about which node the hash
    # happened to favor.  Identical across modes (same placement).
    homed: dict[int, int] = {n: 0 for n in range(n_nodes)}
    for i in range(len(dataset)):
        sid = dep.placement.home(dataset.path(i))
        homed[dep.servers[sid].node_id] += 1
    crash_node = min(range(n_nodes), key=lambda n: (homed[n], n))

    def crasher():
        # Crash once steady state begins; the staged plan slice there
        # is invalidated (staging degrades to the reactive path) and
        # demand reads fail over (strikes -> probation -> PFS) until
        # recovery.
        yield epoch2_started
        dep.fail_node(crash_node)
        yield env.timeout(outage)
        dep.recover_node(crash_node)

    t0 = env.now
    procs = [
        env.process(reader(n), name=f"prefetch.rank{n}") for n in range(n_nodes)
    ]
    if fault:
        env.process(crasher(), name="prefetch.crash")

    def wait():
        yield AllOf(env, procs)

    env.run(env.process(wait(), name="prefetch.wait"))
    t_end = env.now
    if scheduler is not None:
        scheduler.stop()

    epoch1_end = max(ends[0] for ends in epoch_ends.values())
    oc.epoch1_seconds = epoch1_end - t0
    oc.total_seconds = t_end - t0
    steady = t_end - epoch1_end
    oc.steady_epoch_seconds = steady / (epochs - 1) if epochs > 1 else math.nan
    oc.epoch1_penalty = (
        oc.epoch1_seconds / oc.steady_epoch_seconds
        if epochs > 1 and oc.steady_epoch_seconds > 0
        else math.nan
    )
    window = max(steady / windows, 1e-9)
    oc.slo = compute_slo(rec, window, origin=epoch1_end, horizon=t_end)
    oc.steady_p99 = oc.slo.totals.p99
    oc.steady_degraded_fraction = oc.slo.totals.degraded_fraction
    oc.pfs_bytes = _pfs_read_bytes(pfs.metrics)
    oc.hit_rate = dep.hit_rate()
    oc.decompress_seconds = _decompress_seconds(dep)
    if scheduler is not None:
        oc.files_staged = scheduler.files_staged
        oc.invalidations = len(scheduler.invalidated)
        oc.divergences = m.counter("prefetch.divergences").value
    dep.teardown()
    return oc


def prefetch_comparison(
    n_nodes: int = 4,
    n_files: int = 128,
    file_size: int = 75_000,
    epochs: int = 3,
    windows: int = 12,
    lookahead: int = 8,
    outstanding: int = 2,
    cache_fraction: float = 0.21,
    compression_ratio: float = 0.45,
    decompress_cost_per_byte: float = 2e-9,
    decompress_budget: float = 1.0,
    fault: bool = True,
    outage: float = 0.01,
    spec: ClusterSpec | None = None,
    seed: int = 0,
    trace=None,
) -> PrefetchResult:
    """Run the three prefetch modes through the contention scenario.

    The defaults size the dataset past the fleet's aggregate cache (the
    uncompressed modes thrash every epoch) while the compressed tier's
    ``compression_ratio`` makes it fit — which is the whole FanStore
    trade: decompression CPU for PFS bandwidth.  ``cache_fraction``
    scales every server's cache slice to keep that regime at any node
    count.
    """
    if n_nodes < 2:
        raise ValueError("prefetch_comparison needs >= 2 nodes")
    if epochs < 2:
        raise ValueError("prefetch_comparison needs >= 2 epochs")
    overrides = dict(PREFETCH_SPEC_OVERRIDES)
    overrides["cache_fraction"] = cache_fraction
    overrides["prefetch_lookahead"] = lookahead
    overrides["prefetch_outstanding"] = outstanding
    base = _fault_spec(spec, **overrides)
    # TESTING's metadata servers (1 ms per op, serial) saturate at toy
    # miss rates, making every mode MDS-bound — in that regime staging
    # the same opens earlier only adds burstiness.  Give the experiment
    # a metadata-capable PFS so misses are bandwidth/latency bound and
    # the comparison measures prefetch policy, not MDS queueing.
    base = replace(
        base, pfs=replace(base.pfs, metadata_ops_per_sec=20_000.0)
    )
    dataset = _dataset(n_files, file_size, seed)
    result = PrefetchResult(
        n_nodes=n_nodes,
        n_files=n_files,
        file_size=file_size,
        epochs=epochs,
        windows=windows,
        lookahead=lookahead,
        compression_ratio=compression_ratio,
        decompress_budget=decompress_budget,
        fault=fault,
    )
    for mode in PREFETCH_MODES:
        mode_spec = base
        if mode == "clairvoyant+compressed":
            mode_spec = base.with_hvac(
                compression_ratio=compression_ratio,
                decompress_cost_per_byte=decompress_cost_per_byte,
            )
        mode_spec = mode_spec.with_hvac(
            prefetch_mode="reactive" if mode == "reactive" else "clairvoyant"
        )
        result.outcomes[mode] = _run_mode(
            mode, mode_spec, dataset, n_nodes, epochs, windows,
            lookahead, outstanding, seed, fault, outage, trace=trace,
        )
    reports = {
        mode: oc.slo for mode, oc in result.outcomes.items() if oc.slo is not None
    }
    result.dashboard = degradation_dashboard(
        reports,
        title="steady-state SLO windows (origin = epoch-1 end)",
        per_client=False,
    )
    return result
