"""Unit tests for GPFS and LocalFS storage backends."""

import pytest

from repro.cluster import MiB, NVMeDevice, NVMeSpec, PFSSpec
from repro.simcore import Environment
from repro.storage import GPFS, FileNotCached, LocalFS


def make_gpfs(env, **overrides):
    defaults = dict(
        n_metadata_servers=2,
        metadata_ops_per_sec=100.0,  # op = 10 ms
        ops_per_open=2.0,
        ops_per_close=1.0,
        n_data_servers=4,
        data_server_bandwidth=1e6,
        stripe_size=1 * MiB,
        data_latency=0.001,
        client_overhead=0.0,
    )
    defaults.update(overrides)
    return GPFS(
        env,
        PFSSpec(**defaults),
        n_client_nodes=4,
        client_link_bandwidth=1e7,
    )


class TestGPFS:
    def test_open_costs_metadata_ops(self):
        env = Environment()
        fs = make_gpfs(env)

        def proc():
            yield from fs.open("/data/f1", 100, client_node=0)

        env.process(proc())
        env.run()
        assert env.now == pytest.approx(0.02)  # 2 ops × 10 ms

    def test_full_transaction(self):
        env = Environment()
        fs = make_gpfs(env)
        done = []

        def proc():
            n = yield from fs.read_file("/data/f1", 1000, client_node=0)
            done.append((env.now, n))

        env.process(proc())
        env.run()
        t, n = done[0]
        assert n == 1000
        # open 20ms + read (1ms latency + 1ms transfer) + close 10ms
        assert t == pytest.approx(0.032, rel=0.05)

    def test_metadata_saturation(self):
        """Many concurrent opens are limited by aggregate MDS ops/s."""
        env = Environment()
        fs = make_gpfs(env)
        n_files = 40

        def opener(i):
            yield from fs.open(f"/d/file-{i}", 10, client_node=0)

        for i in range(n_files):
            env.process(opener(i))
        env.run()
        # 40 opens × 2 ops = 80 ops over 2 MDS at 100 ops/s ≈ 0.4 s
        # (hash imbalance makes it a bit worse, never better)
        assert env.now >= 0.4 - 1e-9
        assert env.now < 0.8

    def test_large_read_striped_across_servers(self):
        env = Environment()
        fs = make_gpfs(env)

        def proc():
            yield from fs.read_file("/d/big", 4 * MiB, client_node=0)

        env.process(proc())
        env.run()
        # 4 stripes of 1 MiB on (up to) 4 servers in parallel at 1e6 B/s
        # ≈ 1.05 s each; client link is 10× faster so not binding.
        # Plus 30 ms metadata.  Far less than serial (4.2 s).
        assert env.now < 2.5

    def test_client_link_binds_single_client(self):
        env = Environment()
        fs = make_gpfs(env, data_server_bandwidth=1e9)  # NSDs now very fast

        def proc():
            yield from fs.read_file("/d/big", 10_000_000, client_node=0)

        env.process(proc())
        env.run()
        # 10 MB over the 1e7 B/s client link ≈ 1 s dominates.
        assert env.now == pytest.approx(1.03, rel=0.05)

    def test_mds_partitioning_is_stable(self):
        env = Environment()
        fs = make_gpfs(env)
        assert fs.mds_for("/a/b") == fs.mds_for("/a/b")

    def test_stripes_of(self):
        env = Environment()
        fs = make_gpfs(env)
        assert fs.stripes_of(1) == 1
        assert fs.stripes_of(1 * MiB) == 1
        assert fs.stripes_of(1 * MiB + 1) == 2
        assert fs.stripes_of(10 * MiB) == 10

    def test_double_close_rejected(self):
        env = Environment()
        fs = make_gpfs(env)

        def proc():
            h = yield from fs.open("/d/f", 10, client_node=0)
            yield from fs.close(h)
            yield from fs.close(h)

        env.process(proc())
        with pytest.raises(ValueError):
            env.run()

    def test_read_past_eof_returns_zero(self):
        env = Environment()
        fs = make_gpfs(env)
        got = []

        def proc():
            h = yield from fs.open("/d/f", 100, client_node=0)
            n1 = yield from fs.read(h, 100)
            n2 = yield from fs.read(h, 100)
            got.append((n1, n2))

        env.process(proc())
        env.run()
        assert got == [(100, 0)]

    def test_metrics_count_transactions(self):
        env = Environment()
        fs = make_gpfs(env)

        def proc():
            yield from fs.read_file("/d/f", 10, client_node=0)

        env.process(proc())
        env.run()
        assert fs.metrics.counter("gpfs.opens").value == 1
        assert fs.metrics.counter("gpfs.closes").value == 1


def make_localfs(env, node_id=0):
    spec = NVMeSpec(
        capacity_bytes=10_000,
        read_bandwidth=1000.0,
        write_bandwidth=500.0,
        read_latency=0.01,
        write_latency=0.01,
        queue_depth=4,
        fs_open_close_latency=0.005,
    )
    dev = NVMeDevice(env, spec)
    return LocalFS(env, node_id, dev)


class TestLocalFS:
    def test_write_then_read(self):
        env = Environment()
        fs = make_localfs(env)
        got = []

        def proc():
            yield from fs.write_file("/nvme/f", 1000)
            n = yield from fs.read_file("/nvme/f", 1000, client_node=0)
            got.append(n)

        env.process(proc())
        env.run()
        assert got == [1000]
        assert fs.contains("/nvme/f")
        assert fs.used_bytes == 1000

    def test_open_missing_file_raises(self):
        env = Environment()
        fs = make_localfs(env)

        def proc():
            yield from fs.open("/nope", 10, client_node=0)

        env.process(proc())
        with pytest.raises(FileNotCached):
            env.run()

    def test_cross_node_access_rejected(self):
        env = Environment()
        fs = make_localfs(env, node_id=0)

        def proc():
            yield from fs.write_file("/f", 10)
            yield from fs.open("/f", 10, client_node=1)

        env.process(proc())
        with pytest.raises(ValueError):
            env.run()

    def test_delete_frees_space(self):
        env = Environment()
        fs = make_localfs(env)

        def proc():
            yield from fs.write_file("/f", 1000)

        env.process(proc())
        env.run()
        fs.delete_file("/f")
        assert fs.used_bytes == 0
        assert not fs.contains("/f")

    def test_delete_missing_raises(self):
        env = Environment()
        fs = make_localfs(env)
        with pytest.raises(FileNotCached):
            fs.delete_file("/ghost")

    def test_overwrite_replaces_allocation(self):
        env = Environment()
        fs = make_localfs(env)

        def proc():
            yield from fs.write_file("/f", 1000)
            yield from fs.write_file("/f", 2000)

        env.process(proc())
        env.run()
        assert fs.used_bytes == 2000
        assert fs.file_size("/f") == 2000

    def test_file_size_of_missing_raises(self):
        env = Environment()
        fs = make_localfs(env)
        with pytest.raises(FileNotCached):
            fs.file_size("/ghost")

    def test_transaction_timing(self):
        env = Environment()
        fs = make_localfs(env)

        def proc():
            yield from fs.write_file("/f", 1000)
            t0 = env.now
            yield from fs.read_file("/f", 1000, client_node=0)
            return env.now - t0

        p = env.process(proc())
        elapsed = env.run(p)
        # open_close 5ms + read latency 10ms + 1000/1000 = 1s
        assert elapsed == pytest.approx(1.015, rel=0.01)

    def test_read_faster_than_gpfs_small_files(self):
        """The motivating gap: local open is µs-scale, PFS open is ms-scale."""
        env1 = Environment()
        lfs = make_localfs(env1)

        def local():
            yield from lfs.write_file("/f", 10)
            t0 = env1.now
            for _ in range(10):
                yield from lfs.read_file("/f", 10, client_node=0)
            return env1.now - t0

        t_local = env1.run(env1.process(local()))

        env2 = Environment()
        gfs = make_gpfs(env2)

        def remote():
            t0 = env2.now
            for _ in range(10):
                yield from gfs.read_file("/f", 10, client_node=0)
            return env2.now - t0

        t_gpfs = env2.run(env2.process(remote()))
        assert t_gpfs > t_local


class TestGPFSStripeProtocol:
    def test_offset_read_touches_only_covering_stripes(self):
        """A read at an interior offset must not refetch earlier stripes."""
        env = Environment()
        fs = make_gpfs(env, data_latency=0.0, data_server_bandwidth=1e6)
        elapsed = {}

        def proc():
            h = yield from fs.open("/d/big", 4 * MiB, client_node=0)
            # skip to the last stripe
            h.offset = 3 * MiB
            t0 = env.now
            n = yield from fs.read(h, MiB)
            elapsed["one_stripe"] = env.now - t0
            yield from fs.close(h)
            return n

        n = env.run(env.process(proc()))
        assert n == MiB
        # one 1 MiB stripe at 1e6 B/s ≈ 1.05 s, not 4 stripes' worth
        assert elapsed["one_stripe"] < 2.0

    def test_read_spanning_stripe_boundary(self):
        env = Environment()
        fs = make_gpfs(env)
        got = []

        def proc():
            h = yield from fs.open("/d/big", 4 * MiB, client_node=0)
            h.offset = MiB - 1000
            n = yield from fs.read(h, 2000)  # crosses stripe 0 → 1
            got.append((n, h.offset))
            yield from fs.close(h)

        env.run(env.process(proc()))
        assert got == [(2000, MiB + 1000)]

    def test_stripe_placement_round_robins(self):
        env = Environment()
        fs = make_gpfs(env)
        servers = {fs.nsd_for("/d/big", i) for i in range(4)}
        assert len(servers) == 4  # 4 stripes on 4 distinct NSDs

    def test_zero_byte_read(self):
        env = Environment()
        fs = make_gpfs(env)

        def proc():
            h = yield from fs.open("/d/f", 100, client_node=0)
            n = yield from fs.read(h, 0)
            yield from fs.close(h)
            return n

        assert env.run(env.process(proc())) == 0
