"""Failure-injection tests: servers dying mid-flight, repeated failures,
recovery storms — the §III-H reliability story under adversity."""

import pytest

from repro.cluster import Allocation, TESTING
from repro.core import HVACDeployment
from repro.rpc import RPCError
from repro.simcore import AllOf, Environment, Interrupt
from repro.storage import GPFS


def build(n_nodes=4, **hvac):
    env = Environment()
    spec = TESTING.with_hvac(**hvac)
    alloc = Allocation(env, spec, n_nodes=n_nodes)
    pfs = GPFS(env, spec.pfs, n_nodes, spec.network.nic_bandwidth)
    dep = HVACDeployment(alloc, pfs)
    return env, dep, pfs


FILES = [(f"/d/f{i}", 25_000) for i in range(24)]


def epoch_proc(env, dep, node_ids, files=FILES):
    def reader(node):
        cli = dep.client(node)
        for path, size in files:
            yield from cli.read_file(path, size, node)

    procs = [env.process(reader(n)) for n in node_ids]

    def wait():
        yield AllOf(env, procs)

    return env.process(wait())


class TestMidFlightFailures:
    def test_server_dies_during_epoch_training_survives(self):
        env, dep, _ = build()
        job = epoch_proc(env, dep, [0, 1, 2, 3])

        def killer():
            yield env.timeout(0.001)  # mid-epoch
            dep.fail_node(2)

        env.process(killer())
        env.run(job)  # must complete without raising

    def test_server_dies_during_epoch_with_replication(self):
        env, dep, _ = build(replication_factor=2)
        job = epoch_proc(env, dep, [0, 1, 2, 3])

        def killer():
            yield env.timeout(0.001)
            dep.fail_node(1)

        env.process(killer())
        env.run(job)

    def test_cascading_failures_leave_one_node(self):
        env, dep, pfs = build()
        job = epoch_proc(env, dep, [0])

        def cascade():
            for node in (1, 2, 3):
                yield env.timeout(0.0005)
                dep.fail_node(node)

        env.process(cascade())
        env.run(job)
        # Everything the dead servers homed fell back to the PFS.
        assert dep.metrics.counter("hvac.client_pfs_fallback").value > 0

    def test_fail_recover_fail_cycles(self):
        env, dep, _ = build()
        for _ in range(3):
            env.run(epoch_proc(env, dep, [0]))
            dep.fail_node(1)
            env.run(epoch_proc(env, dep, [0]))
            dep.recover_node(1)
        # Recovered servers come back cold but functional.
        env.run(epoch_proc(env, dep, [0]))
        for s in dep.servers_on_node(1):
            assert s.alive

    def test_all_nodes_failed_everything_falls_back(self):
        env, dep, pfs = build(n_nodes=2)
        env.run(epoch_proc(env, dep, [0, 1]))
        dep.fail_node(0)
        dep.fail_node(1)
        before = pfs.metrics.counter("gpfs.opens").value
        env.run(epoch_proc(env, dep, [0, 1]))
        # Every read in the second sweep hit GPFS directly.
        assert pfs.metrics.counter("gpfs.opens").value == before + 2 * len(FILES)

    def test_failure_does_not_lose_other_nodes_cache(self):
        env, dep, _ = build()
        env.run(epoch_proc(env, dep, [0, 1, 2, 3]))
        cached_before = {
            s.server_id: s.cache.n_files for s in dep.servers if s.node_id != 3
        }
        dep.fail_node(3)
        for s in dep.servers:
            if s.node_id != 3:
                assert s.cache.n_files == cached_before[s.server_id]


class TestRPCDeathSemantics:
    def test_call_racing_shutdown(self):
        """A call that arrives as the endpoint dies raises, not hangs."""
        env, dep, _ = build(n_nodes=2)
        server = dep.servers[1]
        cli = dep.client(0)
        outcomes = []

        def caller():
            try:
                yield from cli.endpoint.call(
                    server.endpoint, "read", payload=("/d/x", 100),
                    payload_bytes=10,
                )
                outcomes.append("ok")
            except RPCError:
                outcomes.append("error")

        def killer():
            yield env.timeout(1e-7)
            server.fail()

        env.process(caller())
        env.process(killer())
        env.run()
        assert outcomes in (["ok"], ["error"])  # never a hang

    def test_oob_close_to_dead_server_is_swallowed(self):
        env, dep, _ = build(n_nodes=2)
        cli = dep.client(0)

        def proc():
            h = yield from cli.open("/d/f0", 100, 0)
            yield from cli.read(h, 100)
            dep.fail_node(dep.placement.home("/d/f0") // 1)
            yield from cli.close(h)  # close fires out-of-band at a corpse

        env.run(env.process(proc()))
        env.run()  # drain the OOB process; must not raise


class TestInterruptRobustness:
    def test_interrupted_reader_leaves_consistent_state(self):
        env, dep, _ = build()
        cli = dep.client(0)

        def reader():
            try:
                for path, size in FILES:
                    yield from cli.read_file(path, size, 0)
            except Interrupt:
                return "stopped"

        p = env.process(reader())

        def interrupter():
            yield env.timeout(0.002)
            p.interrupt()

        env.process(interrupter())
        assert env.run(p) == "stopped"
        # The deployment still works for other readers afterwards.
        env.run(epoch_proc(env, dep, [1]))
