"""PERF102 fixture: a closure rebuilt on every call of a hot function.

The nested ``key`` function object (and its cell) is allocated per
call even though it captures nothing that changes."""


def on_event(items):
    def key(item):
        return item[1]

    return sorted(items, key=key)
