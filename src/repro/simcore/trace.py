"""Opt-in event-stream fingerprinting for determinism checks.

Every claim this reproduction makes (epoch-time ratios, failover cost,
the Fig-14 "SGD shuffle untouched" property) rests on the engine's
bit-for-bit determinism.  An :class:`EventTrace` attached to an
:class:`~repro.simcore.engine.Environment` observes every event the
kernel fires — as the tuple ``(time, priority, seq, label)`` — and
folds it into a rolling hash.  Two runs of the same experiment with the
same seed must produce identical fingerprints; if they do not, the
divergence bisector (:mod:`repro.check.divergence`) uses the trace's
periodic checkpoints to narrow the difference down to a block, then a
record-retaining re-run to print the first divergent event.

The hook is pay-for-what-you-use: with no trace attached the engine's
hot path costs one ``is None`` check per event.
"""

from __future__ import annotations

import hashlib
from typing import NamedTuple, Optional

__all__ = ["EventRecord", "EventTrace", "event_label"]


def event_label(event) -> str:
    """The label both the fingerprint and the race sanitizer key on:
    the event's type, plus the process name for Process events."""
    cls = type(event).__name__
    if cls == "Process":
        # perf: waive PERF103 -- only called under the engine's observed flag, never on a bare run
        return f"Process:{event.name}"
    return cls


class EventRecord(NamedTuple):
    """One observed kernel event (in firing order)."""

    index: int  #: 0-based position in the event stream
    time: float  #: simulated time the event fired at
    priority: int  #: URGENT/NORMAL scheduling priority
    seq: int  #: the kernel's global tie-break sequence number
    label: str  #: event type, plus process name for Process events

    def describe(self) -> str:
        return (
            f"#{self.index}  t={self.time!r}  prio={self.priority}  "
            f"seq={self.seq}  {self.label}"
        )


class EventTrace:
    """Rolling fingerprint (and optional recording) of an event stream.

    Parameters
    ----------
    checkpoint_every:
        If > 0, snapshot the running fingerprint every that-many events
        into :attr:`checkpoints` — the bisector's coarse index.
    keep_window:
        ``(lo, hi)`` half-open index range of records to retain in
        :attr:`records` (the bisector's fine pass).  ``None`` keeps none.
    keep_all:
        Retain every record (small experiments / debugging).
    """

    __slots__ = (
        "checkpoint_every", "keep_window", "keep_all",
        "count", "checkpoints", "records", "_h",
    )

    def __init__(
        self,
        checkpoint_every: int = 0,
        keep_window: Optional[tuple[int, int]] = None,
        keep_all: bool = False,
    ):
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.checkpoint_every = checkpoint_every
        self.keep_window = keep_window
        self.keep_all = keep_all
        self.count = 0
        self.checkpoints: list[str] = []
        self.records: list[EventRecord] = []
        self._h = hashlib.blake2b(digest_size=16)

    def record(self, time: float, priority: int, seq: int, label: str) -> None:
        """Fold one fired event into the fingerprint (engine hook)."""
        # repr() of the float keeps full precision, so two runs whose
        # clocks differ by one ulp still diverge — that is the point.
        self._h.update(f"{time!r}|{priority}|{seq}|{label}\n".encode())
        if self.keep_all or (
            self.keep_window is not None
            and self.keep_window[0] <= self.count < self.keep_window[1]
        ):
            self.records.append(
                EventRecord(self.count, time, priority, seq, label)
            )
        self.count += 1
        if self.checkpoint_every and self.count % self.checkpoint_every == 0:
            self.checkpoints.append(self._h.copy().hexdigest())

    @property
    def fingerprint(self) -> str:
        """Hex digest over every event recorded so far."""
        return self._h.copy().hexdigest()

    def __repr__(self) -> str:
        return f"<EventTrace {self.count} events {self.fingerprint[:12]}…>"
