"""Fault-aware placement: remap a dead server's hash range.

Without remapping, every read whose home replica set intersects a dead
server walks the retry/backoff ladder and lands on the PFS — a
per-read penalty paid for the whole outage.  :class:`RemappedPlacement`
wraps any base :class:`~repro.core.hashing.Placement` and consults a
:class:`~repro.membership.MembershipView`: replicas the view considers
unplaceable (``dead``, or ``recovering`` while repair streams the shard
back) are substituted with the next live servers along the ring, so the
stand-ins absorb the range and warm their caches.  When the view sees
the server ``alive`` again the wrapper yields the original replica set
— un-remapping is automatic and per-path, no rebuild step.

The wrapper is deliberately *view-local*: two clients with divergent
beliefs may briefly disagree on a file's stand-in.  That is safe — a
stand-in miss is just a PFS fetch that warms the stand-in — and it
converges as fast as the gossip does.
"""

from __future__ import annotations

from ..core.hashing import Placement
from .view import MembershipView

__all__ = ["RemappedPlacement"]


class RemappedPlacement(Placement):
    """Placement decorator that routes around unplaceable servers."""

    def __init__(self, base: Placement, view: MembershipView):
        self.base = base
        self.view = view
        super().__init__(base.n_servers, base.replication_factor)

    def replicas(self, path: str, client=None) -> list[int]:
        base_r = self.base.replicas(path, client)
        out = [sid for sid in base_r if self.view.placeable(sid)]
        if len(out) == len(base_r):
            return base_r
        # refill from the ring, starting just past the original primary,
        # so a dead server's whole range lands on a stable set of
        # stand-ins (consecutive servers), not a per-path scatter
        k = 1
        while len(out) < len(base_r) and k <= self.n_servers:
            cand = (base_r[0] + k) % self.n_servers
            if cand not in out and self.view.placeable(cand):  # perf: waive PERF105 -- out is replication-factor bounded (2-3 entries)
                out.append(cand)
            k += 1
        return out or base_r

    def __getattr__(self, name):
        # delegate optional extensions (rack_of, ...) to the base scheme;
        # only reached for attributes not set on the wrapper itself
        return getattr(self.base, name)

    def __repr__(self) -> str:
        return f"<RemappedPlacement over {self.base!r}>"
