"""Unit tests for the virtual POSIX layer and LD_PRELOAD-style interposer."""

import pytest

from repro.cluster import Allocation, TESTING
from repro.core import HVACDeployment
from repro.posix import (
    Interposition,
    MountTable,
    Namespace,
    PosixError,
    ProcessView,
    interpose_view,
    unload,
)
from repro.simcore import Environment
from repro.storage import GPFS


def make_stack(n_nodes=2):
    env = Environment()
    ns = Namespace()
    mounts = MountTable()
    pfs = GPFS(env, TESTING.pfs, n_nodes, TESTING.network.nic_bandwidth)
    mounts.mount("/gpfs", pfs)
    return env, ns, mounts, pfs


class TestNamespace:
    def test_add_and_size(self):
        ns = Namespace()
        ns.add_file("/gpfs/a", 100)
        assert ns.size_of("/gpfs/a") == 100
        assert ns.exists("/gpfs/a")
        assert len(ns) == 1

    def test_missing_raises(self):
        ns = Namespace()
        with pytest.raises(PosixError):
            ns.size_of("/nope")

    def test_remove(self):
        ns = Namespace()
        ns.add_file("/a", 1)
        ns.remove_file("/a")
        assert not ns.exists("/a")
        with pytest.raises(PosixError):
            ns.remove_file("/a")

    def test_bulk_add(self):
        ns = Namespace()
        ns.add_files(["/a", "/b"], [1, 2])
        assert ns.size_of("/b") == 2

    def test_negative_size_rejected(self):
        ns = Namespace()
        with pytest.raises(ValueError):
            ns.add_file("/a", -1)


class TestMountTable:
    def test_longest_prefix_wins(self):
        env, ns, mounts, pfs = make_stack()
        pfs2 = GPFS(env, TESTING.pfs, 2, 1e9)
        mounts.mount("/gpfs/special", pfs2)
        assert mounts.resolve("/gpfs/special/x") is pfs2
        assert mounts.resolve("/gpfs/other") is pfs

    def test_no_false_prefix_match(self):
        env, ns, mounts, pfs = make_stack()
        with pytest.raises(PosixError):
            mounts.resolve("/gpfsX/file")  # /gpfs must not match /gpfsX

    def test_unmount(self):
        env, ns, mounts, pfs = make_stack()
        mounts.unmount("/gpfs")
        with pytest.raises(PosixError):
            mounts.resolve("/gpfs/x")
        with pytest.raises(ValueError):
            mounts.unmount("/gpfs")

    def test_duplicate_mount_rejected(self):
        env, ns, mounts, pfs = make_stack()
        with pytest.raises(ValueError):
            mounts.mount("/gpfs", pfs)

    def test_relative_prefix_rejected(self):
        mounts = MountTable()
        with pytest.raises(ValueError):
            mounts.mount("relative", None)

    def test_root_mount_catches_all(self):
        env, ns, mounts, pfs = make_stack()
        root_fs = GPFS(env, TESTING.pfs, 2, 1e9)
        mounts.mount("/", root_fs)
        assert mounts.resolve("/anything/else") is root_fs


class TestProcessView:
    def test_open_read_close(self):
        env, ns, mounts, pfs = make_stack()
        ns.add_file("/gpfs/data/f", 500)
        view = ProcessView(env, ns, mounts, node_id=0)
        got = []

        def proc():
            fd = yield from view.open("/gpfs/data/f")
            assert fd >= 3
            n = yield from view.read(fd)
            yield from view.close(fd)
            got.append(n)

        env.run(env.process(proc()))
        assert got == [500]
        assert view.open_fds == 0

    def test_read_file_transaction(self):
        env, ns, mounts, pfs = make_stack()
        ns.add_file("/gpfs/f", 123)
        view = ProcessView(env, ns, mounts, node_id=1)

        def proc():
            n = yield from view.read_file("/gpfs/f")
            return n

        assert env.run(env.process(proc())) == 123

    def test_open_missing_file(self):
        env, ns, mounts, pfs = make_stack()
        view = ProcessView(env, ns, mounts, node_id=0)

        def proc():
            yield from view.open("/gpfs/ghost")

        with pytest.raises(PosixError):
            env.run(env.process(proc()))

    def test_bad_fd(self):
        env, ns, mounts, pfs = make_stack()
        view = ProcessView(env, ns, mounts, node_id=0)

        def proc():
            yield from view.read(42)

        with pytest.raises(PosixError):
            env.run(env.process(proc()))

    def test_double_close_is_ebadf(self):
        env, ns, mounts, pfs = make_stack()
        ns.add_file("/gpfs/f", 10)
        view = ProcessView(env, ns, mounts, node_id=0)

        def proc():
            fd = yield from view.open("/gpfs/f")
            yield from view.close(fd)
            yield from view.close(fd)

        with pytest.raises(PosixError):
            env.run(env.process(proc()))

    def test_stat(self):
        env, ns, mounts, pfs = make_stack()
        ns.add_file("/gpfs/f", 77)
        view = ProcessView(env, ns, mounts, node_id=0)
        assert view.stat("/gpfs/f") == 77

    def test_fds_are_unique(self):
        env, ns, mounts, pfs = make_stack()
        ns.add_file("/gpfs/a", 1)
        ns.add_file("/gpfs/b", 1)
        view = ProcessView(env, ns, mounts, node_id=0)

        def proc():
            fd1 = yield from view.open("/gpfs/a")
            fd2 = yield from view.open("/gpfs/b")
            return fd1, fd2

        fd1, fd2 = env.run(env.process(proc()))
        assert fd1 != fd2


class TestInterposition:
    def build_hvac(self, env, n_nodes=2):
        alloc = Allocation(env, TESTING, n_nodes=n_nodes)
        pfs = GPFS(env, TESTING.pfs, n_nodes, TESTING.network.nic_bandwidth)
        dep = HVACDeployment(alloc, pfs)
        return pfs, dep

    def test_dataset_paths_redirected(self):
        env, ns, mounts, _ = make_stack()
        pfs, dep = self.build_hvac(env)
        ns.add_file("/gpfs/dataset/img1", 1000)
        ns.add_file("/gpfs/other/config", 10)
        view = ProcessView(env, ns, mounts, node_id=0)
        shim = interpose_view(view, "/gpfs/dataset", dep.client(0))

        def proc():
            yield from view.read_file("/gpfs/dataset/img1")
            yield from view.read_file("/gpfs/other/config")

        env.run(env.process(proc()))
        assert shim.intercepted_calls == 1
        assert shim.passthrough_calls == 1
        # The dataset file went through HVAC (it's now cached).
        assert dep.total_cached_files == 1

    def test_prefix_matching_exact_dir(self):
        env = Environment()
        _, dep = self.build_hvac(env)
        shim = Interposition("/gpfs/data", dep.client(0))
        assert shim.matches("/gpfs/data/f")
        assert shim.matches("/gpfs/data")
        assert not shim.matches("/gpfs/database/f")

    def test_relative_dataset_dir_rejected(self):
        env = Environment()
        _, dep = self.build_hvac(env)
        with pytest.raises(ValueError):
            Interposition("relative/dir", dep.client(0))

    def test_double_interpose_rejected(self):
        env, ns, mounts, _ = make_stack()
        _, dep = self.build_hvac(env)
        view = ProcessView(env, ns, mounts, node_id=0)
        interpose_view(view, "/gpfs/data", dep.client(0))
        with pytest.raises(RuntimeError):
            interpose_view(view, "/gpfs/data", dep.client(0))

    def test_unload_restores_passthrough(self):
        env, ns, mounts, pfs = make_stack()
        _, dep = self.build_hvac(env)
        ns.add_file("/gpfs/data/f", 100)
        view = ProcessView(env, ns, mounts, node_id=0)
        interpose_view(view, "/gpfs/data", dep.client(0))
        unload(view)

        def proc():
            yield from view.read_file("/gpfs/data/f")

        env.run(env.process(proc()))
        assert dep.total_cached_files == 0  # went straight to GPFS
        assert pfs.metrics.counter("gpfs.opens").value == 1

    def test_application_code_is_unmodified(self):
        """The same loop works with and without the shim — portability."""
        def application(view, paths):
            for p in paths:
                yield from view.read_file(p)

        env, ns, mounts, pfs = make_stack()
        _, dep = self.build_hvac(env)
        for i in range(4):
            ns.add_file(f"/gpfs/data/f{i}", 100)
        paths = [f"/gpfs/data/f{i}" for i in range(4)]

        view_plain = ProcessView(env, ns, mounts, node_id=0)
        env.run(env.process(application(view_plain, paths)))
        view_hvac = ProcessView(env, ns, mounts, node_id=0)
        interpose_view(view_hvac, "/gpfs/data", dep.client(0))
        env.run(env.process(application(view_hvac, paths)))
        assert dep.total_cached_files == 4
