"""PERF105 fixture (clean): one reverse up front, then O(1) tail pops —
the whole drain is linear."""


def drain(queue, out):
    queue.reverse()
    while queue:
        out.append(queue.pop())
