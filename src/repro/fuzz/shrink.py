"""Minimizing repro shrinker: greedy delta-debugging over scenarios.

Given a failing scenario and the invariant it broke, repeatedly try the
smallest structural deletions —

1. drop one fault at a time (to fixpoint),
2. drop the highest tenant at a time (down to a classic single-tenant
   fleet, when the scenario has several),
3. drop one reading client at a time (keeping at least one),
4. drop tail files (halving first, then one at a time),
5. collapse to a single measured epoch —

re-running the executor + checker after each deletion and keeping the
candidate only if the *same* invariant still fires.  Deletion order is
fixed, so the same failing case always shrinks to the same core (the
``repro fuzz`` determinism acceptance bar covers this).

For ``determinism`` violations the shrunk scenario is additionally
handed to the PR-2 divergence bisector
(:func:`repro.check.divergence.find_first_divergence`), which pins the
first divergent kernel event of the double run into the case file.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .executor import execute
from .invariants import InvariantConfig, InvariantReport
from .scenario import (
    Scenario,
    drop_client,
    drop_fault,
    drop_tenant,
    scenario_digest,
)

__all__ = ["ShrinkResult", "shrink"]


@dataclass
class ShrinkResult:
    """The minimization outcome for one failing scenario."""

    original: Scenario
    shrunk: Scenario
    #: the invariants that had to keep firing
    target: tuple[str, ...]
    #: final report of the shrunk scenario
    report: InvariantReport
    checks: int = 0
    removed_faults: int = 0
    removed_tenants: int = 0
    removed_clients: int = 0
    removed_files: int = 0
    removed_epochs: int = 0
    #: first divergent event (determinism failures only)
    divergence: str | None = None

    @property
    def digest(self) -> str:
        return scenario_digest(self.shrunk)

    def summary(self) -> str:
        return (
            f"shrunk {len(self.original.faults)}->{len(self.shrunk.faults)} "
            f"faults, {len(self.original.workload.clients)}->"
            f"{len(self.shrunk.workload.clients)} clients, "
            f"{self.original.n_files}->{self.shrunk.n_files} files "
            f"in {self.checks} checks"
        )


def _check(scenario: Scenario, config: InvariantConfig) -> InvariantReport:
    """One executor + checker round (with the double-run fingerprint,
    so determinism failures keep reproducing while shrinking)."""
    from ..simcore import EventTrace

    obs = execute(scenario, config, trace=EventTrace())
    second = execute(scenario, config, trace=EventTrace())
    from .invariants import check_observation

    return check_observation(
        obs, config, second_fingerprint=second.fingerprint
    )


def shrink(
    scenario: Scenario,
    target: tuple[str, ...],
    config: InvariantConfig | None = None,
    check=None,
) -> ShrinkResult:
    """Minimize ``scenario`` while ``target`` invariants keep firing.

    ``check`` (scenario -> InvariantReport) is injectable for tests;
    the default runs the real executor twice per probe.
    """
    config = config or InvariantConfig()
    if check is None:
        def check(s: Scenario) -> InvariantReport:  # noqa: F811
            return _check(s, config)

    target = tuple(sorted(target))
    budget = [config.max_shrink_checks]
    last_report = [None]

    def reproduces(candidate: Scenario) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        try:
            report = check(candidate)
        except (ValueError, RuntimeError):
            return False  # structurally invalid candidate: not a repro
        if set(target) <= set(report.violated):
            last_report[0] = report
            return True
        return False

    result = ShrinkResult(
        original=scenario, shrunk=scenario, target=target,
        report=None,  # filled below
    )
    current = scenario

    # 1: faults, one at a time, to fixpoint
    changed = True
    while changed and budget[0] > 0:
        changed = False
        for i in range(len(current.faults)):
            candidate = drop_fault(current, i)
            if reproduces(candidate):
                current = candidate
                result.removed_faults += 1
                changed = True
                break

    # 2: tenants, highest first, down to a classic single-tenant fleet
    while current.tenants > 1 and budget[0] > 0:
        candidate = drop_tenant(current)
        if reproduces(candidate):
            current = candidate
            result.removed_tenants += 1
        else:
            break

    # 3: clients, one at a time, keeping at least one
    changed = True
    while changed and budget[0] > 0:
        changed = False
        for node in current.workload.clients:
            if len(current.workload.clients) <= 1:
                break
            candidate = drop_client(current, node)
            if reproduces(candidate):
                current = candidate
                result.removed_clients += 1
                changed = True
                break

    # 4: files — halve the tail while it reproduces, then linear steps
    while current.n_files > 1 and budget[0] > 0:
        half = replace(current, n_files=max(1, current.n_files // 2))
        if reproduces(half):
            result.removed_files += current.n_files - half.n_files
            current = half
        else:
            break
    changed = True
    while changed and current.n_files > 1 and budget[0] > 0:
        changed = False
        candidate = replace(current, n_files=current.n_files - 1)
        if reproduces(candidate):
            current = candidate
            result.removed_files += 1
            changed = True

    # 5: epochs
    if current.epochs > 1 and budget[0] > 0:
        candidate = replace(current, epochs=1)
        if reproduces(candidate):
            result.removed_epochs = current.epochs - 1
            current = candidate

    result.shrunk = current
    result.checks = config.max_shrink_checks - budget[0]
    result.report = last_report[0] if last_report[0] is not None else check(current)

    if "determinism" in target:
        result.divergence = _bisect_divergence(current, config)
    return result


def _bisect_divergence(scenario: Scenario, config: InvariantConfig) -> str | None:
    """Reuse the PR-2 bisector to name the first divergent event of the
    shrunk scenario's double run."""
    from ..check.divergence import find_first_divergence

    def run(trace) -> None:
        execute(scenario, config, trace=trace)

    report = find_first_divergence(run)
    return report.describe() if report is not None else None
