"""Unit tests for the cluster hardware models."""

import pytest

from repro.cluster import (
    Allocation,
    ClusterSpec,
    DeviceFull,
    Fabric,
    HVACSpec,
    MiB,
    NetworkSpec,
    NVMeDevice,
    NVMeSpec,
    SUMMIT,
    TESTING,
)
from repro.simcore import Environment, SimulationError


class TestSpecs:
    def test_summit_aggregate_pfs_bandwidth_is_2_5_tbps(self):
        assert SUMMIT.pfs.aggregate_bandwidth == pytest.approx(2.5e12, rel=0.01)

    def test_summit_nvme_aggregate_matches_paper(self):
        # 22.5 TB/s at 4,096 nodes (paper §II-C)
        assert 4096 * SUMMIT.node.nvme.read_bandwidth == pytest.approx(
            22.5e12, rel=0.01
        )

    def test_summit_node_count(self):
        assert SUMMIT.total_nodes == 4608

    def test_with_hvac_override(self):
        s = SUMMIT.with_hvac(instances_per_node=4)
        assert s.hvac.instances_per_node == 4
        assert SUMMIT.hvac.instances_per_node == 1  # original untouched

    def test_with_pfs_override(self):
        s = SUMMIT.with_pfs(n_metadata_servers=8)
        assert s.pfs.n_metadata_servers == 8

    def test_hvac_spec_validation(self):
        with pytest.raises(ValueError):
            HVACSpec(instances_per_node=0)
        with pytest.raises(ValueError):
            HVACSpec(cache_fraction=0)
        with pytest.raises(ValueError):
            HVACSpec(eviction_policy="magic")
        with pytest.raises(ValueError):
            HVACSpec(hash_scheme="broken")
        with pytest.raises(ValueError):
            HVACSpec(replication_factor=0)

    def test_nvme_spec_validation(self):
        with pytest.raises(ValueError):
            NVMeSpec(capacity_bytes=0)

    def test_network_spec_validation(self):
        with pytest.raises(ValueError):
            NetworkSpec(nic_bandwidth=0)


class TestNVMeDevice:
    def make(self, env, **kw):
        spec = NVMeSpec(
            capacity_bytes=1000,
            read_bandwidth=100.0,
            write_bandwidth=50.0,
            read_latency=1.0,
            write_latency=2.0,
            queue_depth=2,
            **kw,
        )
        return NVMeDevice(env, spec)

    def test_read_time_is_latency_plus_transfer(self):
        env = Environment()
        dev = self.make(env)

        def proc():
            yield from dev.read(200)  # 1 + 200/100 = 3s

        env.process(proc())
        env.run()
        assert env.now == pytest.approx(3.0)

    def test_write_time(self):
        env = Environment()
        dev = self.make(env)

        def proc():
            yield from dev.write(100)  # 2 + 100/50 = 4s

        env.process(proc())
        env.run()
        assert env.now == pytest.approx(4.0)

    def test_queue_depth_limits_concurrency(self):
        env = Environment()
        dev = self.make(env)  # QD=2; latency 1s overlaps, 1s transfers serialize

        def reader():
            yield from dev.read(100)

        for _ in range(4):
            env.process(reader())
        env.run()
        # Two reads admitted at t=0 (QD=2): latencies overlap 0→1, their
        # transfers serialize 1→2 and 2→3; the third enters when the
        # first slot frees (t=2), latency to 3, transfer 3→4; the fourth
        # enters at t=3, latency to 4, transfer 4→5.
        assert env.now == pytest.approx(5.0)

    def test_bandwidth_is_shared_not_multiplied(self):
        """QD-parallel requests must not exceed rated device bandwidth."""
        env = Environment()
        dev = self.make(env)  # 100 B/s rated

        def reader():
            yield from dev.read(100)  # 1 s of transfer each

        t0 = env.now
        for _ in range(2):
            env.process(reader())
        env.run()
        # 200 B total at 100 B/s → at least 2 s of transfer time.
        assert env.now - t0 >= 2.0

    def test_capacity_accounting(self):
        env = Environment()
        dev = self.make(env)
        dev.allocate(600)
        assert dev.free_bytes == 400
        dev.release(100)
        assert dev.used_bytes == 500

    def test_allocate_over_capacity_raises(self):
        env = Environment()
        dev = self.make(env)
        dev.allocate(900)
        with pytest.raises(DeviceFull) as exc:
            dev.allocate(200)
        assert exc.value.free == 100

    def test_release_more_than_used_raises(self):
        env = Environment()
        dev = self.make(env)
        with pytest.raises(ValueError):
            dev.release(1)

    def test_negative_io_rejected(self):
        env = Environment()
        dev = self.make(env)

        def proc():
            yield from dev.read(-1)

        env.process(proc())
        with pytest.raises(ValueError):
            env.run()

    def test_metrics_recorded(self):
        env = Environment()
        dev = self.make(env)

        def proc():
            yield from dev.read(100)

        env.process(proc())
        env.run()
        assert dev.metrics.counter("nvme.reads").value == 1


class TestFabric:
    def make(self, env, n=4, bw=100.0, lat=1.0, overhead=0.0):
        spec = NetworkSpec(
            nic_bandwidth=bw,
            link_latency=lat,
            bisection_bandwidth_per_node=bw,
            per_message_overhead=overhead,
            loopback_bandwidth=1000.0,
        )
        return Fabric(env, spec, n)

    def test_remote_transfer_time(self):
        env = Environment()
        fab = self.make(env)

        def proc():
            yield from fab.transfer(0, 1, 200)  # 1 + 200/100 = 3s

        env.process(proc())
        env.run()
        assert env.now == pytest.approx(3.0)

    def test_local_transfer_uses_loopback(self):
        env = Environment()
        fab = self.make(env)

        def proc():
            yield from fab.transfer(2, 2, 500)  # 500/1000 = 0.5s

        env.process(proc())
        env.run()
        assert env.now == pytest.approx(0.5)

    def test_sender_contention_serializes(self):
        env = Environment()
        fab = self.make(env)

        def proc(dst):
            yield from fab.transfer(0, dst, 100)  # 2s each

        env.process(proc(1))
        env.process(proc(2))
        env.run()
        assert env.now == pytest.approx(4.0)  # same TX port

    def test_receiver_contention_serializes(self):
        env = Environment()
        fab = self.make(env)

        def proc(src):
            yield from fab.transfer(src, 3, 100)

        env.process(proc(0))
        env.process(proc(1))
        env.run()
        assert env.now == pytest.approx(4.0)  # same RX port

    def test_disjoint_pairs_parallel(self):
        env = Environment()
        fab = self.make(env)

        def proc(src, dst):
            yield from fab.transfer(src, dst, 100)

        env.process(proc(0, 1))
        env.process(proc(2, 3))
        env.run()
        assert env.now == pytest.approx(2.0)

    def test_bidirectional_full_duplex(self):
        env = Environment()
        fab = self.make(env)

        def proc(src, dst):
            yield from fab.transfer(src, dst, 100)

        env.process(proc(0, 1))
        env.process(proc(1, 0))
        env.run()
        assert env.now == pytest.approx(2.0)  # TX and RX are separate ports

    def test_invalid_node_rejected(self):
        env = Environment()
        fab = self.make(env)

        def proc():
            yield from fab.transfer(0, 99, 10)

        env.process(proc())
        with pytest.raises(SimulationError):
            env.run()

    def test_metrics(self):
        env = Environment()
        fab = self.make(env)

        def proc():
            yield from fab.transfer(0, 1, 100)
            yield from fab.transfer(1, 1, 100)

        env.process(proc())
        env.run()
        assert fab.metrics.counter("fabric.remote_transfers").value == 1
        assert fab.metrics.counter("fabric.local_transfers").value == 1


class TestAllocation:
    def test_build(self):
        env = Environment()
        alloc = Allocation(env, TESTING, n_nodes=4)
        assert alloc.n_nodes == 4
        assert [n.node_id for n in alloc] == [0, 1, 2, 3]

    def test_too_many_nodes_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Allocation(env, TESTING, n_nodes=TESTING.total_nodes + 1)

    def test_zero_nodes_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Allocation(env, TESTING, n_nodes=0)

    def test_aggregates(self):
        env = Environment()
        alloc = Allocation(env, TESTING, n_nodes=3)
        assert alloc.aggregate_nvme_capacity == 3 * TESTING.node.nvme.capacity_bytes
        assert alloc.aggregate_nvme_read_bandwidth == pytest.approx(
            3 * TESTING.node.nvme.read_bandwidth
        )

    def test_nodes_have_independent_devices(self):
        env = Environment()
        alloc = Allocation(env, TESTING, n_nodes=2)
        alloc[0].nvme.allocate(100)
        assert alloc[1].nvme.used_bytes == 0
