"""Compute nodes and job allocations.

An :class:`Allocation` is the unit every experiment works with: the set
of compute nodes LSF assigned to one batch job, wired to a shared
fabric, each with its own NVMe.  HVAC servers are spawned per-allocation
(paper §III-C: the ``alloc_flags "hvac"`` job-script option), and the
cache lifecycle is coupled to the allocation lifecycle.
"""

from __future__ import annotations

from typing import Iterator

from ..simcore import Environment, MetricRegistry, RandomStreams
from .network import Fabric
from .nvme import NVMeDevice
from .specs import ClusterSpec

__all__ = ["ComputeNode", "Allocation"]


class ComputeNode:
    """One compute node: identity + NVMe.

    GPU/CPU compute time is modelled by the DL workload layer (it is a
    pure delay there); the node object carries the stateful local device.
    """

    def __init__(
        self,
        env: Environment,
        node_id: int,
        spec: ClusterSpec,
        metrics: MetricRegistry,
    ):
        self.env = env
        self.node_id = node_id
        self.spec = spec
        self.nvme = NVMeDevice(
            env, spec.node.nvme, metrics=metrics, name=f"node{node_id}.nvme"
        )

    def __repr__(self) -> str:
        return f"<ComputeNode {self.node_id}>"


class Allocation:
    """A job's set of compute nodes plus the fabric connecting them."""

    def __init__(
        self,
        env: Environment,
        spec: ClusterSpec,
        n_nodes: int,
        metrics: MetricRegistry | None = None,
        rand: RandomStreams | None = None,
    ):
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if n_nodes > spec.total_nodes:
            raise ValueError(
                f"requested {n_nodes} nodes but {spec.name} has {spec.total_nodes}"
            )
        self.env = env
        self.spec = spec
        self.metrics = metrics or MetricRegistry()
        self.fabric = Fabric(
            env, spec.network, n_nodes, metrics=self.metrics, rand=rand
        )
        self.nodes = [
            ComputeNode(env, i, spec, self.metrics) for i in range(n_nodes)
        ]

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[ComputeNode]:
        return iter(self.nodes)

    def __getitem__(self, node_id: int) -> ComputeNode:
        return self.nodes[node_id]

    @property
    def aggregate_nvme_capacity(self) -> int:
        return sum(n.nvme.spec.capacity_bytes for n in self.nodes)

    @property
    def aggregate_nvme_read_bandwidth(self) -> float:
        return sum(n.nvme.spec.read_bandwidth for n in self.nodes)
