"""Sim-scope module whose nondeterminism hides one call away.

Linted alone this file is clean: no primitive appears in it.  The
per-function AST pass therefore misses the wall-clock read entirely —
only ``repro check --taint`` (SIM011) flags the ``read_clock()`` call
site with the source chain.
"""

from runtime.clockutil import read_clock


def deadline(env):
    return env.now + read_clock()
