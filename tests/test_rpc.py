"""Unit tests for the Mercury-like RPC layer."""

import pytest

from repro.cluster import Fabric, NetworkSpec
from repro.rpc import BulkHandle, RPCEndpoint, RPCError, RPCTimeout
from repro.simcore import Environment


def make_fabric(env, n=4):
    spec = NetworkSpec(
        nic_bandwidth=1e6,
        link_latency=0.001,
        bisection_bandwidth_per_node=1e6,
        per_message_overhead=0.0,
        loopback_bandwidth=1e7,
    )
    return Fabric(env, spec, n)


def test_basic_call_roundtrip():
    env = Environment()
    fab = make_fabric(env)
    server = RPCEndpoint(env, fab, node_id=1, name="srv")
    client = RPCEndpoint(env, fab, node_id=0, name="cli")

    def handler(payload, src):
        yield env.timeout(0.5)
        return payload * 2

    server.register("double", handler)
    result = []

    def caller():
        value = yield from client.call(server, "double", payload=21)
        result.append((env.now, value))

    env.process(caller())
    env.run()
    assert result[0][1] == 42
    # request wire + 0.5s service + response wire
    assert result[0][0] > 0.5


def test_handler_receives_source_node():
    env = Environment()
    fab = make_fabric(env)
    server = RPCEndpoint(env, fab, node_id=2)
    client = RPCEndpoint(env, fab, node_id=3)
    seen = []

    def handler(payload, src):
        seen.append(src)
        return None
        yield

    # handler must be a generator function
    def gen_handler(payload, src):
        seen.append(src)
        yield env.timeout(0)
        return None

    server.register("op", gen_handler)

    def caller():
        yield from client.call(server, "op")

    env.process(caller())
    env.run()
    assert seen == [3]


def test_unknown_op_raises_rpcerror():
    env = Environment()
    fab = make_fabric(env)
    server = RPCEndpoint(env, fab, node_id=1)
    client = RPCEndpoint(env, fab, node_id=0)
    caught = []

    def caller():
        try:
            yield from client.call(server, "nope")
        except RPCError as e:
            caught.append(str(e))

    env.process(caller())
    env.run()
    assert caught and "no handler" in caught[0]


def test_handler_exception_propagates_as_rpcerror():
    env = Environment()
    fab = make_fabric(env)
    server = RPCEndpoint(env, fab, node_id=1)
    client = RPCEndpoint(env, fab, node_id=0)

    def handler(payload, src):
        yield env.timeout(0.1)
        raise ValueError("server-side bug")

    server.register("bad", handler)
    caught = []

    def caller():
        try:
            yield from client.call(server, "bad")
        except RPCError as e:
            caught.append(e)

    env.process(caller())
    env.run()
    assert caught and isinstance(caught[0].__cause__, ValueError)


def test_call_to_dead_endpoint_raises():
    env = Environment()
    fab = make_fabric(env)
    server = RPCEndpoint(env, fab, node_id=1)
    client = RPCEndpoint(env, fab, node_id=0)
    server.shutdown()
    caught = []

    def caller():
        try:
            yield from client.call(server, "anything")
        except RPCError:
            caught.append(True)
        return None

    env.process(caller())
    env.run()
    assert caught == [True]


def test_endpoint_restart():
    env = Environment()
    fab = make_fabric(env)
    server = RPCEndpoint(env, fab, node_id=1)
    server.shutdown()
    assert not server.alive
    server.restart()
    assert server.alive


def test_timeout_raises_rpctimeout():
    env = Environment()
    fab = make_fabric(env)
    server = RPCEndpoint(env, fab, node_id=1)
    client = RPCEndpoint(env, fab, node_id=0)

    def slow(payload, src):
        yield env.timeout(100)
        return "late"

    server.register("slow", slow)
    caught = []

    def caller():
        try:
            yield from client.call(server, "slow", timeout=1.0)
        except RPCTimeout:
            caught.append(env.now)

    env.process(caller())
    env.run(until=5)
    assert caught and caught[0] == pytest.approx(1.0, abs=0.1)


def test_duplicate_registration_rejected():
    env = Environment()
    fab = make_fabric(env)
    ep = RPCEndpoint(env, fab, node_id=0)

    def h(payload, src):
        yield env.timeout(0)

    ep.register("op", h)
    with pytest.raises(Exception):
        ep.register("op", h)


def test_bulk_pull_transfers_at_bandwidth():
    env = Environment()
    fab = make_fabric(env)
    puller = RPCEndpoint(env, fab, node_id=0)

    def proc():
        yield from puller.bulk_pull(BulkHandle(node_id=1, nbytes=1_000_000))

    env.process(proc())
    env.run()
    # ~1 second at 1e6 B/s plus small latencies.
    assert 1.0 < env.now < 1.1


def test_bulk_push():
    env = Environment()
    fab = make_fabric(env)
    pusher = RPCEndpoint(env, fab, node_id=2)

    def proc():
        yield from pusher.bulk_push(3, 500_000)

    env.process(proc())
    env.run()
    assert 0.5 < env.now < 0.6


def test_concurrent_calls_to_one_server_all_complete():
    env = Environment()
    fab = make_fabric(env, n=8)
    server = RPCEndpoint(env, fab, node_id=0)
    results = []

    def handler(payload, src):
        yield env.timeout(0.1)
        return payload

    server.register("echo", handler)

    def caller(i):
        client = RPCEndpoint(env, fab, node_id=i)
        value = yield from client.call(server, "echo", payload=i)
        results.append(value)

    for i in range(1, 8):
        env.process(caller(i))
    env.run()
    assert sorted(results) == list(range(1, 8))


def test_payload_bytes_affect_wire_time():
    env = Environment()
    fab = make_fabric(env)
    server = RPCEndpoint(env, fab, node_id=1)

    def handler(payload, src):
        yield env.timeout(0)
        return None

    server.register("op", handler)
    times = []

    for size in (0, 1_000_000):
        env2 = Environment()
        fab2 = make_fabric(env2)
        srv2 = RPCEndpoint(env2, fab2, node_id=1)

        def h2(payload, src, env2=env2):
            yield env2.timeout(0)
            return None

        srv2.register("op", h2)
        cli2 = RPCEndpoint(env2, fab2, node_id=0)

        def caller(cli2=cli2, srv2=srv2, size=size):
            yield from cli2.call(srv2, "op", payload_bytes=size)

        env2.process(caller())
        env2.run()
        times.append(env2.now)
    assert times[1] > times[0] + 0.9  # 1 MB at 1 MB/s
