"""Per-figure experiment drivers (one module per paper figure)."""

from .accuracy_exp import AccuracyComparison, accuracy_comparison
from .batch import BatchSizeResult, batch_size_scaling
from .cache_split import CacheSplitResult, cache_split
from .epochs import (
    EpochScalingResult,
    PerEpochResult,
    epoch_scaling,
    per_epoch_analysis,
)
from .harness import Scale, repeat_training, resolve_setup, run_training
from .load_balance import LoadBalanceResult, load_balance
from .membership import (
    MEMBERSHIP_MODES,
    MembershipResult,
    membership_comparison,
)
from .report import generate_report
from .resilience import (
    FaultMatrixResult,
    ResilienceResult,
    fault_matrix,
    resilience_sweep,
)
from .mdtest_exp import (
    LARGE_FILE,
    SMALL_FILE,
    MDTestScalingResult,
    mdtest_scaling,
    mdtest_scaling_analytic,
)
from .scaling import (
    NodeScalingResult,
    node_scaling,
    node_scaling_analytic,
    normalized_to_gpfs,
    overhead_vs_xfs,
)
from .prefetch import PREFETCH_MODES, PrefetchResult, prefetch_comparison
from .slo_exp import SLOScenarioResult, slo_scenario
from .tenancy import TenancyResult, tenancy_isolation

__all__ = [
    "AccuracyComparison",
    "accuracy_comparison",
    "batch_size_scaling",
    "BatchSizeResult",
    "cache_split",
    "CacheSplitResult",
    "epoch_scaling",
    "EpochScalingResult",
    "fault_matrix",
    "FaultMatrixResult",
    "resilience_sweep",
    "ResilienceResult",
    "LARGE_FILE",
    "load_balance",
    "LoadBalanceResult",
    "mdtest_scaling",
    "mdtest_scaling_analytic",
    "MDTestScalingResult",
    "MEMBERSHIP_MODES",
    "membership_comparison",
    "MembershipResult",
    "node_scaling",
    "node_scaling_analytic",
    "NodeScalingResult",
    "normalized_to_gpfs",
    "overhead_vs_xfs",
    "per_epoch_analysis",
    "PerEpochResult",
    "PREFETCH_MODES",
    "prefetch_comparison",
    "PrefetchResult",
    "generate_report",
    "repeat_training",
    "resolve_setup",
    "run_training",
    "Scale",
    "SLOScenarioResult",
    "slo_scenario",
    "SMALL_FILE",
    "TenancyResult",
    "tenancy_isolation",
]
