"""The fuzzer's invariant checker.

Seven invariants, each a property the paper's resilience story (§III-H)
promises under *any* fault schedule; every one is checked against the
:class:`~repro.fuzz.executor.Observation` a scenario run produced:

``hung_read``
    Liveness: every epoch finishes inside a deadline derived from the
    warm epoch (client-side timeouts bound every wait, so a wedged read
    means a lost wakeup, not a slow path).
``retry_bound``
    No unbounded retry: no read span accumulates more strikes than the
    spec's retry budget allows.
``read_conservation``
    Every completed read's bytes are fully accounted local + remote +
    PFS — data is served, never invented or dropped.
``determinism``
    Same-seed double runs produce identical event-stream fingerprints
    (checked when the campaign schedules a double run).
``slo_recovery``
    After the last fault heals and every probation expires, the SLO
    grid's degraded-read fraction returns to the floor — and no failed
    re-probe transitions land past that point (this is where the
    failure-detector transitions feed in).
``repair_convergence``
    With the membership stack on: within a bounded window after heal,
    every client view routes to every healthy server again and repair
    has drained.
``tenant_isolation``
    Multi-tenant scenarios only: every completed read is attributed to
    the tenant that owns the path it read — a mismatch means metric and
    SLO scopes are polluted across namespaces.  Fairness under faults
    is *not* a hard bound (a fault legitimately degrades whichever
    tenant sits on the failed node), so the per-tenant degraded-fraction
    spread feeds only the margin: the wider the storm lands on one
    tenant, the closer to 0.

Each check also yields a *margin* in ``[0, 1]`` — 0 at (or past) the
bound, 1 far from it — which is the autopilot's near-violation signal.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = [
    "INVARIANTS",
    "InvariantConfig",
    "InvariantReport",
    "InvariantViolation",
    "check_observation",
]

INVARIANTS = (
    "hung_read",
    "retry_bound",
    "read_conservation",
    "determinism",
    "slo_recovery",
    "repair_convergence",
    "tenant_isolation",
)


@dataclass(frozen=True)
class InvariantConfig:
    """Bounds for one campaign (stored verbatim in every case file)."""

    #: absolute slack + warm-epoch multiple: epoch deadline =
    #: ``deadline_slack + deadline_factor * warm_duration``
    deadline_slack: float = 0.5
    deadline_factor: float = 10.0
    #: extra strikes tolerated per read span beyond the spec's budget
    retry_slack: int = 0
    #: max degraded-read fraction allowed in post-recovery SLO windows
    degraded_floor: float = 0.0
    #: margin reference scale for the floor when it is 0
    floor_ref: float = 0.05
    #: repair + view convergence must complete this long after settle
    convergence_window: float = 0.5
    #: SLO windows across the post-fault range
    windows: int = 12
    #: campaign: double-run the fingerprint check every N-th run
    determinism_every: int = 4
    #: margin reference scale for the per-tenant degraded-fraction
    #: spread (tenant_isolation); margin = 1 - spread / isolation_ref
    isolation_ref: float = 1.0
    #: shrinker: total re-check budget
    max_shrink_checks: int = 150

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "InvariantConfig":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in d.items() if k in known})


@dataclass(frozen=True)
class InvariantViolation:
    """One bound breach: addressable, comparable, JSON-friendly."""

    invariant: str
    message: str
    value: float
    bound: float

    def render(self) -> str:
        return (f"{self.invariant}: {self.message} "
                f"(value {self.value:g}, bound {self.bound:g})")


@dataclass
class InvariantReport:
    """All verdicts for one observation."""

    violations: list[InvariantViolation] = field(default_factory=list)
    #: invariant -> near-violation margin in [0, 1]
    margins: dict[str, float] = field(default_factory=dict)
    #: invariants that could not be evaluated (e.g. no double run)
    skipped: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def violated(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(v.invariant for v in self.violations))

    @property
    def score(self) -> float:
        """The autopilot's interestingness key: the smallest margin."""
        return min(self.margins.values(), default=1.0)

    def render(self) -> str:
        lines = []
        for v in self.violations:
            lines.append(f"VIOLATED {v.render()}")
        for name in sorted(self.margins):
            if name not in self.violated:
                lines.append(f"ok       {name} (margin {self.margins[name]:.2f})")
        for name in self.skipped:
            lines.append(f"skipped  {name}")
        return "\n".join(lines)


def _clip(x: float) -> float:
    return 0.0 if x < 0.0 else (1.0 if x > 1.0 else x)


def check_observation(
    obs, config: InvariantConfig, second_fingerprint: str | None = None
) -> InvariantReport:
    """Evaluate every invariant against one executed scenario."""
    report = InvariantReport()
    _check_hung(obs, config, report)
    _check_retries(obs, config, report)
    _check_conservation(obs, config, report)
    _check_determinism(obs, report, second_fingerprint)
    _check_slo(obs, config, report)
    _check_convergence(obs, config, report)
    _check_isolation(obs, config, report)
    return report


def _violate(report, name, message, value, bound) -> None:
    report.violations.append(InvariantViolation(name, message, value, bound))


def _check_hung(obs, config, report) -> None:
    worst = 0.0
    for ep in obs.epochs:
        worst = max(worst, ep.duration / ep.deadline if ep.deadline else 0.0)
        if ep.hung_clients:
            _violate(
                report, "hung_read",
                f"epoch '{ep.label}' hit its deadline with clients "
                f"{list(ep.hung_clients)} still reading",
                ep.duration, ep.deadline,
            )
    report.margins["hung_read"] = _clip(1.0 - worst)


def _check_retries(obs, config, report) -> None:
    allowed = obs.allowed_strikes + config.retry_slack
    worst = 0
    for span in obs.spans.spans().values():
        if span.name not in ("client.read", "client.segment"):
            continue
        strikes = sum(1 for _, key, _v in span.annotations if key == "strike")
        if strikes > worst:
            worst = strikes
        if strikes > allowed:
            _violate(
                report, "retry_bound",
                f"span #{span.sid} '{span.name}' recorded {strikes} strikes",
                strikes, allowed,
            )
    report.margins["retry_bound"] = _clip(1.0 - worst / allowed) if allowed else 1.0


def _check_conservation(obs, config, report) -> None:
    worst = 0.0
    checked = 0
    for span in obs.spans.spans().values():
        if span.name != "client.read" or span.t1 is None:
            continue
        requested = int(span.attrs.get("bytes", 0))
        if requested <= 0:
            continue
        routed = sum(
            int(v) for _, key, v in span.annotations
            if key.startswith("bytes:")
        )
        checked += 1
        err = abs(routed - requested) / requested
        worst = max(worst, err)
        if routed != requested:
            _violate(
                report, "read_conservation",
                f"span #{span.sid} read {span.attrs.get('path')!r}: "
                f"{requested} bytes requested, {routed} accounted",
                routed, requested,
            )
    # binary in spirit: any loss collapses the margin
    report.margins["read_conservation"] = 1.0 if (checked and worst == 0.0) else (
        _clip(1.0 - worst) if checked else 1.0
    )


def _check_determinism(obs, report, second_fingerprint) -> None:
    if second_fingerprint is None:
        report.skipped.append("determinism")
        return
    same = obs.fingerprint == second_fingerprint
    report.margins["determinism"] = 1.0 if same else 0.0
    if not same:
        _violate(
            report, "determinism",
            f"double run diverged: {obs.fingerprint[:12]}… vs "
            f"{second_fingerprint[:12]}…",
            1.0, 0.0,
        )


def _recovery_windows(obs):
    if obs.slo is None:
        return []
    return [w for w in obs.slo.totals.windows if w.t0 >= obs.t_settled - 1e-12]


def _check_slo(obs, config, report) -> None:
    if obs.aborted or obs.slo is None:
        report.skipped.append("slo_recovery")
        return
    floor = config.degraded_floor
    ref = max(floor, config.floor_ref)
    worst = 0.0
    for w in _recovery_windows(obs):
        worst = max(worst, w.degraded_fraction)
        if w.degraded_fraction > floor + 1e-12:
            _violate(
                report, "slo_recovery",
                f"window [{w.t0:.4f}, {w.t1:.4f}) degraded fraction "
                f"{w.degraded_fraction:.3f} after recovery",
                w.degraded_fraction, floor,
            )
    # a re-probe that *fails* after every fault healed is detection
    # flakiness even if no read degraded — the detector transitions
    # (same grid as the membership strips) carry the evidence
    late_fails = [
        (t, owner, sid)
        for t, owner, kind, sid in obs.detector_transitions
        if kind == "reprobe_fail" and t >= obs.t_settled - 1e-12
    ]
    for t, owner, sid in late_fails:
        worst = max(worst, 1.0)
        _violate(
            report, "slo_recovery",
            f"client {owner} re-probe of server {sid} failed at "
            f"t={t:.4f}, after the last fault healed",
            1.0, 0.0,
        )
    report.margins["slo_recovery"] = _clip(1.0 - worst / ref)


def _check_convergence(obs, config, report) -> None:
    if not obs.scenario.membership:
        report.skipped.append("repair_convergence")
        return
    if obs.aborted:
        report.skipped.append("repair_convergence")
        return
    value = len(obs.unconverged) + obs.repair_in_flight
    for entry in obs.unconverged:
        _violate(
            report, "repair_convergence",
            f"view not converged {config.convergence_window:g}s after "
            f"settle: {entry}",
            1.0, 0.0,
        )
    if obs.repair_in_flight:
        _violate(
            report, "repair_convergence",
            f"{obs.repair_in_flight} repair transfers still in flight "
            f"{config.convergence_window:g}s after settle",
            obs.repair_in_flight, 0.0,
        )
    if value:
        report.margins["repair_convergence"] = 0.0
    elif obs.t_converged is None:
        report.margins["repair_convergence"] = 1.0
    else:
        lag = (obs.t_converged - obs.t_settled) / config.convergence_window
        report.margins["repair_convergence"] = _clip(1.0 - lag)


def _check_isolation(obs, config, report) -> None:
    if obs.scenario.tenants < 2:
        report.skipped.append("tenant_isolation")
        return
    from ..tenancy import tenant_of_path

    mismatches = 0
    checked = 0
    for span in obs.spans.spans().values():
        if span.name != "client.read" or span.t1 is None:
            continue
        tenant = span.attrs.get("tenant")
        if tenant is None:
            continue
        checked += 1
        path = str(span.attrs.get("path", ""))
        owner = tenant_of_path(path)
        if owner != tenant:
            mismatches += 1
            _violate(
                report, "tenant_isolation",
                f"span #{span.sid} charged to tenant t{tenant} read "
                f"{path!r}, owned by "
                f"{'no tenant' if owner is None else f't{owner}'}",
                1.0, 0.0,
            )
    if not checked:
        # aborted before any tenant-tagged read completed — nothing to judge
        report.skipped.append("tenant_isolation")
        return
    # margin: how evenly the fault's blast radius lands across tenants
    spread = 0.0
    if obs.slo is not None and obs.slo.tenants:
        fracs = [e.degraded_fraction for e in obs.slo.tenants.values()]
        spread = max(fracs) - min(fracs)
    report.margins["tenant_isolation"] = (
        0.0 if mismatches else _clip(1.0 - spread / config.isolation_ref)
    )
