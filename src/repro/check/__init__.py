"""``repro check`` — the determinism & sim-safety analyzer.

Three layers, all runnable from the CLI and from tests:

* **Static, per-function**: an AST lint pass (:mod:`.rules`,
  :mod:`.linter`) with repro-specific rules SIM001–SIM010 guarding the
  engine's bit-for-bit determinism contract (see docs/INTERNALS.md).
* **Static, interprocedural**: a module-level call-graph + taint pass
  (:mod:`.callgraph`, :mod:`.taint`) that propagates nondeterminism
  primitives through helpers and across modules, reporting SIM011 at
  the sim-scope call site with the full source→sink chain
  (``repro check --taint``).
* **Static, whole-program**: a shared-state audit (:mod:`.cells`,
  :mod:`.cell_registry`) that walks the call graph from every
  process-spawn root, finds attribute writes reachable from two or
  more concurrent roots, and diffs them against the declared
  race-sanitizer cell inventory — proving the runtime sanitizer sees
  every shared mutable cell (``repro check --cells``).
* **Runtime**: event-stream fingerprinting
  (:class:`repro.simcore.EventTrace`) plus a double-run comparison
  that, on divergence, bisects to the first divergent kernel event
  (:mod:`.divergence`); and a sim-time race sanitizer (:mod:`.races`)
  that flags same-timestamp events whose order is decided only by heap
  insertion sequence yet touch the same shared-state cell
  (``repro check --races``).
"""

from __future__ import annotations

import os

from .divergence import DivergenceReport, find_first_divergence, fingerprint_run
from .linter import (
    StaleWaiver,
    TreeLint,
    lint_file,
    lint_paths,
    lint_source,
    lint_tree,
    scope_of,
)
from .perf import (
    PERF_RULES,
    PerfLint,
    perf_lint_files,
    perf_lint_source,
    perf_lint_tree,
)
from .cells import RACE_RULES, CellAudit, audit_source, audit_tree
from .cell_registry import DECLARED_CELLS, CellDecl, registry_freshness
from .races import RaceReport, RaceSanitizer
from .rules import RULES, Violation

__all__ = [
    "DECLARED_CELLS",
    "PERF_RULES",
    "RACE_RULES",
    "RULES",
    "Violation",
    "CellAudit",
    "CellDecl",
    "DivergenceReport",
    "PerfLint",
    "RaceReport",
    "RaceSanitizer",
    "StaleWaiver",
    "TreeLint",
    "audit_source",
    "audit_tree",
    "find_first_divergence",
    "fingerprint_run",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "perf_lint_files",
    "perf_lint_source",
    "perf_lint_tree",
    "registry_freshness",
    "scope_of",
    "default_lint_roots",
    "run_lint",
    "run_perf",
    "run_cells",
    "run_cells_freshness",
    "run_determinism",
    "run_races",
    "run_check",
]


def default_lint_roots() -> list[str]:
    """The in-tree source root, resolved from this package's location."""
    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return [pkg_root]  # .../src/repro


def run_lint(
    paths: list[str] | None = None, verbose: bool = True, taint: bool = False
) -> int:
    """Lint the tree; print violations + stale waivers; return exit code."""
    roots = paths or default_lint_roots()
    result = lint_tree(roots, taint=taint)
    for v in result.violations:
        print(v.render())
    for w in result.stale_waivers:
        print(w.render())
    if verbose:
        bits = []
        if result.violations:
            bits.append(f"{len(result.violations)} violation(s)")
        if result.stale_waivers:
            bits.append(f"{len(result.stale_waivers)} stale waiver(s)")
        status = ", ".join(bits) if bits else "clean"
        pass_name = "simlint+taint" if taint else "simlint"
        print(f"{pass_name}: {result.n_files} file(s) checked, {status}")
    return 0 if result.clean else 1


def run_perf(paths: list[str] | None = None, verbose: bool = True) -> int:
    """Run the hot-path analyzer; print findings; return exit code."""
    roots = paths or default_lint_roots()
    result = perf_lint_tree(roots)
    for v in result.violations:
        print(v.render())
    for w in result.stale_waivers:
        print(w.render())
    if verbose:
        bits = []
        if result.violations:
            bits.append(f"{len(result.violations)} violation(s)")
        if result.stale_waivers:
            bits.append(f"{len(result.stale_waivers)} stale waiver(s)")
        status = ", ".join(bits) if bits else "clean"
        hot = "all functions hot" if result.all_hot else f"{result.n_hot} hot function(s)"
        print(f"perf: {result.n_files} file(s) checked, {hot}, {status}")
    return 0 if result.clean else 1


def run_cells(
    paths: list[str] | None = None,
    output: str | None = None,
    verbose: bool = True,
) -> int:
    """Run the shared-state audit; print findings; return exit code."""
    roots = paths or default_lint_roots()
    result = audit_tree(roots)
    lines = [v.render() for v in result.violations]
    lines += [w.render() for w in result.stale_waivers]
    for line in lines:
        print(line)
    if output:
        os.makedirs(os.path.dirname(output) or ".", exist_ok=True)
        with open(output, "w", encoding="utf-8") as fh:
            if lines:
                fh.write("\n".join(lines) + "\n")
            else:
                fh.write(
                    f"cells: clean — {result.n_files} file(s), "
                    f"{result.n_roots} root(s), {result.n_writes} write(s)\n"
                )
    if verbose:
        bits = []
        if result.violations:
            bits.append(f"{len(result.violations)} violation(s)")
        if result.stale_waivers:
            bits.append(f"{len(result.stale_waivers)} stale waiver(s)")
        status = ", ".join(bits) if bits else "clean"
        print(
            f"cells: {result.n_files} file(s), {result.n_roots} "
            f"concurrency root(s), {result.n_writes} write site(s), {status}"
        )
    return 0 if result.clean else 1


def run_cells_freshness(
    paths: list[str] | None = None, verbose: bool = True
) -> int:
    """Check registry drift only: every in-tree ``note_access`` family
    must resolve to a declared cell template.  Separate from the audit
    gate so CI can pinpoint 'you added a cell but not its declaration'."""
    roots = paths or default_lint_roots()
    result = audit_tree(roots)
    for line in result.freshness:
        print(line)
    if verbose:
        status = (
            "fresh" if not result.freshness
            else f"{len(result.freshness)} drift error(s)"
        )
        print(f"cells-registry: {result.n_files} file(s), {status}")
    return 1 if result.freshness else 0


def _epochs_run(seed: int, n_nodes: int, files_per_rank: int):
    """A small same-seed ``epochs``-style experiment as a trace runnable."""
    from ..dl import IMAGENET21K, ALL_MODELS
    from ..experiments import Scale, run_training

    scale = Scale(
        files_per_rank=files_per_rank,
        sim_batch_size=2,
        repetitions=1,
        procs_per_node=2,
        epochs_simulated=2,
    )

    def run(trace):
        run_training(
            "hvac2",
            ALL_MODELS["resnet50"],
            IMAGENET21K,
            n_nodes,
            scale,
            seed=seed,
            trace=trace,
        )

    return run


def run_determinism(
    seed: int = 0,
    n_nodes: int = 2,
    files_per_rank: int = 4,
    block: int = 2048,
    verbose: bool = True,
) -> int:
    """Run the epochs experiment twice with one seed; compare fingerprints."""
    run = _epochs_run(seed, n_nodes, files_per_rank)
    a = fingerprint_run(run, checkpoint_every=block)
    b = fingerprint_run(run, checkpoint_every=block)
    report = find_first_divergence(run, block=block, traces=(a, b))
    if report is None:
        if verbose:
            print(
                f"determinism: OK — two seed={seed} runs produced identical "
                f"event streams ({a.count} events, fingerprint {a.fingerprint})"
            )
        return 0
    print(f"determinism: FAILED (seed={seed})")
    print(report.describe())
    return 1


def run_races(
    seed: int = 0,
    n_nodes: int = 4,
    n_files: int = 12,
    output: str | None = None,
    verbose: bool = True,
) -> int:
    """Run the membership smoke scenario under the race sanitizer with
    two seeds (different jitter landscapes); report every same-timestamp
    shared-state conflict found."""
    from .races import membership_smoke

    reports: list[tuple[int, RaceReport]] = []
    for s in (seed, seed + 1):
        sanitizer = RaceSanitizer()
        membership_smoke(seed=s, n_nodes=n_nodes, n_files=n_files,
                         sanitizer=sanitizer)
        reports.extend((s, r) for r in sanitizer.reports)

    text_blocks = [
        f"[seed {s}] {r.describe()}" for s, r in reports
    ]
    for block_ in text_blocks:
        print(block_)
    if output:
        os.makedirs(os.path.dirname(output) or ".", exist_ok=True)
        with open(output, "w", encoding="utf-8") as fh:
            if text_blocks:
                fh.write("\n\n".join(text_blocks) + "\n")
            else:
                fh.write(
                    f"races: clean — seeds {seed},{seed + 1}, "
                    f"{n_nodes} nodes, {n_files} files\n"
                )
    if verbose:
        status = "clean" if not reports else f"{len(reports)} race(s)"
        print(
            f"races: seeds {seed},{seed + 1} on the membership smoke "
            f"scenario — {status}"
        )
    return 1 if reports else 0


def run_check(
    paths: list[str] | None = None,
    lint_only: bool = False,
    determinism_only: bool = False,
    races_only: bool = False,
    seed: int = 0,
    n_nodes: int = 2,
    files_per_rank: int = 4,
    block: int = 2048,
    taint: bool = False,
    races: bool = False,
    races_output: str | None = None,
    perf: bool = False,
    cells: bool = False,
    cells_only: bool = False,
    cells_freshness_only: bool = False,
    cells_output: str | None = None,
) -> int:
    """The full ``repro check``: lint (+taint), optionally the hot-path
    analyzer (``--perf``), the shared-state audit (``--cells``), the
    double-run comparison, and optionally the sim-time race sanitizer."""
    rc = 0
    if races_only:
        return run_races(seed=seed, output=races_output)
    if cells_only:
        return run_cells(paths, output=cells_output)
    if cells_freshness_only:
        return run_cells_freshness(paths)
    if not determinism_only:
        rc |= run_lint(paths, taint=taint)
        if perf:
            rc |= run_perf(paths)
        if cells:
            rc |= run_cells(paths, output=cells_output)
    if not lint_only:
        rc |= run_determinism(
            seed=seed,
            n_nodes=n_nodes,
            files_per_rank=files_per_rank,
            block=block,
        )
    if races:
        rc |= run_races(seed=seed, output=races_output)
    return rc
