"""Clairvoyant prefetching (paper §IV-C future work, NoPFS-style).

Given the shuffle seed, the entire per-epoch access order of every rank
is known before the first read is issued (Clairvoyant Prefetching,
PAPERS.md).  This package turns that knowledge into staged I/O:

* :class:`ClairvoyantPlanner` materializes the full per-client access
  schedule from the seeded :class:`~repro.dl.EpochPlan`;
* :class:`LookaheadScheduler` stages exactly the next-``k`` files of
  each client's schedule at their home servers, under a per-server
  outstanding-request budget, deduping against the server in-flight
  table so demand reads compose — and degrades to the reactive path
  when faults invalidate the plan.

The reactive baseline (bulk pre-population at job start) remains
:class:`~repro.core.prefetch.CachePrefetcher`.
"""

from .planner import ClairvoyantPlanner, ClientSchedule
from .scheduler import LookaheadScheduler

__all__ = ["ClairvoyantPlanner", "ClientSchedule", "LookaheadScheduler"]
