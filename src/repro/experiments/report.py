"""One-command evaluation report: every figure, one text document.

``generate_report`` runs a compact version of the full evaluation —
every figure driver at a configurable scale plus the analytic full
sweeps — and renders a single plain-text report in the spirit of
EXPERIMENTS.md.  Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

import io
from typing import Sequence

from ..analysis import ascii_chart, format_series
from ..cluster import ClusterSpec, SUMMIT
from ..dl import IMAGENET21K, RESNET50, TRESNET_M
from .accuracy_exp import accuracy_comparison
from .batch import batch_size_scaling
from .cache_split import cache_split
from .epochs import epoch_scaling, per_epoch_analysis
from .harness import Scale
from .load_balance import load_balance
from .mdtest_exp import LARGE_FILE, SMALL_FILE, mdtest_scaling, mdtest_scaling_analytic
from .scaling import (
    node_scaling,
    node_scaling_analytic,
    normalized_to_gpfs,
    overhead_vs_xfs,
)
from .slo_exp import slo_scenario

__all__ = ["generate_report"]

_FULL_SWEEP = [1, 4, 16, 64, 256, 512, 1024]


def generate_report(
    scale: Scale | None = None,
    node_counts: Sequence[int] = (2, 8, 32),
    spec: ClusterSpec = SUMMIT,
    include_des: bool = True,
) -> str:
    """Run the evaluation and return the rendered report.

    ``include_des=False`` produces an analytic-only report in seconds;
    with the DES enabled, expect minutes at the default scale.
    """
    scale = scale or Scale(
        files_per_rank=8, sim_batch_size=4, repetitions=1, procs_per_node=4
    )
    nodes = list(node_counts)
    out = io.StringIO()

    def w(*lines: str) -> None:
        for line in lines:
            print(line, file=out)

    w("# HVAC reproduction — generated evaluation report", "")
    w(f"DES node sweep: {nodes}; ranks/node: {scale.procs_per_node}; "
      f"{scale.files_per_rank} files/rank sampled.", "")

    # -- Figs 3-4 ---------------------------------------------------------
    w("## Figs 3-4: MDTest", "")
    if include_des:
        w(mdtest_scaling(SMALL_FILE, nodes, ranks_per_node=scale.procs_per_node,
                         files_per_rank=scale.files_per_rank, spec=spec).render(), "")
    w(mdtest_scaling_analytic(SMALL_FILE, _FULL_SWEEP, spec=spec).render()
      + "   [analytic]", "")
    w(mdtest_scaling_analytic(LARGE_FILE, _FULL_SWEEP, spec=spec).render()
      + "   [analytic]", "")

    # -- Fig 8 / 9 -----------------------------------------------------------
    w("## Figs 8-9: node scaling (ResNet50 / ImageNet21K)", "")
    if include_des:
        fig8 = node_scaling(RESNET50, IMAGENET21K, nodes, scale, spec=spec,
                            total_epochs=10)
        w(fig8.render(), "")
        w(format_series("nodes", fig8.node_counts, normalized_to_gpfs(fig8),
                        title="Fig 9a [DES]: % improvement over GPFS"), "")
        w(format_series("nodes", fig8.node_counts, overhead_vs_xfs(fig8),
                        title="Fig 9b [DES]: % overhead vs XFS"), "")
    full = node_scaling_analytic(RESNET50, IMAGENET21K, _FULL_SWEEP, spec=spec,
                                 total_epochs=10)
    w(full.render() + "   [analytic]", "")
    w(ascii_chart(full.node_counts, full.total_minutes,
                  title="Fig 8(a) shape [analytic]",
                  log_x=True, log_y=True, x_label="nodes", y_label="min"), "")
    w(format_series("nodes", full.node_counts, normalized_to_gpfs(full),
                    title="Fig 9a [analytic]: % improvement over GPFS"), "")

    # -- Figs 10-13 -------------------------------------------------------------
    if include_des:
        mid = nodes[len(nodes) // 2]
        w("## Fig 10: epoch scaling", "")
        w(epoch_scaling(RESNET50, IMAGENET21K, [2, 8, 32, 80], scale,
                        n_nodes=mid, spec=spec,
                        systems=("gpfs", "hvac1", "hvac4", "xfs")).render(), "")
        w("## Fig 11: per-epoch anatomy", "")
        w(per_epoch_analysis(RESNET50, IMAGENET21K, scale, n_nodes=mid,
                             batch_size=4, epochs=3, spec=spec).render(), "")
        w("## Fig 12: batch size", "")
        w(batch_size_scaling(TRESNET_M, IMAGENET21K, [4, 32, 128], scale,
                             n_nodes=mid, total_epochs=20, spec=spec,
                             systems=("gpfs", "hvac1", "xfs")).render(), "")
        w("## Fig 13: local/remote split", "")
        w(cache_split(RESNET50, IMAGENET21K, scale, n_nodes=mid,
                      batch_size=16, spec=spec).render(), "")

    # -- §III-H telemetry ------------------------------------------------------
    if include_des:
        w("## §III-H: SLO degradation under a mid-epoch crash", "")
        w(slo_scenario(n_nodes=2, n_files=8, windows=6).render(), "")

    # -- Figs 14-15 --------------------------------------------------------------
    w("## Fig 14: accuracy", "")
    cmp = accuracy_comparison(n_epochs=8)
    w(cmp.render(), "")
    w(f"GPFS and HVAC trajectories identical: {cmp.identical_gpfs_hvac}", "")
    w("## Fig 15: load balance", "")
    w(load_balance([32, 128, 512], n_files=40_000, spec=spec).render(), "")

    return out.getvalue()
