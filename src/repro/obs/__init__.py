"""Telemetry subsystem: sim-clock spans, metric scopes, SLO rollups.

Three layers, all layered on the deterministic sim clock:

* :mod:`.spans` — a zero-wall-clock span tracer.  One ``list.append``
  per event on the hot path, no kernel interaction, so enabling spans
  never changes the event-stream fingerprint of a run.
* metric scopes — hierarchical, histogram-capable views over
  :class:`repro.simcore.MetricRegistry` (see ``simcore/monitor.py``);
  every instrumented component (client, server, cache, RPC, storage,
  NVMe, failure detector) records under its own dotted scope.
* :mod:`.slo` — rolls spans + metrics into per-client / per-server SLO
  windows: p50/p95/p99 read latency, degraded-read fraction, and
  bytes-by-path (NVMe-local / remote-RPC / PFS-fallback).

The ``repro slo`` CLI subcommand and ``analysis/dashboard.py`` render
these into the degradation dashboard.
"""

from .slo import EntitySLO, ROUTES, SLOReport, SLOWindow, bucket_times, compute_slo
from .spans import Span, SpanRecorder

__all__ = [
    "EntitySLO",
    "ROUTES",
    "SLOReport",
    "SLOWindow",
    "Span",
    "SpanRecorder",
    "bucket_times",
    "compute_slo",
]
