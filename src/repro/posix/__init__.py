"""Virtual POSIX layer, LD_PRELOAD-style interposition, I/O tracing."""

from .interpose import Interposition, interpose_view, unload
from .replay import ReplayResult, replay_trace
from .tracing import TraceLog, TraceRecord, TracingBackend
from .vfs import MountTable, Namespace, PosixError, ProcessView

__all__ = [
    "Interposition",
    "interpose_view",
    "MountTable",
    "Namespace",
    "PosixError",
    "ProcessView",
    "replay_trace",
    "ReplayResult",
    "TraceLog",
    "TraceRecord",
    "TracingBackend",
    "unload",
]
