"""Integration tests for HVAC client/server/deployment over the full stack."""

import pytest

from repro.cluster import Allocation, TESTING
from repro.core import HVACDeployment
from repro.simcore import Environment
from repro.storage import GPFS


def build(n_nodes=4, instances=1, spec=None, seed=0, **hvac_overrides):
    env = Environment()
    spec = (spec or TESTING).with_hvac(
        instances_per_node=instances, **hvac_overrides
    )
    alloc = Allocation(env, spec, n_nodes=n_nodes)
    pfs = GPFS(
        env,
        spec.pfs,
        n_client_nodes=n_nodes,
        client_link_bandwidth=spec.network.nic_bandwidth,
    )
    dep = HVACDeployment(alloc, pfs, seed=seed)
    return env, dep, pfs


def read_all(env, dep, files, node_ids):
    """Run one 'epoch': every listed node reads every file; returns per-node times."""
    times = {}

    def reader(node_id):
        cli = dep.client(node_id)
        t0 = env.now
        for path, size in files:
            yield from cli.read_file(path, size, node_id)
        times[node_id] = env.now - t0

    procs = [env.process(reader(n)) for n in node_ids]

    def waiter():
        for p in procs:
            yield p

    env.run(env.process(waiter()))
    return times


FILES = [(f"/data/f{i}", 40_000) for i in range(30)]


class TestBasicOperation:
    def test_first_epoch_populates_cache(self):
        env, dep, pfs = build()
        read_all(env, dep, FILES, [0])
        assert dep.total_cached_files == len(FILES)
        assert dep.total_cached_bytes == sum(s for _, s in FILES)

    def test_second_epoch_serves_from_cache(self):
        env, dep, pfs = build()
        read_all(env, dep, FILES, [0])
        opens_before = pfs.metrics.counter("gpfs.opens").value
        read_all(env, dep, FILES, [0])
        # No new PFS traffic in the cached epoch.
        assert pfs.metrics.counter("gpfs.opens").value == opens_before
        assert dep.metrics.counter("hvac.cache_hits").value == len(FILES)

    def test_cached_epoch_is_faster(self):
        env, dep, _ = build()
        t1 = read_all(env, dep, FILES, [0])[0]
        t2 = read_all(env, dep, FILES, [0])[0]
        assert t2 < t1 / 2

    def test_each_file_fetched_from_pfs_once(self):
        """The shared-queue mutex prevents repeated copies (paper §III-D)."""
        env, dep, pfs = build(n_nodes=4)
        read_all(env, dep, FILES, [0, 1, 2, 3])
        assert pfs.metrics.counter("gpfs.opens").value == len(FILES)
        assert dep.metrics.counter("hvac.dedup_waits").value > 0

    def test_files_distributed_across_servers(self):
        env, dep, _ = build(n_nodes=4)
        read_all(env, dep, FILES, [0])
        per_server = [s.cache.n_files for s in dep.servers]
        assert sum(per_server) == len(FILES)
        assert sum(1 for c in per_server if c > 0) >= 3  # spread out

    def test_multiple_instances_per_node(self):
        env, dep, _ = build(n_nodes=2, instances=4)
        assert dep.n_servers == 8
        assert len(dep.servers_on_node(1)) == 4
        read_all(env, dep, FILES, [0, 1])
        assert dep.total_cached_files == len(FILES)

    def test_client_is_cached_per_node(self):
        env, dep, _ = build()
        assert dep.client(0) is dep.client(0)
        assert dep.client(0) is not dep.client(1)


class TestInstancesReduceOverhead:
    def test_more_instances_faster_cached_epoch(self):
        """Fig 9b mechanism: instances divide the serial mover overhead."""
        many_files = [(f"/d/f{i}", 20_000) for i in range(60)]
        times = {}
        for inst in (1, 4):
            env, dep, _ = build(n_nodes=2, instances=inst)
            read_all(env, dep, many_files, [0, 1])  # warm
            t = read_all(env, dep, many_files, [0, 1])
            times[inst] = max(t.values())
        assert times[4] < times[1]


class TestEvictionUnderPressure:
    def test_dataset_larger_than_cache_still_served(self):
        # TESTING NVMe = 10 MB/node; 0.9 fraction → 9 MB budget.
        big_files = [(f"/d/g{i}", 1_000_000) for i in range(25)]  # 25 MB
        env, dep, pfs = build(n_nodes=2)
        read_all(env, dep, big_files, [0])
        assert dep.total_cached_bytes <= 2 * 9_000_000
        evictions = sum(
            c.value
            for name, c in dep.metrics.counters.items()
            if name.endswith("evictions")
        )
        assert evictions > 0
        # Re-reading works (partial hits, misses re-fetch).
        read_all(env, dep, big_files, [0])

    def test_minio_policy_stable_under_pressure(self):
        big_files = [(f"/d/g{i}", 1_000_000) for i in range(25)]
        env, dep, _ = build(n_nodes=2, eviction_policy="minio")
        read_all(env, dep, big_files, [0])
        cached_first = {
            p for p, _ in big_files
            if any(s.cache.contains(p) for s in dep.servers)
        }
        read_all(env, dep, big_files, [0])
        cached_second = {
            p for p, _ in big_files
            if any(s.cache.contains(p) for s in dep.servers)
        }
        assert cached_first == cached_second


class TestFailover:
    def test_node_failure_falls_back_to_pfs_without_replication(self):
        env, dep, pfs = build(n_nodes=2)
        read_all(env, dep, FILES, [0])
        dep.fail_node(1)
        # Everything still readable — degraded, not dead (§III-H goal).
        read_all(env, dep, FILES, [0])
        assert dep.metrics.counter("hvac.client_pfs_fallback").value > 0

    def test_replication_serves_through_failure(self):
        env, dep, pfs = build(n_nodes=4, replication_factor=2)
        read_all(env, dep, FILES, [0, 1, 2, 3])
        before = dep.metrics.counter("hvac.client_pfs_fallback").value
        dep.fail_node(2)
        read_all(env, dep, FILES, [0])
        # Failover to replicas — never forced to the PFS-direct path.
        assert dep.metrics.counter("hvac.client_pfs_fallback").value == before

    def test_recovery_restores_service(self):
        env, dep, _ = build(n_nodes=2)
        read_all(env, dep, FILES, [0])
        dep.fail_node(0)
        dep.recover_node(0)
        for s in dep.servers_on_node(0):
            assert s.alive
            assert s.cache.n_files == 0  # cold restart
        read_all(env, dep, FILES, [0])

    def test_failover_disabled_goes_to_pfs(self):
        env, dep, _ = build(n_nodes=4, replication_factor=2, failover_enabled=False)
        read_all(env, dep, FILES, [0])
        dep.fail_node(dep.placement.home(FILES[0][0]) // 1)
        # With failover off, a dead primary means PFS fallback even
        # though a replica exists.
        read_all(env, dep, [FILES[0]], [0])
        # (counted only if that file's primary was on the failed node)


class TestTeardown:
    def test_teardown_purges_everything(self):
        env, dep, _ = build(n_nodes=2)
        read_all(env, dep, FILES, [0])
        assert dep.total_cached_bytes > 0
        dep.teardown()
        assert dep.total_cached_bytes == 0
        for node in dep.allocation:
            assert node.nvme.used_bytes == 0

    def test_placement_size_mismatch_rejected(self):
        from repro.core import ModuloPlacement

        env = Environment()
        alloc = Allocation(env, TESTING, n_nodes=2)
        pfs = GPFS(env, TESTING.pfs, 2, 1e9)
        with pytest.raises(ValueError):
            HVACDeployment(alloc, pfs, placement=ModuloPlacement(99))


class TestLocalitySplit:
    def test_local_split_places_locally(self):
        env = Environment()
        alloc = Allocation(env, TESTING, n_nodes=4)
        pfs = GPFS(env, TESTING.pfs, 4, 1e9)
        dep = HVACDeployment.with_locality_split(alloc, pfs, local_fraction=1.0)
        read_all(env, dep, FILES, [2])
        # With 100% locality every file ends up on node 2's servers.
        for s in dep.servers:
            if s.node_id != 2:
                assert s.cache.n_files == 0

    def test_hit_rate_accounting(self):
        env, dep, _ = build()
        read_all(env, dep, FILES, [0])
        assert dep.hit_rate() == 0.0
        read_all(env, dep, FILES, [0])
        assert dep.hit_rate() == pytest.approx(0.5)


class TestGranularAPI:
    def test_open_read_close_sequence(self):
        env, dep, _ = build()
        cli = dep.client(0)
        got = []

        def proc():
            h = yield from cli.open("/data/x", 5000, 0)
            n = yield from cli.read(h, 5000)
            yield from cli.close(h)
            got.append((n, h.closed))

        env.run(env.process(proc()))
        assert got == [(5000, True)]

    def test_read_after_close_raises(self):
        env, dep, _ = build()
        cli = dep.client(0)

        def proc():
            h = yield from cli.open("/data/x", 100, 0)
            yield from cli.close(h)
            yield from cli.read(h, 100)

        with pytest.raises(ValueError):
            env.run(env.process(proc()))

    def test_partial_reads_accumulate(self):
        env, dep, _ = build()
        cli = dep.client(0)
        got = []

        def proc():
            h = yield from cli.open("/data/x", 100, 0)
            n1 = yield from cli.read(h, 60)
            n2 = yield from cli.read(h, 60)
            got.append((n1, n2, h.offset))
            yield from cli.close(h)

        env.run(env.process(proc()))
        assert got == [(60, 40, 100)]
