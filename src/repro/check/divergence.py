"""Runtime determinism check: double-run fingerprints + divergence bisection.

``repro check`` runs an experiment twice with the same seed, each run
feeding an :class:`~repro.simcore.EventTrace` attached to its
environment.  Matching fingerprints prove the event streams — every
``(time, priority, seq, process)`` the kernel fired — were identical.

On a mismatch we *bisect*: the first pass already snapshotted the
rolling hash every ``block`` events, so comparing checkpoint lists
narrows the divergence to one block without storing the stream; a
second pair of runs retains only that block's records and a pairwise
scan pins the **first divergent event**, which is almost always within
a few events of the offending code (a stray RNG, a set iteration, an
un-yielded timeout reordering the queue).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..simcore import EventRecord, EventTrace

__all__ = ["DivergenceReport", "find_first_divergence", "fingerprint_run"]

#: a runnable experiment: build an env, attach the trace, run to completion
RunFn = Callable[[EventTrace], None]


@dataclass
class DivergenceReport:
    """Where two same-seed runs first disagreed."""

    index: int  #: stream position of the first divergent event
    first: Optional[EventRecord]  #: run A's event at that position
    second: Optional[EventRecord]  #: run B's event at that position
    fingerprint_a: str
    fingerprint_b: str
    count_a: int
    count_b: int

    def describe(self) -> str:
        lines = [
            "event streams diverged:",
            f"  run A: {self.count_a} events, fingerprint {self.fingerprint_a}",
            f"  run B: {self.count_b} events, fingerprint {self.fingerprint_b}",
            f"  first divergent event at stream index {self.index}:",
            f"    run A: {self.first.describe() if self.first else '<stream ended>'}",
            f"    run B: {self.second.describe() if self.second else '<stream ended>'}",
        ]
        return "\n".join(lines)


def fingerprint_run(run: RunFn, checkpoint_every: int = 0) -> EventTrace:
    """Execute ``run`` once under a fresh trace and return it."""
    trace = EventTrace(checkpoint_every=checkpoint_every)
    run(trace)
    return trace


def _divergent_block(
    a: EventTrace, b: EventTrace, block: int
) -> tuple[int, int]:
    """Half-open record range bracketing the first divergence."""
    for i, (ca, cb) in enumerate(zip(a.checkpoints, b.checkpoints)):
        if ca != cb:
            return i * block, (i + 1) * block
    # All shared checkpoints agree: the divergence is in the tail
    # (or one stream simply ended early).
    shared = min(len(a.checkpoints), len(b.checkpoints))
    return shared * block, max(a.count, b.count)


def find_first_divergence(
    run: RunFn,
    block: int = 2048,
    traces: Optional[tuple[EventTrace, EventTrace]] = None,
) -> Optional[DivergenceReport]:
    """Run twice; return ``None`` if deterministic, else the bisected
    first divergent event.

    Costs two fingerprint-only runs (skipped when ``traces`` carries a
    precomputed checkpointed pair), plus two record-retaining runs of
    the same experiment only when a divergence exists.
    """
    if block < 1:
        raise ValueError("block must be >= 1")
    if traces is not None:
        a, b = traces
    else:
        a = fingerprint_run(run, checkpoint_every=block)
        b = fingerprint_run(run, checkpoint_every=block)
    if a.fingerprint == b.fingerprint and a.count == b.count:
        return None

    lo, hi = _divergent_block(a, b, block)
    ra = EventTrace(keep_window=(lo, hi))
    run(ra)
    rb = EventTrace(keep_window=(lo, hi))
    run(rb)

    index, first, second = hi, None, None
    for offset in range(hi - lo):
        rec_a = ra.records[offset] if offset < len(ra.records) else None
        rec_b = rb.records[offset] if offset < len(rb.records) else None
        if rec_a is None and rec_b is None:
            break
        if rec_a is None or rec_b is None or rec_a[1:] != rec_b[1:]:
            index, first, second = lo + offset, rec_a, rec_b
            break
    return DivergenceReport(
        index=index,
        first=first,
        second=second,
        fingerprint_a=a.fingerprint,
        fingerprint_b=b.fingerprint,
        count_a=a.count,
        count_b=b.count,
    )
