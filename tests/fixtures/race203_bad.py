"""RACE203 fixture: a write to a celled attribute outside note scope.

``put`` notes the declared cell before mutating, but ``wipe`` clears
the same declared attribute with no ``note_access`` in scope — the
exact bypass that lets two same-timestamp events cross unseen.
"""

RACE_CELLS = (
    ("store.items", ("_items",), "shared key/value table"),
)


class Store:
    def __init__(self, env):
        self.env = env
        self._items = {}

    def put(self, key, value):
        self.env.note_access("store.items", "w")
        self._items[key] = value

    def wipe(self):
        self._items.clear()
