"""SIM014 fixture: unordered-container taint through the yield path.

``live()`` drains a set with ``yield from``; ``relay()`` delegates to
it with another ``yield from``, so ``drain()``'s loop replays in hash
order even though no set expression appears anywhere near the loop —
only the yield-path taint pass (SIM014) can follow the container down
two delegation hops to the iteration site.
"""


def live():
    yield from {"a", "b", "c"}


def relay():
    yield from live()


def drain(out):
    for name in relay():
        out.append(name)
