"""Sim-time race sanitizer (``repro check --races``).

The kernel orders same-timestamp events by ``(priority, seq)`` where
``seq`` is the global heap-insertion sequence.  That makes every run
bit-for-bit replayable — but when two events at the *same* ``(time,
priority)`` touch the same shared state with at least one write, the
outcome depends on nothing but insertion order: an innocuous code
change (spawning processes from a different loop, reordering setup)
silently reorders them and every downstream number moves.  No static
rule can see this; the sanitizer catches it at runtime.

Model
-----
Instrumented components declare accesses to named *shared-state cells*
via :meth:`Environment.note_access` (a no-op unless a sanitizer is
attached): server cache maps, per-server in-flight dedup slots,
per-member membership-view lattice slots, and rate-limiter tokens.
The sanitizer groups accesses by the event executing them and, when sim
time advances, reports every same-``(time, priority)`` event pair with
a write/write or read/write overlap on one cell — with both access
stacks — unless:

* one event (transitively) *scheduled* the other at the same timestamp,
  or both descend from one same-timestamp ancestor: their relative
  order is program-defined (the parent's code emitted them in textual
  order), not insertion-accidental;
* both accesses are pure writes of the same *tag* (e.g. two gossip
  digests adopting the identical ``(incarnation, state)`` for a member)
  — idempotent, so order cannot matter.

Aggregate monitor counters are deliberately **not** cells: increments
commute, so same-timestamp ordering cannot change them.

The sanitizer creates no events, draws no RNG, and never perturbs the
clock, so enabling it leaves the event-stream fingerprint unchanged
(asserted in tests/test_races.py).
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass

__all__ = ["RaceReport", "RaceSanitizer", "membership_smoke"]

#: frames whose basenames are plumbing, not interesting access sites
_PLUMBING = ("races.py", "engine.py")


@dataclass(frozen=True)
class RaceReport:
    """One same-timestamp conflicting pair on one shared-state cell."""

    time: float
    priority: int
    cell: str
    a_seq: int
    a_label: str
    a_modes: str  #: "r", "w", or "rw"
    a_sites: tuple[str, ...]
    b_seq: int
    b_label: str
    b_modes: str
    b_sites: tuple[str, ...]

    @property
    def kind(self) -> str:
        return f"{'w' if 'w' in self.a_modes else 'r'}/{'w' if 'w' in self.b_modes else 'r'}"

    def describe(self) -> str:
        lines = [
            f"same-timestamp race @ t={self.time!r} (priority "
            f"{self.priority}) on cell '{self.cell}' [{self.kind}]",
            f"  event A: seq={self.a_seq} {self.a_label} "
            f"[{self.a_modes}]",
        ]
        lines.extend(f"    at {s}" for s in self.a_sites)
        lines.append(
            f"  event B: seq={self.b_seq} {self.b_label} [{self.b_modes}]"
        )
        lines.extend(f"    at {s}" for s in self.b_sites)
        lines.append(
            "  relative order is decided only by heap insertion sequence "
            f"(seq {self.a_seq} < {self.b_seq})"
        )
        return "\n".join(lines)


class _EventAccesses:
    """Access set of one executing event: cell -> [modes, tags, sites]."""

    __slots__ = ("seq", "label", "cells")

    def __init__(self, seq: int, label: str):
        self.seq = seq
        self.label = label
        # cell -> [modes:set[str], tags:set, sites:dict[mode, stack]]
        self.cells: dict[str, list] = {}


class RaceSanitizer:
    """Attach with ``env.attach_sanitizer(...)``; read :attr:`reports`.

    Call :meth:`finish` after the run (the last timestamp's group is
    only analyzable once no more events can join it).
    """

    def __init__(self, max_reports: int = 100, stack_depth: int = 4):
        self.max_reports = max_reports
        self.stack_depth = stack_depth
        self.reports: list[RaceReport] = []
        self._time: float | None = None
        self._cur: _EventAccesses | None = None
        self._cur_priority = 0
        #: priority -> finished events with non-empty access sets
        self._groups: dict[int, list[_EventAccesses]] = {}
        #: child seq -> parent seq, for events scheduled at delay 0
        #: (same-timestamp causality; cleared when time advances)
        self._parents: dict[int, int] = {}
        #: report dedup across repeats of the same structural conflict
        self._seen: set[tuple] = set()

    # -- engine hooks -------------------------------------------------------
    def begin_event(self, time: float, priority: int, seq: int, label: str) -> None:
        if self._time is not None and time != self._time:
            self._flush()
        self._time = time
        self._cur = _EventAccesses(seq, label)
        self._cur_priority = priority

    def end_event(self) -> None:
        cur = self._cur
        if cur is not None and cur.cells:
            self._groups.setdefault(self._cur_priority, []).append(cur)
        self._cur = None

    def note_schedule(self, child_seq: int, delay: float) -> None:
        if self._cur is not None and delay == 0.0:
            self._parents[child_seq] = self._cur.seq

    def note(self, cell: str, mode: str, tag=None) -> None:
        cur = self._cur
        if cur is None:
            return  # driver code outside the event loop: program-ordered
        rec = cur.cells.get(cell)
        if rec is None:
            rec = cur.cells[cell] = [set(), set(), {}]
        rec[0].add(mode)
        rec[1].add(tag)
        if mode not in rec[2]:
            rec[2][mode] = self._capture_sites()

    def finish(self) -> None:
        """Analyze the final timestamp's group."""
        self.end_event()
        self._flush()

    # -- analysis -----------------------------------------------------------
    def _capture_sites(self) -> tuple[str, ...]:
        sites: list[str] = []
        frame = sys._getframe(2)
        while frame is not None and len(sites) < self.stack_depth:
            base = os.path.basename(frame.f_code.co_filename)
            if base not in _PLUMBING:
                sites.append(f"{base}:{frame.f_lineno} in {frame.f_code.co_name}")
            frame = frame.f_back
        return tuple(sites)

    def _root(self, seq: int) -> int:
        while seq in self._parents:
            seq = self._parents[seq]
        return seq

    @staticmethod
    def _conflict(a: list, b: list) -> bool:
        """Do two per-event access records on one cell conflict?"""
        a_w, b_w = "w" in a[0], "w" in b[0]
        if not (a_w or b_w):
            return False  # read/read
        if (
            a[0] == {"w"}
            and b[0] == {"w"}
            and None not in a[1]
            and None not in b[1]
            and a[1] == b[1]
        ):
            return False  # idempotent: same-tag pure writes commute
        return True

    def _flush(self) -> None:
        groups, self._groups = self._groups, {}
        parents_used = self._parents
        self._parents = {}
        if self._time is None:
            return
        for priority in sorted(groups):
            events = groups[priority]
            if len(events) < 2:
                continue
            # cell -> [(event, record)]
            by_cell: dict[str, list] = {}
            for ev in events:
                for cell, rec in ev.cells.items():
                    by_cell.setdefault(cell, []).append((ev, rec))
            self._parents = parents_used  # _root needs this timestamp's forest
            for cell in sorted(by_cell):
                users = by_cell[cell]
                if len(users) < 2:
                    continue
                for i in range(len(users) - 1):
                    for j in range(i + 1, len(users)):
                        (ea, ra), (eb, rb) = users[i], users[j]
                        if not self._conflict(ra, rb):
                            continue
                        if self._root(ea.seq) == self._root(eb.seq):
                            continue  # causally/program ordered
                        self._report(priority, cell, ea, ra, eb, rb)
            self._parents = {}

    def _report(self, priority, cell, ea, ra, eb, rb) -> None:
        a_sites = tuple(s for _m, s in sorted(ra[2].items()))[:1]
        b_sites = tuple(s for _m, s in sorted(rb[2].items()))[:1]
        key = (cell, ea.label, eb.label, a_sites, b_sites)
        if key in self._seen or len(self.reports) >= self.max_reports:
            return
        self._seen.add(key)
        self.reports.append(
            RaceReport(
                time=self._time,
                priority=priority,
                cell=cell,
                a_seq=ea.seq,
                a_label=ea.label,
                a_modes="".join(sorted(ra[0])),
                a_sites=a_sites[0] if a_sites else (),
                b_seq=eb.seq,
                b_label=eb.label,
                b_modes="".join(sorted(rb[0])),
                b_sites=b_sites[0] if b_sites else (),
            )
        )


# ---------------------------------------------------------------------------
#: spec overrides for the smoke scenario: the full membership stack with
#: fast gossip/escalation relative to the ms-scale epochs, two-way
#: replication, and a throttled repair stream (so the limiter token —
#: the likeliest same-timestamp cell — is actually exercised)
SMOKE_SPEC_OVERRIDES = dict(
    rpc_timeout=0.05,
    rpc_max_retries=4,
    rpc_backoff_base=1e-4,
    rpc_backoff_cap=2e-3,
    suspect_after=2,
    replication_factor=2,
    gossip_interval=0.005,
    suspect_to_dead=0.03,
    probation_period=0.02,
    membership_enabled=True,
    remap_enabled=True,
    repair_enabled=True,
    repair_bandwidth=50e6,
)


def membership_smoke(
    seed: int = 0,
    n_nodes: int = 4,
    n_files: int = 12,
    sanitizer: RaceSanitizer | None = None,
    trace=None,
):
    """The crash-burst → outage → recover → repair scenario behind
    ``repro check --races`` (and the sanitizer-clean gate in tests).

    Returns the :class:`~repro.simcore.Environment` after teardown.
    """
    from ..cluster import Allocation, TESTING
    from ..core import HVACDeployment
    from ..faults import FaultSchedule, crash
    from ..simcore import AllOf, Environment, RandomStreams
    from ..storage import GPFS

    spec = TESTING.with_hvac(**SMOKE_SPEC_OVERRIDES)
    env = Environment()
    if trace is not None:
        env.attach_trace(trace)
    if sanitizer is not None:
        env.attach_sanitizer(sanitizer)
    alloc = Allocation(
        env, spec, n_nodes=n_nodes, rand=RandomStreams(seed).child("cluster")
    )
    pfs = GPFS(env, spec.pfs, n_nodes, spec.network.nic_bandwidth)
    dep = HVACDeployment(alloc, pfs, seed=seed)
    files = [(f"/pfs/ds/f{i:04d}", 20_000) for i in range(n_files)]
    if dep.repair is not None:
        dep.repair.attach_manifest(files)

    def epoch():
        def reader(node):
            cli = dep.client(node)
            for path, size in files:
                yield from cli.read_file(path, size, node)

        procs = [
            env.process(reader(n), name=f"epoch.n{n}") for n in range(n_nodes)
        ]

        def wait():
            yield AllOf(env, procs)

        env.run(env.process(wait(), name="epoch"))

    epoch()  # cold
    epoch()  # warm
    victims = [0, 1]  # adjacent pair: some files lose every replica
    dep.inject(FaultSchedule([crash(0.0, v) for v in victims]))
    epoch()  # outage
    for v in victims:
        dep.recover_node(v)  # same-instant burst recovery
    env.run(until=env.now + 2 * spec.hvac.probation_period)
    deadline = env.now + 5.0
    while (
        dep.repair is not None
        and dep.repair.in_flight > 0
        and env.now < deadline
    ):
        env.run(until=env.now + 1e-3)
    epoch()  # recovered
    dep.teardown()
    if sanitizer is not None:
        sanitizer.finish()
    return env
