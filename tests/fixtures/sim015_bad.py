"""SIM015 fixture: a set laundered through a list element.

``groups`` is an ordered list, so every name-based set pass (SIM004,
and the cross-method/return/yield extensions) sees nothing wrong —
but each *element* is a set, and the inner loop iterates it in hash
order at a sim-scope site.
"""

groups = []


def enroll(a, b):
    groups.append({a, b})


def flush(env):
    for g in groups:
        for waiter in g:
            env.process(waiter)
