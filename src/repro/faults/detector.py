"""Client-side failure detection: timeouts in, suspicion out.

A :class:`FailureDetector` is the only liveness authority an HVAC client
has.  It never inspects server state; it counts *observed* outcomes of
its own RPCs:

* ``suspect_after`` consecutive failures/timeouts against one server
  blacklist it for a probation period;
* repeated offenders get exponentially longer probation (capped), so a
  flapping server converges to "mostly blacklisted" instead of eating a
  timeout per flap;
* once probation expires the server becomes usable again — the next
  request doubles as the re-probe (half-open, circuit-breaker style).
  Success resets everything; failure re-arms a longer probation.

Hoard's failure-tolerant cache tier and FanStore's interception layer
use the same shape: deadline, strike count, quarantine, re-probe.
"""

from __future__ import annotations

from ..simcore import Environment

__all__ = ["FailureDetector"]


class FailureDetector:
    """Per-client suspicion state over ``n_servers`` cache servers."""

    def __init__(
        self,
        env: Environment,
        n_servers: int,
        suspect_after: int = 2,
        probation: float = 2.0,
        probation_growth: float = 2.0,
        probation_cap_factor: float = 8.0,
        metrics=None,
    ):
        if n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        if suspect_after < 1:
            raise ValueError("suspect_after must be >= 1")
        if probation < 0 or probation_growth < 1 or probation_cap_factor < 1:
            raise ValueError("invalid probation parameters")
        self.env = env
        self.n_servers = n_servers
        self.suspect_after = suspect_after
        self.probation = probation
        self.probation_growth = probation_growth
        self.probation_cap = probation * probation_cap_factor
        self._strikes = [0] * n_servers
        self._until = [0.0] * n_servers  # blacklisted while now < until
        self._since = [0.0] * n_servers  # when the current blacklist began
        #: lifetime counters, for metrics/introspection
        self.n_suspicions = 0
        self.n_reprobes = 0
        #: ``(time, server_id)`` of every suspicion onset — detection
        #: latency comes from here in detector-only experiments
        self.suspicion_log: list[tuple[float, int]] = []
        #: ``(time, kind, server_id)`` for every detector state change:
        #: ``suspect`` (onset), ``probation_expired`` (server usable
        #: again; logged on the first ``usable()`` query past the term),
        #: ``reprobe_ok`` / ``reprobe_fail`` (half-open probe outcomes).
        #: These land on the SLO window grid next to the membership
        #: transitions, and the fuzzer's SLO invariant reads them.
        self.transitions: list[tuple[float, str, int]] = []
        #: has this probation episode's expiry been logged yet?
        self._expiry_logged = [True] * n_servers
        #: optional membership hook: ``listener.on_suspect(sid)`` fires
        #: on every suspicion (onset *and* repeat offences), which is how
        #: first-hand timeout evidence enters a MembershipView
        self.listener = None
        #: optional :class:`~repro.simcore.MetricScope` (e.g.
        #: ``hvac.c3.detector``): strikes/suspicions/reprobes counters
        #: plus a blacklist-dwell tally
        self.metrics = metrics

    # -- observations ---------------------------------------------------
    def record_success(self, server_id: int) -> None:
        """An RPC to ``server_id`` completed: full pardon."""
        if self._until[server_id] > 0.0 and self._strikes[server_id] >= self.suspect_after:
            self.n_reprobes += 1
            self._note_expiry(server_id)
            self.transitions.append((self.env.now, "reprobe_ok", server_id))
            if self.metrics is not None:
                self.metrics.counter("reprobes").incr()
                self.metrics.tally("blacklist_dwell_seconds").add(
                    self.env.now - self._since[server_id]
                )
        self._strikes[server_id] = 0
        self._until[server_id] = 0.0
        self._expiry_logged[server_id] = True

    def record_failure(self, server_id: int) -> None:
        """An RPC to ``server_id`` timed out or errored."""
        self._strikes[server_id] += 1
        if self.metrics is not None:
            self.metrics.counter("strikes").incr()
        over = self._strikes[server_id] - self.suspect_after
        if over < 0:
            return
        if over == 0:
            self.n_suspicions += 1
            self._since[server_id] = self.env.now
            self.suspicion_log.append((self.env.now, server_id))
            self.transitions.append((self.env.now, "suspect", server_id))
            if self.metrics is not None:
                self.metrics.counter("suspicions").incr()
        elif self.env.now >= self._until[server_id]:
            # a strike past the bar normally lands only after probation
            # let a request through: a failed half-open re-probe.  (A
            # strike during an *active* term — the caller bypassing
            # ``usable()`` — is neither an expiry nor a probe outcome.)
            self._note_expiry(server_id)
            self.transitions.append((self.env.now, "reprobe_fail", server_id))
        self._expiry_logged[server_id] = False
        term = min(
            self.probation * self.probation_growth**over, self.probation_cap
        )
        self._until[server_id] = self.env.now + term
        if self.listener is not None:
            self.listener.on_suspect(server_id)

    def _note_expiry(self, server_id: int) -> None:
        """Log the probation-expiry transition once per episode, stamped
        at the term's end (not at the observing query's time).  A pardon
        arriving mid-term clamps the stamp to *now* — the episode ended
        early, and the log must stay time-ordered."""
        if not self._expiry_logged[server_id]:
            self._expiry_logged[server_id] = True
            self.transitions.append(
                (min(self._until[server_id], self.env.now),
                 "probation_expired", server_id)
            )

    # -- queries ----------------------------------------------------------
    def usable(self, server_id: int) -> bool:
        """May the client send ``server_id`` a request right now?

        True while the server is unsuspected, and again once its
        probation has expired (that request is the re-probe).
        """
        if self._strikes[server_id] < self.suspect_after:
            return True
        if self.env.now >= self._until[server_id]:
            self._note_expiry(server_id)
            return True
        return False

    def strikes(self, server_id: int) -> int:
        return self._strikes[server_id]

    def suspects(self) -> list[int]:
        """Servers currently blacklisted (probation still running)."""
        return [
            sid
            for sid in range(self.n_servers)
            if self._strikes[sid] >= self.suspect_after
            and self.env.now < self._until[sid]
        ]

    def __repr__(self) -> str:
        return (
            f"<FailureDetector suspects={self.suspects()} "
            f"suspicions={self.n_suspicions}>"
        )
