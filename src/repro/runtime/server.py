"""Real-file HVAC server: a thread with a FIFO queue and a cache directory.

This is the *runtime* (non-simulated) mode: an executable, single-machine
analog of the HVAC server process.  Each server owns

* a **request queue** drained by a dedicated data-mover thread (the
  paper's architecture, §III-C);
* a **cache directory** standing in for the node-local NVMe;
* an **in-flight table** so concurrent first reads of one file trigger
  one PFS copy (the shared-queue mutex of §III-D);
* LRU **eviction** under a byte budget (the prototype uses random; LRU
  is the safer default for a real deployment and both are available).

The "PFS" is any slow directory; an optional artificial per-read delay
makes cache effects visible in demos on fast local disks.
"""

from __future__ import annotations

import os
import shutil
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from queue import Queue

from ..simcore.rand import RandomStreams

__all__ = ["RuntimeServer", "ServerStats"]

# Bind the true builtin at import time: the interposer monkeypatches
# ``builtins.open``, and the server's own PFS/cache I/O must not recurse
# through the shim (a real LD_PRELOAD library dodges the same trap by
# calling dlsym(RTLD_NEXT, "open")).
_real_open = open


@dataclass
class ServerStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_served: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Shutdown:
    pass


_SHUTDOWN = _Shutdown()


class RuntimeServer:
    """One HVAC server instance over real directories."""

    def __init__(
        self,
        server_id: int,
        pfs_dir: str,
        cache_dir: str,
        capacity_bytes: int = 1 << 30,
        pfs_read_delay: float = 0.0,
        eviction: str = "lru",
    ):
        if eviction not in ("lru", "random"):
            raise ValueError(f"unknown eviction {eviction!r}")
        self.server_id = server_id
        self.pfs_dir = os.path.abspath(pfs_dir)
        self.cache_dir = os.path.abspath(cache_dir)
        self.capacity_bytes = capacity_bytes
        self.pfs_read_delay = pfs_read_delay
        self.eviction = eviction
        self.stats = ServerStats()
        os.makedirs(self.cache_dir, exist_ok=True)
        self._queue: Queue = Queue()
        self._lock = threading.Lock()
        # path -> size, in LRU order (front = coldest)
        self._cached: OrderedDict[str, int] = OrderedDict()
        self._used = 0
        # No separate in-flight table is needed here: the single mover
        # thread serializes this server's requests, so a duplicate
        # first-read simply becomes a hit when its turn comes.
        # Random eviction draws from a named RandomStreams child so the
        # victim sequence is reproducible across runs and interpreters.
        self._rng = RandomStreams(server_id).child("runtime-server").stream("evict")
        self._mover = threading.Thread(
            target=self._drain, name=f"hvac-mover-{server_id}", daemon=True
        )
        self._alive = True
        self._mover.start()

    # -- client-facing -----------------------------------------------------
    def submit(self, rel_path: str) -> Future:
        """Enqueue a read of ``rel_path`` (relative to the PFS dir)."""
        if not self._alive:
            raise RuntimeError(f"server {self.server_id} is shut down")
        fut: Future = Future()
        self._queue.put((rel_path, fut))
        return fut

    def shutdown(self, purge: bool = True) -> None:
        """Stop the mover; optionally purge the cache directory."""
        if self._alive:
            self._alive = False
            self._queue.put((_SHUTDOWN, None))
            self._mover.join(timeout=10)
        if purge:
            shutil.rmtree(self.cache_dir, ignore_errors=True)
            with self._lock:
                self._cached.clear()
                self._used = 0

    # -- introspection --------------------------------------------------------
    @property
    def cached_files(self) -> int:
        with self._lock:
            return len(self._cached)

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return self._used

    def contains(self, rel_path: str) -> bool:
        with self._lock:
            return rel_path in self._cached

    # -- the data-mover thread -----------------------------------------------
    def _drain(self) -> None:
        while True:
            item, fut = self._queue.get()
            if isinstance(item, _Shutdown):
                return
            try:
                data = self._serve(item)
                fut.set_result(data)
            except Exception as err:  # noqa: BLE001 — relay to the client
                fut.set_exception(err)

    def _cache_path(self, rel_path: str) -> str:
        return os.path.join(self.cache_dir, rel_path.replace(os.sep, "__"))

    def _serve(self, rel_path: str) -> bytes:
        cpath = self._cache_path(rel_path)
        with self._lock:
            hit = rel_path in self._cached
            if hit:
                self._cached.move_to_end(rel_path)
        if hit:
            self.stats.hits += 1
            with _real_open(cpath, "rb") as fh:
                data = fh.read()
            self.stats.bytes_served += len(data)
            return data

        self.stats.misses += 1
        src = os.path.join(self.pfs_dir, rel_path)
        if self.pfs_read_delay > 0:
            time.sleep(self.pfs_read_delay)
        with _real_open(src, "rb") as fh:  # the PFS read
            data = fh.read()
        self._insert(rel_path, cpath, data)
        self.stats.bytes_served += len(data)
        return data

    def _insert(self, rel_path: str, cpath: str, data: bytes) -> None:
        size = len(data)
        if size > self.capacity_bytes:
            return  # uncacheable; served as passthrough
        with self._lock:
            while self._used + size > self.capacity_bytes and self._cached:
                if self.eviction == "lru":
                    victim, vsize = self._cached.popitem(last=False)
                else:
                    resident = list(self._cached)
                    victim = resident[int(self._rng.integers(len(resident)))]
                    vsize = self._cached.pop(victim)
                self._used -= vsize
                self.stats.evictions += 1
                try:
                    os.unlink(self._cache_path(victim))
                except FileNotFoundError:
                    pass
            # fs::copy(src, dst): write into the node-local cache dir.
            with _real_open(cpath, "wb") as fh:
                fh.write(data)
            self._cached[rel_path] = size
            self._used += size
