"""Hot-path analyzer (``repro check --perf``), the sim-time profiler,
and the bench trajectory format."""

import os

import pytest

from repro.bench import (
    SCENARIOS,
    TRACED_SCENARIOS,
    BenchResult,
    compare_bench,
    load_bench,
    run_bench,
)
from repro.check import (
    PERF_RULES,
    default_lint_roots,
    perf_lint_files,
    perf_lint_source,
    perf_lint_tree,
    run_perf,
)
from repro.simcore import Environment, EventTrace, RandomStreams, SimProfiler

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


def fixture(name):
    return os.path.join(FIXTURES, name)


def codes(source, path="mod.py"):
    return [v.rule for v in perf_lint_source(source, path=path)]


# ---------------------------------------------------------------------------
# Per-rule fixtures: every PERF rule fires on its bad file and stays
# silent on the corresponding good one.
# ---------------------------------------------------------------------------


class TestRuleFixtures:
    @pytest.mark.parametrize("rule", sorted(PERF_RULES))
    def test_bad_fixture_fires(self, rule):
        path = fixture(f"{rule.lower()}_bad.py")
        result = perf_lint_tree([path])
        assert rule in [v.rule for v in result.violations]
        assert result.all_hot  # no kernel module in the set → plain lint

    @pytest.mark.parametrize("rule", sorted(PERF_RULES))
    def test_good_fixture_clean(self, rule):
        path = fixture(f"{rule.lower()}_good.py")
        result = perf_lint_tree([path])
        assert result.violations == []
        assert result.stale_waivers == []

    @pytest.mark.parametrize("rule", sorted(PERF_RULES))
    def test_cli_exits_nonzero_on_bad_fixture(self, rule, capsys):
        rc = run_perf([fixture(f"{rule.lower()}_bad.py")])
        assert rc != 0
        out = capsys.readouterr().out
        assert rule in out


# ---------------------------------------------------------------------------
# Hot-set semantics: with a kernel module present, only code reachable
# from the roots is held to the rules.
# ---------------------------------------------------------------------------

_ENGINE_SRC = (
    "from util import dispatch\n\n"
    "def step(queue):\n"
    "    return dispatch(queue)\n"
)

_UTIL_SRC = (
    "def dispatch(queue):\n"
    "    def key(item):\n"  # reachable from the engine: flagged
    "        return item[1]\n"
    "    return sorted(queue, key=key)\n\n"
    "def offline_report(rows):\n"
    "    def key(row):\n"  # unreachable: setup/report code is exempt
    "        return row[1]\n"
    "    return sorted(rows, key=key)\n"
)


class TestHotSet:
    def test_reachability_gates_the_rules(self):
        result = perf_lint_files(
            [
                ("src/repro/simcore/engine.py", _ENGINE_SRC),
                ("src/repro/util.py", _UTIL_SRC),
            ]
        )
        assert not result.all_hot
        assert [v.rule for v in result.violations] == ["PERF102"]
        (v,) = result.violations
        assert v.path.endswith("util.py")
        assert v.line == 2  # dispatch's closure, not offline_report's

    def test_setup_functions_are_exempt(self):
        src = (
            "class Gauge:\n"
            "    def __init__(self, name):\n"
            "        self.label = f\"gauge.{name}\"\n"  # once per object: fine
        )
        assert codes(src) == []


# ---------------------------------------------------------------------------
# Waivers: same machinery as simlint, separate namespace.
# ---------------------------------------------------------------------------


class TestWaivers:
    def test_waiver_suppresses(self):
        src = (
            "def drain(queue, out):\n"
            "    while queue:\n"
            "        out.append(queue.pop(0))  # perf: waive PERF105 -- queue is bounded at 2\n"
        )
        assert codes(src) == []

    def test_waiver_line_above(self):
        src = (
            "def drain(queue, out):\n"
            "    while queue:\n"
            "        # perf: waive PERF105 -- queue is bounded at 2\n"
            "        out.append(queue.pop(0))\n"
        )
        assert codes(src) == []

    def test_simlint_waiver_does_not_cross_namespaces(self):
        src = (
            "def drain(queue, out):\n"
            "    while queue:\n"
            "        out.append(queue.pop(0))  # simlint: waive SIM004 -- wrong dialect\n"
        )
        assert "PERF105" in codes(src)

    def test_stale_waiver_reported(self):
        src = (
            "def drain(queue, out):\n"
            "    queue.reverse()  # perf: waive PERF105 -- nothing to excuse\n"
            "    while queue:\n"
            "        out.append(queue.pop())\n"
        )
        result = perf_lint_files([("mod.py", src)])
        assert result.violations == []
        assert len(result.stale_waivers) == 1
        assert result.stale_waivers[0].line == 2
        assert not result.clean

    def test_stale_waiver_fails_the_cli(self, capsys):
        pass_through = (
            "def f(x):\n"
            "    return x  # perf: waive PERF103 -- nothing here\n"
        )
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "mod.py")
            with open(path, "w") as fh:
                fh.write(pass_through)
            assert run_perf([path]) != 0
        assert "stale" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# The repo itself holds the bar the analyzer sets.
# ---------------------------------------------------------------------------


class TestRepoIsClean:
    def test_tree_is_perf_clean(self):
        result = perf_lint_tree(default_lint_roots())
        assert [v.render() for v in result.violations] == []
        assert [w.render() for w in result.stale_waivers] == []
        # the real tree must resolve a hot set, not fall back to all-hot
        assert not result.all_hot
        assert result.n_hot > 0


# ---------------------------------------------------------------------------
# Sim-time profiler: deterministic attribution, zero-cost detached.
# ---------------------------------------------------------------------------


def profiled_run(seed):
    env = Environment()
    prof = SimProfiler()
    env.attach_profiler(prof)
    rng = RandomStreams(seed).stream("load")

    def worker(n):
        for _ in range(n):
            yield env.timeout(float(rng.uniform(0.1, 1.0)))

    for i in range(3):
        env.process(worker(20), name=f"w{i}")
    env.run()
    return prof


class TestProfiler:
    def test_same_seed_double_run_identical(self):
        a = profiled_run(7).as_dict()
        b = profiled_run(7).as_dict()
        assert a == b
        assert a["total_events"] > 0

    def test_digit_runs_collapse_to_one_component(self):
        prof = profiled_run(7)
        names = [c.component for c in prof.components.values()]
        assert "Process:w#" in names
        assert not any(n.startswith("Process:w0") for n in names)

    def test_counts_match_the_event_trace(self):
        env = Environment()
        prof, trace = SimProfiler(), EventTrace()
        env.attach_profiler(prof)
        env.attach_trace(trace)

        def proc():
            yield env.timeout(1.0)
            yield env.timeout(2.0)

        env.process(proc(), name="p")
        env.run()
        assert prof.total_events == trace.count > 0

    def test_top_ranks_by_events(self):
        prof = profiled_run(3)
        top = prof.top(3)
        assert len(top) >= 2
        assert top[0].events >= top[-1].events

    def test_describe_mentions_totals(self):
        prof = profiled_run(3)
        text = prof.describe()
        assert "TOTAL" in text
        assert str(prof.total_events) in text


# ---------------------------------------------------------------------------
# Bench trajectory: format round-trip and the comparison gates.
# ---------------------------------------------------------------------------


def _result(**scenarios):
    r = BenchResult(repeats=2)
    for name, (events, eps) in scenarios.items():
        r.scenarios[name] = {
            "events": events,
            "best_wall_s": round(events / eps, 6),
            "events_per_sec": eps,
            "traced": False,
        }
    return r


class TestBenchFormat:
    def test_round_trip(self, tmp_path):
        r = _result(epochs=(1000, 50000.0), membership=(2000, 60000.0))
        path = tmp_path / "BENCH_engine.json"
        r.write(str(path))
        back = load_bench(str(path))
        assert back.to_dict() == r.to_dict()

    def test_version_gate(self):
        with pytest.raises(ValueError, match="version"):
            BenchResult.from_dict({"version": 999, "scenarios": {}})

    def test_render_lists_every_scenario(self):
        r = _result(epochs=(1000, 50000.0))
        assert "epochs" in r.render()

    def test_checked_in_trajectory_is_valid(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        result = load_bench(os.path.join(root, "BENCH_engine.json"))
        assert len(result.scenarios) >= 3
        for entry in result.scenarios.values():
            assert entry["events"] > 0
            assert entry["events_per_sec"] > 0
        # the with/without-tracing pair that guards the observer gate
        assert {"epochs", "epochs_traced"} <= set(result.scenarios)
        assert result.scenarios["epochs_traced"]["traced"] is True

    def test_checked_in_event_counts_still_reproduce(self):
        # Event counts are the deterministic half of the bench: a fresh
        # run must hit the checked-in counts exactly, wall clock aside.
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        baseline = load_bench(os.path.join(root, "BENCH_engine.json"))
        current = run_bench(scenarios=["epochs"], repeats=1)
        assert (
            current.scenarios["epochs"]["events"]
            == baseline.scenarios["epochs"]["events"]
        )


class TestCompareBench:
    def test_within_band_is_quiet(self):
        base = _result(epochs=(1000, 50000.0))
        cur = _result(epochs=(1000, 45000.0))
        assert compare_bench(cur, base, tolerance=0.2) == []

    def test_throughput_floor(self):
        base = _result(epochs=(1000, 50000.0))
        cur = _result(epochs=(1000, 30000.0))
        problems = compare_bench(cur, base, tolerance=0.2)
        assert len(problems) == 1
        assert "below" in problems[0]

    def test_event_drift_is_hard_failure(self):
        base = _result(epochs=(1000, 50000.0))
        cur = _result(epochs=(1001, 50000.0))
        problems = compare_bench(cur, base, tolerance=0.2)
        assert any("drifted" in p for p in problems)

    def test_missing_scenario_is_flagged(self):
        base = _result(epochs=(1000, 50000.0), membership=(2000, 60000.0))
        cur = _result(epochs=(1000, 50000.0))
        problems = compare_bench(cur, base, tolerance=0.2)
        assert any("missing" in p for p in problems)


class TestScenarioRegistry:
    def test_pinned_set(self):
        assert {"epochs", "epochs_traced", "membership"} <= set(SCENARIOS)
        assert "epochs_traced" in TRACED_SCENARIOS
        assert "epochs" not in TRACED_SCENARIOS

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            run_bench(scenarios=["nope"], repeats=1)
