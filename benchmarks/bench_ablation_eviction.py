"""Ablation: cache-eviction policy under capacity pressure (§III-G).

The paper ships random eviction and defers policy comparison to future
work; this ablation runs it: random / LRU / FIFO / MinIO on a dataset
sized ~2.5× the aggregate cache, measuring warm-epoch time and hit rate.
"""

import pytest

from repro.analysis import format_table
from repro.baselines import HVACSetup
from repro.cluster import SUMMIT
from repro.dl import IMAGENET21K, RESNET50
from repro.experiments import Scale, run_training

POLICIES = ("random", "lru", "fifo", "minio")


def _run():
    # Shrink NVMe so the (sampled) dataset overflows the cache.
    n_nodes, files_per_rank, procs = 4, 24, 4
    sample_files = n_nodes * procs * files_per_rank
    total_bytes = sample_files * IMAGENET21K.mean_file_bytes
    per_node_nvme = int(total_bytes / n_nodes * 0.4)  # cache fits ~40%
    scale = Scale(
        files_per_rank=files_per_rank,
        sim_batch_size=8,
        repetitions=1,
        procs_per_node=procs,
        epochs_simulated=3,
    )
    rows = {}
    for policy in POLICIES:
        spec = SUMMIT.with_hvac(eviction_policy=policy)
        import dataclasses

        spec = dataclasses.replace(
            spec,
            node=dataclasses.replace(
                spec.node,
                nvme=dataclasses.replace(
                    spec.node.nvme, capacity_bytes=per_node_nvme
                ),
            ),
        )
        res = run_training(
            HVACSetup(1), RESNET50, IMAGENET21K, n_nodes, scale, spec=spec
        )
        rows[policy] = (res.best_random_epoch, res.cache_hit_rate)
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_eviction_policies(benchmark, capsys):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["policy", "warm epoch (s)", "hit rate"],
            [[p, t, h] for p, (t, h) in rows.items()],
            title="Ablation: eviction policy under 2.5x capacity pressure",
        ))

    # Under uniform random re-access, no policy should dominate wildly,
    # but every policy must keep the system functional (hits happen).
    for policy, (epoch, hit_rate) in rows.items():
        assert epoch > 0
        assert 0.0 < hit_rate < 1.0
    # MinIO guarantees a stable cached set: over E epochs (first all
    # misses), the hit rate ≈ cache_fraction × (E-1)/E = 0.4 × 2/3.
    assert rows["minio"][1] == pytest.approx(0.4 * 2 / 3, abs=0.1)
