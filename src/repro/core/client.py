"""The HVAC client library (paper §III-D/E/F).

In the prototype this is an ``LD_PRELOAD`` interposition library that
catches POSIX ``open/read/close`` inside the DL framework and redirects
any path under ``HVAC_DATASET_DIR`` to the HVAC server that *homes* the
file (determined algorithmically by hashing — no metadata service).

Here the client is a :class:`~repro.storage.base.FileBackend`, so the
virtual-POSIX interposer (and the DL data loader) can treat it exactly
like GPFS or a local filesystem.  Costs charged per intercepted call
come from :attr:`HVACSpec.client_request_overhead`.

Failover (§III-H, implemented as the paper's proposed extension) is
*detected*, never oracled: every forwarded read carries a deadline
(:attr:`HVACSpec.rpc_timeout`), failures and timeouts are strikes in a
per-client :class:`~repro.faults.FailureDetector`, suspected servers sit
out a probation period before being re-probed, and a bounded retry loop
with exponential backoff + seeded jitter walks the replica list before
degrading to direct PFS reads — a failed (or hung, or slow, or
partitioned) NVMe costs performance, never the training run.

Telemetry: when a :class:`~repro.obs.SpanRecorder` is attached, every
intercepted ``read`` opens a root ``client.read`` span whose children
trace the full causal path — ``rpc.read`` attempts (with timeout/error
status), ``client.segment`` fan-out for striped files, and
``pfs.fallback`` degradations — and whose annotations carry per-route
byte counts (``bytes:local`` / ``bytes:remote`` / ``bytes:pfs``),
detector ``strike`` events, and the ``degraded`` flag the SLO report
aggregates.  Recording is pure list appends on the hot path; it never
creates kernel events, so it cannot perturb the event stream.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..cluster.specs import ClusterSpec
from ..faults import FailureDetector
from ..rpc import RPCEndpoint, RPCError, RPCTimeout
from ..simcore import (
    AllOf,
    Environment,
    MetricRegistry,
    RandomStreams,
    stable_hash64,
)
from ..storage.base import FileBackend, OpenFile
from .hashing import Placement
from .server import HVACServer

__all__ = ["HVACClient"]

# Route-keyed label tables: every delivered read accounts its bytes, so
# the counter / annotation names must not be rebuilt per call (PERF103).
_ROUTE_BYTES = {
    "local": "client_bytes_local",
    "remote": "client_bytes_remote",
    "pfs": "client_bytes_pfs",
}
_ROUTE_ANNOTATION = {
    "local": "bytes:local",
    "remote": "bytes:remote",
    "pfs": "bytes:pfs",
}


class HVACClient(FileBackend):
    """One process's view of the HVAC cache (client side)."""

    def __init__(
        self,
        env: Environment,
        node_id: int,
        servers: list[HVACServer],
        placement: Placement,
        pfs: FileBackend,
        spec: ClusterSpec,
        metrics: MetricRegistry | None = None,
        spread_replica_reads: bool = True,
        rand: RandomStreams | None = None,
        spans=None,
        tenant: Optional[int] = None,
    ):
        self.env = env
        self.node_id = node_id
        self.servers = servers
        self.placement = placement
        self.pfs = pfs
        self.spec = spec
        self.metrics = metrics or MetricRegistry()
        self.spread_replica_reads = spread_replica_reads
        self.rand = rand or RandomStreams(stable_hash64("hvac-client", node_id))
        #: optional :class:`~repro.obs.SpanRecorder`
        self.spans = spans
        #: tenant this client reads on behalf of (multi-tenant fleets);
        #: None = the classic single-job deployment, byte-identical paths
        self.tenant = tenant
        #: admission-controller degrade mode: route every read straight
        #: to the PFS, consuming zero fleet cache (per-job state)
        self.pfs_only = False
        #: deployment client-table key (how schedules address this client)
        self.client_key = node_id if tenant is None else (node_id, tenant)
        #: optional :class:`~repro.prefetch.LookaheadScheduler` notified
        #: of every intercepted read (advances the clairvoyant cursor)
        self.prefetch_listener = None
        # Deployment-wide aggregate counters keep their historical names
        # (``hvac.client_hits`` …); the per-client scope shadows each of
        # them under ``hvac.c<node>.…`` for SLO attribution.  Tenant
        # clients shadow a third level, ``hvac.t<j>.…``, aggregating the
        # tenant's traffic across all of its per-node clients.
        self._hvac = self.metrics.scope("hvac")
        self._cscope = self._hvac.scope(f"c{node_id}")
        self._tscope = None if tenant is None else self._hvac.scope(f"t{tenant}")
        hvac = spec.hvac
        self.detector = FailureDetector(
            env,
            len(servers),
            suspect_after=hvac.suspect_after,
            probation=hvac.probation_period,
            metrics=self._cscope.scope("detector"),
        )
        # The client endpoint shares the node's fabric ports.
        fabric = servers[0].endpoint.fabric
        self.endpoint = RPCEndpoint(
            env,
            fabric,
            node_id,
            name=f"hvac-c@n{node_id}",
            metrics=self._cscope.scope("rpc"),
            spans=spans,
        )
        #: optional :class:`~repro.membership.MembershipView` (see
        #: :meth:`attach_membership`); None = detector-only liveness
        self.view = None
        # Topology sort key inputs, computed once (see _rack_pref).
        self._my_rack = node_id // max(1, spec.network.rack_size)

    def attach_membership(self, view, remap: bool = True) -> None:
        """Join the gossip mesh: route by ``view``, share evidence.

        The detector keeps doing first-hand strike counting; every
        suspicion onset is forwarded into ``view``, whose digest then
        rides on all of this endpoint's RPCs (and the anti-entropy
        rounds).  With ``remap`` the placement is wrapped so dead
        servers' hash ranges move wholesale to live stand-ins.
        """
        from ..membership.remap import RemappedPlacement

        self.view = view
        self.detector.listener = view
        if remap:
            # perf: waive PERF101 -- one wrapper per client, built at membership enablement
            self.placement = RemappedPlacement(self.placement, view)

        # perf: waive PERF102 -- closures built once per client at membership enablement
        def provide():
            digest = view.digest()
            return digest, view.digest_bytes(digest)

        # perf: waive PERF102 -- closures built once per client at membership enablement
        def absorb(digest, src):
            view.merge(digest, why="piggyback")

        self.endpoint.digest_provider = provide
        self.endpoint.digest_sink = absorb

    # -- telemetry helpers -------------------------------------------------
    def _incr(self, name: str, n: int = 1) -> None:
        """Bump a client counter at every aggregation level."""
        self._hvac.counter(name).incr(n)
        self._cscope.counter(name).incr(n)
        if self._tscope is not None:
            self._tscope.counter(name).incr(n)

    def _route_bytes(self, root: Optional[int], route: str, nbytes: int) -> None:
        """Account ``nbytes`` delivered via ``route`` (local/remote/pfs)."""
        self._incr(_ROUTE_BYTES[route], nbytes)
        if self.spans is not None and root is not None:
            self.spans.annotate(root, self.env.now, _ROUTE_ANNOTATION[route], nbytes)

    # -- redirection -------------------------------------------------------
    def replica_order(self, path: str) -> list[int]:
        """Server ids to try for ``path``, preferred first."""
        replicas = self.placement.replicas(path, client=self.node_id)
        if len(replicas) <= 1:
            return replicas
        rack_of = getattr(self.placement, "rack_of", None)
        if self.spec.hvac.topology_aware and rack_of is not None:
            # Topology preference: replicas in this client's rack first
            # (keeps reads off oversubscribed rack uplinks); ties keep
            # placement order so failover stays deterministic.  The key
            # is a bound method, not a per-call closure (PERF102).
            replicas = sorted(replicas, key=self._rack_pref)
        elif self.spread_replica_reads:
            # Distribute read load across the replica set: stable per
            # (client, path) so an epoch's access pattern is deterministic.
            start = stable_hash64("hvac-spread", self.node_id, path) % len(replicas)
            replicas = replicas[start:] + replicas[:start]
        return replicas

    def _rack_pref(self, sid: int) -> int:
        """Sort key for :meth:`replica_order`: same-rack replicas first."""
        return 0 if self.placement.rack_of(sid) == self._my_rack else 1

    def _candidates(self, path: str) -> list[int]:
        """Replica ids the detector currently allows requests to.

        Liveness is pure client-side suspicion — observed timeouts and
        errors — never a peek at server state.
        """
        order = self.replica_order(path)
        if not self.spec.hvac.failover_enabled:
            order = order[:1]
        view = self.view
        return [
            sid
            for sid in order
            if self.detector.usable(sid)
            and (view is None or view.routable(sid))
        ]

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with seeded jitter before retry ``attempt``."""
        hvac = self.spec.hvac
        base = min(hvac.rpc_backoff_base * (2.0**attempt), hvac.rpc_backoff_cap)
        return base * self.rand.uniform("backoff", 0.5, 1.5)

    # -- FileBackend (the three intercepted calls) ----------------------------
    def open(self, path: str, size: int, client_node: int) -> Generator:
        """Intercepted ``open``: start tracking; no server round-trip yet.

        The prototype begins tracking on open and issues the actual
        forwarding on the first read — opens must stay cheap because DL
        frameworks stat/open aggressively.
        """
        yield self.env.timeout(self.spec.hvac.client_request_overhead)
        self._incr("client_opens")
        return OpenFile(path=path, size=size, backend=self, client_node=client_node)

    def read(self, handle: OpenFile, nbytes: int) -> Generator:
        """Intercepted ``read``: forward to the homing server + bulk pull.

        Files above the configured stripe threshold (when
        ``stripe_large_files`` is on) are fetched as independent
        segments from multiple servers in parallel — the segment-level
        layout the paper proposes for skewed file sizes (§III-E).
        """
        if handle.closed:
            raise ValueError(f"read on closed handle {handle.path}")
        nbytes = min(nbytes, handle.size - handle.offset)
        if nbytes <= 0:
            return 0
        listener = self.prefetch_listener
        if listener is not None:
            # Notify before any timed step so staging of the next-k
            # window overlaps with this read's own service time.
            listener.on_demand_read(self.client_key, handle.path)
        rec = self.spans
        root = None
        if rec is not None:
            if self.tenant is None:
                root = rec.begin(
                    "client.read",
                    self.env.now,
                    client=self.node_id,
                    path=handle.path,
                    bytes=nbytes,
                )
            else:
                root = rec.begin(
                    "client.read",
                    self.env.now,
                    client=self.node_id,
                    path=handle.path,
                    bytes=nbytes,
                    tenant=self.tenant,
                )
        t0 = self.env.now
        yield self.env.timeout(self.spec.hvac.client_request_overhead)

        hvac = self.spec.hvac
        if self.pfs_only:
            # Admission degraded this job: the fleet cache is off-limits,
            # every read is a direct PFS transaction.  Still a *serviced*
            # read — just the slow path, and always counted degraded.
            fb = None
            if rec is not None:
                fb = rec.begin(
                    "pfs.fallback",
                    self.env.now,
                    parent=root,
                    path=handle.path,
                    bytes=handle.size,
                )
            yield from self.pfs.read_file(handle.path, handle.size, handle.client_node)
            if rec is not None:
                rec.end(fb, self.env.now)
            self._route_bytes(root, "pfs", handle.size)
            self._incr("client_pfs_only_reads")
            degraded = True
        elif hvac.stripe_large_files and handle.size > hvac.stripe_threshold:
            degraded = yield from self._read_striped(handle, root)
        else:
            hit, route, failures = yield from self._forward_read(
                handle.path, handle.size, handle.client_node, parent=root
            )
            degraded = failures > 0 or route == "pfs"
            self._route_bytes(root, route, handle.size)
            if hit is not None:
                self._incr("client_hits" if hit else "client_misses")
        self._cscope.histogram("read_seconds").add(self.env.now - t0)
        if degraded:
            self._incr("client_degraded_reads")
        if rec is not None:
            if degraded:
                rec.annotate(root, self.env.now, "degraded", 1)
            rec.end(root, self.env.now)
        handle.offset += nbytes
        return nbytes

    def _forward_read(
        self,
        path: str,
        size: int,
        client_node: int,
        parent: Optional[int] = None,
        max_retries: Optional[int] = None,
    ) -> Generator:
        """One forwarded read transaction (whole file or one segment).

        Returns ``(hit, route, failed_attempts)``: the server's hit flag
        (None when served by PFS fallback), which path delivered the
        bytes (``local`` / ``remote`` / ``pfs``), and how many attempts
        struck out along the way.  A bounded retry loop with backoff
        walks the detector-approved replicas; every retry path
        terminates in the PFS — a flapping server can cost at most
        ``rpc_max_retries`` strikes, never an unbounded recursion.
        ``max_retries`` caps the walk below the spec default (per-segment
        retry budgets).
        """
        hvac = self.spec.hvac
        rec = self.spans
        # Loop-invariant hoists: the retry walk re-reads these per
        # attempt otherwise (PERF104).
        env = self.env
        detector = self.detector
        failures = 0
        retries = max_retries if max_retries is not None else hvac.rpc_max_retries
        for attempt in range(retries):
            candidates = self._candidates(path)
            if not candidates:
                break
            sid = candidates[attempt % len(candidates)]
            server = self.servers[sid]
            try:
                # The server replies after its data mover has the bytes
                # and bulk-pushes them here; the deadline covers the
                # whole exchange (hung servers and lost replies look
                # identical: silence).  The parent span id rides in the
                # payload so the server's span tree links to ours.
                hit = yield from self.endpoint.call(
                    server.endpoint,
                    "read",
                    payload=(path, size, parent, self.tenant),
                    payload_bytes=len(path) + (24 if self.tenant is not None else 16),
                    timeout=hvac.rpc_timeout,
                    span=parent,
                    tenant=self.tenant,
                )
            except RPCTimeout:
                failures += 1
                detector.record_failure(sid)
                self._incr("client_rpc_timeouts")
                if rec is not None and parent is not None:
                    rec.annotate(parent, env.now, "strike", sid)
            except RPCError:
                failures += 1
                detector.record_failure(sid)
                self._incr("client_rpc_failures")
                if rec is not None and parent is not None:
                    rec.annotate(parent, env.now, "strike", sid)
            else:
                detector.record_success(sid)
                route = "local" if server.node_id == self.node_id else "remote"
                return hit, route, failures
            if attempt + 1 < retries:
                if not self._candidates(path):
                    # The whole replica set just went unroutable (all
                    # suspected/dead): the remaining backoff walk cannot
                    # reach anyone — degrade now instead of sleeping.
                    self._incr("client_retry_aborts")
                    break
                self._incr("client_retries")
                yield env.timeout(self._backoff(attempt))
        # Every approved replica failed (or none is approved): degrade
        # to a direct PFS read — slower, but the training run survives.
        self._incr("client_pfs_fallback")
        fb = None
        if rec is not None:
            fb = rec.begin(
                "pfs.fallback", self.env.now, parent=parent, path=path, bytes=size
            )
        yield from self.pfs.read_file(path, size, client_node)
        if rec is not None:
            rec.end(fb, self.env.now)
        return None, "pfs", failures

    def _segment(
        self,
        seg_path: str,
        length: int,
        client_node: int,
        root: Optional[int] = None,
    ) -> Generator:
        """One striped segment: forward, then account its own outcome.

        Segments are first-class in the accounting: a file that loses a
        single segment to a failed server is *partially* degraded, not a
        whole-file miss (see :meth:`_read_striped`).
        """
        rec = self.spans
        sp = None
        if rec is not None:
            sp = rec.begin(
                "client.segment",
                self.env.now,
                parent=root,
                path=seg_path,
                bytes=length,
            )
        budget = self.spec.hvac.segment_retry_budget
        hit, route, failures = yield from self._forward_read(
            seg_path,
            length,
            client_node,
            parent=sp if sp is not None else root,
            max_retries=budget if budget > 0 else None,
        )
        if hit is None:
            self._incr("client_seg_fallbacks")
        elif hit:
            self._incr("client_seg_hits")
        else:
            self._incr("client_seg_misses")
        self._route_bytes(root, route, length)
        if rec is not None:
            rec.annotate(sp, self.env.now, "route", route)
            rec.end(sp, self.env.now, status="ok" if hit is not None else "fallback")
        return hit, route, failures

    def _read_striped(self, handle: OpenFile, root: Optional[int] = None) -> Generator:
        """Fetch a large file as parallel segments from their homes.

        Hit accounting is per segment: all segments cached →
        ``client_hits``; some cached → ``client_partial_hits`` (the
        delivered bytes split across routes accordingly); none →
        ``client_misses``.  Returns whether any segment degraded.
        """
        hvac = self.spec.hvac
        seg = hvac.stripe_segment
        fetches = []
        offset = 0
        index = 0
        while offset < handle.size:
            length = min(seg, handle.size - offset)
            seg_path = f"{handle.path}#seg{index}"
            fetches.append(
                self.env.process(
                    self._segment(seg_path, length, handle.client_node, root),
                    name="hvac.seg",
                )
            )
            offset += length
            index += 1
        results = yield AllOf(self.env, fetches)
        outcomes = list(results.values())
        self._incr("client_striped_reads")
        n_hit = sum(1 for hit, _, _ in outcomes if hit)
        n_fallback = sum(1 for hit, _, _ in outcomes if hit is None)
        if n_hit == len(outcomes):
            self._incr("client_hits")
        elif n_hit > 0:
            self._incr("client_partial_hits")
        else:
            self._incr("client_misses")
        return n_fallback > 0 or any(failed > 0 for _, _, failed in outcomes)

    def close(self, handle: OpenFile) -> Generator:
        """Intercepted ``close``: out-of-band teardown RPC (fire & forget)."""
        if handle.closed:
            raise ValueError(f"double close of {handle.path}")
        handle.closed = True
        yield self.env.timeout(self.spec.hvac.client_request_overhead)
        candidates = self._candidates(handle.path)
        if candidates:
            # Out-of-band: the client does not wait for the ack.
            self.env.process(
                self._oob_close(candidates[0], handle.path), name="hvac.oob_close"
            )
        self._incr("client_closes")

    def _oob_close(self, sid: int, path: str) -> Generator:
        server = self.servers[sid]
        try:
            yield from self.endpoint.call(
                server.endpoint, "close", payload=path,
                timeout=self.spec.hvac.rpc_timeout,
            )
        except RPCError:
            # Teardown of a dying server is best-effort, but the silence
            # still counts as evidence against it.
            self.detector.record_failure(sid)
        else:
            self.detector.record_success(sid)
