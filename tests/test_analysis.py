"""Tests for statistics and table formatting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    empirical_cdf,
    format_kv,
    format_series,
    format_table,
    gini,
    load_imbalance,
    mean_ci,
)


class TestMeanCI:
    def test_three_repetitions_paper_style(self):
        ci = mean_ci([10.0, 11.0, 12.0])
        assert ci.mean == 11.0
        assert ci.n == 3
        # t(df=2, 97.5%) = 4.303; sem = 1/sqrt(3)
        assert ci.half_width == pytest.approx(4.303 / np.sqrt(3), rel=1e-3)
        assert ci.low < 11.0 < ci.high

    def test_single_sample(self):
        ci = mean_ci([5.0])
        assert ci.mean == 5.0
        assert ci.half_width == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_large_n_uses_normal(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 1, 1000)
        ci = mean_ci(data)
        assert ci.half_width == pytest.approx(1.96 / np.sqrt(1000), rel=0.15)

    def test_str(self):
        assert "±" in str(mean_ci([1.0, 2.0]))


class TestCDF:
    def test_shape_and_monotonicity(self):
        xs, ps = empirical_cdf([3.0, 1.0, 2.0])
        assert xs.tolist() == [1.0, 2.0, 3.0]
        assert ps.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf([])


class TestGini:
    def test_perfectly_balanced(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-12)

    def test_fully_concentrated(self):
        g = gini([0, 0, 0, 100])
        assert g == pytest.approx(0.75, abs=0.01)

    def test_all_zero(self):
        assert gini([0, 0]) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            gini([])

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_bounded(self, values):
        assert 0.0 <= gini(values) <= 1.0 + 1e-9


class TestImbalance:
    def test_balanced_is_one(self):
        assert load_imbalance([3, 3, 3]) == pytest.approx(1.0)

    def test_skewed(self):
        assert load_imbalance([1, 1, 10]) == pytest.approx(10 / 4)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            load_imbalance([])


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["sys", "time"], [["GPFS", 1.5], ["HVAC", 0.5]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "GPFS" in out and "HVAC" in out
        assert len(lines) == 5  # title, header, rule, two rows

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_format_series(self):
        out = format_series("nodes", [1, 2], {"GPFS": [3.0, 4.0], "XFS": [1.0, 2.0]})
        assert "nodes" in out and "GPFS" in out and "XFS" in out
        assert "4" in out

    def test_format_kv(self):
        out = format_kv({"hit rate": 0.5, "files": 10}, title="Summary")
        assert "Summary" in out
        assert "hit rate" in out
        assert "0.5" in out


class TestAsciiChart:
    def chart(self, **kw):
        from repro.analysis import ascii_chart

        return ascii_chart(
            [1, 2, 4, 8],
            {"GPFS": [10, 20, 30, 30], "XFS": [5, 10, 20, 40]},
            **kw,
        )

    def test_contains_markers_and_legend(self):
        out = self.chart(title="T")
        assert out.startswith("T")
        assert "o GPFS" in out and "x XFS" in out
        assert "o" in out and "x" in out

    def test_log_scales_noted(self):
        out = self.chart(log_x=True, log_y=True)
        assert "[log x, log y]" in out

    def test_axis_extremes_labelled(self):
        out = self.chart()
        assert "40" in out and "5" in out  # y extremes
        assert "1" in out and "8" in out  # x extremes

    def test_dimension_validation(self):
        from repro.analysis import ascii_chart

        with pytest.raises(ValueError):
            ascii_chart([], {})
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [1]})
        with pytest.raises(ValueError):
            ascii_chart([1], {"a": [1]}, width=2)

    def test_log_rejects_nonpositive(self):
        from repro.analysis import ascii_chart

        with pytest.raises(ValueError):
            ascii_chart([0, 1], {"a": [1, 2]}, log_x=True)
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [0, 2]}, log_y=True)

    def test_flat_series_no_zero_division(self):
        from repro.analysis import ascii_chart

        out = ascii_chart([1, 2, 3], {"flat": [5, 5, 5]})
        assert "o flat" in out


class TestPersistence:
    def test_roundtrip_figure_result(self, tmp_path):
        from repro.analysis import load_results, save_results
        from repro.experiments import SMALL_FILE, mdtest_scaling_analytic

        res = mdtest_scaling_analytic(SMALL_FILE, [1, 4])
        target = tmp_path / "fig3.json"
        save_results(res, str(target), label="fig3")
        loaded = load_results(str(target))
        assert loaded["label"] == "fig3"
        assert loaded["data"]["node_counts"] == [1, 4]
        assert "GPFS" in loaded["data"]["tx_per_sec"]

    def test_ndarray_and_numpy_scalars(self, tmp_path):
        import numpy as np

        from repro.analysis import save_results, load_results

        payload = {"arr": np.arange(3), "i": np.int64(7), "f": np.float32(0.5)}
        target = tmp_path / "x.json"
        save_results(payload, str(target))
        loaded = load_results(str(target))["data"]
        assert loaded == {"arr": [0, 1, 2], "i": 7, "f": 0.5}

    def test_training_result_serializes(self, tmp_path):
        from repro.analysis import save_results, load_results
        from repro.dl import TrainingResult

        res = TrainingResult(config_label="c", system_label="s")
        res.epoch_times = [3.0, 1.0]
        target = tmp_path / "t.json"
        save_results(res, str(target))
        loaded = load_results(str(target))["data"]
        assert loaded["epoch_times"] == [3.0, 1.0]

    def test_unserializable_raises(self):
        from repro.analysis import to_jsonable

        with pytest.raises(TypeError):
            to_jsonable(object())
