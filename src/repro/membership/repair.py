"""Peer-to-peer replica repair after server recovery.

A recovered HVAC server restarts with a cold cache: without repair its
first epoch re-pays the PFS fetch for every file it homes (the paper's
§IV-E cost, and Hoard's motivation for background repopulation).  The
:class:`RepairManager` fixes that: when a server recovers it plans the
lost shard from the *base* placement (every file whose replica set
contains the server) and streams it back in the background —

* **from replica peers** when a live replica still caches the file: a
  cache-NVMe read on the peer plus a fabric transfer peer → recovered
  node, contending with epoch traffic on the same links;
* **from the PFS** when no replica survives (rf=1, or a correlated
  burst took the whole replica set down).

All repair flows share one :class:`~repro.cluster.RateLimiter`
(``HVACSpec.repair_bandwidth``), making the repair-bandwidth vs
epoch-interference trade-off a single knob.  While repair runs the
server self-reports ``recovering`` — remapped placement keeps its range
on the warm stand-ins — and on completion it bumps its incarnation and
rejoins as ``alive``.

A repair aborts cleanly if the server dies again mid-stream (the next
recovery starts a fresh one — generation-checked, so the two never
interleave).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.network import RateLimiter

__all__ = ["RepairManager", "RepairReport"]


@dataclass
class RepairReport:
    """Outcome of one repair stream (one recovery of one server)."""

    server_id: int
    started: float
    finished: float = 0.0
    n_files: int = 0
    bytes_from_peers: int = 0
    bytes_from_pfs: int = 0
    aborted: bool = False

    @property
    def seconds(self) -> float:
        return self.finished - self.started

    @property
    def total_bytes(self) -> int:
        return self.bytes_from_peers + self.bytes_from_pfs


class RepairManager:
    """Plans and runs background shard repair for one deployment."""

    def __init__(self, deployment, bandwidth: float = 0.0, metrics=None):
        self.dep = deployment
        self.env = deployment.env
        #: one shared pacer for every concurrent repair stream
        self.limiter = RateLimiter(self.env, bandwidth, name="repair")
        #: dataset manifest ``(path, size)`` — the authority on what a
        #: server *should* hold; attach_manifest() fills it
        self.manifest: list[tuple[str, int]] = []
        self.reports: list[RepairReport] = []
        self.in_flight = 0
        #: recoveries seen this instant, started as one sorted batch
        self._pending: list = []
        self._starter_active = False
        self.metrics = (
            metrics
            if metrics is not None
            else deployment.metrics.scope("hvac.repair")
        )

    def attach_manifest(self, files) -> None:
        """Register the dataset so PFS-sourced repair knows what a
        server with no surviving replica peer has lost."""
        self.manifest = [(path, int(size)) for path, size in files]

    # -- lifecycle ----------------------------------------------------------
    def on_recover(self, server) -> None:
        """Called by ``HVACServer.recover``: start the repair stream.

        Recoveries landing at the same instant (a burst restart) are
        collected and launched by one starter process in ``server_id``
        order.  Spawning each stream directly from its caller would make
        the first-throttle order on the shared limiter depend on nothing
        but heap insertion sequence — the exact class of bug the race
        sanitizer exists to flag.
        """
        self.in_flight += 1
        self._pending.append(server)
        if not self._starter_active:
            self._starter_active = True
            self.env.process(self._start_pending(), name="repair.start")

    def _start_pending(self):
        yield self.env.timeout(0.0)
        batch, self._pending = self._pending, []
        self._starter_active = False
        for server in sorted(batch, key=lambda s: s.server_id):
            self.env.process(
                self._repair(server), name=f"repair.s{server.server_id}"
            )

    # -- planning -----------------------------------------------------------
    def _plan(self, server) -> list[tuple[str, int, object]]:
        """``(path, size, source_server_or_None)`` for every lost file.

        Peer-sourced entries come first (cheap, replica-local); manifest
        leftovers fall back to the PFS.  Planning walks servers and
        cache contents in sorted order, so the stream is deterministic.
        """
        sid = server.server_id
        placement = self.dep.placement
        plan: list[tuple[str, int, object]] = []
        planned: set[str] = set()
        for peer in self.dep.servers:
            if peer.server_id == sid or not peer.alive:
                continue
            for path, size in peer.cache.contents():
                if path in planned or server.cache.contains(path):
                    continue
                if sid in placement.replicas(path):
                    plan.append((path, size, peer))
                    planned.add(path)
        for path, size in self.manifest:
            if path in planned or server.cache.contains(path):
                continue
            if sid in placement.replicas(path):
                plan.append((path, size, None))
                planned.add(path)
        return plan

    # -- the repair stream ---------------------------------------------------
    def _repair(self, server):
        report = RepairReport(server_id=server.server_id, started=self.env.now)
        generation = server.incarnation
        fabric = self.dep.allocation.fabric
        aborted = False
        try:
            for path, size, peer in self._plan(server):
                if not server.alive or server.incarnation != generation:
                    aborted = True
                    break
                if server.cache.contains(path):
                    continue
                yield from self.limiter.throttle(size)
                if not server.alive or server.incarnation != generation:
                    aborted = True
                    break
                from_peer = False
                if peer is not None and peer.alive and peer.cache.contains(path):
                    # Replica-sourced: occupy the peer's NVMe for the
                    # read, then cross the real fabric — repair traffic
                    # contends with epoch reads on both.
                    yield from peer.cache.read(path)
                    from_peer = yield from fabric.transfer(
                        peer.node_id, server.node_id, size
                    )
                if not from_peer:
                    yield from self.dep.pfs.read_file(path, size, server.node_id)
                if not server.alive or server.incarnation != generation:
                    aborted = True
                    break
                yield from server.cache.insert(path, size)
                report.n_files += 1
                if from_peer:
                    report.bytes_from_peers += size
                    self.metrics.counter("bytes_from_peers").incr(size)
                else:
                    report.bytes_from_pfs += size
                    self.metrics.counter("bytes_from_pfs").incr(size)
        finally:
            report.aborted = aborted
            report.finished = self.env.now
            # race: waive RACE201 -- append-only report log; kernel orders completions
            self.reports.append(report)
            self.metrics.counter("repairs_aborted" if aborted else "repairs").incr()
            # race: waive RACE201 -- gauge decrement commutes
            self.in_flight -= 1
        if not aborted:
            server.repair_complete()
