"""Tests for the closed-form analytic model, incl. DES cross-validation."""

import pytest

from repro.baselines import GPFSSetup, XFSSetup
from repro.cluster import SUMMIT
from repro.dl import COSMOUNIVERSE, DEEPCAM, DEEPCAM_CLIMATE, IMAGENET21K, RESNET50
from repro.experiments import Scale, run_training
from repro.model import AnalyticModel


def model_at(n_nodes, model=RESNET50, dataset=IMAGENET21K, **kw):
    return AnalyticModel(SUMMIT, model, dataset, n_nodes, **kw)


class TestCeilings:
    def test_gpfs_metadata_ceiling_small_files(self):
        ceiling, name = model_at(512).gpfs_ceiling()
        assert name == "metadata"
        # 32 MDS × 30k ops/s ÷ 3 ops/tx
        assert ceiling == pytest.approx(320_000, rel=0.01)

    def test_gpfs_bandwidth_ceiling_large_files(self):
        ceiling, name = model_at(512, DEEPCAM, DEEPCAM_CLIMATE).gpfs_ceiling()
        # 14.3 MB files: the binding limit is the data path — either raw
        # bandwidth or the per-request NSD service ceiling (overhead +
        # transfer), which sit within ~10% of each other at this size.
        assert name in ("pfs-bandwidth", "client-links", "nsd-requests")
        # 2.5 TB/s over 14.3 MB files
        assert ceiling < 320_000

    def test_xfs_scales_linearly(self):
        c64, _ = model_at(64).xfs_ceiling()
        c128, _ = model_at(128).xfs_ceiling()
        assert c128 == pytest.approx(2 * c64)

    def test_hvac_mover_binds_with_one_instance(self):
        m = model_at(64)
        c1, n1 = m.hvac_ceiling(1)
        c4, n4 = m.hvac_ceiling(4)
        assert c4 > c1  # more instances, more mover throughput

    def test_validation(self):
        with pytest.raises(ValueError):
            AnalyticModel(SUMMIT, RESNET50, IMAGENET21K, 0)


class TestPredictions:
    def test_gpfs_flattens_at_scale(self):
        """Fig 8's saturation: epoch time stops improving with nodes."""
        e256 = model_at(256).predict_gpfs().epoch_seconds
        e1024 = model_at(1024).predict_gpfs().epoch_seconds
        assert e1024 > 0.8 * e256 / 4  # far from 4× speedup
        assert model_at(1024).predict_gpfs().bottleneck == "metadata"

    def test_xfs_scales_linearly_to_1024(self):
        e256 = model_at(256).predict_xfs().epoch_seconds
        e1024 = model_at(1024).predict_xfs().epoch_seconds
        assert e1024 == pytest.approx(e256 / 4, rel=0.05)

    def test_hvac_warm_beats_gpfs_at_scale(self):
        """The paper's ≈3× cached-epoch speedup at 512 nodes."""
        m = model_at(512)
        ratio = (
            m.predict_gpfs().epoch_seconds / m.predict_hvac(4).epoch_seconds
        )
        assert 2.0 < ratio < 5.0

    def test_cold_epoch_close_to_gpfs(self):
        """Fig 11: epoch-1 ≈ GPFS epoch for all variants."""
        m = model_at(512)
        gpfs = m.predict_gpfs().epoch_seconds
        cold = m.predict_hvac_cold(4).epoch_seconds
        assert cold == pytest.approx(gpfs, rel=0.35)

    def test_hvac_overhead_order(self):
        """Fig 9b ordering: 1×1 slowest, 4×1 closest to XFS."""
        m = model_at(128)
        xfs = m.predict_xfs().epoch_seconds
        e1 = m.predict_hvac(1).epoch_seconds
        e2 = m.predict_hvac(2).epoch_seconds
        e4 = m.predict_hvac(4).epoch_seconds
        assert e1 > e2 > e4 >= xfs * 0.999

    def test_epoch_minutes_property(self):
        p = model_at(64).predict_xfs()
        assert p.epoch_minutes == pytest.approx(p.epoch_seconds / 60)

    def test_mdtest_prediction_regimes(self):
        m = model_at(1024)
        small_gpfs = m.predict_mdtest("gpfs", 32 * 1024)
        large_gpfs = m.predict_mdtest("gpfs", 8 * 1024 * 1024)
        assert small_gpfs == pytest.approx(320_000, rel=0.01)  # metadata bound
        # 8 MB: bandwidth bound at 2.5 TB/s → ~300k would need 2.4 TB/s...
        assert large_gpfs == pytest.approx(2.51e12 / (8 * 1024 * 1024), rel=0.02)

    def test_mdtest_unknown_system(self):
        with pytest.raises(ValueError):
            model_at(1).predict_mdtest("nfs", 1024)


class TestCrossValidation:
    """The analytic model must track the DES where both run."""

    @pytest.mark.parametrize("n_nodes", [4, 16])
    def test_xfs_epoch_within_30pct_of_des(self, n_nodes):
        scale = Scale(files_per_rank=16, sim_batch_size=8, repetitions=1)
        des = run_training("xfs", RESNET50, IMAGENET21K, n_nodes, scale)
        analytic = AnalyticModel(
            SUMMIT, RESNET50, IMAGENET21K, n_nodes, procs_per_node=6
        ).predict_xfs()
        assert des.epoch_times[1] == pytest.approx(
            analytic.epoch_seconds, rel=0.30
        )

    def test_gpfs_epoch_within_30pct_of_des(self):
        scale = Scale(files_per_rank=16, sim_batch_size=8, repetitions=1)
        des = run_training("gpfs", RESNET50, IMAGENET21K, 16, scale)
        analytic = AnalyticModel(
            SUMMIT, RESNET50, IMAGENET21K, 16, procs_per_node=6
        ).predict_gpfs()
        assert des.epoch_times[1] == pytest.approx(
            analytic.epoch_seconds, rel=0.30
        )

    def test_hvac_epoch_within_35pct_of_des(self):
        scale = Scale(files_per_rank=16, sim_batch_size=8, repetitions=1)
        des = run_training("hvac4", RESNET50, IMAGENET21K, 16, scale)
        analytic = AnalyticModel(
            SUMMIT, RESNET50, IMAGENET21K, 16, procs_per_node=6
        ).predict_hvac(4)
        assert des.epoch_times[1] == pytest.approx(
            analytic.epoch_seconds, rel=0.35
        )
