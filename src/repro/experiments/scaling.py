"""Figures 8 & 9: training time vs node count, and normalized views.

Fig 8 (a–d): total training time for each DL application across a node
sweep, for GPFS / HVAC(1×1, 2×1, 4×1) / XFS-on-NVMe.

Fig 9a: HVAC improvement normalized to GPFS (the paper reports 7–25% up
to 256 nodes, >50% at 512/1024).
Fig 9b: HVAC overhead normalized to XFS-on-NVMe (≈25% / 14% / 9% for
1×1 / 2×1 / 4×1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis import format_series
from ..cluster import ClusterSpec, SUMMIT
from ..dl import DatasetSpec, ModelSpec
from ..model import AnalyticModel
from .harness import Scale, repeat_training

__all__ = [
    "NodeScalingResult",
    "node_scaling",
    "node_scaling_analytic",
    "normalized_to_gpfs",
    "overhead_vs_xfs",
]

DEFAULT_SYSTEMS = ("gpfs", "hvac1", "hvac2", "hvac4", "xfs")


@dataclass
class NodeScalingResult:
    """Fig 8 panel data: total minutes per system per node count."""

    model_name: str
    dataset_name: str
    epochs: int
    node_counts: list[int]
    total_minutes: dict[str, list[float]] = field(default_factory=dict)
    ci_minutes: dict[str, list[float]] = field(default_factory=dict)

    def render(self) -> str:
        return format_series(
            "nodes",
            self.node_counts,
            self.total_minutes,
            title=(
                f"Fig 8 ({self.model_name}/{self.dataset_name}): "
                f"training time, minutes [{self.epochs} epochs]"
            ),
        )


def node_scaling(
    model: ModelSpec,
    dataset_spec: DatasetSpec,
    node_counts: list[int],
    scale: Scale,
    spec: ClusterSpec = SUMMIT,
    systems: tuple[str, ...] = DEFAULT_SYSTEMS,
    total_epochs: int = 10,
    batch_size: int = 0,
) -> NodeScalingResult:
    """Event-driven Fig 8 sweep (simulate cold+warm, extrapolate)."""
    from ..baselines import SYSTEM_SETUPS

    result = NodeScalingResult(
        model_name=model.name,
        dataset_name=dataset_spec.name,
        epochs=total_epochs,
        node_counts=list(node_counts),
    )
    for system in systems:
        label = SYSTEM_SETUPS[system].label if isinstance(system, str) else system.label
        means, cis = [], []
        for n_nodes in node_counts:
            ci, _ = repeat_training(
                system,
                model,
                dataset_spec,
                n_nodes,
                scale,
                total_epochs=total_epochs,
                spec=spec,
                batch_size=batch_size,
            )
            means.append(ci.mean / 60.0)
            cis.append(ci.half_width / 60.0)
        result.total_minutes[label] = means
        result.ci_minutes[label] = cis
    return result


def node_scaling_analytic(
    model: ModelSpec,
    dataset_spec: DatasetSpec,
    node_counts: list[int],
    spec: ClusterSpec = SUMMIT,
    total_epochs: int = 10,
    procs_per_node: int = 6,
    batch_size: int = 0,
) -> NodeScalingResult:
    """Closed-form Fig 8 sweep — full 1→1024 range, instant."""
    result = NodeScalingResult(
        model_name=model.name,
        dataset_name=dataset_spec.name,
        epochs=total_epochs,
        node_counts=list(node_counts),
    )
    labels_instances = [("HVAC(1x1)", 1), ("HVAC(2x1)", 2), ("HVAC(4x1)", 4)]
    gpfs, xfs = [], []
    hvac: dict[str, list[float]] = {label: [] for label, _ in labels_instances}
    for n_nodes in node_counts:
        m = AnalyticModel(
            spec, model, dataset_spec, n_nodes,
            procs_per_node=procs_per_node,
            batch_size=batch_size or model.default_batch_size,
        )
        g = m.predict_gpfs().epoch_seconds
        x = m.predict_xfs().epoch_seconds
        gpfs.append(total_epochs * g / 60.0)
        xfs.append(total_epochs * x / 60.0)
        for label, inst in labels_instances:
            cold = m.predict_hvac_cold(inst).epoch_seconds
            warm = m.predict_hvac(inst).epoch_seconds
            hvac[label].append((cold + (total_epochs - 1) * warm) / 60.0)
    result.total_minutes["GPFS"] = gpfs
    for label, _ in labels_instances:
        result.total_minutes[label] = hvac[label]
    result.total_minutes["XFS-on-NVMe"] = xfs
    return result


def normalized_to_gpfs(result: NodeScalingResult) -> dict[str, list[float]]:
    """Fig 9a: percent improvement of each HVAC variant over GPFS."""
    gpfs = np.asarray(result.total_minutes["GPFS"])
    out = {}
    for label, series in result.total_minutes.items():
        if not label.startswith("HVAC"):
            continue
        out[label] = (100.0 * (1.0 - np.asarray(series) / gpfs)).tolist()
    return out


def overhead_vs_xfs(result: NodeScalingResult) -> dict[str, list[float]]:
    """Fig 9b: percent overhead of each HVAC variant vs XFS-on-NVMe."""
    xfs = np.asarray(result.total_minutes["XFS-on-NVMe"])
    out = {}
    for label, series in result.total_minutes.items():
        if not label.startswith("HVAC"):
            continue
        out[label] = (100.0 * (np.asarray(series) / xfs - 1.0)).tolist()
    return out
