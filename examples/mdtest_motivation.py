#!/usr/bin/env python3
"""The paper's motivation experiment (Figs 3 & 4): MDTest on GPFS vs XFS.

Small files (32 KB) expose the PFS metadata ceiling; large files (8 MB)
expose its bandwidth ceiling; node-local XFS scales linearly in both
regimes.  Prints the DES results for a modest sweep and the analytic
full sweep up to 4,096 nodes.

    python examples/mdtest_motivation.py
"""

from repro.experiments import (
    LARGE_FILE,
    SMALL_FILE,
    mdtest_scaling,
    mdtest_scaling_analytic,
)


def main() -> None:
    des_nodes = [1, 4, 16, 64]
    full_nodes = [16, 64, 256, 1024, 4096]

    print("event-driven MDTest (this takes a few seconds)...\n")
    for file_size, name in ((SMALL_FILE, "32 KB"), (LARGE_FILE, "8 MB")):
        des = mdtest_scaling(
            file_size,
            des_nodes,
            ranks_per_node=6,
            files_per_rank=8 if file_size == SMALL_FILE else 3,
        )
        print(des.render())
        ratios = ", ".join(f"{r:.1f}x" for r in des.ratio())
        print(f"XFS/GPFS advantage by node count: {ratios}\n")

    print("analytic full sweep:\n")
    for file_size in (SMALL_FILE, LARGE_FILE):
        print(mdtest_scaling_analytic(file_size, full_nodes).render())
        print()


if __name__ == "__main__":
    main()
