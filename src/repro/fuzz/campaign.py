"""Budgeted fuzz campaigns + JSON case files (``repro fuzz``).

A campaign is a loop of *propose → execute → check → feed back*:

* proposals come from the :class:`~repro.fuzz.autopilot.Autopilot`
  (fresh generator samples, biased toward near-violation mutants);
* every ``determinism_every``-th run executes twice and compares
  event-stream fingerprints;
* every failure is shrunk to a minimal repro and persisted as a JSON
  case file named by its scenario digest, so a double campaign run
  writes the identical corpus — the determinism acceptance bar.

Case-file schema (version 1)::

    {
      "version": 1,
      "digest": "<scenario digest>",
      "campaign_seed": 7, "run_index": 12, "origin": "fresh",
      "config": { ...InvariantConfig fields... },
      "scenario": { ...Scenario.to_dict()... },
      "violations": [{"invariant", "message", "value", "bound"}, ...],
      "margins": {"hung_read": 0.83, ...},
      "fingerprint": "<run fingerprint>",
      "shrunk": {
        "scenario": { ... }, "digest": "...",
        "violations": [...], "checks": 37,
        "removed": {"faults": 4, "clients": 2, "files": 20, "epochs": 1},
        "divergence": null | "<first divergent event>"
      }
    }

``repro fuzz --replay case.json`` re-executes the shrunk scenario (or
the original with ``--original``) under the recorded config and exits 0
only if the recorded invariants fire again.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from ..simcore import EventTrace, RandomStreams
from .autopilot import Autopilot
from .executor import execute
from .invariants import (
    InvariantConfig,
    InvariantReport,
    InvariantViolation,
    check_observation,
)
from .scenario import Scenario, ScenarioGenerator, scenario_digest
from .shrink import ShrinkResult, shrink

__all__ = ["CampaignResult", "replay_case", "run_campaign", "write_case"]

CASE_VERSION = 1


@dataclass
class RunRecord:
    """One campaign iteration's outcome line."""

    index: int
    digest: str
    origin: str
    kind: str  #: workload kind (display)
    n_faults: int
    score: float
    violated: tuple[str, ...]


@dataclass
class CampaignResult:
    """Everything one ``repro fuzz`` campaign produced."""

    seed: int
    runs: list[RunRecord] = field(default_factory=list)
    cases: list[dict] = field(default_factory=list)
    case_paths: list[str] = field(default_factory=list)
    out_of_budget: bool = False

    @property
    def n_violations(self) -> int:
        return len(self.cases)

    @property
    def ok(self) -> bool:
        return not self.cases

    def render(self) -> str:
        lines = []
        for r in self.runs:
            verdict = (
                "VIOLATED " + ",".join(r.violated) if r.violated else "ok"
            )
            lines.append(
                f"run {r.index:3d}  {r.digest[:12]}  {r.kind:<9s} "
                f"faults={r.n_faults:<2d} margin={r.score:.2f}  "
                f"[{r.origin}]  {verdict}"
            )
        lines.append(
            f"{len(self.runs)} scenarios, {self.n_violations} invariant "
            f"violation(s)"
            + (" [stopped: time budget]" if self.out_of_budget else "")
        )
        return "\n".join(lines)


def _case_dict(
    seed: int,
    index: int,
    origin: str,
    scenario: Scenario,
    config: InvariantConfig,
    report: InvariantReport,
    fingerprint: str,
    shrunk: ShrinkResult | None,
) -> dict:
    case = {
        "version": CASE_VERSION,
        "digest": scenario_digest(scenario),
        "campaign_seed": seed,
        "run_index": index,
        "origin": origin,
        "config": config.to_dict(),
        "scenario": scenario.to_dict(),
        "violations": [
            {
                "invariant": v.invariant,
                "message": v.message,
                "value": v.value,
                "bound": v.bound,
            }
            for v in report.violations
        ],
        "margins": report.margins,
        "fingerprint": fingerprint,
        "shrunk": None,
    }
    if shrunk is not None:
        case["shrunk"] = {
            "scenario": shrunk.shrunk.to_dict(),
            "digest": shrunk.digest,
            "violations": [
                {
                    "invariant": v.invariant,
                    "message": v.message,
                    "value": v.value,
                    "bound": v.bound,
                }
                for v in shrunk.report.violations
            ],
            "checks": shrunk.checks,
            "removed": {
                "faults": shrunk.removed_faults,
                "clients": shrunk.removed_clients,
                "files": shrunk.removed_files,
                "epochs": shrunk.removed_epochs,
            },
            "divergence": shrunk.divergence,
        }
    return case


def write_case(case: dict, corpus_dir: str) -> str:
    """Persist one case file; the digest names it, so identical failures
    land on the identical path."""
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, f"case_{case['digest'][:16]}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(case, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def run_campaign(
    runs: int = 25,
    seed: int = 0,
    corpus_dir: str | None = None,
    time_budget: float = 0.0,
    config: InvariantConfig | None = None,
    shrink_failures: bool = True,
    sanitizer=None,
    log=None,
) -> CampaignResult:
    """Run a budgeted campaign; returns every verdict + written cases.

    ``time_budget`` (wall seconds, 0 = unlimited) only stops the loop
    *between* runs, so a budgeted campaign is still a prefix of the
    unbudgeted one with the same seed.
    """
    config = config or InvariantConfig()
    generator = ScenarioGenerator(seed)
    autopilot = Autopilot(RandomStreams(seed).child("fuzz.autopilot"))
    result = CampaignResult(seed=seed)
    started = time.monotonic()  # simlint: waive SIM001 -- driver-side budget clock

    for index in range(runs):
        if index and time_budget > 0 and time.monotonic() - started > time_budget:  # simlint: waive SIM001 -- driver-side budget clock
            result.out_of_budget = True
            break
        scenario, origin = autopilot.propose(generator, index)
        trace = EventTrace()
        obs = execute(scenario, config, trace=trace, sanitizer=sanitizer)
        second = None
        if config.determinism_every > 0 and index % config.determinism_every == 0:
            second = execute(scenario, config, trace=EventTrace()).fingerprint
        report = check_observation(obs, config, second_fingerprint=second)
        autopilot.observe(scenario, report, origin=origin)
        record = RunRecord(
            index=index,
            digest=scenario_digest(scenario),
            origin=origin,
            kind=scenario.workload.kind,
            n_faults=len(scenario.faults),
            score=report.score,
            violated=report.violated,
        )
        result.runs.append(record)
        if log is not None:
            log(record)
        if report.violations:
            shrunk = (
                shrink(scenario, report.violated, config)
                if shrink_failures else None
            )
            case = _case_dict(
                seed, index, origin, scenario, config, report,
                obs.fingerprint, shrunk,
            )
            result.cases.append(case)
            if corpus_dir:
                result.case_paths.append(write_case(case, corpus_dir))
    return result


def load_case(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        case = json.load(fh)
    if case.get("version") != CASE_VERSION:
        raise ValueError(
            f"unsupported case-file version {case.get('version')!r}"
        )
    return case


def replay_case(
    path: str, original: bool = False
) -> tuple[InvariantReport, tuple[str, ...], Scenario]:
    """Re-run a case file; returns ``(report, expected, scenario)``.

    Replays the shrunk scenario when one was recorded (the minimal
    repro is the artifact worth debugging), unless ``original``.
    """
    case = load_case(path)
    config = InvariantConfig.from_dict(case["config"])
    source = case["scenario"]
    expected_rows = case["violations"]
    if not original and case.get("shrunk"):
        source = case["shrunk"]["scenario"]
        expected_rows = case["shrunk"]["violations"]
    scenario = Scenario.from_dict(source)
    expected = tuple(dict.fromkeys(row["invariant"] for row in expected_rows))

    obs = execute(scenario, config, trace=EventTrace())
    second = execute(scenario, config, trace=EventTrace()).fingerprint
    report = check_observation(obs, config, second_fingerprint=second)
    return report, expected, scenario


def render_violations(violations: list[InvariantViolation]) -> str:
    return "\n".join(f"  {v.render()}" for v in violations) or "  (none)"
