"""Compute fabric model (Summit: non-blocking EDR Infiniband fat tree).

Each node owns a TX and an RX port.  A transfer holds the sender's TX
port and the receiver's RX port simultaneously for

    ``link_latency + nbytes / nic_bandwidth``

so a single flow sees full NIC bandwidth while competing flows through
either endpoint queue up — the contention that matters for HVAC remote
cache reads (many clients hashing to one server).  The switch core is
treated as non-blocking, which matches Summit's fat tree; rack-level
oversubscription can be modelled by lowering
``bisection_bandwidth_per_node`` (enforced as a fabric-wide token pool).

Same-node transfers model the shared-memory path: endpoint overhead plus
a copy at ``loopback_bandwidth``.

Link faults (gray failures, §III-H extension): a per-link drop
probability and extra delay can be injected at runtime
(:meth:`Fabric.set_link_fault`), and whole nodes can be partitioned off
(:meth:`Fabric.isolate`).  A dropped message spends its propagation time
and then vanishes — :meth:`transfer` returns ``False`` — so a lost RPC
reply surfaces at the caller only as a deadline expiry, never as an
oracle signal.  Drop decisions come from a dedicated seeded stream, so
flaky-link runs are deterministic.
"""

from __future__ import annotations

from typing import Generator

from ..simcore import (
    Environment,
    MetricRegistry,
    RandomStreams,
    Resource,
    SimulationError,
)
from .specs import NetworkSpec

__all__ = ["Fabric", "RateLimiter"]


class _Port:
    """One direction of one NIC: a FIFO, capacity-1 bandwidth server."""

    __slots__ = ("res",)

    def __init__(self, env: Environment):
        self.res = Resource(env, capacity=1)


class Fabric:
    """The interconnect among ``n_nodes`` compute nodes."""

    def __init__(
        self,
        env: Environment,
        spec: NetworkSpec,
        n_nodes: int,
        metrics: MetricRegistry | None = None,
        rand: RandomStreams | None = None,
    ):
        if n_nodes <= 0:
            raise SimulationError("n_nodes must be positive")
        self.env = env
        self.spec = spec
        self.n_nodes = n_nodes
        self.metrics = metrics or MetricRegistry()
        self._tx = [_Port(env) for _ in range(n_nodes)]
        self._rx = [_Port(env) for _ in range(n_nodes)]
        # Core capacity: a pool of "flow" tokens.  With the default
        # non-blocking spec this is one token per possible endpoint and
        # never binds; an oversubscribed fabric gets fewer tokens.
        ratio = spec.bisection_bandwidth_per_node / spec.nic_bandwidth
        core_flows = max(1, int(n_nodes * min(ratio, 1.0)))
        self._core = Resource(env, capacity=core_flows)
        # Optional rack topology: per-rack uplink ports (each direction
        # a serial bandwidth server) that inter-rack flows must cross.
        self._rack_size = spec.rack_size
        if self._rack_size > 0:
            n_racks = -(-n_nodes // self._rack_size)
            self._uplink_tx = [_Port(env) for _ in range(n_racks)]
            self._uplink_rx = [_Port(env) for _ in range(n_racks)]
            self._uplink_bw = (
                spec.rack_uplink_bandwidth
                or self._rack_size * spec.nic_bandwidth
            )
        else:
            self._uplink_tx = self._uplink_rx = []
            self._uplink_bw = 0.0
        # -- injected link faults --------------------------------------
        #: (src, dst) -> (drop probability, extra one-way delay)
        self._link_faults: dict[tuple[int, int], tuple[float, float]] = {}
        self._partitioned: set[int] = set()
        # Drop decisions draw from a named child of the experiment's
        # stream tree (or a default tree keyed on the fabric size), so
        # flaky-link runs replay bit-for-bit and drawing drops never
        # perturbs any other component's stream.
        self._fault_rng = (
            rand if rand is not None else RandomStreams(n_nodes)
        ).child("fabric").stream("drops")

    # -- fault injection -------------------------------------------------
    def seed_faults(self, seed: int) -> None:
        """Re-seed the drop-decision stream (deterministic experiments)."""
        self._fault_rng = RandomStreams(seed).child("fabric").stream("drops")

    def set_link_fault(
        self,
        src: int,
        dst: int,
        drop_prob: float = 0.0,
        extra_delay: float = 0.0,
        symmetric: bool = True,
    ) -> None:
        """Make the ``src → dst`` link flaky (and ``dst → src`` too when
        ``symmetric``)."""
        self._check_node(src)
        self._check_node(dst)
        if not 0.0 <= drop_prob <= 1.0:
            raise SimulationError("drop_prob must be in [0, 1]")
        if extra_delay < 0:
            raise SimulationError("extra_delay must be >= 0")
        self._link_faults[(src, dst)] = (drop_prob, extra_delay)
        if symmetric:
            self._link_faults[(dst, src)] = (drop_prob, extra_delay)

    def clear_link_fault(self, src: int, dst: int, symmetric: bool = True) -> None:
        self._link_faults.pop((src, dst), None)
        if symmetric:
            self._link_faults.pop((dst, src), None)

    def isolate(self, node_id: int) -> None:
        """Transient partition: every message to or from ``node_id`` is lost."""
        self._check_node(node_id)
        self._partitioned.add(node_id)

    def heal(self, node_id: int) -> None:
        self._partitioned.discard(node_id)

    def clear_faults(self) -> None:
        self._link_faults.clear()
        self._partitioned.clear()

    def _link_state(self, src: int, dst: int) -> tuple[float, float]:
        if src in self._partitioned or dst in self._partitioned:
            return 1.0, 0.0
        return self._link_faults.get((src, dst), (0.0, 0.0))

    def _check_node(self, node_id: int) -> None:
        if not 0 <= node_id < self.n_nodes:
            raise SimulationError(f"node id {node_id} out of range 0..{self.n_nodes - 1}")

    def transfer(self, src: int, dst: int, nbytes: int) -> Generator:
        """Move ``nbytes`` from ``src`` to ``dst``; yields until delivered
        (or lost).  Returns ``True`` on delivery, ``False`` when an
        injected link fault or partition swallowed the message — the
        *receiver* never learns a lost message existed; only the sender's
        deadline can."""
        self._check_node(src)
        self._check_node(dst)
        if nbytes < 0:
            raise SimulationError("nbytes must be >= 0")
        spec = self.spec

        if src == dst:
            # Shared memory: immune to fabric faults (and to partitions —
            # a node can always talk to itself).
            yield self.env.timeout(
                spec.per_message_overhead + nbytes / spec.loopback_bandwidth
            )
            self.metrics.counter("fabric.local_transfers").incr()
            return True

        drop_prob, extra_delay = self._link_state(src, dst)
        yield self.env.timeout(spec.per_message_overhead)
        if extra_delay:
            yield self.env.timeout(extra_delay)
        if drop_prob and (
            drop_prob >= 1.0 or self._fault_rng.random() < drop_prob
        ):
            # The message dies in the fabric after its propagation time,
            # without ever occupying the receiver's port.
            yield self.env.timeout(spec.link_latency)
            self.metrics.counter("fabric.dropped_messages").incr()
            return False
        with self._tx[src].res.request() as tx:
            yield tx
            with self._rx[dst].res.request() as rx:
                yield rx
                with self._core.request() as flow:
                    yield flow
                    if self._crosses_racks(src, dst):
                        yield from self._inter_rack_leg(src, dst, nbytes)
                    else:
                        yield self.env.timeout(
                            spec.link_latency + nbytes / spec.nic_bandwidth
                        )
        self.metrics.counter("fabric.remote_transfers").incr()
        self.metrics.tally("fabric.remote_bytes").add(nbytes)
        return True

    # -- topology --------------------------------------------------------
    def rack_of(self, node_id: int) -> int:
        """The rack containing ``node_id`` (0 for a flat fabric)."""
        self._check_node(node_id)
        return node_id // self._rack_size if self._rack_size > 0 else 0

    def _crosses_racks(self, src: int, dst: int) -> bool:
        return self._rack_size > 0 and self.rack_of(src) != self.rack_of(dst)

    def _inter_rack_leg(self, src: int, dst: int, nbytes: int) -> Generator:
        """Cross-rack hop: also hold both racks' uplink ports; the flow
        runs at the slower of NIC and uplink bandwidth."""
        spec = self.spec
        with self._uplink_tx[self.rack_of(src)].res.request() as up:
            yield up
            with self._uplink_rx[self.rack_of(dst)].res.request() as down:
                yield down
                rate = min(spec.nic_bandwidth, self._uplink_bw)
                yield self.env.timeout(2 * spec.link_latency + nbytes / rate)
        self.metrics.counter("fabric.inter_rack_transfers").incr()

    def message(self, src: int, dst: int) -> Generator:
        """A small control message (RPC header-sized): latency only."""
        yield from self.transfer(src, dst, 256)

    def tx_queue_len(self, node_id: int) -> int:
        self._check_node(node_id)
        return self._tx[node_id].res.queued

    def rx_queue_len(self, node_id: int) -> int:
        self._check_node(node_id)
        return self._rx[node_id].res.queued


class RateLimiter:
    """A byte-per-second pacing gate for background bulk flows.

    Repair streams (and any future scrubber/rebalancer) call
    :meth:`throttle` before each transfer; the limiter serializes the
    paced slots so the aggregate admitted rate never exceeds ``rate``
    bytes/s, regardless of how many flows share it.  ``rate <= 0``
    disables pacing.  Note this only *admits* traffic — the bytes still
    cross the real fabric links afterwards and contend there.
    """

    def __init__(self, env: Environment, rate: float = 0.0, name: str = "limiter"):
        if rate < 0:
            raise SimulationError("rate must be >= 0")
        self.env = env
        self.rate = rate
        self.name = name
        self._ready = 0.0

    def throttle(self, nbytes: int) -> Generator:
        """Yield until ``nbytes`` fit under the configured rate."""
        if self.rate <= 0:
            return
        # The reservation below is read-modify-write on the shared token:
        # two flows throttling at one timestamp get paced in nothing but
        # heap-insertion order, which the race sanitizer flags.
        self.env.note_access(f"limiter.{self.name}", "r")
        self.env.note_access(f"limiter.{self.name}", "w")
        start = max(self._ready, self.env.now)
        self._ready = start + nbytes / self.rate
        delay = self._ready - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
