"""Figure 14: training-to-accuracy, GPFS vs HVAC (vs static sharding).

The reproduction makes the paper's argument executable:

* GPFS and HVAC deliver the *same* shuffle sequences (HVAC's hashing is
  a lookup function, not a reordering), so an SGD learner fed by either
  produces bit-identical accuracy trajectories;
* a statically *sharded* loader (the technique the paper contrasts,
  where a node only ever sees its local shard) biases the stream and
  degrades final accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import format_table
from ..dl.accuracy import (
    AccuracyCurve,
    ClassificationTask,
    SGDTrainer,
    sharded_orders,
)
from ..simcore import RandomStreams

__all__ = ["AccuracyComparison", "accuracy_comparison"]


@dataclass
class AccuracyComparison:
    """Fig 14 data: curves for GPFS, HVAC, and a sharded loader."""

    gpfs: AccuracyCurve
    hvac: AccuracyCurve
    sharded: AccuracyCurve

    @property
    def identical_gpfs_hvac(self) -> bool:
        """The paper's claim, checked exactly."""
        return (
            self.gpfs.top1 == self.hvac.top1
            and self.gpfs.top5 == self.hvac.top5
        )

    def render(self) -> str:
        rows = []
        for label, curve in (
            ("GPFS", self.gpfs),
            ("HVAC", self.hvac),
            ("sharded", self.sharded),
        ):
            rows.append(
                [
                    label,
                    curve.final_top1(),
                    curve.final_top5(),
                    curve.iterations_to_top1(0.9 * self.gpfs.final_top1()) or -1,
                ]
            )
        return format_table(
            ["loader", "final top-1", "final top-5", "iters to 90% of GPFS top-1"],
            rows,
            title="Fig 14: ResNet50-surrogate accuracy by data-loading path",
        )


def _global_shuffle_orders(n_samples: int, n_epochs: int, seed: int) -> list[np.ndarray]:
    rand = RandomStreams(seed)
    return [
        rand.child(f"epoch{e}").shuffled("order", n_samples) for e in range(n_epochs)
    ]


def accuracy_comparison(
    n_epochs: int = 12,
    n_shards: int = 16,
    task: ClassificationTask | None = None,
    seed: int = 0,
    eval_every: int = 20,
) -> AccuracyComparison:
    """Train three identical learners that differ only in sample order."""
    task = task or ClassificationTask(seed=seed)
    n = task.n_train

    # GPFS and HVAC both deliver the global shuffle: HVAC redirects the
    # *lookup*, not the order (same seed → same sequence).
    gpfs_orders = _global_shuffle_orders(n, n_epochs, seed)
    hvac_orders = _global_shuffle_orders(n, n_epochs, seed)
    shard_orders = sharded_orders(n, n_epochs, n_shards, visible_shard=0, seed=seed)

    results = []
    for orders in (gpfs_orders, hvac_orders, shard_orders):
        trainer = SGDTrainer(task)
        results.append(trainer.train(orders, eval_every=eval_every))
    return AccuracyComparison(gpfs=results[0], hvac=results[1], sharded=results[2])
