"""Dependency-free ASCII charts for terminal figure output.

The tables printed by the benchmarks carry the numbers; these charts
carry the *shape* — saturation plateaus and crossovers are the paper's
actual story, and they read at a glance as a curve.  No matplotlib
required (the environment is offline); pure text.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#%@&"


def _log_ticks(lo: float, hi: float) -> tuple[float, float]:
    return math.log10(lo), math.log10(hi)


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 10_000 or abs(v) < 0.01:
        return f"{v:.1e}"
    if abs(v) >= 100:
        return f"{v:.0f}"
    return f"{v:.3g}"


def ascii_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    width: int = 60,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render a multi-series scatter/line chart as text.

    Each series gets a marker character; overlapping points show the
    later series' marker.  Log scales make the paper's saturation
    plateaus and linear-scaling lines visually obvious.
    """
    if not x_values or not series:
        raise ValueError("need at least one x value and one series")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
    if width < 10 or height < 4:
        raise ValueError("chart too small")

    xs = [float(x) for x in x_values]
    all_y = [float(y) for ys in series.values() for y in ys]
    if log_x and min(xs) <= 0:
        raise ValueError("log_x requires positive x values")
    if log_y and min(all_y) <= 0:
        raise ValueError("log_y requires positive y values")

    def tx(v: float) -> float:
        return math.log10(v) if log_x else v

    def ty(v: float) -> float:
        return math.log10(v) if log_y else v

    x_lo, x_hi = tx(min(xs)), tx(max(xs))
    y_lo, y_hi = ty(min(all_y)), ty(max(all_y))
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[s_idx % len(_MARKERS)]
        cols_rows = []
        for x, y in zip(xs, ys):
            col = round((tx(x) - x_lo) / x_span * (width - 1))
            row = round((ty(float(y)) - y_lo) / y_span * (height - 1))
            cols_rows.append((col, height - 1 - row))
        # connect consecutive points with a sparse line
        for (c0, r0), (c1, r1) in zip(cols_rows, cols_rows[1:]):
            steps = max(abs(c1 - c0), abs(r1 - r0), 1)
            for k in range(steps + 1):
                c = round(c0 + (c1 - c0) * k / steps)
                r = round(r0 + (r1 - r0) * k / steps)
                if grid[r][c] == " ":
                    grid[r][c] = "."
        for c, r in cols_rows:
            grid[r][c] = marker

    y_hi_s, y_lo_s = _fmt(max(all_y)), _fmt(min(all_y))
    gutter = max(len(y_hi_s), len(y_lo_s)) + 1
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            label = y_hi_s
        elif r == height - 1:
            label = y_lo_s
        else:
            label = ""
        lines.append(f"{label.rjust(gutter)} |{''.join(row)}")
    lines.append(" " * gutter + " +" + "-" * width)
    x_lo_s, x_hi_s = _fmt(min(xs)), _fmt(max(xs))
    pad = width - len(x_lo_s) - len(x_hi_s)
    lines.append(" " * (gutter + 2) + x_lo_s + " " * max(pad, 1) + x_hi_s)
    scale_note = []
    if log_x:
        scale_note.append("log x")
    if log_y:
        scale_note.append("log y")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    suffix = f"   [{', '.join(scale_note)}]" if scale_note else ""
    axis = f"{x_label}" + (f" vs {y_label}" if y_label else "")
    lines.append(" " * (gutter + 2) + (axis + "   " if axis else "") + legend + suffix)
    return "\n".join(lines)
