"""Statistical reductions used by the experiment harness.

The paper reports means with 95% confidence intervals over three
repetitions (§IV-A3); :func:`mean_ci` reproduces exactly that (normal
approximation for n≥30, Student-t otherwise, matching common practice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["MeanCI", "mean_ci", "empirical_cdf", "gini", "load_imbalance"]

# Two-sided Student-t 97.5% quantiles for small n (df = n-1).
_T975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    15: 2.131, 20: 2.086, 29: 2.045,
}


def _t975(df: int) -> float:
    if df <= 0:
        return float("nan")
    if df in _T975:
        return _T975[df]
    for known in sorted(_T975):
        if df < known:
            return _T975[known]
    return 1.96


@dataclass(frozen=True)
class MeanCI:
    """Sample mean with a symmetric 95% confidence half-width."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.3g} ± {self.half_width:.2g}"


def mean_ci(samples: Sequence[float]) -> MeanCI:
    """95% CI of the mean (Student-t)."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("no samples")
    if arr.size == 1:
        return MeanCI(mean=float(arr[0]), half_width=0.0, n=1)
    sem = float(arr.std(ddof=1)) / np.sqrt(arr.size)
    return MeanCI(
        mean=float(arr.mean()),
        half_width=_t975(arr.size - 1) * sem,
        n=int(arr.size),
    )


def empirical_cdf(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """(sorted values, cumulative probability) — Fig 15's CDF axes."""
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ValueError("no values")
    probs = np.arange(1, arr.size + 1) / arr.size
    return arr, probs


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a load distribution (0 = perfectly balanced)."""
    arr = np.sort(np.asarray(list(values), dtype=float))
    if arr.size == 0:
        raise ValueError("no values")
    total = arr.sum()
    if total == 0:
        return 0.0
    n = arr.size
    cum = np.cumsum(arr)
    return float((n + 1 - 2 * (cum / total).sum()) / n)


def load_imbalance(values: Sequence[float]) -> float:
    """max/mean ratio — 1.0 is a perfectly even file distribution."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("no values")
    mean = arr.mean()
    return float(arr.max() / mean) if mean > 0 else 0.0
