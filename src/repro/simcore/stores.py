"""Message-queue primitives: FIFO and priority stores.

The HVAC server's *shared FIFO queue* (paper §III-C/D: every server
spawns a data-mover thread draining a mutex-protected FIFO of forwarded
file I/O operations) is modelled with :class:`Store`.  RPC endpoints use
one :class:`Store` per mailbox.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Optional

from .engine import Environment, Event, SimulationError

__all__ = ["Store", "PriorityStore", "FilterStore", "StoreFull"]


class StoreFull(Exception):
    """Raised by :meth:`Store.put_nowait` when the store is at capacity."""


class _StorePut(Event):
    __slots__ = ("item", "_store")

    def __init__(self, env: Environment, item: Any):
        super().__init__(env)
        self.item = item
        self._store: "Store | None" = None

    def _withdraw(self) -> None:
        """Leave the wait queue (the waiting process was interrupted)."""
        if self._store is not None:
            try:
                self._store._puts.remove(self)
            except ValueError:
                pass


class _StoreGet(Event):
    __slots__ = ("_store",)

    def __init__(self, env: Environment):
        super().__init__(env)
        self._store: "Store | None" = None

    def _withdraw(self) -> None:
        """Leave the wait queue — an interrupted getter must not become
        a phantom consumer that swallows the next item."""
        if self._store is not None:
            try:
                self._store._gets.remove(self)
            except ValueError:
                pass


class Store:
    """FIFO store of arbitrary items with optional capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("capacity must be > 0")
        self.env = env
        self._capacity = capacity
        # Deques, not lists: every server data-mover pops the head once
        # per forwarded I/O, and list.pop(0) is O(n) per event (PERF105).
        self.items: deque = deque()
        self._puts: deque[_StorePut] = deque()
        self._gets: deque[_StoreGet] = deque()

    @property
    def capacity(self) -> float:
        return self._capacity

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> _StorePut:
        """Insert ``item``; the returned event triggers once stored."""
        evt = _StorePut(self.env, item)
        evt._store = self
        self._puts.append(evt)
        self._settle()
        return evt

    def put_nowait(self, item: Any) -> None:
        """Insert immediately or raise :class:`StoreFull`."""
        if len(self.items) >= self._capacity:
            raise StoreFull()
        self.items.append(item)
        self._settle()

    def get(self) -> _StoreGet:
        """Remove and return the oldest item (event-valued)."""
        evt = _StoreGet(self.env)
        evt._store = self
        self._gets.append(evt)
        self._settle()
        return evt

    def _do_put(self, evt: _StorePut) -> bool:
        if len(self.items) < self._capacity:
            self.items.append(evt.item)
            evt.succeed()
            return True
        return False

    def _do_get(self, evt: _StoreGet) -> bool:
        if self.items:
            evt.succeed(self.items.popleft())
            return True
        return False

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._puts and self._do_put(self._puts[0]):
                self._puts.popleft()
                progressed = True
            if self._gets and self._do_get(self._gets[0]):
                self._gets.popleft()
                progressed = True


class PriorityStore(Store):
    """Store whose items are retrieved lowest-first (heap order)."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        super().__init__(env, capacity)
        self._tiebreak = itertools.count()
        self.items = []  # heapq needs a list, not the base deque

    def _do_put(self, evt: _StorePut) -> bool:
        if len(self.items) < self._capacity:
            heapq.heappush(self.items, (evt.item, next(self._tiebreak)))
            evt.succeed()
            return True
        return False

    def _do_get(self, evt: _StoreGet) -> bool:
        if self.items:
            item, _ = heapq.heappop(self.items)
            evt.succeed(item)
            return True
        return False


class _FilterStoreGet(_StoreGet):
    __slots__ = ("filter",)

    def __init__(self, env: Environment, filt: Callable[[Any], bool]):
        super().__init__(env)
        self.filter = filt


def _accept_any(item: Any) -> bool:
    """Default FilterStore predicate (module-level: gets are per-event,
    and a fresh lambda per get is pure hot-path allocation, PERF102)."""
    return True


class FilterStore(Store):
    """Store supporting predicated gets: ``get(lambda item: ...)``.

    Used by the HVAC server's in-flight-fetch table where a waiter only
    wants the completion record of *its* file.
    """

    def get(self, filt: Optional[Callable[[Any], bool]] = None) -> _FilterStoreGet:  # type: ignore[override]
        evt = _FilterStoreGet(self.env, filt or _accept_any)
        evt._store = self
        self._gets.append(evt)
        self._settle()
        return evt

    def _do_get(self, evt: _FilterStoreGet) -> bool:  # type: ignore[override]
        for i, item in enumerate(self.items):
            if evt.filter(item):
                del self.items[i]
                evt.succeed(item)
                return True
        return False

    def _settle(self) -> None:
        # Filtered gets can't use strict head-of-line matching: scan all
        # waiting gets each round so a match deeper in the queue is served.
        progressed = True
        while progressed:
            progressed = False
            if self._puts and self._do_put(self._puts[0]):
                self._puts.popleft()
                progressed = True
            for evt in list(self._gets):
                if self._do_get(evt):
                    self._gets.remove(evt)
                    progressed = True
