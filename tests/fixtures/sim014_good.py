"""SIM014 fixture (clean): the same two-hop delegation shape, but the
producer sorts before yielding, so the order flowing down the yield
path is deterministic."""


def live():
    yield from sorted({"a", "b", "c"})


def relay():
    yield from live()


def drain(out):
    for name in relay():
        out.append(name)
