#!/usr/bin/env python3
"""Failure handling and replication (the paper's §III-H future work).

Faults are *injected* through a declarative, seedable
:class:`repro.faults.FaultSchedule` — crash, crash-with-recovery, a
wedged (hung) server, a flaky link — and *detected* purely client-side:
every forwarded read carries a deadline, timeouts and errors strike the
server in a per-client ``FailureDetector``, suspects sit out a probation
period, and a bounded retry loop falls back to the PFS.  Nobody consults
a health oracle.

* with ``replication_factor=1`` (the prototype), losing a node's NVMe
  degrades to PFS reads — slower, but the training run survives;
* with ``replication_factor=2``, replicas absorb the failure with
  almost no PFS traffic, and recovery brings the node back cold.

    python examples/failover_and_replication.py
"""

from repro.analysis import format_table
from repro.cluster import Allocation, SUMMIT
from repro.core import HVACDeployment
from repro.faults import FaultSchedule, crash, flaky_link, hang
from repro.simcore import Environment
from repro.storage import GPFS

N_NODES = 8
FILES = [(f"/gpfs/alpine/ds/f{i:03d}", 163_000) for i in range(200)]

#: tightened detection constants: deadline, strike threshold, probation
FAULTY_HVAC = dict(
    rpc_timeout=0.05, rpc_backoff_base=1e-4, rpc_backoff_cap=2e-3,
    suspect_after=2, probation_period=0.1,
)


def epoch(env, dep, tag):
    def reader(node_id):
        cli = dep.client(node_id)
        for path, size in FILES:
            yield from cli.read_file(path, size, node_id)

    t0 = env.now

    def run():
        procs = [env.process(reader(n)) for n in range(N_NODES)]
        for p in procs:
            yield p

    env.run(env.process(run()))
    return env.now - t0


def scenario(replication: int):
    env = Environment()
    spec = SUMMIT.with_hvac(replication_factor=replication, **FAULTY_HVAC)
    alloc = Allocation(env, spec, n_nodes=N_NODES)
    pfs = GPFS(env, spec.pfs, N_NODES, spec.network.nic_bandwidth)
    dep = HVACDeployment(alloc, pfs)

    t_warmup = epoch(env, dep, "cold")
    t_healthy = epoch(env, dep, "warm")

    # The fault scenario, declared up front: node 3's NVMe dies now and
    # comes back (cold) after 60 ms; node 5 wedges for 40 ms without
    # crashing; the 0<->2 link turns flaky for 30 ms.  The injector
    # replays it inside the sim clock; clients must *notice* on their own.
    dep.inject(FaultSchedule([
        crash(0.0, node=3, recover_after=0.06),
        hang(0.005, node=5, duration=0.04),
        flaky_link(0.01, 0, 2, drop_prob=0.5, duration=0.03),
    ]))
    t_faulty = epoch(env, dep, "under faults")
    fallbacks = dep.metrics.counter("hvac.client_pfs_fallback").value
    timeouts = dep.metrics.counter("hvac.client_rpc_timeouts").value

    # Probation expires, node 3 is re-probed and re-adopted cold.
    env.run(until=env.now + 0.2)
    t_recovering = epoch(env, dep, "recovering")
    t_recovered = epoch(env, dep, "recovered")
    dep.teardown()
    return (
        [t_warmup, t_healthy, t_faulty, t_recovering, t_recovered],
        fallbacks,
        timeouts,
    )


def main() -> None:
    rows = []
    for repl in (1, 2):
        times, fallbacks, timeouts = scenario(repl)
        rows.append([f"r={repl}", *times, fallbacks, timeouts])
    print(format_table(
        ["config", "cold (s)", "warm (s)", "under faults (s)",
         "recovering (s)", "recovered (s)", "PFS fallbacks", "RPC timeouts"],
        rows,
        title=(f"Epoch time across crash + hang + flaky link "
               f"({N_NODES} nodes, {len(FILES)} files/epoch/node)"),
        float_fmt="{:.4f}",
    ))
    print("\nr=1: suspects' files fall back to GPFS until probation re-probes.")
    print("r=2: replicas absorb most of the faults (paper §III-H).")
    print("Detection is timeout-only: no client ever reads server health.")


if __name__ == "__main__":
    main()
