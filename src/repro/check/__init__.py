"""``repro check`` — the determinism & sim-safety analyzer.

Two halves, both runnable from the CLI and from tests:

* **Static**: an AST lint pass (:mod:`.rules`, :mod:`.linter`) with
  repro-specific rules SIM001–SIM007 guarding the engine's bit-for-bit
  determinism contract (see docs/INTERNALS.md).
* **Runtime**: event-stream fingerprinting (:class:`repro.simcore.EventTrace`)
  plus a double-run comparison that, on divergence, bisects to the first
  divergent kernel event (:mod:`.divergence`).
"""

from __future__ import annotations

import os

from .divergence import DivergenceReport, find_first_divergence, fingerprint_run
from .linter import lint_file, lint_paths, lint_source, scope_of
from .rules import RULES, Violation

__all__ = [
    "RULES",
    "Violation",
    "DivergenceReport",
    "find_first_divergence",
    "fingerprint_run",
    "lint_file",
    "lint_paths",
    "lint_source",
    "scope_of",
    "default_lint_roots",
    "run_lint",
    "run_determinism",
    "run_check",
]


def default_lint_roots() -> list[str]:
    """The in-tree source root, resolved from this package's location."""
    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return [pkg_root]  # .../src/repro


def run_lint(paths: list[str] | None = None, verbose: bool = True) -> int:
    """Lint the tree; print violations; return an exit code."""
    roots = paths or default_lint_roots()
    violations = lint_paths(roots)
    for v in violations:
        print(v.render())
    if verbose:
        from .linter import _iter_python_files

        n_files = sum(1 for root in roots for _ in _iter_python_files(root))
        status = "clean" if not violations else f"{len(violations)} violation(s)"
        print(f"simlint: {n_files} file(s) checked, {status}")
    return 1 if violations else 0


def _epochs_run(seed: int, n_nodes: int, files_per_rank: int):
    """A small same-seed ``epochs``-style experiment as a trace runnable."""
    from ..dl import IMAGENET21K, ALL_MODELS
    from ..experiments import Scale, run_training

    scale = Scale(
        files_per_rank=files_per_rank,
        sim_batch_size=2,
        repetitions=1,
        procs_per_node=2,
        epochs_simulated=2,
    )

    def run(trace):
        run_training(
            "hvac2",
            ALL_MODELS["resnet50"],
            IMAGENET21K,
            n_nodes,
            scale,
            seed=seed,
            trace=trace,
        )

    return run


def run_determinism(
    seed: int = 0,
    n_nodes: int = 2,
    files_per_rank: int = 4,
    block: int = 2048,
    verbose: bool = True,
) -> int:
    """Run the epochs experiment twice with one seed; compare fingerprints."""
    run = _epochs_run(seed, n_nodes, files_per_rank)
    a = fingerprint_run(run, checkpoint_every=block)
    b = fingerprint_run(run, checkpoint_every=block)
    report = find_first_divergence(run, block=block, traces=(a, b))
    if report is None:
        if verbose:
            print(
                f"determinism: OK — two seed={seed} runs produced identical "
                f"event streams ({a.count} events, fingerprint {a.fingerprint})"
            )
        return 0
    print(f"determinism: FAILED (seed={seed})")
    print(report.describe())
    return 1


def run_check(
    paths: list[str] | None = None,
    lint_only: bool = False,
    determinism_only: bool = False,
    seed: int = 0,
    n_nodes: int = 2,
    files_per_rank: int = 4,
    block: int = 2048,
) -> int:
    """The full ``repro check``: lint, then the double-run comparison."""
    rc = 0
    if not determinism_only:
        rc |= run_lint(paths)
    if not lint_only:
        rc |= run_determinism(
            seed=seed,
            n_nodes=n_nodes,
            files_per_rank=files_per_rank,
            block=block,
        )
    return rc
