"""PERF102 fixture (clean): the sort key hoisted to module level, built
once at import time instead of once per event."""


def _key(item):
    return item[1]


def on_event(items):
    return sorted(items, key=_key)
