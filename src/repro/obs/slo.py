"""SLO aggregation: spans + metrics → per-entity degradation windows.

Rolls the span timeline (:mod:`repro.obs.spans`) into per-client and
per-server SLO windows — fixed-width sim-time buckets each carrying

* read-latency percentiles (p50 / p95 / p99),
* the **degraded-read fraction** (reads that needed a retry, hit a
  suspected server, or fell back to the PFS), and
* **bytes by path**: NVMe-local / remote-RPC / PFS-fallback.

Window semantics: a read belongs to the window its span *ends* in
(completion time is what the trainer experiences); windows are
half-open ``[t0, t1)`` and aligned to ``origin`` so two runs of the
same scenario (e.g. fault vs no-fault) bucket identically and stay
comparable side by side.

Span conventions consumed here (produced by ``repro.core`` + ``rpc``):

* ``client.read`` — root span per intercepted read; ``attrs['client']``;
  byte routing annotated as ``bytes:local`` / ``bytes:remote`` /
  ``bytes:pfs``; ``degraded`` annotated when any retry/fallback occurred.
* ``server.read`` — per forwarded request on the serving instance;
  ``attrs['server']``, ``attrs['bytes']``; ``hit`` annotation 0/1.

Clairvoyant staging (:mod:`repro.prefetch`) emits **no spans of its
own**: staged fetches ride the server FIFO below the RPC layer, so
their effect shows up here only as demand reads turning into
``bytes:local`` hits — which is what lets ``repro prefetch`` compare
modes on identical window grids without changing the span schema.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .spans import Span, SpanRecorder

__all__ = ["SLOWindow", "EntitySLO", "SLOReport", "bucket_times", "compute_slo"]

#: byte-routing annotation keys, in dashboard display order
ROUTES = ("local", "remote", "pfs")


@dataclass
class SLOWindow:
    """One ``[t0, t1)`` bucket of reads for one entity."""

    t0: float
    t1: float
    n_reads: int = 0
    p50: float = float("nan")
    p95: float = float("nan")
    p99: float = float("nan")
    degraded: int = 0
    bytes_by_path: dict[str, int] = field(
        default_factory=lambda: {r: 0 for r in ROUTES}
    )

    @property
    def degraded_fraction(self) -> float:
        return self.degraded / self.n_reads if self.n_reads else 0.0

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_path[r] for r in ROUTES)


@dataclass
class EntitySLO:
    """Aggregate + windowed SLO view for one client/server (or totals)."""

    entity: str
    windows: list[SLOWindow] = field(default_factory=list)
    n_reads: int = 0
    p50: float = float("nan")
    p95: float = float("nan")
    p99: float = float("nan")
    degraded: int = 0
    bytes_by_path: dict[str, int] = field(
        default_factory=lambda: {r: 0 for r in ROUTES}
    )

    @property
    def degraded_fraction(self) -> float:
        return self.degraded / self.n_reads if self.n_reads else 0.0

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_path[r] for r in ROUTES)


@dataclass
class SLOReport:
    """The rolled-up SLO view one scenario run produces."""

    window: float
    t0: float
    t1: float
    clients: dict[int, EntitySLO] = field(default_factory=dict)
    servers: dict[int, EntitySLO] = field(default_factory=dict)
    #: per-tenant rollups (multi-tenant fleets only; empty otherwise)
    tenants: dict[int, EntitySLO] = field(default_factory=dict)
    totals: EntitySLO = field(default_factory=lambda: EntitySLO("total"))

    def window_times(self) -> list[float]:
        """Window midpoints of the totals row (chart x-axis)."""
        return [(w.t0 + w.t1) / 2.0 for w in self.totals.windows]


def _percentiles(latencies: list[float]) -> tuple[float, float, float]:
    if not latencies:
        return (float("nan"),) * 3
    arr = np.asarray(latencies, dtype=float)
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return float(p50), float(p95), float(p99)


def _read_facts(span: Span) -> tuple[float, bool, dict[str, int]]:
    """(latency, degraded, bytes-by-route) for one closed read span."""
    routed = {r: 0 for r in ROUTES}
    degraded = False
    for _, key, value in span.annotations:
        if key.startswith("bytes:"):
            routed[key[6:]] = routed.get(key[6:], 0) + int(value)
        elif key == "degraded":
            degraded = True
    return span.duration, degraded, routed


def _aggregate(
    entity: str,
    reads: list[tuple[float, float, bool, dict[str, int]]],
    origin: float,
    horizon: float,
    window: float,
) -> EntitySLO:
    """Roll ``(t_end, latency, degraded, routed)`` reads into windows."""
    slo = EntitySLO(entity)
    n_windows = max(1, math.ceil((horizon - origin) / window - 1e-9))
    per_window: list[list[float]] = [[] for _ in range(n_windows)]
    windows = [
        SLOWindow(origin + i * window, origin + (i + 1) * window)
        for i in range(n_windows)
    ]
    all_latencies: list[float] = []
    for t_end, latency, degraded, routed in reads:
        idx = min(n_windows - 1, max(0, int((t_end - origin) / window)))
        w = windows[idx]
        w.n_reads += 1
        per_window[idx].append(latency)
        all_latencies.append(latency)
        slo.n_reads += 1
        if degraded:
            w.degraded += 1
            slo.degraded += 1
        for route, nbytes in routed.items():
            w.bytes_by_path[route] = w.bytes_by_path.get(route, 0) + nbytes
            slo.bytes_by_path[route] = slo.bytes_by_path.get(route, 0) + nbytes
    for w, latencies in zip(windows, per_window):
        w.p50, w.p95, w.p99 = _percentiles(latencies)
    slo.p50, slo.p95, slo.p99 = _percentiles(all_latencies)
    slo.windows = windows
    return slo


def bucket_times(
    times: list[float], window: float, origin: float, horizon: float
) -> list[int]:
    """Per-window event counts over the same grid :func:`compute_slo`
    uses, so point events (membership transitions, fault onsets) line
    up column-for-column under a report's degradation strip.  Events
    outside ``[origin, horizon)`` are dropped."""
    if window <= 0:
        raise ValueError("window must be positive")
    n_windows = max(1, math.ceil((horizon - origin) / window - 1e-9))
    counts = [0] * n_windows
    for t in times:
        if not (origin <= t < horizon + 1e-12):
            continue
        counts[min(n_windows - 1, max(0, int((t - origin) / window)))] += 1
    return counts


def compute_slo(
    recorder: SpanRecorder,
    window: float,
    origin: Optional[float] = None,
    horizon: Optional[float] = None,
) -> SLOReport:
    """Roll a recorded span timeline into an :class:`SLOReport`.

    ``origin``/``horizon`` bound the analysis range (defaults: first
    read begin / last read end); reads completing outside it are
    dropped, which is how warm-up epochs are excluded.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    spans = recorder.spans()
    client_reads = [
        s for s in spans.values() if s.name == "client.read" and s.closed
    ]
    server_reads = [
        s for s in spans.values() if s.name == "server.read" and s.closed
    ]

    if origin is None:
        origin = min((s.t0 for s in client_reads), default=0.0)
    if horizon is None:
        horizon = max((s.t1 for s in client_reads), default=origin + window)
    if horizon <= origin:
        horizon = origin + window

    by_client: dict[int, list] = {}
    by_tenant: dict[int, list] = {}
    total_reads: list = []
    for s in client_reads:
        if not (origin <= s.t1 < horizon + 1e-12):
            continue
        latency, degraded, routed = _read_facts(s)
        fact = (s.t1, latency, degraded, routed)
        by_client.setdefault(int(s.attrs.get("client", -1)), []).append(fact)
        tenant = s.attrs.get("tenant")
        if tenant is not None:
            by_tenant.setdefault(int(tenant), []).append(fact)
        total_reads.append(fact)

    by_server: dict[int, list] = {}
    for s in server_reads:
        if not (origin <= s.t1 < horizon + 1e-12):
            continue
        hit = bool(s.annotation("hit", 0))
        routed = {"local": 0, "remote": 0, "pfs": 0}
        # server-side view: a hit served NVMe bytes, a miss pulled PFS
        routed["local" if hit else "pfs"] = int(s.attrs.get("bytes", 0))
        fact = (s.t1, s.duration, not hit, routed)
        by_server.setdefault(int(s.attrs.get("server", -1)), []).append(fact)

    report = SLOReport(window=window, t0=origin, t1=horizon)
    for cid in sorted(by_client):
        report.clients[cid] = _aggregate(
            f"client {cid}", by_client[cid], origin, horizon, window
        )
    for sid in sorted(by_server):
        report.servers[sid] = _aggregate(
            f"server {sid}", by_server[sid], origin, horizon, window
        )
    for tid in sorted(by_tenant):
        report.tenants[tid] = _aggregate(
            f"tenant {tid}", by_tenant[tid], origin, horizon, window
        )
    report.totals = _aggregate("total", total_reads, origin, horizon, window)
    return report
