"""PERF104 fixture (clean): the loop-invariant chain hoisted to a local
before the loop — one attribute walk total."""


def drain(conn, batch, out):
    reads = conn.stats.reads
    for item in batch:
        out.append(reads)
        out.append(reads + item)
