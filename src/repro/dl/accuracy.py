"""Training-to-accuracy analysis (paper §IV-F, Fig 14).

The paper's claim is behavioural, not numerical: HVAC's hash-based
lookup *does not perturb the shuffle order* the SGD algorithm sees, so
accuracy-vs-iteration trajectories under GPFS and HVAC are identical;
by contrast, static *sharding* (each node permanently owning a subset)
biases each worker's sample stream and hurts convergence.

To make that claim testable we train an actual model — multinomial
logistic regression on a synthetic Gaussian-blob classification task —
with minibatch SGD, feeding it samples in exactly the order the I/O
layer would deliver them.  The storage backend enters only through the
``order`` sequences, which is precisely the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..simcore import RandomStreams

__all__ = ["ClassificationTask", "SGDTrainer", "AccuracyCurve", "sharded_orders"]


@dataclass
class ClassificationTask:
    """A seeded synthetic classification problem."""

    n_classes: int = 20
    n_features: int = 32
    n_train: int = 4000
    n_test: int = 1000
    class_spread: float = 1.3
    noise: float = 1.5
    seed: int = 0

    x_train: np.ndarray = field(init=False, repr=False)
    y_train: np.ndarray = field(init=False, repr=False)
    x_test: np.ndarray = field(init=False, repr=False)
    y_test: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        rand = RandomStreams(self.seed)
        centers = rand.stream("centers").normal(
            0.0, self.class_spread, size=(self.n_classes, self.n_features)
        )
        gen = rand.stream("samples")
        y_all = gen.integers(self.n_classes, size=self.n_train + self.n_test)
        x_all = centers[y_all] + gen.normal(
            0.0, self.noise, size=(len(y_all), self.n_features)
        )
        self.x_train, self.x_test = x_all[: self.n_train], x_all[self.n_train :]
        self.y_train, self.y_test = y_all[: self.n_train], y_all[self.n_train :]


@dataclass
class AccuracyCurve:
    """Top-1/top-5 accuracy sampled along training iterations."""

    iterations: list[int] = field(default_factory=list)
    top1: list[float] = field(default_factory=list)
    top5: list[float] = field(default_factory=list)

    def iterations_to_top1(self, threshold: float) -> int | None:
        """First iteration reaching ``threshold`` top-1 accuracy."""
        for it, acc in zip(self.iterations, self.top1):
            if acc >= threshold:
                return it
        return None

    def final_top1(self) -> float:
        return self.top1[-1] if self.top1 else 0.0

    def final_top5(self) -> float:
        return self.top5[-1] if self.top5 else 0.0


class SGDTrainer:
    """Minibatch-SGD multinomial logistic regression (pure NumPy)."""

    def __init__(
        self,
        task: ClassificationTask,
        lr: float = 0.15,
        batch_size: int = 32,
        weight_seed: int = 7,
    ):
        self.task = task
        self.lr = lr
        self.batch_size = batch_size
        rng = RandomStreams(weight_seed).stream("weights")
        self.w = rng.normal(
            0.0, 0.01, size=(task.n_features + 1, task.n_classes)
        )

    # -- numerics ----------------------------------------------------------
    @staticmethod
    def _softmax(z: np.ndarray) -> np.ndarray:
        z = z - z.max(axis=1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=1, keepdims=True)

    def _with_bias(self, x: np.ndarray) -> np.ndarray:
        return np.hstack([x, np.ones((len(x), 1))])

    def _step(self, idx: np.ndarray) -> None:
        x = self._with_bias(self.task.x_train[idx])
        y = self.task.y_train[idx]
        probs = self._softmax(x @ self.w)
        probs[np.arange(len(y)), y] -= 1.0
        grad = x.T @ probs / len(y)
        self.w -= self.lr * grad

    def evaluate(self) -> tuple[float, float]:
        """(top-1, top-5) accuracy on the held-out test split."""
        scores = self._with_bias(self.task.x_test) @ self.w
        y = self.task.y_test
        top1 = float(np.mean(scores.argmax(axis=1) == y))
        k = min(5, self.task.n_classes)
        topk = np.argpartition(-scores, k - 1, axis=1)[:, :k]
        top5 = float(np.mean((topk == y[:, None]).any(axis=1)))
        return top1, top5

    # -- training driven by an I/O-layer sample order ---------------------
    def train(
        self,
        epoch_orders: Iterable[np.ndarray],
        eval_every: int = 10,
    ) -> AccuracyCurve:
        """Run SGD with the given per-epoch sample orders.

        ``epoch_orders`` is what the data loader produced — identical
        for GPFS and HVAC, biased for a sharded deployment.
        """
        curve = AccuracyCurve()
        iteration = 0
        for order in epoch_orders:
            order = np.asarray(order)
            for start in range(0, len(order), self.batch_size):
                self._step(order[start : start + self.batch_size])
                iteration += 1
                if iteration % eval_every == 0:
                    top1, top5 = self.evaluate()
                    curve.iterations.append(iteration)
                    curve.top1.append(top1)
                    curve.top5.append(top5)
        top1, top5 = self.evaluate()
        curve.iterations.append(iteration)
        curve.top1.append(top1)
        curve.top5.append(top5)
        return curve


def sharded_orders(
    n_samples: int,
    n_epochs: int,
    n_shards: int,
    visible_shard: int = 0,
    seed: int = 0,
) -> list[np.ndarray]:
    """Per-epoch orders under *static sharding* (the technique Fig 14
    warns about): the worker only ever sees its own fixed shard,
    reshuffled each epoch — same sample count per epoch, biased content."""
    if not 0 <= visible_shard < n_shards:
        raise ValueError("visible_shard out of range")
    rand = RandomStreams(seed)
    base = rand.shuffled("shard-split", n_samples)
    shard = np.sort(base[visible_shard::n_shards])
    orders = []
    for epoch in range(n_epochs):
        perm = rand.child(f"e{epoch}").shuffled("order", len(shard))
        full_epoch = np.concatenate(
            [shard[perm] for _ in range(max(1, n_samples // max(1, len(shard))))]
        )[:n_samples]
        orders.append(full_epoch)
    return orders
