"""The HVAC server process (paper §III-C/D).

Each server instance:

* exposes a Mercury-like RPC endpoint on its compute node;
* owns a *shared FIFO queue* of forwarded file I/O operations, drained
  by a dedicated **data-mover thread** (one per instance — the paper's
  serialization point, and the reason multiple instances per node reduce
  overhead, Fig 9b);
* on a miss, copies the file from the PFS to node-local storage
  (``fs::copy(src, dst)`` in the prototype) and then serves it; on a
  hit, reads node-local NVMe directly, bypassing the PFS;
* deduplicates concurrent first-reads of the same file (the prototype's
  mutex on the shared queue that "avoids repeated copying").

Servers never talk to each other — each is "effectively unaware" of its
peers; all coordination is the client-side hash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from ..cluster import Fabric
from ..cluster.specs import ClusterSpec
from ..rpc import RPCEndpoint, RPCError, RPCTimeout
from ..simcore import (
    AllOf,
    Environment,
    Event,
    MetricRegistry,
    RandomStreams,
    Resource,
    Store,
)
from ..storage.base import FileBackend
from ..storage.localfs import LocalFS
from .cache import CacheManager, make_policy

__all__ = ["HVACServer", "ReadRequest"]


@dataclass(slots=True)
class ReadRequest:
    """One forwarded <open, read> destined for this server's data mover.

    Slotted: every intercepted read materializes one of these, so at
    epochs-at-scale the mover queue churns through them per event
    (PERF101)."""

    path: str
    size: int
    client_node: int
    #: tenant tag the client forwarded (None = untagged / single-job)
    tenant: object = None
    done: Event = field(repr=False, default=None)  # type: ignore[assignment]
    #: filled by the mover: was this served from cache?
    hit: bool = False
    #: for hits: the in-progress NVMe read the responder overlaps with
    #: its bulk transfer (Mercury pipelines chunks, so device read and
    #: wire transfer proceed concurrently)
    read_proc: object = field(repr=False, default=None)
    #: server-side ``server.read`` span id this request belongs to (None
    #: when no recorder is attached)
    span: object = field(repr=False, default=None)


class HVACServer:
    """One HVAC server instance on one compute node."""

    def __init__(
        self,
        env: Environment,
        server_id: int,
        node_id: int,
        instance_index: int,
        localfs: LocalFS,
        pfs: FileBackend,
        fabric: Fabric,
        spec: ClusterSpec,
        cache_capacity: int,
        rand: RandomStreams,
        metrics: MetricRegistry | None = None,
        spans=None,
    ):
        self.env = env
        self.server_id = server_id
        self.node_id = node_id
        self.instance_index = instance_index
        self.pfs = pfs
        self.spec = spec
        self.metrics = metrics or MetricRegistry()
        #: optional :class:`~repro.obs.SpanRecorder`
        self.spans = spans
        # Deployment-wide aggregates keep their historical names
        # (``hvac.cache_hits`` …); the per-server scope shadows them
        # under ``hvac.s<id>.…`` for SLO attribution.
        self._hvac = self.metrics.scope("hvac")
        self._sscope = self._hvac.scope(f"s{server_id}")
        self.endpoint = RPCEndpoint(
            env,
            fabric,
            node_id,
            name=f"hvac-s{server_id}@n{node_id}",
            metrics=self._sscope.scope("rpc"),
            spans=spans,
        )
        self.cache = CacheManager(
            env,
            localfs,
            capacity_bytes=cache_capacity,
            # Eviction draws come from this server's own named stream of
            # the experiment tree, so victim choices replay bit-for-bit
            # and never perturb another component's draw sequence.
            policy=make_policy(spec.hvac.eviction_policy, rand.stream("evict")),
            metrics=self.metrics,
            name=f"hvac{server_id}.cache",
            compression_ratio=spec.hvac.compression_ratio,
            decompress_cost_per_byte=spec.hvac.decompress_cost_per_byte,
        )
        # Per-request process names, built once: the mover spawns a
        # service/bulk/NVMe process per forwarded read, and rebuilding
        # the label each time is pure hot-path allocation (PERF103).
        self._svc_name = f"hvac{server_id}.svc"
        self._bulk_name = f"hvac{server_id}.bulk"
        self._nvme_name = f"hvac{server_id}.nvme"
        self._announce_name = f"hvac{server_id}.announce"
        self._read_seconds = self._sscope.histogram("read_seconds")
        # The dedicated data-mover thread: a serial dispatch resource.
        self._mover = Resource(env, capacity=1)
        # Async copy slots the mover can keep in flight against PFS/NVMe.
        self._copy_slots = Resource(env, capacity=spec.hvac.data_mover_concurrency)
        # Shared FIFO queue of forwarded operations.
        self.queue: Store = Store(env)
        # In-flight fetch dedup: path -> completion event ("mutex" in the paper).
        self._inflight: dict[str, Event] = {}
        self._failed = False
        # -- membership (optional, see enable_membership) -----------------
        #: bumped on every recover/repair-complete; a higher incarnation
        #: beats any stale accusation in the gossip lattice
        self.incarnation = 0
        #: the server's own authoritative state: alive | recovering
        self.member_state = "alive"
        #: this server's bulletin-board MembershipView (None = disabled)
        self.board = None
        #: RepairManager streaming the shard back after recovery
        self._repair = None
        #: peer server table for rejoin announcements (set by
        #: enable_membership; servers otherwise never talk to each other)
        self._peers = None
        self.endpoint.register("read", self._handle_read)
        self.endpoint.register("close", self._handle_close)
        self.endpoint.register("ping", self._handle_ping)
        self._drainer = env.process(self._drain(), name=f"hvac{server_id}.mover")

    # -- lifecycle --------------------------------------------------------
    @property
    def alive(self) -> bool:
        return not self._failed

    def fail(self) -> None:
        """Simulate node-local NVMe / server-process failure (§III-H)."""
        self._failed = True
        self.endpoint.shutdown()
        self._flush_inflight()

    def hang(self) -> None:
        """Gray failure: the server process wedges.  Requests still land
        on its endpoint but no reply is ever produced; clients can only
        find out through their own deadlines."""
        self.endpoint.hang()

    def unhang(self) -> None:
        self.endpoint.unhang()

    @property
    def hung(self) -> bool:
        return self.endpoint.hung

    def recover(self) -> None:
        """Restart after failure with a cold cache.

        With membership enabled the restart bumps the incarnation (so
        the refutation beats every circulating death certificate) and,
        when a repair manager is attached, comes back ``recovering`` —
        stand-ins keep its hash range until the shard is streamed back.
        """
        self.cache.purge()
        # Wiping the dedup table is a write to every live inflight cell:
        # a same-timestamp reader about to join a wiped entry would wait
        # on a fetch that no longer exists.
        for path in self._inflight:
            self.env.note_access(self._inflight_cell(path), "w", tag=("wipe", path))
        self._inflight.clear()
        self._failed = False
        self.endpoint.restart()
        if self.board is not None:
            self.incarnation += 1
            self.member_state = "recovering" if self._repair is not None else "alive"
            self.board.self_report(self.server_id, self.incarnation, self.member_state)
            if self._repair is not None:
                self._repair.on_recover(self)
            self._spawn_announce()

    def repair_complete(self) -> None:
        """The repair stream finished: rejoin placement as fully alive."""
        if self.board is None:
            return
        self.incarnation += 1
        self.member_state = "alive"
        self.board.self_report(self.server_id, self.incarnation, self.member_state)
        self._spawn_announce()

    def _spawn_announce(self) -> None:
        if self._peers is not None:
            self.env.process(self._announce(), name=self._announce_name)

    def _announce(self) -> Generator:
        """SWIM rejoin announcement: ping a couple of peer servers our
        own board believes are up.  The request's piggybacked digest
        carries the fresh self-report; the peers' reply digests then
        spread it to every client on the ordinary read path — without
        this, a recovered server (which receives no requests while
        everyone thinks it dead) could only be rediscovered by the
        gossip agents' backed-off recovery probes."""
        from ..membership.view import DEAD

        n = len(self._peers)
        told = 0
        for k in range(1, n):
            peer = self._peers[(self.server_id + k) % n]
            if self.board.state_of(peer.server_id) == DEAD:
                continue
            try:
                yield from self.endpoint.call(
                    peer.endpoint,
                    "ping",
                    payload=None,
                    payload_bytes=0,
                    timeout=self.spec.hvac.rpc_timeout,
                )
            except (RPCError, RPCTimeout):
                continue
            told += 1
            if told >= 2:
                return

    # -- membership -------------------------------------------------------
    def enable_membership(self, board, repair=None, peers=None) -> None:
        """Attach a bulletin-board view + optional repair manager, and
        wire membership digests onto every RPC this endpoint touches.
        ``peers`` (the deployment's server table) enables the rejoin
        announcement after recovery."""
        from ..membership.view import STATE_RANK

        self.board = board
        self._repair = repair
        self._peers = peers
        board.self_report(self.server_id, self.incarnation, self.member_state)

        # perf: waive PERF102 -- closures built once per server at membership enablement
        def provide():
            digest = board.digest()
            return digest, board.digest_bytes(digest)

        # perf: waive PERF102 -- closures built once per server at membership enablement
        def absorb(digest, src):
            board.merge(digest, why="piggyback")
            # SWIM refutation: if the caller's digest accuses *us* of a
            # state worse than our own at our current (or a later)
            # incarnation, out-bid it — the bump rides back on this very
            # reply's digest.
            inc, state, _ = board.entry(self.server_id)
            ours = (self.incarnation, STATE_RANK[self.member_state])
            if (inc, STATE_RANK[state]) > ours:
                self.incarnation = inc + 1
                board.self_report(
                    self.server_id, self.incarnation, self.member_state
                )

        self.endpoint.digest_provider = provide
        self.endpoint.digest_sink = absorb

    def _inflight_cell(self, path: str) -> str:
        """Race-sanitizer cell name for one dedup slot."""
        return f"s{self.server_id}.inflight:{path}"  # perf: waive PERF103 -- callers guard on an attached sanitizer

    def _flush_inflight(self) -> None:
        """Fail every dedup waiter parked on an in-flight fetch: the
        fetch's result dies with the server, and a waiter left pending
        would hang its client forever (it can never be re-triggered)."""
        observed = self.env.sanitizer is not None
        for path, pending in sorted(self._inflight.items()):
            if observed:
                self.env.note_access(self._inflight_cell(path), "w")
            if not pending.triggered:
                # Pre-defuse: with zero waiters the kernel must not treat
                # the failure as unhandled; real waiters still get the
                # exception thrown in.
                pending.fail(RPCError("server failed mid-fetch")).defused()
        self._inflight.clear()

    def teardown(self) -> None:
        """Job-end lifecycle: purge the cached dataset from node-local storage."""
        self.cache.purge()
        self.endpoint.shutdown()
        self._failed = True  # a torn-down server serves nothing
        self._flush_inflight()

    # -- telemetry helpers -------------------------------------------------
    def _incr(self, name: str, n: int = 1) -> None:
        """Bump a server counter at both aggregation levels."""
        self._hvac.counter(name).incr(n)
        self._sscope.counter(name).incr(n)

    # -- RPC handlers ----------------------------------------------------
    def _handle_read(self, payload: tuple, src: int) -> Generator:
        """Enqueue on the shared FIFO; wait for the data mover; bulk-push.

        The payload's optional trailing elements are the caller's span
        id (linking the server-side ``server.read`` span into the
        client's causal tree) and the tenant tag (threaded to the cache
        so the tenancy arbiter can attribute the insert).
        """
        path, size, *rest = payload
        parent = rest[0] if rest else None
        tenant = rest[1] if len(rest) > 1 else None
        rec = self.spans
        sid = None
        if rec is not None:
            if tenant is None:
                sid = rec.begin(
                    "server.read",
                    self.env.now,
                    parent=parent,
                    server=self.server_id,
                    path=path,
                    bytes=size,
                )
            else:
                sid = rec.begin(
                    "server.read",
                    self.env.now,
                    parent=parent,
                    server=self.server_id,
                    path=path,
                    bytes=size,
                    tenant=tenant,
                )
        req = ReadRequest(
            path=path,
            size=size,
            client_node=src,
            tenant=tenant,
            done=self.env.event(),
            span=sid,
        )
        t0 = self.env.now
        try:
            yield self.queue.put(req)
            yield req.done
        except Exception:
            if rec is not None:
                rec.end(sid, self.env.now, status="error")
            raise
        # Bulk transfer of the file contents to the requesting client.
        # Mercury moves the buffer in pipelined chunks, so for cache
        # hits the NVMe read and the wire transfer overlap.
        if rec is not None:
            rec.annotate(sid, self.env.now, "hit", 1 if req.hit else 0)
        bsp = None
        if rec is not None:
            bsp = rec.begin(
                "server.bulk", self.env.now, parent=sid, dst=src, bytes=size
            )
        bulk = self.env.process(self._bulk_to(src, size, bsp), name=self._bulk_name)
        waits = [bulk]
        if req.read_proc is not None:
            waits.append(req.read_proc)
        yield AllOf(self.env, waits)
        self._incr("bytes_served", size)
        # race: waive RACE201 -- histogram fold; commutative metrics aggregate
        self._read_seconds.add(self.env.now - t0)
        if rec is not None:
            rec.end(sid, self.env.now)
        return req.hit

    def _bulk_to(self, dst: int, size: int, span=None) -> Generator:
        yield from self.endpoint.bulk_push(dst, size)
        if self.spans is not None:
            self.spans.end(span, self.env.now)

    def _handle_close(self, payload: str, src: int) -> Generator:
        """Out-of-band teardown signal for a finished file (step ⑧)."""
        yield self.env.timeout(2e-6)
        self._incr("closes")
        return None

    def _handle_ping(self, payload, src: int) -> Generator:
        """Liveness probe.  The interesting cargo is the piggybacked
        reply digest (carrying this server's self-report); the return
        value is informational."""
        yield self.env.timeout(2e-6)
        self._incr("pings")
        return (self.server_id, self.incarnation, self.member_state)

    # -- data mover -------------------------------------------------------
    def _drain(self) -> Generator:
        """The dedicated data-mover thread's main loop."""
        overhead = self.spec.hvac.server_request_overhead
        while True:
            req: ReadRequest = yield self.queue.get()
            # Serial dispatch cost — the instance's software path length.
            with self._mover.request() as slot:
                yield slot
                yield self.env.timeout(overhead)
            # Service proceeds asynchronously; the mover loops for the
            # next request immediately (async copy engine).
            self.env.process(self._service(req), name=self._svc_name)

    def _serve_hit(self, req: ReadRequest) -> Generator:
        """Start the NVMe read and release the responder immediately —
        the read handle rides along in ``req.read_proc`` so the bulk
        transfer overlaps with it (pipelined chunks)."""
        req.hit = True
        self._incr("cache_hits")
        with self._copy_slots.request() as cslot:
            yield cslot
            rec = self.spans
            nsp = None
            if rec is not None:
                nsp = rec.begin(
                    "server.nvme", self.env.now, parent=req.span, bytes=req.size
                )
            req.read_proc = self.env.process(
                self.cache.read(req.path), name=self._nvme_name
            )
            req.done.succeed()
            yield req.read_proc
            if rec is not None:
                rec.end(nsp, self.env.now)

    def _service(self, req: ReadRequest) -> Generator:
        try:
            if self.cache.contains(req.path):
                yield from self._serve_hit(req)
                return

            self._incr("cache_misses")
            # Per-path race-sanitizer cell: the dedup slot decides which
            # request becomes the fetcher and which become waiters.  The
            # cell name is only materialized when a sanitizer is watching
            # (PERF103 — this runs once per cache miss).
            observed = self.env.sanitizer is not None
            if observed:
                self.env.note_access(self._inflight_cell(req.path), "r")
            pending = self._inflight.get(req.path)
            if pending is not None:
                # Another client is already copying this file in: wait on
                # its completion instead of re-fetching (shared-queue mutex).
                self._incr("dedup_waits")
                yield pending
                if self.cache.contains(req.path):
                    yield from self._serve_hit(req)
                    return
                # Fetch completed but was refused by the cache policy:
                # fall through to PFS passthrough.
                yield from self._passthrough(req)
                return

            fetch_done = self.env.event()
            if observed:
                self.env.note_access(self._inflight_cell(req.path), "w")
            self._inflight[req.path] = fetch_done
            try:
                with self._copy_slots.request() as cslot:
                    yield cslot
                    rec = self.spans
                    fsp = None
                    if rec is not None:
                        fsp = rec.begin(
                            "server.pfs_fetch",
                            self.env.now,
                            parent=req.span,
                            bytes=req.size,
                        )
                    # PFS → memory buffer, issued from this server's node.
                    yield from self.pfs.read_file(req.path, req.size, self.node_id)
                    if rec is not None:
                        rec.end(fsp, self.env.now)
                # First read serves straight from the fetched buffer; the
                # fs::copy to node-local storage completes asynchronously
                # (the NVMe write is off the serve path but still
                # occupies the device).
                req.done.succeed()
                yield from self.cache.insert(req.path, req.size, tenant=req.tenant)
            finally:
                # fail()/recover() may already have flushed the dict and
                # failed the event while this fetch was in flight.
                if self.env.sanitizer is not None:
                    self.env.note_access(self._inflight_cell(req.path), "w")
                self._inflight.pop(req.path, None)
                if not fetch_done.triggered:
                    fetch_done.succeed()
        except Exception as err:  # noqa: BLE001 — propagate to the RPC caller
            if not req.done.triggered:
                req.done.fail(err)
            else:
                raise

    def _passthrough(self, req: ReadRequest) -> Generator:
        """Serve from PFS without caching (file refused by policy/capacity)."""
        self._incr("passthrough")
        with self._copy_slots.request() as cslot:
            yield cslot
            yield from self.pfs.read_file(req.path, req.size, self.node_id)
        req.done.succeed()

    # -- introspection -----------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return len(self.queue)
