"""Fig 10: effect of epoch count on training time (ResNet50 & CosmoFlow).

HVAC's advantage compounds with epochs: only epoch 1 touches the PFS,
so the marginal epoch cost is the cached-epoch cost.
"""

import pytest

from repro.dl import COSMOFLOW, COSMOUNIVERSE, IMAGENET21K, RESNET50
from repro.experiments import epoch_scaling

from conftest import BENCH_SCALE, bench_scale

EPOCH_COUNTS = [2, 4, 8, 16, 32, 80]


def _run():
    n_nodes = 512 if BENCH_SCALE == "paper" else 16
    panels = {}
    for model, dataset in ((RESNET50, IMAGENET21K), (COSMOFLOW, COSMOUNIVERSE)):
        panels[model.name] = epoch_scaling(
            model, dataset, EPOCH_COUNTS, bench_scale(), n_nodes=n_nodes
        )
    return panels


@pytest.mark.benchmark(group="fig10")
def test_fig10_epoch_scaling(benchmark, capsys):
    panels = benchmark.pedantic(_run, rounds=1, iterations=1)
    with capsys.disabled():
        for name, res in panels.items():
            print()
            print(res.render())

    for res in panels.values():
        gpfs = res.total_minutes["GPFS"]
        hvac4 = res.total_minutes["HVAC(4x1)"]
        xfs = res.total_minutes["XFS-on-NVMe"]
        # Totals grow with epochs for every system.
        assert all(a < b for a, b in zip(gpfs, gpfs[1:]))
        # HVAC never falls meaningfully behind GPFS at any epoch count.
        assert all(h <= g * 1.10 for h, g in zip(hvac4, gpfs))
        # And HVAC stays above the XFS lower bound.
        assert all(h >= x * 0.999 for h, x in zip(hvac4, xfs))
        if BENCH_SCALE == "paper":
            # At 512 nodes GPFS is saturated and the paper's divergence
            # with epochs appears: HVAC's marginal epoch is cheaper.
            gap_small = gpfs[0] - hvac4[0]
            gap_large = gpfs[-1] - hvac4[-1]
            assert gap_large >= gap_small
