"""Unit tests for the discrete-event engine."""

import pytest

from repro.simcore import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
    StopProcess,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(3.5)

    env.process(proc())
    env.run()
    assert env.now == 3.5


def test_timeout_value_passthrough():
    env = Environment()
    got = []

    def proc():
        v = yield env.timeout(1.0, value="hello")
        got.append(v)

    env.process(proc())
    env.run()
    assert got == ["hello"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_process_return_value_via_run():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return 42

    assert env.run(env.process(proc())) == 42


def test_stopprocess_return_value():
    env = Environment()

    def proc():
        yield env.timeout(1)
        raise StopProcess(7)

    assert env.run(env.process(proc())) == 7


def test_sequential_timeouts_accumulate():
    env = Environment()
    marks = []

    def proc():
        yield env.timeout(1)
        marks.append(env.now)
        yield env.timeout(2)
        marks.append(env.now)

    env.process(proc())
    env.run()
    assert marks == [1.0, 3.0]


def test_fifo_order_at_equal_time():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1)
        order.append(tag)

    for tag in "abc":
        env.process(proc(tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(1)

    env.process(proc())
    env.run(until=10.5)
    assert env.now == 10.5


def test_run_until_past_time_raises():
    env = Environment()
    env.process(iter_timeout(env))
    env.run(until=5)
    with pytest.raises(SimulationError):
        env.run(until=5)


def iter_timeout(env):
    while True:
        yield env.timeout(1)


def test_process_waiting_on_process():
    env = Environment()

    def child():
        yield env.timeout(2)
        return "done"

    def parent():
        result = yield env.process(child())
        return result

    assert env.run(env.process(parent())) == "done"
    assert env.now == 2


def test_event_manual_trigger():
    env = Environment()
    evt = env.event()
    results = []

    def waiter():
        v = yield evt
        results.append((env.now, v))

    def trigger():
        yield env.timeout(4)
        evt.succeed(99)

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert results == [(4.0, 99)]


def test_event_double_trigger_fails():
    env = Environment()
    evt = env.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_failed_event_raises_in_waiter():
    env = Environment()
    evt = env.event()
    caught = []

    def waiter():
        try:
            yield evt
        except ValueError as e:
            caught.append(str(e))

    def trigger():
        yield env.timeout(1)
        evt.fail(ValueError("boom"))

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_propagates():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("crash")

    env.process(bad())
    with pytest.raises(RuntimeError, match="crash"):
        env.run()


def test_exception_captured_by_waiting_parent():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("inner")

    def parent():
        try:
            yield env.process(bad())
        except RuntimeError:
            return "handled"

    assert env.run(env.process(parent())) == "handled"


def test_interrupt_running_process():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def interrupter(v):
        yield env.timeout(3)
        v.interrupt("stop now")

    v = env.process(victim())
    env.process(interrupter(v))
    env.run()
    assert log == [(3.0, "stop now")]


def test_interrupt_then_continue():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(5)
        log.append(env.now)

    def interrupter(v):
        yield env.timeout(2)
        v.interrupt()

    v = env.process(victim())
    env.process(interrupter(v))
    env.run()
    assert log == [7.0]


def test_interrupt_dead_process_is_error():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_self_interrupt_is_error():
    env = Environment()
    errors = []

    def selfish(handle):
        yield env.timeout(1)
        try:
            handle[0].interrupt()
        except SimulationError:
            errors.append(True)

    handle = []
    handle.append(env.process(selfish(handle)))
    env.run()
    assert errors == [True]


def test_allof_waits_for_all():
    env = Environment()

    def proc():
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(5, value="b")
        result = yield AllOf(env, [t1, t2])
        return (env.now, sorted(result.values()))

    assert env.run(env.process(proc())) == (5.0, ["a", "b"])


def test_anyof_returns_on_first():
    env = Environment()

    def proc():
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(5, value="slow")
        result = yield AnyOf(env, [t1, t2])
        return (env.now, list(result.values()))

    assert env.run(env.process(proc())) == (1.0, ["fast"])


def test_condition_operators():
    env = Environment()

    def proc():
        a = env.timeout(1, value=1)
        b = env.timeout(2, value=2)
        yield a & b
        return env.now

    assert env.run(env.process(proc())) == 2.0


def test_empty_allof_triggers_immediately():
    env = Environment()

    def proc():
        result = yield AllOf(env, [])
        return result

    assert env.run(env.process(proc())) == {}


def test_yield_non_event_is_error():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_peek_and_step():
    env = Environment()
    env.timeout(3)
    assert env.peek() == 3.0
    env.step()
    assert env.now == 3.0
    assert env.peek() == float("inf")


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_run_until_event_already_processed():
    env = Environment()
    t = env.timeout(1, value="x")
    env.run()
    assert env.run(until=t) == "x"


def test_run_until_never_triggered_event_raises():
    env = Environment()
    evt = env.event()
    env.timeout(1)
    with pytest.raises(SimulationError, match="never"):
        env.run(until=evt)


def test_many_processes_determinism():
    def run_once():
        env = Environment()
        trace = []

        def worker(i):
            for k in range(5):
                yield env.timeout((i % 3) + 0.5)
                trace.append((env.now, i, k))

        for i in range(20):
            env.process(worker(i))
        env.run()
        return trace

    assert run_once() == run_once()


def test_process_is_alive_flag():
    env = Environment()

    def proc():
        yield env.timeout(2)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_cross_environment_event_rejected():
    env1, env2 = Environment(), Environment()
    foreign = env2.timeout(1)

    def proc():
        yield foreign

    env1.process(proc())
    with pytest.raises(SimulationError):
        env1.run()
