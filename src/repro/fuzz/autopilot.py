"""Coverage autopilot: bias sampling toward near-violations.

The campaign feeds every checked scenario back to the
:class:`Autopilot`, which keeps a corpus keyed by scenario digest with
each run's invariant margins.  When proposing the next scenario it
flips a seeded coin: either a fresh :class:`ScenarioGenerator` draw, or
a mutation of a *near-violation* — a corpus entry whose smallest margin
fell under the threshold without actually breaking a bound.  Mutations
stay inside the scenario space (drop/retarget/advance faults, crank the
hot fraction, re-seed) so the executor and shrinker need no new cases.

Everything is derived from the campaign's
:class:`~repro.simcore.RandomStreams`, so a campaign replays exactly.

The corpus map is registered as a race-sanitizer cell
(``fuzz.autopilot.corpus``): updates happen from driver code today —
program-ordered, so the note is a no-op — but if a future change moves
corpus feedback inside the event loop, the ``--races`` gate starts
tracking it automatically instead of silently losing coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..faults import FaultEvent
from ..simcore import RandomStreams
from .invariants import InvariantReport
from .scenario import (
    Scenario,
    ScenarioGenerator,
    drop_fault,
    scenario_digest,
)

__all__ = ["Autopilot", "CorpusEntry"]

#: mutation kinds, drawn uniformly per proposal
_MUTATIONS = (
    "reseed",
    "add_fault",
    "drop_fault",
    "retarget_fault",
    "advance_fault",
    "crank_workload",
)


@dataclass
class CorpusEntry:
    """One scenario's place in the corpus."""

    digest: str
    scenario: Scenario
    score: float  #: min margin over checked invariants (0 = violated)
    margins: dict[str, float]
    violated: tuple[str, ...]
    origin: str  #: "fresh" or "mutate:<parent digest>"


class Autopilot:
    """Seeded sampler feedback loop over one campaign's corpus."""

    def __init__(
        self,
        rand: RandomStreams,
        near_threshold: float = 0.8,
        mutate_bias: float = 0.4,
    ):
        self.rand = rand
        self.near_threshold = near_threshold
        self.mutate_bias = mutate_bias
        #: digest -> entry; insertion order is proposal order
        self.corpus: dict[str, CorpusEntry] = {}

    # -- feedback -------------------------------------------------------
    def observe(
        self,
        scenario: Scenario,
        report: InvariantReport,
        origin: str = "fresh",
        env=None,
    ) -> CorpusEntry:
        """Fold one run's verdicts into the corpus."""
        digest = scenario_digest(scenario)
        entry = CorpusEntry(
            digest=digest,
            scenario=scenario,
            score=report.score,
            margins=dict(report.margins),
            violated=report.violated,
            origin=origin,
        )
        if env is not None:
            # driver-side today (a documented no-op); the cell exists so
            # in-loop corpus feedback would be sanitizer-visible
            env.note_access("fuzz.autopilot.corpus", "w", tag=digest)
        self.corpus[digest] = entry
        return entry

    def near_violations(self) -> list[CorpusEntry]:
        """Unbroken entries under the threshold, most interesting first
        (digest tie-break keeps the order machine-independent)."""
        pool = [
            e for e in self.corpus.values()
            if not e.violated and e.score < self.near_threshold
        ]
        pool.sort(key=lambda e: (e.score, e.digest))
        return pool

    # -- proposals ------------------------------------------------------
    def propose(
        self, generator: ScenarioGenerator, index: int
    ) -> tuple[Scenario, str]:
        """The next scenario to run: fresh sample or near-miss mutant."""
        pool = self.near_violations()
        if pool and self.rand.uniform(f"bias.{index}", 0.0, 1.0) < self.mutate_bias:
            parent = pool[
                int(self.rand.stream(f"pick.{index}").integers(min(len(pool), 4)))
            ]
            mutant = self.mutate(parent.scenario, index)
            if scenario_digest(mutant) not in self.corpus:
                return mutant, f"mutate:{parent.digest}"
        return generator.sample(index), "fresh"

    def mutate(self, scenario: Scenario, index: int) -> Scenario:
        rand = self.rand.child(f"mutate.{index}")
        kind = str(rand.choice("kind", _MUTATIONS))
        if kind == "reseed":
            return replace(
                scenario, seed=int(rand.stream("seed").integers(2**31))
            )
        if kind == "add_fault":
            fault_kind = str(rand.choice("fkind", ("crash", "hang", "degrade")))
            ev = FaultEvent(
                time=float(rand.uniform("t", 0.0, 0.06)),
                kind=fault_kind,
                node=int(rand.stream("node").integers(scenario.n_nodes)),
                duration=float(rand.uniform("dur", 0.01, 0.06)),
                factor=float(rand.uniform("factor", 2.0, 10.0)),
            )
            return replace(scenario, faults=scenario.faults + (ev,))
        if kind == "drop_fault" and scenario.faults:
            return drop_fault(
                scenario,
                int(rand.stream("which").integers(len(scenario.faults))),
            )
        if kind == "retarget_fault" and scenario.faults:
            i = int(rand.stream("which").integers(len(scenario.faults)))
            ev = scenario.faults[i]
            if ev.node is not None:
                ev = replace(
                    ev, node=int(rand.stream("node").integers(scenario.n_nodes))
                )
            faults = scenario.faults[:i] + (ev,) + scenario.faults[i + 1:]
            return replace(scenario, faults=faults)
        if kind == "advance_fault" and scenario.faults:
            i = int(rand.stream("which").integers(len(scenario.faults)))
            ev = scenario.faults[i]
            ev = replace(
                ev, time=max(0.0, ev.time * float(rand.uniform("shift", 0.3, 1.7)))
            )
            faults = scenario.faults[:i] + (ev,) + scenario.faults[i + 1:]
            return replace(scenario, faults=faults)
        if kind == "crank_workload":
            wl = scenario.workload
            wl = replace(
                wl,
                hot_fraction=min(0.95, wl.hot_fraction + 0.1),
                reads_per_client=min(64, wl.reads_per_client + 8),
            )
            return replace(scenario, workload=wl)
        # fall through (e.g. drop_fault with no faults): perturb the seed
        return replace(scenario, seed=int(rand.stream("fallback").integers(2**31)))
