"""Remaining kernel branches: trigger propagation, defusing, priority
stores with structured items, monitor reductions under load."""

import pytest

from repro.simcore import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    PriorityResource,
    PriorityStore,
    SimulationError,
)


class TestEventPlumbing:
    def test_trigger_copies_success(self):
        env = Environment()
        src, dst = env.event(), env.event()
        src.succeed("payload")
        env.run()  # process src
        dst.trigger(src)
        assert dst.triggered
        assert dst.value == "payload"

    def test_trigger_copies_failure_and_defuses_source(self):
        env = Environment()
        src, dst = env.event(), env.event()
        src.fail(ValueError("x"))
        dst.trigger(src)
        dst.defused()
        caught = []

        def waiter():
            try:
                yield dst
            except ValueError:
                caught.append(True)

        env.process(waiter())
        env.run()
        assert caught == [True]

    def test_value_before_trigger_raises(self):
        env = Environment()
        evt = env.event()
        with pytest.raises(SimulationError):
            _ = evt.value
        with pytest.raises(SimulationError):
            _ = evt.ok

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_unwaited_failure_crashes_run(self):
        env = Environment()
        env.event().fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_defused_failure_is_silent(self):
        env = Environment()
        env.event().fail(RuntimeError("handled")).defused()
        env.run()  # must not raise

    def test_condition_failure_propagates_once(self):
        env = Environment()
        good = env.timeout(1)
        bad = env.event()
        caught = []

        def waiter():
            try:
                yield AllOf(env, [good, bad])
            except KeyError:
                caught.append(True)

        def failer():
            yield env.timeout(0.5)
            bad.fail(KeyError("boom"))

        env.process(waiter())
        env.process(failer())
        env.run()
        assert caught == [True]

    def test_anyof_after_failure_defuses_late_events(self):
        env = Environment()
        fast = env.timeout(1, value="ok")
        slow = env.event()
        results = []

        def waiter():
            result = yield AnyOf(env, [fast, slow])
            results.append(list(result.values()))

        def late_failer():
            yield env.timeout(2)
            slow.fail(RuntimeError("late"))
            slow.defused()

        env.process(waiter())
        env.process(late_failer())
        env.run()
        assert results == [["ok"]]


class TestPriorityStructures:
    def test_priority_store_tuples_stable(self):
        env = Environment()
        store = PriorityStore(env)
        got = []

        def producer():
            for prio, tag in [(2, "b1"), (1, "a"), (2, "b2")]:
                yield store.put((prio, tag))

        def consumer():
            yield env.timeout(1)
            for _ in range(3):
                item = yield store.get()
                got.append(item[1])

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == ["a", "b1", "b2"]  # priority then FIFO

    def test_priority_resource_release_regrants_in_order(self):
        env = Environment()
        res = PriorityResource(env, capacity=2)
        order = []

        def holder(tag, hold):
            with res.request(priority=0) as r:
                yield r
                yield env.timeout(hold)
                order.append(("released", tag))

        def waiter(tag, prio):
            yield env.timeout(0.1)
            with res.request(priority=prio) as r:
                yield r
                order.append(("granted", tag))

        env.process(holder("h1", 1))
        env.process(holder("h2", 2))
        env.process(waiter("low", 5))
        env.process(waiter("high", 1))
        env.run()
        granted = [t for kind, t in order if kind == "granted"]
        assert granted == ["high", "low"]


class TestRunSemantics:
    def test_run_returns_process_value_even_with_pending_events(self):
        env = Environment()

        def quick():
            yield env.timeout(1)
            return "done"

        def forever():
            while True:
                yield env.timeout(10)

        env.process(forever())
        assert env.run(env.process(quick())) == "done"
        assert env.peek() < float("inf")  # the other process still queued

    def test_until_event_failure_reraised_at_run(self):
        env = Environment()

        def dies():
            yield env.timeout(1)
            raise OSError("disk on fire")

        with pytest.raises(OSError, match="disk on fire"):
            env.run(env.process(dies()))
