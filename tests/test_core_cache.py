"""Unit + property tests for the cache manager and eviction policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import NVMeDevice, NVMeSpec
from repro.core import CacheManager, make_policy
from repro.core.cache import (
    FIFOEviction,
    LRUEviction,
    MinIOEviction,
    RandomEviction,
)
from repro.simcore import Environment
from repro.storage import LocalFS


def make_cache(env, capacity=1000, policy="random", seed=0):
    spec = NVMeSpec(
        capacity_bytes=capacity * 10,
        read_bandwidth=1e9,
        write_bandwidth=1e9,
        read_latency=1e-6,
        write_latency=1e-6,
        queue_depth=8,
        fs_open_close_latency=1e-6,
    )
    fs = LocalFS(env, 0, NVMeDevice(env, spec), track_namespace=False)
    rng = np.random.default_rng(seed)
    return CacheManager(env, fs, capacity, make_policy(policy, rng))


def run(env, gen):
    return env.run(env.process(gen))


class TestCacheManager:
    def test_insert_and_contains(self):
        env = Environment()
        cache = make_cache(env)

        def proc():
            ok = yield from cache.insert("/f", 100)
            return ok

        assert run(env, proc()) is True
        assert cache.contains("/f")
        assert cache.used_bytes == 100
        assert cache.n_files == 1

    def test_duplicate_insert_is_noop(self):
        env = Environment()
        cache = make_cache(env)

        def proc():
            yield from cache.insert("/f", 100)
            yield from cache.insert("/f", 100)

        run(env, proc())
        assert cache.used_bytes == 100

    def test_oversized_file_refused(self):
        env = Environment()
        cache = make_cache(env, capacity=100)

        def proc():
            ok = yield from cache.insert("/big", 200)
            return ok

        assert run(env, proc()) is False
        assert cache.used_bytes == 0

    def test_eviction_frees_space(self):
        env = Environment()
        cache = make_cache(env, capacity=250)

        def proc():
            for i in range(5):
                yield from cache.insert(f"/f{i}", 100)

        run(env, proc())
        assert cache.used_bytes <= 250
        assert cache.n_files == 2
        assert cache.metrics.counter("cache.evictions").value == 3

    def test_read_returns_size(self):
        env = Environment()
        cache = make_cache(env)

        def proc():
            yield from cache.insert("/f", 123)
            size = yield from cache.read("/f")
            return size

        assert run(env, proc()) == 123

    def test_read_missing_raises(self):
        env = Environment()
        cache = make_cache(env)

        def proc():
            yield from cache.read("/ghost")

        with pytest.raises(KeyError):
            run(env, proc())

    def test_purge(self):
        env = Environment()
        cache = make_cache(env)

        def proc():
            for i in range(3):
                yield from cache.insert(f"/f{i}", 50)

        run(env, proc())
        cache.purge()
        assert cache.n_files == 0
        assert cache.used_bytes == 0
        assert cache.localfs.device.used_bytes == 0

    def test_explicit_evict_missing_raises(self):
        env = Environment()
        cache = make_cache(env)
        with pytest.raises(KeyError):
            cache.evict("/ghost")

    def test_invalid_size_rejected(self):
        env = Environment()
        cache = make_cache(env)

        def proc():
            yield from cache.insert("/f", 0)

        with pytest.raises(ValueError):
            run(env, proc())

    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            make_cache(env, capacity=0)


class TestLRU:
    def test_evicts_least_recently_used(self):
        env = Environment()
        cache = make_cache(env, capacity=300, policy="lru")

        def proc():
            yield from cache.insert("/a", 100)
            yield from cache.insert("/b", 100)
            yield from cache.insert("/c", 100)
            cache.touch("/a")  # /b is now LRU
            yield from cache.insert("/d", 100)

        run(env, proc())
        assert cache.contains("/a")
        assert not cache.contains("/b")
        assert cache.contains("/d")


class TestFIFO:
    def test_evicts_first_inserted_regardless_of_access(self):
        env = Environment()
        cache = make_cache(env, capacity=300, policy="fifo")

        def proc():
            yield from cache.insert("/a", 100)
            yield from cache.insert("/b", 100)
            yield from cache.insert("/c", 100)
            cache.touch("/a")
            yield from cache.insert("/d", 100)

        run(env, proc())
        assert not cache.contains("/a")
        assert cache.contains("/b")


class TestMinIO:
    def test_never_replaces_once_full(self):
        env = Environment()
        cache = make_cache(env, capacity=300, policy="minio")

        def proc():
            for name in "abc":
                yield from cache.insert(f"/{name}", 100)
            ok = yield from cache.insert("/d", 100)
            return ok

        assert run(env, proc()) is False
        assert cache.contains("/a")
        assert cache.contains("/b")
        assert cache.contains("/c")
        assert cache.metrics.counter("cache.refused").value == 1

    def test_cached_set_is_stable_across_epochs(self):
        env = Environment()
        cache = make_cache(env, capacity=500, policy="minio")

        def epoch(order):
            for i in order:
                if cache.contains(f"/f{i}"):
                    yield from cache.read(f"/f{i}")
                else:
                    yield from cache.insert(f"/f{i}", 100)

        def proc():
            yield from epoch(range(10))
            first = {f"/f{i}" for i in range(10) if cache.contains(f"/f{i}")}
            yield from epoch(reversed(range(10)))
            second = {f"/f{i}" for i in range(10) if cache.contains(f"/f{i}")}
            return first, second

        first, second = run(env, proc())
        assert first == second
        assert len(first) == 5


class TestRandomEviction:
    def test_victim_is_resident(self):
        rng = np.random.default_rng(0)
        pol = RandomEviction(rng)
        for i in range(10):
            pol.on_insert(f"/f{i}")
        for _ in range(50):
            assert pol.victim() in {f"/f{i}" for i in range(10)}

    def test_empty_returns_none(self):
        assert RandomEviction(np.random.default_rng(0)).victim() is None

    def test_swap_remove_consistency(self):
        rng = np.random.default_rng(1)
        pol = RandomEviction(rng)
        for i in range(5):
            pol.on_insert(f"/f{i}")
        pol.on_delete("/f2")
        pol.on_delete("/f0")
        remaining = {"/f1", "/f3", "/f4"}
        for _ in range(30):
            assert pol.victim() in remaining


class TestPolicyFactory:
    @pytest.mark.parametrize("name,cls", [
        ("random", RandomEviction),
        ("lru", LRUEviction),
        ("fifo", FIFOEviction),
        ("minio", MinIOEviction),
    ])
    def test_kinds(self, name, cls):
        assert isinstance(make_policy(name, np.random.default_rng(0)), cls)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_policy("arc", np.random.default_rng(0))


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=400), min_size=1, max_size=40),
    policy=st.sampled_from(["random", "lru", "fifo", "minio"]),
)
@settings(max_examples=60, deadline=None)
def test_property_cache_never_exceeds_capacity(sizes, policy):
    """Invariant: used_bytes <= capacity after any insert sequence."""
    env = Environment()
    cache = make_cache(env, capacity=1000, policy=policy)

    def proc():
        for i, size in enumerate(sizes):
            yield from cache.insert(f"/f{i}", size)
            assert cache.used_bytes <= cache.capacity_bytes
            assert cache.used_bytes == cache.localfs.device.used_bytes

    env.run(env.process(proc()))


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=300), min_size=1, max_size=30),
)
@settings(max_examples=40, deadline=None)
def test_property_accounting_matches_contents(sizes):
    """used_bytes always equals the sum of resident file sizes."""
    env = Environment()
    cache = make_cache(env, capacity=800, policy="lru")
    resident = {}

    def proc():
        for i, size in enumerate(sizes):
            ok = yield from cache.insert(f"/f{i}", size)
            if ok:
                resident[f"/f{i}"] = size
            # Reconcile against the policy's evictions.
            for path in list(resident):
                if not cache.contains(path):
                    del resident[path]
            assert cache.used_bytes == sum(resident.values())

    env.run(env.process(proc()))
