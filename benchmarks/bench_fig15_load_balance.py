"""Fig 15: per-server file distribution vs the ideal CDF.

HVAC's hash placement yields a near-uniform file distribution across
servers.  The paper notes a visible deviation from the ideal CDF below
128 nodes, attributed to random file sizes — reproduced here as the
byte-weighted balance being consistently worse than the file-count
balance.
"""

import pytest

from repro.experiments import load_balance

from conftest import BENCH_SCALE

NODE_COUNTS = [32, 128, 512, 1024]


def _run():
    n_files = 400_000 if BENCH_SCALE == "paper" else 80_000
    return load_balance(NODE_COUNTS, n_files=n_files)


@pytest.mark.benchmark(group="fig15")
def test_fig15_load_balance(benchmark, capsys):
    res = benchmark.pedantic(_run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(res.render())
        xs, ps = res.file_cdfs[NODE_COUNTS[-1]]
        print(f"\nCDF @ {NODE_COUNTS[-1]} nodes: share range "
              f"[{xs[0]:.2e}, {xs[-1]:.2e}], ideal {1 / NODE_COUNTS[-1]:.2e}")

    # Well-balanced at every node count (paper: "fairly well-balanced").
    for n in NODE_COUNTS:
        assert res.gini_files[n] < 0.15
        assert res.imbalance_files[n] < 1.5
    # Byte-weighted balance is no better than file balance — the
    # "random sizes of file" deviation the paper points to.
    for n in NODE_COUNTS:
        assert res.gini_bytes[n] >= res.gini_files[n] * 0.9
