"""Ablation: hash scheme (mod-N vs consistent) and replication (§III-E/H).

Two design choices DESIGN.md calls out:

* **Hash scheme** — mod-N (the prototype) vs a consistent-hash ring:
  identical balance in steady state, but consistent hashing moves ~1/n
  of files on allocation growth where mod-N moves almost all.
* **Replication factor** — the paper's proposed future work: r=2 doubles
  cache traffic on insert but keeps serving through a node failure with
  no PFS fallback.
"""

import pytest

from repro.analysis import format_table, gini
from repro.cluster import Allocation, TESTING
from repro.core import (
    ConsistentHashPlacement,
    HVACDeployment,
    ModuloPlacement,
    placement_histogram,
)
from repro.simcore import Environment
from repro.storage import GPFS


def _run_hash_comparison():
    paths = [f"/img/{i}.jpg" for i in range(60_000)]
    out = {}
    for name, cls in (("mod", ModuloPlacement), ("consistent", ConsistentHashPlacement)):
        p64 = cls(64)
        p65 = cls(65)
        counts = placement_histogram(p64, paths)
        moved = sum(p64.home(x) != p65.home(x) for x in paths) / len(paths)
        out[name] = (gini(counts), moved)
    return out


def _run_replication():
    results = {}
    for repl in (1, 2):
        env = Environment()
        spec = TESTING.with_hvac(replication_factor=repl)
        alloc = Allocation(env, spec, n_nodes=4)
        pfs = GPFS(env, spec.pfs, 4, spec.network.nic_bandwidth)
        dep = HVACDeployment(alloc, pfs)
        files = [(f"/d/f{i}", 20_000) for i in range(40)]

        def epoch(results_out):
            for node in range(4):
                cli = dep.client(node)
                for path, size in files:
                    yield from cli.read_file(path, size, node)

        env.run(env.process(epoch(None)))
        dep.fail_node(1)
        env.run(env.process(epoch(None)))
        results[repl] = dep.metrics.counter("hvac.client_pfs_fallback").value
        dep.teardown()
    return results


@pytest.mark.benchmark(group="ablation")
def test_ablation_hash_scheme(benchmark, capsys):
    out = benchmark.pedantic(_run_hash_comparison, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["scheme", "gini @64 servers", "files moved on +1 server"],
            [[k, g, m] for k, (g, m) in out.items()],
            title="Ablation: hash scheme (balance & reshuffle cost)",
        ))
    # Both balance well...
    assert out["mod"][0] < 0.1
    assert out["consistent"][0] < 0.15
    # ...but only consistent hashing avoids mass movement on growth.
    assert out["mod"][1] > 0.8
    assert out["consistent"][1] < 0.25


@pytest.mark.benchmark(group="ablation")
def test_ablation_replication_failover(benchmark, capsys):
    fallbacks = benchmark.pedantic(_run_replication, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["replication", "PFS fallbacks after node failure"],
            [[r, n] for r, n in fallbacks.items()],
            title="Ablation: replication factor vs failure degradation",
        ))
    # r=1: a failed node forces PFS fallbacks; r=2: replicas absorb it.
    assert fallbacks[1] > 0
    assert fallbacks[2] == 0
