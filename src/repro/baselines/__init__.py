"""Compared storage systems packaged as uniform setups."""

from .setups import (
    SYSTEM_SETUPS,
    GPFSSetup,
    HVACSetup,
    LPCCLikeSetup,
    StorageSetup,
    SystemHandle,
    XFSSetup,
)

__all__ = [
    "GPFSSetup",
    "HVACSetup",
    "LPCCLikeSetup",
    "StorageSetup",
    "SystemHandle",
    "SYSTEM_SETUPS",
    "XFSSetup",
]
