"""Membership & repair experiment: detector-only vs the gossip stack.

The driver behind ``repro membership``.  One crash/recover scenario —
a correlated two-node "rack burst" killing an adjacent server pair (so
some files lose their *entire* replica set, the case per-read fallback
handles worst) — is replayed under four failover configurations that
differ only in HVAC spec flags:

* ``detector``            — PR-1 state of the art: per-client timeout
  suspicion, per-read replica walk, PFS fallback;
* ``gossip``              — shared suspicion (piggybacked digests +
  anti-entropy), no placement change;
* ``gossip+remap``        — dead servers' hash ranges move to live
  stand-ins;
* ``gossip+remap+repair`` — plus peer-to-peer shard repair after
  recovery (recovered servers rejoin warm).

Reported per mode: mean detection latency, probe RPCs burned against
down servers (the duplicate-probe storm), degraded-read fraction during
the outage, PFS fallbacks, and the first-epoch-after-recovery penalty.
The dominance claim: the full stack beats detector-only on probes,
degraded fraction *and* recovery penalty simultaneously.

A second sweep re-runs the full stack across repair-bandwidth throttles
with the post-recovery epoch starting *while repair streams*, exposing
the repair-bandwidth vs epoch-interference trade-off.

Membership state transitions land in the same SLO window grid as the
read telemetry (``repro.obs.bucket_times`` + a ``count_strip`` row under
each degradation strip), and the raw transition log is the determinism
artifact CI uploads.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

from ..analysis import count_strip, degradation_dashboard, format_table
from ..cluster import ClusterSpec
from ..faults import FaultSchedule, crash
from ..obs import SLOReport, SpanRecorder, bucket_times, compute_slo
from .resilience import _build, _epoch, _fault_spec, _files

__all__ = [
    "MEMBERSHIP_MODES",
    "MembershipResult",
    "membership_comparison",
]

#: scenario tuning on top of resilience's FAULT_SPEC_OVERRIDES: two-way
#: replication (so remap has stand-ins to use), fast gossip relative to
#: the ms-scale epochs, suspected->dead escalation inside one outage
MEMBERSHIP_SPEC_OVERRIDES = dict(
    replication_factor=2,
    gossip_interval=0.005,
    suspect_to_dead=0.03,
    probation_period=0.02,
)

#: mode name -> HVAC spec flag overrides
MEMBERSHIP_MODES = {
    "detector": dict(membership_enabled=False),
    "gossip": dict(
        membership_enabled=True, remap_enabled=False, repair_enabled=False
    ),
    "gossip+remap": dict(
        membership_enabled=True, remap_enabled=True, repair_enabled=False
    ),
    "gossip+remap+repair": dict(
        membership_enabled=True, remap_enabled=True, repair_enabled=True
    ),
}


@dataclass
class ModeOutcome:
    """Everything one mode's run produced."""

    mode: str
    warm_seconds: float = 0.0
    outage_seconds: float = 0.0
    recovered_seconds: float = 0.0
    detect_latency: float = math.nan
    dup_probes: int = 0
    degraded_fraction: float = 0.0
    pfs_fallbacks: int = 0
    repair_bytes_peers: int = 0
    repair_bytes_pfs: int = 0
    repair_seconds: float = 0.0
    slo: SLOReport | None = None
    #: merged ``(t, owner, sid, old, new, inc, why)`` transition log
    transitions: list[tuple] = field(default_factory=list)
    #: sim times of every transition (for the window-grid strip)
    transition_times: list[float] = field(default_factory=list)

    @property
    def recovery_penalty(self) -> float:
        return (
            self.recovered_seconds / self.warm_seconds
            if self.warm_seconds
            else math.nan
        )


@dataclass
class MembershipResult:
    """Four-mode comparison + repair-throttle sweep."""

    n_nodes: int
    n_files: int
    victims: list[int]
    outage_epochs: int
    windows: int
    outcomes: dict[str, ModeOutcome] = field(default_factory=dict)
    #: (bandwidth, repair_s, bytes_peer, bytes_pfs, epoch_s, slowdown)
    throttle_rows: list[list] = field(default_factory=list)
    dashboard: str = ""

    def rows(self) -> list[list]:
        out = []
        for mode, oc in self.outcomes.items():
            out.append([
                mode,
                oc.detect_latency,
                oc.dup_probes,
                f"{oc.degraded_fraction:.1%}",
                oc.pfs_fallbacks,
                oc.outage_seconds,
                oc.recovered_seconds,
                oc.recovery_penalty,
            ])
        return out

    def dominates(self) -> bool:
        """The acceptance predicate: full stack strictly beats
        detector-only on probes, degraded fraction, and recovery
        penalty."""
        det = self.outcomes["detector"]
        full = self.outcomes["gossip+remap+repair"]
        return (
            full.dup_probes < det.dup_probes
            and full.degraded_fraction < det.degraded_fraction
            and full.recovery_penalty < det.recovery_penalty
        )

    def render(self) -> str:
        blocks = [format_table(
            ["mode", "detect (s)", "probes@down", "degraded", "PFS fb",
             "outage (s)", "recovered (s)", "penalty"],
            self.rows(),
            title=(f"Membership & repair ({self.n_nodes} nodes, "
                   f"{self.n_files} files/epoch/node, "
                   f"crash nodes {self.victims}, "
                   f"{self.outage_epochs} outage epochs)"),
            float_fmt="{:.4f}",
        )]
        verdict = "yes" if self.dominates() else "NO"
        blocks.append(
            "full stack strictly dominates detector-only "
            f"(probes, degraded fraction, recovery penalty): {verdict}"
        )
        if self.throttle_rows:
            blocks.append(format_table(
                ["repair B/s", "repair (s)", "B from peers", "B from PFS",
                 "epoch during repair (s)", "slowdown vs warm"],
                self.throttle_rows,
                title="Repair-bandwidth sweep (post-recovery epoch "
                      "overlapping the repair stream)",
                float_fmt="{:.4f}",
            ))
        if self.dashboard:
            blocks.append(self.dashboard)
        return "\n\n".join(blocks)

    def transition_log(self) -> str:
        """The determinism artifact: every membership transition of
        every view, in (time, owner, server) order."""
        lines = []
        for mode, oc in self.outcomes.items():
            lines.append(f"== {mode} ==")
            for t, owner, sid, old, new, inc, why in oc.transitions:
                lines.append(
                    f"{t:.9f} {owner} s{sid} {old}->{new} inc={inc} {why}"
                )
        return "\n".join(lines) + "\n"

    def write_artifacts(self, outdir: str) -> dict[str, str]:
        """Write ``report.txt`` + ``transitions.log``; returns
        ``{artifact name: path}``."""
        os.makedirs(outdir, exist_ok=True)
        paths: dict[str, str] = {}
        report = os.path.join(outdir, "report.txt")
        with open(report, "w", encoding="utf-8") as fh:
            fh.write(self.render() + "\n")
        paths["report"] = report
        log = os.path.join(outdir, "transitions.log")
        with open(log, "w", encoding="utf-8") as fh:
            fh.write(self.transition_log())
        paths["transitions"] = log
        return paths


def _collect_transitions(dep) -> list[tuple]:
    """Merge every view's transition log, deterministically ordered."""
    merged = []
    for node_id in sorted(dep.views):
        view = dep.views[node_id]
        for t, sid, old, new, inc, why in view.transitions:
            merged.append((t, view.owner, sid, old, new, inc, why))
    for server in dep.servers:
        if server.board is None:
            continue
        for t, sid, old, new, inc, why in server.board.transitions:
            merged.append((t, server.board.owner, sid, old, new, inc, why))
    merged.sort(key=lambda row: (row[0], row[1], row[2]))
    return merged


def _detection_latencies(dep, victims, t_crash: float) -> list[float]:
    """Per client: how long until it first held a victim suspect/dead."""
    out = []
    for node_id in sorted(dep._clients):
        cli = dep._clients[node_id]
        first = None
        if cli.view is not None:
            for t, sid, _old, new, _inc, _why in cli.view.transitions:
                if t >= t_crash and sid in victims and new in ("suspected", "dead"):
                    first = t
                    break
        else:
            for t, sid in cli.detector.suspicion_log:
                if t >= t_crash and sid in victims:
                    first = t
                    break
        if first is not None:
            out.append(first - t_crash)
    return out


def _probe_count(dep) -> int:
    """RPC attempts burned against down servers: read-path strikes plus
    gossip recovery pings that still failed."""
    m = dep.metrics
    total = (
        m.counter("hvac.client_rpc_timeouts").value
        + m.counter("hvac.client_rpc_failures").value
    )
    for node_id in sorted(dep.gossips):
        total += dep.gossips[node_id].metrics.counter("ping_failures").value
    return total


def _drain_repair(env, dep, max_seconds: float = 5.0) -> None:
    """Run the sim until every in-flight repair stream finishes."""
    if dep.repair is None:
        return
    deadline = env.now + max_seconds
    while dep.repair.in_flight > 0 and env.now < deadline:
        env.run(until=env.now + 1e-3)


def _run_mode(
    mode: str,
    spec: ClusterSpec,
    n_nodes: int,
    files,
    victims,
    outage_epochs: int,
    windows: int,
    seed: int,
    trace=None,
    settle: float | None = None,
    drain: bool = True,
) -> ModeOutcome:
    """One full crash -> outage -> recover -> measure cycle."""
    oc = ModeOutcome(mode=mode)
    rec = SpanRecorder()
    env, dep, _ = _build(spec, n_nodes, seed, spans=rec, trace=trace)
    if dep.repair is not None:
        dep.repair.attach_manifest(files)

    _epoch(env, dep, n_nodes, files)  # cold
    oc.warm_seconds = _epoch(env, dep, n_nodes, files)

    t_crash = env.now
    dep.inject(FaultSchedule([crash(0.0, v) for v in victims]))
    m = dep.metrics
    probes0 = _probe_count(dep)
    degraded0 = m.counter("hvac.client_degraded_reads").value
    fallbacks0 = m.counter("hvac.client_pfs_fallback").value

    outage_total = 0.0
    for _ in range(outage_epochs):
        outage_total += _epoch(env, dep, n_nodes, files)
    oc.outage_seconds = outage_total / outage_epochs
    n_outage_reads = n_nodes * len(files) * outage_epochs
    oc.degraded_fraction = (
        m.counter("hvac.client_degraded_reads").value - degraded0
    ) / n_outage_reads
    oc.pfs_fallbacks = m.counter("hvac.client_pfs_fallback").value - fallbacks0

    lats = _detection_latencies(dep, set(victims), t_crash)
    oc.detect_latency = sum(lats) / len(lats) if lats else math.nan

    for v in victims:
        dep.recover_node(v)
    if settle is None:
        settle = 2 * spec.hvac.probation_period
    if settle > 0:
        env.run(until=env.now + settle)
    if drain:
        _drain_repair(env, dep)
    oc.recovered_seconds = _epoch(env, dep, n_nodes, files)
    if not drain:
        _drain_repair(env, dep)
    oc.dup_probes = _probe_count(dep) - probes0

    if dep.repair is not None:
        oc.repair_bytes_peers = sum(
            r.bytes_from_peers for r in dep.repair.reports
        )
        oc.repair_bytes_pfs = sum(r.bytes_from_pfs for r in dep.repair.reports)
        oc.repair_seconds = sum(
            r.seconds for r in dep.repair.reports if not r.aborted
        )
    t_end = env.now
    dep.teardown()

    oc.transitions = _collect_transitions(dep)
    oc.transition_times = [row[0] for row in oc.transitions if row[0] >= t_crash]
    window = max((t_end - t_crash) / windows, 1e-9)
    oc.slo = compute_slo(rec, window, origin=t_crash, horizon=t_end)
    return oc


def _strip_dashboard(result: MembershipResult) -> str:
    """Degradation strips + membership-transition strips, per mode, on
    each mode's own post-crash window grid."""
    reports = {
        mode: oc.slo for mode, oc in result.outcomes.items() if oc.slo is not None
    }
    dash = degradation_dashboard(
        reports,
        title="post-crash SLO windows (origin = crash instant)",
        per_client=False,
    )
    width = max(len(mode) for mode in reports)
    lines = ["-- membership transitions per window (count; '+'=10+) --"]
    for mode, oc in result.outcomes.items():
        if oc.slo is None:
            continue
        counts = bucket_times(
            oc.transition_times, oc.slo.window, oc.slo.t0, oc.slo.t1
        )
        lines.append(f"{mode.ljust(width)} |{count_strip(counts)}|")
    return dash + "\n\n" + "\n".join(lines)


def membership_comparison(
    n_nodes: int = 6,
    n_files: int = 36,
    file_size: int = 25_000,
    victims: tuple[int, ...] = (1, 2),
    outage_epochs: int = 2,
    windows: int = 12,
    repair_bandwidths: tuple[float, ...] = (1e6, 1e7, 1e8, 0.0),
    spec: ClusterSpec | None = None,
    seed: int = 0,
    trace=None,
) -> MembershipResult:
    """Run the four failover modes plus the repair-throttle sweep.

    ``victims`` defaults to an *adjacent* node pair: under modulo
    placement with two-way replication, files homed at the first victim
    lose both replicas — the correlated-failure case where remapping
    pays most.  ``repair_bandwidths`` values of ``0.0`` mean
    unthrottled.
    """
    if n_nodes < 3:
        raise ValueError("membership_comparison needs >= 3 nodes")
    victims = [v % n_nodes for v in victims]
    base = _fault_spec(spec, **MEMBERSHIP_SPEC_OVERRIDES)
    files = _files(n_files, file_size)
    result = MembershipResult(
        n_nodes=n_nodes,
        n_files=n_files,
        victims=list(victims),
        outage_epochs=outage_epochs,
        windows=windows,
    )
    for mode, flags in MEMBERSHIP_MODES.items():
        mode_spec = base.with_hvac(**flags)
        result.outcomes[mode] = _run_mode(
            mode, mode_spec, n_nodes, files, victims,
            outage_epochs, windows, seed, trace=trace,
        )

    full_flags = MEMBERSHIP_MODES["gossip+remap+repair"]
    warm = result.outcomes["gossip+remap+repair"].warm_seconds
    for bw in repair_bandwidths:
        sweep_spec = base.with_hvac(**full_flags, repair_bandwidth=bw)
        oc = _run_mode(
            f"repair@{bw:g}", sweep_spec, n_nodes, files, victims,
            outage_epochs, windows, seed, settle=0.0, drain=False,
        )
        result.throttle_rows.append([
            "unthrottled" if bw <= 0 else f"{bw:.0e}",
            oc.repair_seconds,
            oc.repair_bytes_peers,
            oc.repair_bytes_pfs,
            oc.recovered_seconds,
            oc.recovered_seconds / warm if warm else math.nan,
        ])

    result.dashboard = _strip_dashboard(result)
    return result
