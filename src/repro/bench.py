"""``repro bench`` — engine throughput on pinned scenarios.

The perf trajectory (ROADMAP item 1): every scenario here is pinned —
fixed seed, fixed topology, fixed workload — so its *event count* is a
deterministic property of the code, and events/sec is a property of the
engine.  ``BENCH_engine.json`` checks the current numbers in; CI re-runs
the scenarios and compares with a tolerance band (timing is noisy across
runners, so the band is wide and guards collapse-scale regressions, not
percent-level drift).  Event-count drift, by contrast, is exact: it
means a PR changed scenario behavior and must refresh the checked-in
file alongside it.

Measurement protocol, per scenario:

* one *counting* run with an :class:`~repro.simcore.EventTrace`
  attached — ``trace.count`` is the deterministic kernel-event total;
* ``repeats`` *timing* runs, untraced (unless the scenario is pinned as
  traced — ``epochs_traced`` exists exactly to price the observer hook,
  and the fuzz executor always fingerprints), taking the **minimum**
  wall time, which is the standard low-noise estimator;
* ``events_per_sec = events / best_wall``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable

from .simcore import EventTrace

__all__ = [
    "BENCH_VERSION",
    "SCENARIOS",
    "TRACED_SCENARIOS",
    "BenchScenario",
    "BenchResult",
    "run_bench",
    "load_bench",
    "compare_bench",
    "run_bench_cli",
]

BENCH_VERSION = 1

#: Fail the comparison when events/sec drops below
#: ``(1 - tolerance) * baseline``.  Wide by design: the checked-in
#: numbers come from one machine, CI runners are another.
DEFAULT_TOLERANCE = 0.6

DEFAULT_REPEATS = 3


def _epochs(trace: EventTrace | None) -> None:
    from .check import _epochs_run

    _epochs_run(seed=0, n_nodes=2, files_per_rank=4)(trace)


def _membership(trace: EventTrace | None) -> None:
    from .check.races import membership_smoke

    membership_smoke(seed=0, n_nodes=4, n_files=12, trace=trace)


def _resilience(trace: EventTrace | None) -> None:
    from .experiments.resilience import resilience_sweep

    resilience_sweep(
        fail_fractions=(0.0, 0.5),
        n_nodes=4,
        n_files=12,
        file_size=25_000,
        seed=0,
        trace=trace,
    )


def _tenancy(trace: EventTrace | None) -> None:
    from .experiments.tenancy import tenancy_isolation

    # smoke-scale hot-storm isolation run (all three cache modes); the
    # shrunken cache_fraction keeps the smoke in the same thrash regime
    # the full-scale scenario exercises
    tenancy_isolation(
        n_nodes=3,
        victim_files=12,
        aggressor_files=120,
        file_size=100_000,
        storm_passes=2,
        windows=8,
        n_jobs=6,
        cache_fraction=0.2,
        seed=0,
        trace=trace,
    )


def _prefetch(trace: EventTrace | None) -> None:
    from .experiments.prefetch import prefetch_comparison

    # smoke-scale clairvoyant run (all three modes, crash leg on): the
    # same contention regime the full scenario exercises, CI-sized
    prefetch_comparison(
        n_nodes=3,
        n_files=96,
        file_size=75_000,
        epochs=3,
        windows=8,
        seed=0,
        trace=trace,
    )


def _fuzz_single(trace: EventTrace | None) -> None:
    from .fuzz.executor import execute
    from .fuzz.scenario import ScenarioGenerator

    # The executor always fingerprints (the determinism invariant needs
    # it), so this scenario is pinned as traced.
    execute(ScenarioGenerator(seed=7).sample(0), trace=trace or EventTrace())


@dataclass(frozen=True)
class BenchScenario:
    """One pinned scenario: a runnable taking an optional trace."""

    name: str
    run: Callable[[EventTrace | None], None]
    traced: bool = False
    note: str = ""


SCENARIOS: dict[str, BenchScenario] = {
    s.name: s
    for s in (
        BenchScenario(
            "epochs", _epochs,
            note="2-node resnet50 epochs (the repro-check determinism run)",
        ),
        BenchScenario(
            "epochs_traced", _epochs, traced=True,
            note="same epochs run with EventTrace attached (observer cost)",
        ),
        BenchScenario(
            "membership", _membership,
            note="crash-burst membership/repair smoke (races scenario)",
        ),
        BenchScenario(
            "resilience", _resilience,
            note="resilience sweep, fail fractions 0.0/0.5 on 4 nodes",
        ),
        BenchScenario(
            "tenancy", _tenancy,
            note="multi-tenant hot-storm isolation, all three cache modes",
        ),
        BenchScenario(
            "prefetch", _prefetch,
            note="clairvoyant prefetch comparison, all three modes + crash leg",
        ),
        BenchScenario(
            "fuzz_single", _fuzz_single, traced=True,
            note="one seeded fuzz-executor scenario end to end",
        ),
    )
}

TRACED_SCENARIOS = frozenset(s.name for s in SCENARIOS.values() if s.traced)


@dataclass
class BenchResult:
    """Events/sec per pinned scenario, JSON round-trippable."""

    repeats: int = DEFAULT_REPEATS
    scenarios: dict[str, dict] = field(default_factory=dict)
    version: int = BENCH_VERSION

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "unit": "events_per_sec",
            "repeats": self.repeats,
            "scenarios": {
                name: dict(entry) for name, entry in sorted(self.scenarios.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchResult":
        if data.get("version") != BENCH_VERSION:
            raise ValueError(
                f"unsupported bench format version {data.get('version')!r}"
            )
        return cls(
            repeats=int(data.get("repeats", DEFAULT_REPEATS)),
            scenarios={
                str(name): dict(entry)
                for name, entry in data.get("scenarios", {}).items()
            },
        )

    def write(self, path: str) -> None:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def render(self) -> str:
        lines = [
            f"{'scenario':<16} {'events':>10} {'best wall (s)':>14} "
            f"{'events/sec':>12}"
        ]
        for name, entry in sorted(self.scenarios.items()):
            lines.append(
                f"{name:<16} {entry['events']:>10} "
                f"{entry['best_wall_s']:>14.4f} "
                f"{entry['events_per_sec']:>12.0f}"
            )
        return "\n".join(lines)


def run_bench(
    scenarios: list[str] | None = None,
    repeats: int = DEFAULT_REPEATS,
    verbose: bool = False,
) -> BenchResult:
    """Run the pinned scenarios; count events once, time ``repeats``×."""
    names = list(scenarios) if scenarios else list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise ValueError(f"unknown bench scenario(s): {', '.join(unknown)}")
    result = BenchResult(repeats=repeats)
    for name in names:
        sc = SCENARIOS[name]
        counter = EventTrace()
        sc.run(counter)
        events = counter.count
        walls = []
        for _ in range(repeats):
            timing_trace = EventTrace() if sc.traced else None
            t0 = time.perf_counter()  # simlint: waive SIM001 -- wall clock is the measurement here
            sc.run(timing_trace)
            walls.append(
                time.perf_counter() - t0  # simlint: waive SIM001 -- wall clock is the measurement here
            )
        best = min(walls)
        result.scenarios[name] = {
            "events": events,
            "best_wall_s": round(best, 6),
            "events_per_sec": round(events / best, 1),
            "traced": sc.traced,
        }
        if verbose:
            print(
                f"bench: {name}: {events} events, best {best:.4f}s, "
                f"{events / best:,.0f} events/sec"
            )
    return result


def load_bench(path: str) -> BenchResult:
    with open(path, encoding="utf-8") as fh:
        return BenchResult.from_dict(json.load(fh))


def compare_bench(
    current: BenchResult,
    baseline: BenchResult,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Regression messages, empty when current holds the baseline's band.

    Two gates per scenario present in both results:

    * **events** must match exactly — the scenarios are deterministic,
      so drift means scenario behavior changed and the checked-in
      baseline must be refreshed in the same PR;
    * **events/sec** must stay above ``(1 - tolerance) * baseline``.
    """
    problems: list[str] = []
    for name, base in sorted(baseline.scenarios.items()):
        cur = current.scenarios.get(name)
        if cur is None:
            problems.append(f"{name}: scenario missing from current run")
            continue
        if cur["events"] != base["events"]:
            problems.append(
                f"{name}: event count drifted {base['events']} -> "
                f"{cur['events']} — scenario behavior changed; refresh "
                f"BENCH_engine.json in this PR"
            )
        floor = (1.0 - tolerance) * base["events_per_sec"]
        if cur["events_per_sec"] < floor:
            problems.append(
                f"{name}: {cur['events_per_sec']:,.0f} events/sec is below "
                f"the tolerance band (baseline "
                f"{base['events_per_sec']:,.0f}, floor {floor:,.0f})"
            )
    return problems


def run_bench_cli(
    output: str | None = None,
    compare: str | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    repeats: int = DEFAULT_REPEATS,
    scenarios: list[str] | None = None,
) -> int:
    """The ``repro bench`` entry point; returns the exit code."""
    result = run_bench(scenarios=scenarios, repeats=repeats, verbose=True)
    print(result.render())
    if output:
        result.write(output)
        print(f"bench: wrote {output}")
    rc = 0
    if compare:
        baseline = load_bench(compare)
        problems = compare_bench(result, baseline, tolerance=tolerance)
        for p in problems:
            print(f"bench REGRESSION: {p}")
        if problems:
            rc = 1
        else:
            print(
                f"bench: within tolerance band of {compare} "
                f"({len(baseline.scenarios)} scenario(s), "
                f"tolerance {tolerance:.0%})"
            )
    return rc
