"""Lightweight instrumentation for simulation components.

Collectors are plain append-only series with numpy-backed reduction, so
hot paths pay one ``list.append`` per sample.  Everything downstream
(tables, CDFs, confidence intervals) reads from these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Series", "Counter", "Tally", "MetricRegistry"]


class Series:
    """Timestamped samples ``(t, value)``."""

    __slots__ = ("name", "_t", "_v")

    def __init__(self, name: str):
        self.name = name
        self._t: list[float] = []
        self._v: list[float] = []

    def record(self, t: float, value: float) -> None:
        self._t.append(t)
        self._v.append(value)

    def __len__(self) -> int:
        return len(self._v)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._t, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._v, dtype=float)

    def mean(self) -> float:
        return float(np.mean(self._v)) if self._v else float("nan")

    def total(self) -> float:
        return float(np.sum(self._v)) if self._v else 0.0

    def rate(self) -> float:
        """Samples per unit time over the observed window."""
        if len(self._t) < 2:
            return 0.0
        span = self._t[-1] - self._t[0]
        return (len(self._t) - 1) / span if span > 0 else float("inf")


class Counter:
    """Monotonic named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def incr(self, by: int = 1) -> None:
        self.value += by

    def __int__(self) -> int:
        return self.value


class Tally:
    """Streaming scalar statistics (count/mean/min/max/variance).

    Welford's algorithm; O(1) memory regardless of sample count, which
    matters for multi-million-transaction MDTest runs.
    """

    __slots__ = ("name", "n", "_mean", "_m2", "_min", "_max")

    def __init__(self, name: str):
        self.name = name
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    @property
    def mean(self) -> float:
        return self._mean if self.n else float("nan")

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def std(self) -> float:
        return self.variance**0.5

    @property
    def min(self) -> float:
        return self._min if self.n else float("nan")

    @property
    def max(self) -> float:
        return self._max if self.n else float("nan")


@dataclass
class MetricRegistry:
    """Namespaced container of collectors shared across one simulation."""

    series: dict[str, Series] = field(default_factory=dict)
    counters: dict[str, Counter] = field(default_factory=dict)
    tallies: dict[str, Tally] = field(default_factory=dict)

    def get_series(self, name: str) -> Series:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = Series(name)
        return s

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def tally(self, name: str) -> Tally:
        t = self.tallies.get(name)
        if t is None:
            t = self.tallies[name] = Tally(name)
        return t

    def snapshot(self) -> dict:
        """A plain-dict view of every collector (for result records)."""
        out: dict = {}
        for name, c in self.counters.items():
            out[name] = c.value
        for name, t in self.tallies.items():
            out[name] = {
                "n": t.n,
                "mean": t.mean,
                "std": t.std,
                "min": t.min,
                "max": t.max,
            }
        for name, s in self.series.items():
            out[name] = {"n": len(s), "mean": s.mean(), "total": s.total()}
        return out
