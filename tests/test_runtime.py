"""Tests for the real-file HVAC runtime (threads + directories)."""

import os

import pytest

from repro.runtime import RuntimeDeployment, RuntimeServer, interposed_open


@pytest.fixture
def pfs(tmp_path):
    """A fake 'PFS' directory with a small dataset."""
    root = tmp_path / "pfs"
    root.mkdir()
    for i in range(12):
        (root / f"sample-{i:03d}.bin").write_bytes(bytes([i % 256]) * (1000 + i))
    return str(root)


class TestRuntimeServer:
    def test_miss_then_hit(self, pfs, tmp_path):
        srv = RuntimeServer(0, pfs, str(tmp_path / "cache0"))
        try:
            data1 = srv.submit("sample-000.bin").result()
            data2 = srv.submit("sample-000.bin").result()
            assert data1 == data2 == b"\x00" * 1000
            assert srv.stats.misses == 1
            assert srv.stats.hits == 1
            assert srv.contains("sample-000.bin")
        finally:
            srv.shutdown()

    def test_cache_file_on_disk(self, pfs, tmp_path):
        cache = tmp_path / "cache0"
        srv = RuntimeServer(0, pfs, str(cache))
        try:
            srv.submit("sample-001.bin").result()
            assert len(list(cache.iterdir())) == 1
        finally:
            srv.shutdown()

    def test_missing_file_propagates_error(self, pfs, tmp_path):
        srv = RuntimeServer(0, pfs, str(tmp_path / "c"))
        try:
            with pytest.raises(FileNotFoundError):
                srv.submit("ghost.bin").result()
        finally:
            srv.shutdown()

    def test_lru_eviction_under_budget(self, pfs, tmp_path):
        srv = RuntimeServer(0, pfs, str(tmp_path / "c"), capacity_bytes=2500)
        try:
            for i in range(4):
                srv.submit(f"sample-{i:03d}.bin").result()
            assert srv.used_bytes <= 2500
            assert srv.stats.evictions > 0
            assert not srv.contains("sample-000.bin")  # oldest went first
        finally:
            srv.shutdown()

    def test_oversized_file_served_without_caching(self, pfs, tmp_path):
        srv = RuntimeServer(0, pfs, str(tmp_path / "c"), capacity_bytes=100)
        try:
            data = srv.submit("sample-000.bin").result()
            assert len(data) == 1000
            assert srv.cached_files == 0
        finally:
            srv.shutdown()

    def test_shutdown_purges(self, pfs, tmp_path):
        cache = tmp_path / "c"
        srv = RuntimeServer(0, pfs, str(cache))
        srv.submit("sample-000.bin").result()
        srv.shutdown(purge=True)
        assert not cache.exists()
        with pytest.raises(RuntimeError):
            srv.submit("sample-001.bin")

    def test_invalid_eviction(self, pfs, tmp_path):
        with pytest.raises(ValueError):
            RuntimeServer(0, pfs, str(tmp_path / "c"), eviction="arc")


class TestRuntimeDeployment:
    def test_reads_match_source(self, pfs):
        with RuntimeDeployment(pfs, n_servers=3) as dep:
            for i in range(12):
                path = os.path.join(pfs, f"sample-{i:03d}.bin")
                assert dep.client.read_file(path) == open(path, "rb").read()

    def test_files_spread_across_servers(self, pfs):
        with RuntimeDeployment(pfs, n_servers=3) as dep:
            for i in range(12):
                dep.client.read_file(os.path.join(pfs, f"sample-{i:03d}.bin"))
            populated = sum(1 for s in dep.servers if s.cached_files > 0)
            assert populated >= 2

    def test_second_epoch_all_hits(self, pfs):
        with RuntimeDeployment(pfs, n_servers=2) as dep:
            paths = [os.path.join(pfs, f"sample-{i:03d}.bin") for i in range(12)]
            for p in paths:
                dep.client.read_file(p)
            assert dep.hit_rate == 0.0
            for p in paths:
                dep.client.read_file(p)
            assert dep.hit_rate == pytest.approx(0.5)
            assert dep.total_hits == 12

    def test_outside_dataset_rejected(self, pfs, tmp_path):
        other = tmp_path / "other.bin"
        other.write_bytes(b"x")
        with RuntimeDeployment(pfs, n_servers=1) as dep:
            with pytest.raises(ValueError):
                dep.client.read_file(str(other))

    def test_missing_pfs_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RuntimeDeployment(str(tmp_path / "nope"))

    def test_placement_shared_with_simulator(self, pfs):
        """One hash function, two execution modes."""
        from repro.core.hashing import ModuloPlacement

        with RuntimeDeployment(pfs, n_servers=4) as dep:
            assert isinstance(dep.placement, ModuloPlacement)
            rel = "sample-000.bin"
            home = dep.placement.home(rel)
            dep.client.read_file(os.path.join(pfs, rel))
            assert dep.servers[home].cached_files == 1


class TestInterposedOpen:
    def test_transparent_redirection(self, pfs):
        """Unmodified application code; dataset reads go through HVAC."""

        def application(paths):  # knows nothing about HVAC
            return [open(p, "rb").read() for p in paths]

        paths = [os.path.join(pfs, f"sample-{i:03d}.bin") for i in range(4)]
        expected = [open(p, "rb").read() for p in paths]
        with RuntimeDeployment(pfs, n_servers=2) as dep:
            with interposed_open(dep):
                got = application(paths)
            assert got == expected
            assert dep.total_misses == 4

    def test_non_dataset_files_untouched(self, pfs, tmp_path):
        side = tmp_path / "config.txt"
        side.write_text("hello")
        with RuntimeDeployment(pfs, n_servers=1) as dep:
            with interposed_open(dep):
                assert open(str(side)).read() == "hello"
            assert dep.total_misses == 0

    def test_text_mode_reads(self, pfs, tmp_path):
        text_file = os.path.join(pfs, "labels.txt")
        with open(text_file, "w") as fh:
            fh.write("cat\ndog\n")
        with RuntimeDeployment(pfs, n_servers=1) as dep:
            with interposed_open(dep):
                assert open(text_file).read() == "cat\ndog\n"

    def test_write_mode_passthrough(self, pfs):
        target = os.path.join(pfs, "new-file.bin")
        with RuntimeDeployment(pfs, n_servers=1) as dep:
            with interposed_open(dep):
                with open(target, "wb") as fh:
                    fh.write(b"written")
        assert open(target, "rb").read() == b"written"

    def test_open_restored_after_exit(self, pfs):
        import builtins

        original = builtins.open
        with RuntimeDeployment(pfs, n_servers=1) as dep:
            with interposed_open(dep):
                assert builtins.open is not original
            assert builtins.open is original

    def test_nested_interposition_rejected(self, pfs):
        with RuntimeDeployment(pfs, n_servers=1) as dep:
            with interposed_open(dep):
                with pytest.raises(RuntimeError):
                    with interposed_open(dep):
                        pass
