"""HVAC deployment over a job allocation (paper §III-C).

On Summit, ``alloc_flags "hvac"`` in the job script initializes the
NVMe on every allocated node and spawns the HVAC server processes; the
cache lives exactly as long as the job.  :class:`HVACDeployment` is that
step: it builds ``instances_per_node`` servers on each node of an
:class:`~repro.cluster.Allocation`, shares each node's XFS among its
instances (with per-instance capacity budgets), constructs the placement
function every client will use, and hands out per-node clients.
"""

from __future__ import annotations

from typing import Optional

from ..cluster.node import Allocation
from ..simcore import MetricRegistry, RandomStreams
from ..storage.base import FileBackend
from ..storage.localfs import LocalFS
from .client import HVACClient
from .hashing import (
    LocalityPlacement,
    Placement,
    TopologyAwarePlacement,
    make_placement,
)
from .server import HVACServer

__all__ = ["HVACDeployment", "client_key_order"]


def client_key_order(key) -> tuple:
    """Deterministic sort key over mixed client-table keys.

    Classic deployments key clients by bare node id; tenant fleets key
    them by ``(node, tenant)``.  Sorting a table holding both kinds
    (or either alone) needs one total order — bare ids sort as
    ``(node, -1)``, before every tenant client of the same node.
    """
    return (key, -1) if isinstance(key, int) else tuple(key)


class HVACDeployment:
    """All HVAC state for one job: servers, placement, clients."""

    def __init__(
        self,
        allocation: Allocation,
        pfs: FileBackend,
        seed: int = 0,
        metrics: MetricRegistry | None = None,
        placement: Optional[Placement] = None,
        spans=None,
    ):
        self.allocation = allocation
        self.env = allocation.env
        self.spec = allocation.spec
        self.pfs = pfs
        self.metrics = metrics or allocation.metrics
        #: optional :class:`~repro.obs.SpanRecorder` shared by every
        #: server and client of this deployment
        self.spans = spans
        hvac = self.spec.hvac
        self.instances_per_node = hvac.instances_per_node
        n_servers = allocation.n_nodes * hvac.instances_per_node

        if placement is None:
            repl = min(hvac.replication_factor, n_servers)
            placement = make_placement(
                hvac.hash_scheme,
                n_servers,
                replication_factor=repl,
                vnodes=hvac.consistent_vnodes,
            )
            if hvac.topology_aware:
                rack_size = self.spec.network.rack_size
                if rack_size < 1:
                    raise ValueError(
                        "topology_aware HVAC requires NetworkSpec.rack_size >= 1"
                    )
                placement = TopologyAwarePlacement(
                    placement,
                    servers_per_node=hvac.instances_per_node,
                    rack_size=rack_size,
                    replication_factor=max(repl, 2),
                )
        elif placement.n_servers != n_servers:
            raise ValueError(
                f"placement covers {placement.n_servers} servers, "
                f"deployment has {n_servers}"
            )
        self.placement = placement

        rand = RandomStreams(seed)
        self.rand = rand
        self.localfs: list[LocalFS] = []
        self._fs_by_node: dict[int, LocalFS] = {}
        self.servers: list[HVACServer] = []
        per_instance_capacity = int(
            hvac.cache_fraction
            * self.spec.node.nvme.capacity_bytes
            / hvac.instances_per_node
        )
        for node in allocation:
            fs = LocalFS(
                self.env,
                node.node_id,
                node.nvme,
                metrics=self.metrics,
                track_namespace=False,
            )
            self.localfs.append(fs)
            self._fs_by_node[node.node_id] = fs
            for inst in range(hvac.instances_per_node):
                server_id = len(self.servers)
                self.servers.append(
                    HVACServer(
                        self.env,
                        server_id=server_id,
                        node_id=node.node_id,
                        instance_index=inst,
                        localfs=fs,
                        pfs=pfs,
                        fabric=allocation.fabric,
                        spec=self.spec,
                        cache_capacity=per_instance_capacity,
                        rand=rand.child(f"server{server_id}"),
                        metrics=self.metrics,
                        spans=spans,
                    )
                )
        self._clients: dict[int, HVACClient] = {}
        #: optional :class:`~repro.prefetch.LookaheadScheduler` that new
        #: clients subscribe to (see :meth:`attach_prefetch`)
        self.prefetch_listener = None

        # -- membership & repair (optional) -------------------------------
        self.membership_enabled = hvac.membership_enabled
        self.repair = None
        self.views: dict[int, object] = {}
        self.gossips: dict[int, object] = {}
        if self.membership_enabled:
            from ..membership import MembershipView, RepairManager

            if hvac.repair_enabled:
                self.repair = RepairManager(self, bandwidth=hvac.repair_bandwidth)
            for server in self.servers:
                board = MembershipView(
                    self.env,
                    len(self.servers),
                    owner=f"s{server.server_id}",
                    probation=hvac.probation_period,
                    dead_after=hvac.suspect_to_dead,
                    spans=spans,
                    metrics=self.metrics.scope(
                        f"hvac.s{server.server_id}.membership"
                    ),
                )
                server.enable_membership(
                    board, repair=self.repair, peers=self.servers
                )

    # -- addressing ---------------------------------------------------------
    @property
    def n_servers(self) -> int:
        return len(self.servers)

    def servers_on_node(self, node_id: int) -> list[HVACServer]:
        base = node_id * self.instances_per_node
        return self.servers[base : base + self.instances_per_node]

    def client(self, node_id: int, tenant: Optional[int] = None) -> HVACClient:
        """The (cached) HVAC client for processes on ``node_id``.

        Classic single-job deployments get one client per node (keyed by
        the bare node id — byte-identical to the pre-tenancy behavior).
        Multi-tenant fleets get one client per (node, tenant): each job's
        detector evidence, retry budgets, and RNG stream are its own, so
        one tenant's strikes never pollute another's failover state.
        """
        key = node_id if tenant is None else (node_id, tenant)
        cli = self._clients.get(key)
        if cli is None:
            suffix = "" if tenant is None else f".t{tenant}"
            cli = HVACClient(
                self.env,
                node_id,
                self.servers,
                self.placement,
                self.pfs,
                self.spec,
                metrics=self.metrics,
                rand=self.rand.child(f"client{node_id}{suffix}"),
                spans=self.spans,
                tenant=tenant,
            )
            self._clients[key] = cli
            if self.prefetch_listener is not None:
                cli.prefetch_listener = self.prefetch_listener
            if self.membership_enabled:
                self._join_membership(cli, key)
        return cli

    def attach_prefetch(self, scheduler) -> None:
        """Wire a clairvoyant scheduler into every current and future
        client's demand stream."""
        self.prefetch_listener = scheduler
        for key in sorted(self._clients, key=client_key_order):
            self._clients[key].prefetch_listener = scheduler

    def _join_membership(self, cli: HVACClient, key=None) -> None:
        """Give a fresh client its view and gossip agent."""
        from ..membership import GossipAgent, MembershipView

        if key is None:
            key = cli.node_id
        owner = (
            f"c{cli.node_id}"
            if cli.tenant is None
            else f"c{cli.node_id}t{cli.tenant}"
        )
        hvac = self.spec.hvac
        view = MembershipView(
            self.env,
            len(self.servers),
            owner=owner,
            probation=hvac.probation_period,
            dead_after=hvac.suspect_to_dead,
            spans=self.spans,
            metrics=self.metrics.scope(f"hvac.{owner}.membership"),
        )
        cli.attach_membership(view, remap=hvac.remap_enabled)
        self.views[key] = view
        self.gossips[key] = GossipAgent(self.env, cli, view, self._clients, self.spec)

    @classmethod
    def with_locality_split(
        cls,
        allocation: Allocation,
        pfs: FileBackend,
        local_fraction: float,
        seed: int = 0,
    ) -> "HVACDeployment":
        """A deployment whose placement pins ``local_fraction`` of files
        to the reading node — the Fig 13 manual L%/R% control."""
        hvac = allocation.spec.hvac
        n_servers = allocation.n_nodes * hvac.instances_per_node
        placement = LocalityPlacement(
            n_servers,
            servers_per_node=hvac.instances_per_node,
            local_fraction=local_fraction,
            replication_factor=min(hvac.replication_factor, n_servers),
        )
        return cls(allocation, pfs, seed=seed, placement=placement)

    # -- lifecycle ----------------------------------------------------------
    def teardown(self) -> None:
        """Job end: purge caches, stop servers (cache dies with the job)."""
        for key in sorted(self.gossips, key=client_key_order):
            self.gossips[key].stop()
        for server in self.servers:
            server.teardown()

    def fail_node(self, node_id: int) -> None:
        """Fail every server instance on a node (NVMe loss, §III-H)."""
        for server in self.servers_on_node(node_id):
            server.fail()

    def recover_node(self, node_id: int) -> None:
        for server in self.servers_on_node(node_id):
            server.recover()
            listener = self.prefetch_listener
            if listener is not None:
                listener.on_server_recover(server)

    def hang_node(self, node_id: int) -> None:
        """Wedge every server instance on a node (gray failure: requests
        land but no reply ever comes — only client deadlines notice)."""
        for server in self.servers_on_node(node_id):
            server.hang()

    def unhang_node(self, node_id: int) -> None:
        for server in self.servers_on_node(node_id):
            server.unhang()

    def degrade_node(self, node_id: int, factor: float) -> None:
        """Throttle a node's NVMe to 1/``factor`` of rated performance."""
        self._fs_by_node[node_id].device.degrade(factor)

    def restore_node(self, node_id: int) -> None:
        self._fs_by_node[node_id].device.restore()

    def inject(self, schedule) -> "object":
        """Start a fault :class:`~repro.faults.Injector` replaying
        ``schedule`` against this deployment; returns the injector."""
        from ..faults import Injector

        injector = Injector(self, schedule)
        injector.start()
        return injector

    # -- aggregate stats ------------------------------------------------------
    @property
    def total_cached_bytes(self) -> int:
        return sum(s.cache.used_bytes for s in self.servers)

    @property
    def total_cached_files(self) -> int:
        return sum(s.cache.n_files for s in self.servers)

    def hit_rate(self) -> float:
        hits = self.metrics.counter("hvac.cache_hits").value
        misses = self.metrics.counter("hvac.cache_misses").value
        total = hits + misses
        return hits / total if total else 0.0
