"""Virtual POSIX layer: namespace, mount table, per-process file API.

The DL frameworks in the paper (PyTorch + Horovod data loaders) issue
plain POSIX ``<open, read, close>`` against dataset paths (§III-F).  In
the reproduction those calls land here: a :class:`ProcessView` gives
each simulated application process a file-descriptor table and resolves
paths through a :class:`MountTable` to whichever backend (GPFS, local
XFS, HVAC) owns the prefix — exactly the role the VFS plays under a
real libc.

The :mod:`.interpose` module then layers HVAC's ``LD_PRELOAD``
redirection on top, *without the application or the mounts changing*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..simcore import Environment
from ..storage.base import FileBackend, OpenFile

__all__ = ["Namespace", "MountTable", "ProcessView", "PosixError"]


class PosixError(Exception):
    """ENOENT/EBADF-style failures from the virtual syscall layer."""


class Namespace:
    """Global file metadata: path → size.

    Populated when a dataset is "created" on the PFS.  Real metadata
    *performance* is charged by the storage backends; this object is the
    ground truth those backends are assumed to agree on.
    """

    def __init__(self):
        self._sizes: dict[str, int] = {}

    def add_file(self, path: str, size: int) -> None:
        if size < 0:
            raise ValueError("size must be >= 0")
        self._sizes[path] = size

    def add_files(self, paths, sizes) -> None:
        for path, size in zip(paths, sizes):
            self.add_file(path, int(size))

    def remove_file(self, path: str) -> None:
        if self._sizes.pop(path, None) is None:
            raise PosixError(f"ENOENT: {path}")

    def exists(self, path: str) -> bool:
        return path in self._sizes

    def size_of(self, path: str) -> int:
        try:
            return self._sizes[path]
        except KeyError:
            raise PosixError(f"ENOENT: {path}") from None

    def __len__(self) -> int:
        return len(self._sizes)


@dataclass(frozen=True)
class _Mount:
    prefix: str
    backend: FileBackend


class MountTable:
    """Longest-prefix-match path → backend resolution."""

    def __init__(self):
        self._mounts: list[_Mount] = []

    def mount(self, prefix: str, backend: FileBackend) -> None:
        if not prefix.startswith("/"):
            raise ValueError("mount prefix must be absolute")
        prefix = prefix.rstrip("/") or "/"
        if any(m.prefix == prefix for m in self._mounts):
            raise ValueError(f"{prefix} already mounted")
        self._mounts.append(_Mount(prefix, backend))
        self._mounts.sort(key=lambda m: len(m.prefix), reverse=True)

    def unmount(self, prefix: str) -> None:
        prefix = prefix.rstrip("/") or "/"
        for i, m in enumerate(self._mounts):
            if m.prefix == prefix:
                del self._mounts[i]
                return
        raise ValueError(f"{prefix} is not mounted")

    def resolve(self, path: str) -> FileBackend:
        for m in self._mounts:
            if path == m.prefix or path.startswith(
                m.prefix if m.prefix == "/" else m.prefix + "/"
            ):
                return m.backend
        raise PosixError(f"ENOENT: no mount covers {path}")

    @property
    def mounts(self) -> list[tuple[str, FileBackend]]:
        return [(m.prefix, m.backend) for m in self._mounts]


class ProcessView:
    """One application process's POSIX interface (fd table included).

    ``redirect`` is the hook the interposer uses: a callable
    ``(path) -> FileBackend | None`` consulted *before* the mount table,
    mirroring how an ``LD_PRELOAD`` shim sees the call before the kernel.
    """

    def __init__(
        self,
        env: Environment,
        namespace: Namespace,
        mounts: MountTable,
        node_id: int,
    ):
        self.env = env
        self.namespace = namespace
        self.mounts = mounts
        self.node_id = node_id
        self._fds: dict[int, OpenFile] = {}
        self._next_fd = 3  # 0-2 are stdio, as tradition demands
        self.redirect = None  # type: Optional[callable]

    # -- syscalls ---------------------------------------------------------
    def open(self, path: str) -> Generator:
        """``open(path, O_RDONLY)`` → fd (event-valued generator)."""
        size = self.namespace.size_of(path)
        backend: Optional[FileBackend] = None
        if self.redirect is not None:
            backend = self.redirect(path)
        if backend is None:
            backend = self.mounts.resolve(path)
        handle = yield from backend.open(path, size, self.node_id)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = handle
        return fd

    def read(self, fd: int, nbytes: Optional[int] = None) -> Generator:
        """``read(fd, n)``; ``n=None`` reads to EOF (the DL pattern)."""
        handle = self._handle(fd)
        if nbytes is None:
            nbytes = handle.size - handle.offset
        got = yield from handle.backend.read(handle, nbytes)
        return got

    def close(self, fd: int) -> Generator:
        handle = self._fds.pop(fd, None)
        if handle is None:
            raise PosixError(f"EBADF: {fd}")
        yield from handle.backend.close(handle)

    def stat(self, path: str) -> int:
        """Size lookup; free of simulated cost (client-side cache)."""
        return self.namespace.size_of(path)

    def read_file(self, path: str) -> Generator:
        """The whole-file open-read-close transaction, via the fd table."""
        fd = yield from self.open(path)
        got = yield from self.read(fd)
        yield from self.close(fd)
        return got

    # -- internals -----------------------------------------------------------
    def _handle(self, fd: int) -> OpenFile:
        try:
            return self._fds[fd]
        except KeyError:
            raise PosixError(f"EBADF: {fd}") from None

    @property
    def open_fds(self) -> int:
        return len(self._fds)
