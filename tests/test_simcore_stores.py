"""Unit tests for Store / PriorityStore / FilterStore."""

import pytest

from repro.simcore import Environment, FilterStore, PriorityStore, Store, StoreFull


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append((env.now, item))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [(0.0, 0), (1.0, 1), (2.0, 2)]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(7)
        yield store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(7.0, "x")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("a", env.now))
        yield store.put("b")
        log.append(("b", env.now))

    def consumer():
        yield env.timeout(4)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert log == [("a", 0.0), ("b", 4.0)]


def test_put_nowait_raises_when_full():
    env = Environment()
    store = Store(env, capacity=1)
    store.put_nowait("a")
    with pytest.raises(StoreFull):
        store.put_nowait("b")


def test_multiple_consumers_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(i):
        item = yield store.get()
        got.append((i, item))

    for i in range(3):
        env.process(consumer(i))

    def producer():
        for v in "xyz":
            yield store.put(v)

    env.process(producer())
    env.run()
    assert got == [(0, "x"), (1, "y"), (2, "z")]


def test_priority_store_orders_items():
    env = Environment()
    store = PriorityStore(env)
    got = []

    def producer():
        yield store.put((5, "low"))
        yield store.put((1, "high"))
        yield store.put((3, "mid"))

    def consumer():
        yield env.timeout(1)
        for _ in range(3):
            item = yield store.get()
            got.append(item[1])

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == ["high", "mid", "low"]


def test_filter_store_matches_predicate():
    env = Environment()
    store = FilterStore(env)
    got = []

    def producer():
        yield store.put({"file": "a", "v": 1})
        yield store.put({"file": "b", "v": 2})

    def consumer():
        item = yield store.get(lambda it: it["file"] == "b")
        got.append(item["v"])

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [2]
    assert store.items[0]["file"] == "a"


def test_filter_store_waits_for_match():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer():
        item = yield store.get(lambda it: it == "wanted")
        got.append((env.now, item))

    def producer():
        yield store.put("other")
        yield env.timeout(5)
        yield store.put("wanted")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(5.0, "wanted")]


def test_filter_store_deep_queue_match():
    """A get deeper in the wait list must be served when its item arrives."""
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer(want):
        item = yield store.get(lambda it, w=want: it == w)
        got.append((env.now, item))

    env.process(consumer("a"))
    env.process(consumer("b"))

    def producer():
        yield env.timeout(1)
        yield store.put("b")  # matches the *second* waiter
        yield env.timeout(1)
        yield store.put("a")

    env.process(producer())
    env.run()
    assert got == [(1.0, "b"), (2.0, "a")]


def test_store_len():
    env = Environment()
    store = Store(env)
    store.put_nowait(1)
    store.put_nowait(2)
    assert len(store) == 2


def test_get_losing_race_does_not_swallow_item():
    """A ``get | timeout`` where the timeout wins must withdraw the get:
    the next put goes to a live consumer, not the abandoned event."""
    from repro.simcore import AnyOf

    env = Environment()
    store = Store(env)
    got = []

    def impatient():
        result = yield store.get() | env.timeout(1.0, value="gave-up")
        got.append(("impatient", sorted(map(str, result.values()))))

    def patient():
        yield env.timeout(2.0)
        item = yield store.get()
        got.append(("patient", item))

    def producer():
        yield env.timeout(3.0)
        yield store.put("the-item")

    env.process(impatient())
    env.process(patient())
    env.process(producer())
    env.run()
    assert ("patient", "the-item") in got
    assert got[0] == ("impatient", ["gave-up"])


def test_put_losing_race_withdraws_from_full_store():
    from repro.simcore import AnyOf

    env = Environment()
    store = Store(env, capacity=1)
    store.put_nowait("occupant")
    outcomes = []

    def impatient_producer():
        result = yield store.put("late") | env.timeout(1.0, value="quit")
        outcomes.append(sorted(map(str, result.values())))

    def consumer():
        yield env.timeout(2.0)
        item = yield store.get()
        outcomes.append(item)
        # The withdrawn put must NOT sneak in afterwards.
        yield env.timeout(1.0)
        outcomes.append(list(store.items))

    env.process(impatient_producer())
    env.process(consumer())
    env.run()
    assert outcomes == [["quit"], "occupant", []]
