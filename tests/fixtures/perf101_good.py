"""PERF101 fixture (clean): the same per-event instantiation, but the
class declares ``__slots__`` so each instance is a fixed-size record."""


class Token:
    __slots__ = ("seq",)

    def __init__(self, seq):
        self.seq = seq


def on_event(seq):
    return Token(seq)
