"""SIM012 fixture (clean): the same cross-method shape, but every
iteration surface over the attribute-held set is sorted, so hash order
never leaks into program behaviour."""


class Tracker:
    def order(self):
        return [x for x in sorted(self._live)]

    def reset(self):
        self._live = set()
