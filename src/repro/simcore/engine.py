"""Discrete-event simulation engine.

A compact, deterministic, generator-based discrete-event kernel in the
style of SimPy, built from scratch for this project.  Every stateful
component of the reproduction (NVMe devices, GPFS metadata servers, the
HVAC data-mover threads, DL training loops) runs as a :class:`Process`
over a shared :class:`Environment`.

Semantics
---------
* A *process* is a Python generator that ``yield``\\ s :class:`Event`
  objects.  The process is suspended until the yielded event triggers,
  at which point the event's value is sent back into the generator (or
  its exception raised inside it).
* Simulated time is a float (seconds, by convention in this project).
  Events scheduled at equal times fire in FIFO order of scheduling,
  which makes every run bit-for-bit deterministic.
* :meth:`Process.interrupt` raises :class:`Interrupt` inside a running
  process — used for cancellation (e.g. tearing down HVAC servers when
  a job ends).
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from .trace import event_label

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "StopProcess",
]

# Event state markers (kept as module-level singletons for cheap checks).
_PENDING = object()

# Scheduling priorities: URGENT beats NORMAL at the same timestamp.  The
# engine uses URGENT internally for process resumption so that a chain of
# zero-delay events completes before the clock is allowed to advance past
# co-scheduled timeouts.
URGENT = 0
NORMAL = 1


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class StopProcess(Exception):
    """Legacy-style early return from a process: ``raise StopProcess(v)``."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies ``cause``, available via
    :attr:`cause` on the caught exception.
    """

    @property
    def cause(self) -> Any:
        return self.args[0]


class Event:
    """A condition that may happen at some point in simulated time.

    An event starts *pending*; it becomes *triggered* once it has a
    value (or exception) and has been scheduled; it is *processed* after
    its callbacks have run.  Callbacks are ``f(event)`` callables.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused = False

    def __repr__(self) -> str:
        return f"<{self.__class__.__name__} at {id(self):#x} {self._state_str()}>"

    def _state_str(self) -> str:
        if self._value is _PENDING:
            return "pending"
        if self.callbacks is not None:
            return "triggered"
        return "processed"

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True after callbacks have executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only when triggered)."""
        if self._value is _PENDING:
            raise SimulationError("Event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or stored exception if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("Event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised in every process waiting on this
        event.  If nothing ever waits, the engine raises it at the end
        of the step (unless :meth:`defused`).
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL, 0.0)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy success/failure from another (triggered) event."""
        if event._ok:
            self.succeed(event._value)
        else:
            self._defuse_other(event)
            self.fail(event._value)

    @staticmethod
    def _defuse_other(event: "Event") -> None:
        event._defused = True

    def defused(self) -> "Event":
        """Mark a failed event as handled so the kernel won't re-raise."""
        self._defused = True
        return self

    # -- composition ------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"Negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)


class Initialize(Event):
    """Internal: kicks a freshly created process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self, URGENT, 0.0)


class Process(Event):
    """A running generator.  Also an event: it triggers when the
    generator returns (value = return value) or raises (failure)."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # The event this process is currently waiting on (None while active).
        self._target: Optional[Event] = None
        Initialize(env, self)

    def __repr__(self) -> str:
        return f"<Process({self.name}) {self._state_str()}>"

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside this process.

        Interrupting a finished process is an error; interrupting a
        process from itself is also an error.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("A process is not allowed to interrupt itself")
        # Deliver the interrupt through a throw-event at the head of the queue.
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env._schedule(event, URGENT, 0.0)

    # -- engine internals ---------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the triggering event's outcome."""
        env = self.env
        env._active_proc = self
        # Detach from the event we were waiting on (relevant for interrupts:
        # the original target stays scheduled but must no longer resume us).
        if self._target is not None and self._target is not event:
            try:
                self._target.callbacks.remove(self._resume)
            except (ValueError, AttributeError):
                pass
            # Waiting-list events (store gets/puts, container ops) must
            # also leave their wait queue, or they become phantom
            # consumers that swallow items nobody receives.
            withdraw = getattr(self._target, "_withdraw", None)
            if withdraw is not None:
                withdraw()
        self._target = None

        while True:
            try:
                if event._ok:
                    next_evt = self._generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_evt = self._generator.throw(type(exc), exc, None)
            except StopIteration as stop:
                outcome, ok = stop.value, True
                break
            except StopProcess as stop:
                outcome, ok = stop.value, True
                break
            except BaseException as err:
                outcome, ok = err, False
                break

            if not isinstance(next_evt, Event):
                # Misbehaving process: yielded a non-event.
                err = SimulationError(
                    f"Process {self.name!r} yielded non-event {next_evt!r}"
                )
                outcome, ok = err, False
                break
            if next_evt.env is not env:
                err = SimulationError("Event belongs to a different Environment")
                outcome, ok = err, False
                break

            if next_evt.callbacks is not None:
                # Event still pending or triggered-but-unprocessed: wait on it.
                next_evt.callbacks.append(self._resume)
                self._target = next_evt
                env._active_proc = None
                return
            # Event already processed: loop immediately with its outcome.
            event = next_evt

        # Generator finished (or died).
        self._ok = ok
        self._value = outcome
        if not ok and isinstance(outcome, BaseException):
            # If nobody is waiting on this process the error must surface.
            self._defused = bool(self.callbacks)
        env._schedule(self, URGENT, 0.0)
        env._active_proc = None


class Condition(Event):
    """Composite event over multiple sub-events.

    Triggers when ``evaluate(events, n_done)`` returns True, with a dict
    mapping each *triggered* sub-event to its value.  Fails as soon as
    any sub-event fails.
    """

    __slots__ = ("_events", "_evaluate", "_count", "_fired")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list, int], bool],
        events: Iterable[Event],
    ):
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._count = 0
        self._fired: set[int] = set()
        for evt in self._events:
            if evt.env is not env:
                raise SimulationError("Events from different environments")
        if not self._events:
            self.succeed({})
            return
        for evt in self._events:
            if evt.callbacks is None:
                self._check(evt)
            else:
                evt.callbacks.append(self._check)

    def _collect_values(self) -> dict:
        return {
            evt: evt._value
            for evt in self._events
            if id(evt) in self._fired and evt._ok
        }

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        self._fired.add(id(event))
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())
        if self._value is not _PENDING:
            self._withdraw_losers()

    def _withdraw_losers(self) -> None:
        """Cancel still-pending wait-queue sub-events once the condition
        has resolved: an abandoned ``store.get()`` losing a
        ``get | timeout`` race must not linger as a phantom consumer
        that swallows the next item."""
        for evt in self._events:
            if evt._value is _PENDING:
                withdraw = getattr(evt, "_withdraw", None)
                if withdraw is not None:
                    withdraw()


def _all_done(events: list, count: int) -> bool:
    """AllOf evaluator, hoisted to module level: conditions are built on
    the RPC fast path (``done | expiry``), so per-instance lambdas are a
    per-event closure allocation (PERF102)."""
    return count >= len(events)


def _any_done(events: list, count: int) -> bool:
    """AnyOf evaluator, hoisted to module level (see :func:`_all_done`)."""
    return count >= 1


class AllOf(Condition):
    """Triggers once *all* sub-events have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, _all_done, events)


class AnyOf(Condition):
    """Triggers once *any* sub-event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, _any_done, events)


class Environment:
    """The simulation kernel: clock + event queue + process scheduler."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []  # heap of (time, priority, seq, event)
        self._seq = itertools.count()
        self._active_proc: Optional[Process] = None
        # Opt-in observers, consolidated behind one `_observed` flag so
        # the disabled fast path pays a single attribute test per event
        # and never constructs a label (zero-allocation when detached).
        self._trace = None  # event-stream fingerprinting (simcore/trace.py)
        self._sanitizer = None  # sim-time race sanitizer (check/races.py)
        self._profiler = None  # per-component attribution (simcore/profile.py)
        self._observed = False

    def _update_observed(self) -> None:
        self._observed = (
            self._trace is not None
            or self._sanitizer is not None
            or self._profiler is not None
        )

    # -- tracing -------------------------------------------------------
    @property
    def trace(self):
        """The attached :class:`~repro.simcore.trace.EventTrace`, if any."""
        return self._trace

    def attach_trace(self, trace) -> None:
        """Fingerprint every fired event into ``trace`` from now on."""
        self._trace = trace
        self._update_observed()

    def detach_trace(self) -> None:
        self._trace = None
        self._update_observed()

    # -- race sanitizing ----------------------------------------------
    @property
    def sanitizer(self):
        """The attached race sanitizer, if any."""
        return self._sanitizer

    def attach_sanitizer(self, sanitizer) -> None:
        """Record shared-state access sets per fired event from now on.

        The sanitizer observes only — it creates no events and draws no
        RNG, so the event-stream fingerprint is unchanged.
        """
        self._sanitizer = sanitizer
        self._update_observed()

    def detach_sanitizer(self) -> None:
        self._sanitizer = None
        self._update_observed()

    # -- profiling -----------------------------------------------------
    @property
    def profiler(self):
        """The attached :class:`~repro.simcore.profile.SimProfiler`, if any."""
        return self._profiler

    def attach_profiler(self, profiler) -> None:
        """Attribute every fired event to a component from now on.

        Like the sanitizer, the profiler observes only (kernel counters
        and simulated time) — the event-stream fingerprint is unchanged
        and its attribution is same-seed deterministic.
        """
        self._profiler = profiler
        self._update_observed()

    def detach_profiler(self) -> None:
        self._profiler = None
        self._update_observed()

    def note_access(self, cell: str, mode: str, tag=None) -> None:
        """Declare a read (``"r"``) or write (``"w"``) of a registered
        shared-state cell by the currently executing event.

        Pay-for-what-you-use: one ``is None`` check when no sanitizer
        is attached.  ``tag`` marks idempotent writes — two pure writes
        of the same tag at one timestamp commute and are not a race.
        """
        if self._sanitizer is not None:
            self._sanitizer.note(cell, mode, tag)

    # -- public surface ----------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """A bare, manually-triggered event."""
        return Event(self)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling / stepping ----------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        seq = next(self._seq)
        heappush(self._queue, (self._now + delay, priority, seq, event))
        if self._observed:
            if self._sanitizer is not None:
                # Same-timestamp causality: a zero-delay child's order
                # after its scheduler is program-defined, not
                # insertion-accidental.
                self._sanitizer.note_schedule(seq, delay)
            if self._profiler is not None:
                self._profiler.note_schedule(seq, delay)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        try:
            self._now, priority, seq, event = heappop(self._queue)
        except IndexError:
            raise SimulationError("No scheduled events") from None

        observed = self._observed
        if observed:
            label = event_label(event)
            if self._trace is not None:
                self._trace.record(self._now, priority, seq, label)
            if self._sanitizer is not None:
                self._sanitizer.begin_event(self._now, priority, seq, label)
            if self._profiler is not None:
                self._profiler.begin_event(self._now, priority, seq, label)

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if observed:
            if self._sanitizer is not None:
                self._sanitizer.end_event()
            if self._profiler is not None:
                self._profiler.end_event(len(callbacks))

        if not event._ok and not event._defused:
            # Unhandled failure: crash the simulation loudly.
            exc = event._value
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a time,
        or an :class:`Event` (run until it triggers; returns its value).
        """
        if until is None:
            stop_at = float("inf")
            stop_evt: Optional[Event] = None
        elif isinstance(until, Event):
            stop_evt = until
            stop_at = float("inf")
            if stop_evt.callbacks is None:  # already processed
                return stop_evt._value
        else:
            stop_at = float(until)
            stop_evt = None
            if stop_at <= self._now:
                raise SimulationError(
                    f"until={stop_at} must be greater than now={self._now}"
                )

        # Hoisted loop-invariant lookups: run() drives every experiment,
        # so the per-step overhead here multiplies by the event count.
        queue = self._queue
        step = self.step
        if stop_evt is not None:
            done = []
            stop_evt.callbacks.append(done.append)
            while queue and not done:
                step()
            if done:
                evt = done[0]
                if not evt._ok:
                    evt._defused = True
                    raise evt._value
                return evt._value
            raise SimulationError("Event was never triggered: queue ran dry")

        while queue and queue[0][0] < stop_at:
            step()
        if self._queue and stop_at != float("inf"):
            self._now = stop_at
        return None
