"""Lustre-like parallel file system model.

The paper discusses Lustre throughout (LPCC in §II-D, Frontier's future
deployment in the conclusion) and claims HVAC is PFS-agnostic: "Any
optimizations applied to GPFS can be inherently seen and applied to
HVAC without any modifications."  This second PFS personality makes
that claim testable: HVAC runs unmodified over either backend.

Differences from the GPFS model that matter to small-file DL I/O:

* **Metadata**: a (usually small) set of MDS with DNE-style hashed
  directory striping; opens take an ``ldlm`` layout+read lock — one
  lock RPC per open, *cached per client node* so re-opens by the same
  node skip the MDS (Lustre's client lock cache, absent in our GPFS
  token model).  A finite lock table evicts old locks (LRU), so DL's
  huge randomized namespaces defeat the cache — exactly why Lustre
  also struggles with many small files.
* **Data**: files are striped over OSTs (default stripe_count=1 for
  small files, like real deployments), each OST a bandwidth server
  behind an OSS node; an OSS serializes its OSTs' network service.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generator

from ..simcore import (
    Environment,
    MetricRegistry,
    Resource,
    stable_hash64,
)
from .base import FileBackend, OpenFile

__all__ = ["LustreSpec", "Lustre"]


@dataclass(frozen=True)
class LustreSpec:
    """Sizing of a Lustre filesystem (defaults: Orion-like ratios,
    scaled to the same 2.5 TB/s envelope as the Alpine model so the two
    personalities are comparable)."""

    n_mds: int = 8
    mds_ops_per_sec: float = 60_000.0
    #: serialized MDS ops per open when the lock is NOT cached
    ops_per_open: float = 2.0
    ops_per_close: float = 1.0
    #: per-client-node ldlm lock cache entries (LRU)
    client_lock_cache: int = 64_000
    n_oss: int = 64
    osts_per_oss: int = 4
    ost_bandwidth: float = 9.8e9  # 64 × 4 × 9.8 GB/s ≈ 2.5 TB/s
    #: stripes for files above ``stripe_threshold`` (PFL-style)
    stripe_count: int = 4
    stripe_threshold: int = 64 * 1024 * 1024
    stripe_size: int = 16 * 1024 * 1024
    data_latency: float = 1.0e-3  # shared-system interference (pure delay)
    #: per-request OST occupancy (request processing + queueing)
    ost_request_overhead: float = 100e-6
    client_overhead: float = 20e-6

    @property
    def n_osts(self) -> int:
        return self.n_oss * self.osts_per_oss

    @property
    def aggregate_bandwidth(self) -> float:
        return self.n_osts * self.ost_bandwidth

    @property
    def aggregate_metadata_ops(self) -> float:
        return self.n_mds * self.mds_ops_per_sec


class _MDS:
    __slots__ = ("env", "res", "op_time")

    def __init__(self, env: Environment, ops_per_sec: float):
        self.env = env
        self.res = Resource(env, capacity=1)
        self.op_time = 1.0 / ops_per_sec

    def do_ops(self, n_ops: float) -> Generator:
        with self.res.request() as slot:
            yield slot
            yield self.env.timeout(n_ops * self.op_time)


class _OST:
    __slots__ = ("env", "res", "latency", "overhead", "bandwidth")

    def __init__(
        self, env: Environment, latency: float, overhead: float, bandwidth: float
    ):
        self.env = env
        self.res = Resource(env, capacity=1)
        self.latency = latency  # interference: pure delay, no occupancy
        self.overhead = overhead
        self.bandwidth = bandwidth

    def serve(self, nbytes: int) -> Generator:
        yield self.env.timeout(self.latency)
        with self.res.request() as slot:
            yield slot
            yield self.env.timeout(self.overhead + nbytes / self.bandwidth)


class Lustre(FileBackend):
    """The Lustre personality; drop-in wherever GPFS is used."""

    def __init__(
        self,
        env: Environment,
        spec: LustreSpec,
        n_client_nodes: int,
        client_link_bandwidth: float,
        metrics: MetricRegistry | None = None,
    ):
        self.env = env
        self.spec = spec
        self.metrics = metrics or MetricRegistry()
        self._mds = [_MDS(env, spec.mds_ops_per_sec) for _ in range(spec.n_mds)]
        self._osts = [
            _OST(
                env,
                spec.data_latency,
                spec.ost_request_overhead,
                spec.ost_bandwidth,
            )
            for _ in range(spec.n_osts)
        ]
        self._client_links = [Resource(env, capacity=1) for _ in range(n_client_nodes)]
        self._client_bw = client_link_bandwidth
        # Per-client-node ldlm lock caches: path -> None, LRU order.
        self._lock_caches: list[OrderedDict] = [
            OrderedDict() for _ in range(n_client_nodes)
        ]

    # -- placement ----------------------------------------------------------
    def mds_for(self, path: str) -> int:
        return stable_hash64("lustre-mds", path) % len(self._mds)

    def ost_for(self, path: str, stripe_index: int) -> int:
        start = stable_hash64("lustre-ost", path) % len(self._osts)
        return (start + stripe_index) % len(self._osts)

    def layout_of(self, size: int) -> tuple[int, int]:
        """(stripe_count, stripe_size) per the PFL-style policy."""
        if size > self.spec.stripe_threshold:
            return self.spec.stripe_count, self.spec.stripe_size
        return 1, max(size, 1)

    # -- lock cache -----------------------------------------------------------
    def _lock_cached(self, node: int, path: str) -> bool:
        cache = self._lock_caches[node]
        if path in cache:
            cache.move_to_end(path)
            return True
        return False

    def _lock_insert(self, node: int, path: str) -> None:
        cache = self._lock_caches[node]
        cache[path] = None
        while len(cache) > self.spec.client_lock_cache:
            cache.popitem(last=False)

    def lock_cache_size(self, node: int) -> int:
        return len(self._lock_caches[node])

    # -- FileBackend ------------------------------------------------------------
    def open(self, path: str, size: int, client_node: int) -> Generator:
        yield self.env.timeout(self.spec.client_overhead)
        if self._lock_cached(client_node, path):
            # ldlm lock still held by this client: no MDS round-trip.
            self.metrics.counter("lustre.lock_hits").incr()
        else:
            yield from self._mds[self.mds_for(path)].do_ops(self.spec.ops_per_open)
            self._lock_insert(client_node, path)
            self.metrics.counter("lustre.lock_misses").incr()
        self.metrics.counter("lustre.opens").incr()
        return OpenFile(path=path, size=size, backend=self, client_node=client_node)

    def read(self, handle: OpenFile, nbytes: int) -> Generator:
        if handle.closed:
            raise ValueError(f"read on closed handle {handle.path}")
        nbytes = min(nbytes, handle.size - handle.offset)
        if nbytes <= 0:
            return 0
        stripe_count, stripe_size = self.layout_of(handle.size)

        fetches = []
        first = handle.offset // stripe_size
        last = (handle.offset + nbytes - 1) // stripe_size
        for stripe in range(first, last + 1):
            lo = max(handle.offset, stripe * stripe_size)
            hi = min(handle.offset + nbytes, (stripe + 1) * stripe_size)
            ost = self._osts[self.ost_for(handle.path, stripe % stripe_count)]
            fetches.append(self.env.process(ost.serve(hi - lo)))
        link = self._client_links[handle.client_node]
        with link.request() as slot:
            yield slot
            yield self.env.timeout(nbytes / self._client_bw)
        from ..simcore import AllOf

        yield AllOf(self.env, fetches)
        handle.offset += nbytes
        self.metrics.counter("lustre.reads").incr()
        self.metrics.tally("lustre.read_bytes").add(nbytes)
        return nbytes

    def close(self, handle: OpenFile) -> Generator:
        if handle.closed:
            raise ValueError(f"double close of {handle.path}")
        handle.closed = True
        # Lock stays cached at the client: close is a local operation
        # unless the lock was already evicted (then a cancel RPC).
        if self._lock_cached(handle.client_node, handle.path):
            yield self.env.timeout(2e-6)
        else:
            yield from self._mds[self.mds_for(handle.path)].do_ops(
                self.spec.ops_per_close
            )
        self.metrics.counter("lustre.closes").incr()

    @property
    def aggregate_bandwidth(self) -> float:
        return self.spec.aggregate_bandwidth
