"""Fuzzer machinery tests: scenario model, generator, executor,
autopilot, shrinker and campaign — everything except the
deliberately-broken deployments (those live in
``test_fuzz_invariants.py``)."""

import json
from dataclasses import replace

import pytest

from repro.faults import FaultEvent
from repro.fuzz import (
    Autopilot,
    InvariantConfig,
    InvariantReport,
    Scenario,
    ScenarioGenerator,
    WORKLOAD_KINDS,
    Workload,
    check_observation,
    execute,
    run_campaign,
    scenario_digest,
    shrink,
)
from repro.fuzz.scenario import drop_client, drop_fault, drop_tenant
from repro.simcore import EventTrace, RandomStreams


def tiny_scenario(**kw) -> Scenario:
    """A benign, fast scenario (no faults unless the caller adds some)."""
    defaults = dict(
        seed=5,
        n_nodes=3,
        n_files=6,
        mean_file_size=20_000,
        workload=Workload(kind="uniform", clients=(0, 2), reads_per_client=6),
    )
    defaults.update(kw)
    return Scenario(**defaults)


class TestScenarioModel:
    def test_json_round_trip(self):
        s = tiny_scenario(
            size_sigma=0.6,
            faults=(
                FaultEvent(time=0.01, kind="crash", node=1, duration=0.02),
                FaultEvent(time=0.02, kind="flaky_link", link=(0, 2),
                           duration=0.01, drop_prob=0.5),
            ),
        )
        blob = json.dumps(s.to_dict(), sort_keys=True)
        back = Scenario.from_dict(json.loads(blob))
        assert back == s
        assert scenario_digest(back) == scenario_digest(s)

    def test_digest_sensitive_to_content(self):
        s = tiny_scenario()
        assert scenario_digest(s) != scenario_digest(replace(s, seed=6))
        assert scenario_digest(s) != scenario_digest(
            replace(s, workload=replace(s.workload, reads_per_client=7))
        )

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 2 nodes"):
            tiny_scenario(n_nodes=1)
        with pytest.raises(ValueError, match="unknown workload kind"):
            Workload(kind="chaos")
        with pytest.raises(ValueError, match="outside the topology"):
            tiny_scenario(workload=Workload(clients=(0, 9)))
        with pytest.raises(ValueError, match="at least one client"):
            Workload(clients=())

    def test_files_deterministic(self):
        s = tiny_scenario(size_sigma=0.6)
        assert s.files() == s.files()
        assert all(size > 0 for _p, size in s.files())
        flat = tiny_scenario(size_sigma=0.0)
        assert {size for _p, size in flat.files()} == {flat.mean_file_size}

    def test_heal_horizon(self):
        s = tiny_scenario(faults=(
            FaultEvent(time=0.01, kind="crash", node=1, duration=0.03),
            FaultEvent(time=0.02, kind="crash", node=2, duration=None),
            FaultEvent(time=0.01, kind="flap", node=0, period=0.01, cycles=3),
        ))
        # transient: 0.04; permanent: its onset only; flap: 0.01 + 2*0.01*3
        assert s.heal_horizon() == pytest.approx(0.07)
        assert tiny_scenario().heal_horizon() == 0.0

    def test_spec_membership_toggle(self):
        assert tiny_scenario().spec().hvac.membership_enabled is False
        spec = tiny_scenario(membership=True, replication=2).spec()
        assert spec.hvac.membership_enabled is True
        assert spec.hvac.replication_factor == 2

    def test_plans_cover_requested_reads(self):
        s = tiny_scenario()
        plans = s.plans()
        assert set(plans) == set(s.workload.clients)
        for plan in plans.values():
            assert len(plan) == s.workload.reads_per_client
            assert set(plan) <= set(s.files())
        assert s.plans() == plans  # pure function of the scenario

    def test_plans_hotstorm_biased(self):
        s = tiny_scenario(workload=Workload(
            kind="hotstorm", clients=(0,), reads_per_client=40,
            hot_fraction=0.9, hot_file=2,
        ))
        plan = s.plans()[0]
        hot = s.files()[2]
        assert sum(1 for item in plan if item == hot) > len(plan) // 2

    def test_plans_thrash_strided(self):
        s = tiny_scenario(workload=Workload(
            kind="thrash", clients=(1,), reads_per_client=6, stride=5,
        ))
        files = s.files()
        assert s.plans()[1] == [files[(1 + 5 * k) % 6] for k in range(6)]

    def test_shrinker_moves(self):
        s = tiny_scenario(faults=(
            FaultEvent(time=0.01, kind="crash", node=1, duration=0.02),
            FaultEvent(time=0.03, kind="hang", node=2, duration=0.02),
        ))
        assert drop_fault(s, 0).faults == (s.faults[1],)
        assert drop_client(s, 0).workload.clients == (2,)


class TestGenerator:
    def test_sample_is_pure(self):
        gen = ScenarioGenerator(seed=7)
        assert gen.sample(3) == ScenarioGenerator(seed=7).sample(3)
        assert gen.sample(3) != gen.sample(4)
        assert gen.sample(3) != ScenarioGenerator(seed=8).sample(3)

    def test_samples_stay_in_space(self):
        gen = ScenarioGenerator(seed=1)
        kinds = set()
        for i in range(12):
            s = gen.sample(i)
            assert 3 <= s.n_nodes <= 6
            assert s.workload.kind in WORKLOAD_KINDS
            assert all(0 <= c < s.n_nodes for c in s.workload.clients)
            assert Scenario.from_dict(s.to_dict()) == s
            kinds.add(s.workload.kind)
        assert len(kinds) >= 2  # the sampler actually mixes families


class TestExecutor:
    def test_benign_scenario_is_clean(self):
        obs = execute(tiny_scenario(), trace=EventTrace())
        assert not obs.aborted
        assert obs.reads_planned == 12
        assert [ep.hung for ep in obs.epochs] == [False, False]
        assert set(obs.counters) >= {"client_hits", "client_pfs_fallback"}
        report = check_observation(obs, InvariantConfig())
        assert report.ok
        assert "determinism" in report.skipped  # single run
        assert "repair_convergence" in report.skipped  # membership off

    def test_fingerprint_deterministic(self):
        s = tiny_scenario(faults=(
            FaultEvent(time=0.005, kind="crash", node=1, duration=0.02),
        ))
        one = execute(s, trace=EventTrace())
        two = execute(s, trace=EventTrace())
        assert one.fingerprint == two.fingerprint
        report = check_observation(
            one, InvariantConfig(), second_fingerprint=two.fingerprint
        )
        assert "determinism" not in report.violated

    def test_faulted_run_records_detector_evidence(self):
        # the crash fires the instant the measured epoch starts, so the
        # tiny epoch cannot finish before it lands
        s = tiny_scenario(faults=(
            FaultEvent(time=0.0, kind="crash", node=1, duration=0.03),
        ))
        obs = execute(s, trace=EventTrace())
        assert not obs.aborted
        kinds = {kind for _t, _owner, kind, _sid in obs.detector_transitions}
        assert "suspect" in kinds
        assert obs.t_settled >= obs.t_heal
        assert obs.slo is not None

    def test_membership_scenario_converges(self):
        s = tiny_scenario(
            membership=True, replication=2,
            faults=(FaultEvent(time=0.005, kind="crash", node=1,
                               duration=0.03),),
        )
        obs = execute(s, trace=EventTrace())
        report = check_observation(obs, InvariantConfig())
        assert "repair_convergence" not in report.violated
        assert obs.unconverged == []


def multi_scenario(**kw) -> Scenario:
    """A two-tenant variant of :func:`tiny_scenario`."""
    defaults = dict(
        seed=5,
        n_nodes=3,
        n_files=6,
        mean_file_size=20_000,
        workload=Workload(kind="uniform", clients=(0, 2), reads_per_client=6),
        tenants=2,
        tenant_workloads=(
            Workload(kind="hotstorm", clients=(1,), reads_per_client=5),
        ),
    )
    defaults.update(kw)
    return Scenario(**defaults)


class TestMultiTenant:
    def test_validation(self):
        with pytest.raises(ValueError):
            tiny_scenario(tenants=2)  # missing tenant workloads
        with pytest.raises(ValueError):
            multi_scenario(tenant_workloads=(
                Workload(kind="uniform", clients=(7,)),
            ))  # tenant client outside the topology

    def test_namespaces_split_per_tenant(self):
        s = multi_scenario()
        assert all(p.startswith("/pfs/t0/fuzz/") for p, _ in s.files(0))
        assert all(p.startswith("/pfs/t1/fuzz/") for p, _ in s.files(1))
        # single-tenant scenarios keep the exact pre-tenancy paths
        assert all(p.startswith("/pfs/fuzz/") for p, _ in tiny_scenario().files())

    def test_round_trip_and_old_case_dicts_still_load(self):
        s = multi_scenario(size_sigma=0.4)
        blob = json.dumps(s.to_dict(), sort_keys=True)
        assert Scenario.from_dict(json.loads(blob)) == s
        # a pre-tenancy case dict has neither key
        d = tiny_scenario().to_dict()
        d.pop("tenants", None)
        d.pop("tenant_workloads", None)
        assert Scenario.from_dict(d) == tiny_scenario()

    def test_generator_draws_multi_tenant_scenarios(self):
        gen = ScenarioGenerator(seed=7)
        samples = [gen.sample(i) for i in range(40)]
        multi = [s for s in samples if s.tenants > 1]
        assert multi  # the dimension is actually exercised
        for s in multi:
            assert not s.membership  # one dimension at a time
            assert len(s.tenant_workloads) == s.tenants - 1
            for wl in s.tenant_workloads:
                assert wl.kind in WORKLOAD_KINDS
                assert all(0 <= c < s.n_nodes for c in wl.clients)
            assert Scenario.from_dict(s.to_dict()) == s

    def test_executor_runs_all_tenants_deterministically(self):
        s = multi_scenario()
        one = execute(s, trace=EventTrace())
        two = execute(s, trace=EventTrace())
        assert one.fingerprint == two.fingerprint
        assert not one.aborted
        assert one.reads_planned == s.epochs * (2 * 6 + 1 * 5)
        report = check_observation(
            one, InvariantConfig(), second_fingerprint=two.fingerprint
        )
        assert report.ok
        assert "tenant_isolation" in report.margins
        assert 0.0 <= report.margins["tenant_isolation"] <= 1.0

    def test_single_tenant_skips_isolation(self):
        obs = execute(tiny_scenario(), trace=EventTrace())
        report = check_observation(obs, InvariantConfig())
        assert "tenant_isolation" in report.skipped

    def test_drop_tenant_move(self):
        s = multi_scenario()
        d = drop_tenant(s)
        assert d.tenants == 1 and d.tenant_workloads == ()
        assert drop_tenant(d) == d

    def test_shrinker_removes_an_irrelevant_tenant(self):
        # a check that fires regardless of tenants: the extra tenant is
        # not needed for the repro, so the shrinker must drop it
        result = shrink(
            multi_scenario(),
            ("hung_read",),
            check=lambda s: _report({}, violated=("hung_read",)),
        )
        assert result.removed_tenants == 1
        assert result.shrunk.tenants == 1


def _report(margins, violated=()):
    from repro.fuzz import InvariantViolation

    rep = InvariantReport(margins=dict(margins))
    for name in violated:
        rep.violations.append(InvariantViolation(name, "boom", 1.0, 0.0))
    return rep


class TestAutopilot:
    def test_near_violation_pool_ordering(self):
        pilot = Autopilot(RandomStreams(0).child("t"), near_threshold=0.8)
        a, b, c = (tiny_scenario(seed=s) for s in (1, 2, 3))
        pilot.observe(a, _report({"slo_recovery": 0.7}))
        pilot.observe(b, _report({"slo_recovery": 0.1}))
        pilot.observe(c, _report({"hung_read": 0.0}, violated=("hung_read",)))
        pool = pilot.near_violations()
        # violated entries are excluded; lowest margin first
        assert [e.scenario.seed for e in pool] == [2, 1]

    def test_proposals_replay_exactly(self):
        def drive(pilot):
            gen = ScenarioGenerator(seed=4)
            out = []
            for i in range(6):
                s, origin = pilot.propose(gen, i)
                out.append((scenario_digest(s), origin))
                pilot.observe(s, _report({"slo_recovery": 0.05 * (i + 1)}),
                              origin=origin)
            return out

        one = drive(Autopilot(RandomStreams(9).child("fuzz.autopilot")))
        two = drive(Autopilot(RandomStreams(9).child("fuzz.autopilot")))
        assert one == two
        assert any(origin.startswith("mutate:") for _d, origin in one)

    def test_mutants_stay_in_space(self):
        pilot = Autopilot(RandomStreams(2).child("t"))
        base = tiny_scenario(faults=(
            FaultEvent(time=0.01, kind="crash", node=1, duration=0.02),
        ))
        for i in range(10):
            mutant = pilot.mutate(base, i)
            assert isinstance(mutant, Scenario)  # survived validation
            assert mutant.n_nodes == base.n_nodes
            assert Scenario.from_dict(mutant.to_dict()) == mutant


class TestShrink:
    """The injectable-check tests: exact shrinking semantics without the
    executor's cost.  End-to-end shrinks run in test_fuzz_invariants."""

    @staticmethod
    def _five_fault_case():
        culprit = FaultEvent(time=0.01, kind="crash", node=1, duration=None)
        noise = tuple(
            FaultEvent(time=0.005 * (i + 1), kind="degrade", node=i % 3,
                       duration=0.01, factor=2.0)
            for i in range(4)
        )
        scenario = tiny_scenario(
            n_files=12, epochs=2,
            workload=Workload(kind="uniform", clients=(0, 1, 2),
                              reads_per_client=6),
            faults=noise[:2] + (culprit,) + noise[2:],
        )

        def check(s):
            # the "deployment bug" only the culprit crash tickles
            broken = any(
                ev.kind == "crash" and ev.duration is None for ev in s.faults
            )
            return _report(
                {"hung_read": 0.0 if broken else 1.0},
                violated=("hung_read",) if broken else (),
            )

        return scenario, culprit, check

    def test_five_faults_shrink_to_one_fault_core(self):
        scenario, culprit, check = self._five_fault_case()
        result = shrink(scenario, ("hung_read",), check=check)
        assert result.shrunk.faults == (culprit,)
        assert result.removed_faults == 4
        assert len(result.shrunk.workload.clients) == 1
        assert result.shrunk.n_files == 1
        assert result.shrunk.epochs == 1
        assert result.removed_epochs == 1
        assert set(result.report.violated) == {"hung_read"}
        assert "5->1 faults" in result.summary()

    def test_shrink_is_deterministic(self):
        scenario, _culprit, check = self._five_fault_case()
        one = shrink(scenario, ("hung_read",), check=check)
        two = shrink(scenario, ("hung_read",), check=check)
        assert one.digest == two.digest
        assert one.checks == two.checks
        assert one.shrunk == two.shrunk

    def test_budget_bounds_the_probes(self):
        scenario, _culprit, check = self._five_fault_case()
        calls = [0]

        def counting(s):
            calls[0] += 1
            return check(s)

        cfg = InvariantConfig(max_shrink_checks=3)
        result = shrink(scenario, ("hung_read",), config=cfg, check=counting)
        assert result.checks <= 3
        # the final report may need one extra confirmation call
        assert calls[0] <= 4

    def test_non_repro_candidates_rejected(self):
        # the target invariant must keep firing, not just any invariant
        scenario, _culprit, check = self._five_fault_case()

        def flaky(s):
            return _report({"retry_bound": 0.0}, violated=("retry_bound",))

        result = shrink(scenario, ("hung_read",), check=flaky)
        assert result.shrunk == scenario  # nothing reproduced, no moves


class TestCampaign:
    def test_double_run_identical(self):
        kw = dict(runs=5, seed=11, shrink_failures=False)
        one = run_campaign(**kw)
        two = run_campaign(**kw)
        rows = lambda r: [  # noqa: E731
            (x.index, x.digest, x.origin, x.kind, x.n_faults, x.score,
             x.violated)
            for x in r.runs
        ]
        assert rows(one) == rows(two)
        assert len(one.runs) == 5
        assert one.ok and two.ok  # main's deployment holds the invariants
        assert "5 scenarios, 0 invariant violation(s)" in one.render()

    def test_time_budget_stops_between_runs(self):
        result = run_campaign(runs=50, seed=11, time_budget=1e-9,
                              shrink_failures=False)
        assert result.out_of_budget
        # the budget only trips *between* runs: a prefix still ran
        assert 1 <= len(result.runs) < 50
