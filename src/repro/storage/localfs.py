"""XFS-on-NVMe: the node-local filesystem backend.

This is the paper's upper I/O bound: the whole dataset staged onto each
node's NVMe before training, every read served locally (§IV-A3,
"XFS-on-NVMe").  It is also the layer HVAC servers use underneath their
cache directory.

Each node gets its own :class:`LocalFS` instance over that node's
:class:`~repro.cluster.nvme.NVMeDevice`; cross-node access is a bug by
construction (local filesystems aren't shared), enforced here.
"""

from __future__ import annotations

from typing import Generator

from ..cluster.nvme import NVMeDevice
from ..simcore import Environment, MetricRegistry
from .base import FileBackend, FileNotCached, OpenFile

__all__ = ["LocalFS"]


class LocalFS(FileBackend):
    """An XFS filesystem on one node's NVMe."""

    def __init__(
        self,
        env: Environment,
        node_id: int,
        device: NVMeDevice,
        metrics: MetricRegistry | None = None,
        track_namespace: bool = True,
    ):
        self.env = env
        self.node_id = node_id
        self.device = device
        self.metrics = metrics or MetricRegistry()
        self._scope = self.metrics.scope(f"localfs{node_id}")
        #: path -> size; ``track_namespace=False`` skips bookkeeping for
        #: workloads that pre-declare staging (saves memory at scale).
        self.track_namespace = track_namespace
        self._files: dict[str, int] = {}

    # -- namespace --------------------------------------------------------
    def contains(self, path: str) -> bool:
        return path in self._files

    def file_size(self, path: str) -> int:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotCached(path) from None

    @property
    def n_files(self) -> int:
        return len(self._files)

    @property
    def used_bytes(self) -> int:
        return self.device.used_bytes

    def write_file(self, path: str, size: int) -> Generator:
        """Create ``path`` (used by dataset staging and HVAC cache fill)."""
        if self.track_namespace and path in self._files:
            # Overwrite: release old allocation first.
            self.device.release(self._files.pop(path))
        self.device.allocate(size)
        yield from self.device.write(size)
        if self.track_namespace:
            self._files[path] = size
        self._scope.counter("files_written").incr()

    def delete_file(self, path: str) -> None:
        """Remove ``path`` and free its space (instant metadata op)."""
        size = self._files.pop(path, None)
        if size is None:
            raise FileNotCached(path)
        self.device.release(size)

    # -- FileBackend --------------------------------------------------------
    def open(self, path: str, size: int, client_node: int) -> Generator:
        if client_node != self.node_id:
            raise ValueError(
                f"node {client_node} cannot open local file on node {self.node_id}"
            )
        if self.track_namespace and path not in self._files:
            raise FileNotCached(path)
        yield from self.device.open_close()
        return OpenFile(path=path, size=size, backend=self, client_node=client_node)

    def read(self, handle: OpenFile, nbytes: int) -> Generator:
        if handle.closed:
            raise ValueError(f"read on closed handle {handle.path}")
        nbytes = min(nbytes, handle.size - handle.offset)
        if nbytes <= 0:
            return 0
        t0 = self.env.now
        yield from self.device.read(nbytes)
        handle.offset += nbytes
        self._scope.counter("reads").incr()
        self._scope.tally("read_seconds").add(self.env.now - t0)
        return nbytes

    def close(self, handle: OpenFile) -> Generator:
        if handle.closed:
            raise ValueError(f"double close of {handle.path}")
        handle.closed = True
        # open_close() charged the full pair at open; close is free.
        return
        yield  # pragma: no cover — makes this a generator
