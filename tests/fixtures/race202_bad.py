"""RACE202 fixture: a declared cell that is never write-noted.

The declaration promises the sanitizer sees every ``_balance``
mutation, but the only note in the module is a read — the write path
the cell exists for was never instrumented (or was deleted later).
"""

RACE_CELLS = (
    ("ledger.balance", ("_balance",), "shared running balance"),
)


class Ledger:
    def __init__(self, env):
        self.env = env
        self._balance = 0

    def preview(self, n):
        self.env.note_access("ledger.balance", "r")
        return self._balance + n
