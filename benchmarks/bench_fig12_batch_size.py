"""Fig 12: impact of batch size (TResNet_M & DeepCAM).

The paper's negative result: batch size 4→128 moves training time only
~2–4%, with the same mild trend on GPFS, HVAC and XFS.
"""

import pytest

from repro.dl import DEEPCAM, DEEPCAM_CLIMATE, IMAGENET21K, TRESNET_M
from repro.experiments import batch_size_scaling

from conftest import BENCH_SCALE, bench_scale

BATCHES = [4, 16, 64, 128]


def _run():
    n_nodes = 512 if BENCH_SCALE == "paper" else 8
    panels = {}
    for model, dataset, epochs in (
        (TRESNET_M, IMAGENET21K, 80),
        (DEEPCAM, DEEPCAM_CLIMATE, 20),
    ):
        panels[model.name] = batch_size_scaling(
            model,
            dataset,
            BATCHES,
            bench_scale(),
            n_nodes=n_nodes,
            total_epochs=epochs,
            systems=("gpfs", "hvac1", "hvac4", "xfs"),
        )
    return panels


@pytest.mark.benchmark(group="fig12")
def test_fig12_batch_size(benchmark, capsys):
    panels = benchmark.pedantic(_run, rounds=1, iterations=1)
    with capsys.disabled():
        for res in panels.values():
            print()
            print(res.render())
            for label in res.total_minutes:
                print(f"  {label}: 4→128 improvement "
                      f"{res.improvement_range(label):.1f}%")

    for res in panels.values():
        for label in res.total_minutes:
            # Modest effect, same direction on every system (paper: 2–4%).
            rng = res.improvement_range(label)
            assert -2.0 < rng < 12.0
