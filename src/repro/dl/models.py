"""DNN model cost specifications (paper §IV-A2).

The four applications evaluated on Summit.  For the I/O study, a model
is characterized by what it costs *between* reads:

* per-sample forward+backward GPU time (V100-class throughput), and
* the gradient volume all-reduced each iteration (data-parallel SGD
  with Horovod: ring allreduce after every batch).

Parameter counts follow the paper where it states them (ResNet50:
25.6 M; CosmoFlow: "more than 51 K") and MLPerf-HPC reference
implementations otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ModelSpec",
    "RESNET50",
    "TRESNET_M",
    "COSMOFLOW",
    "DEEPCAM",
    "ALL_MODELS",
]


@dataclass(frozen=True)
class ModelSpec:
    """Compute/communication cost model for one DNN."""

    name: str
    n_parameters: int
    #: forward+backward throughput of ONE V100 GPU, samples/second
    samples_per_sec_per_gpu: float
    #: the per-GPU batch size used in the paper's figures
    default_batch_size: int

    @property
    def gradient_bytes(self) -> int:
        """Bytes all-reduced per iteration (fp32 gradients)."""
        return 4 * self.n_parameters

    def compute_time(self, batch_size: int) -> float:
        """Seconds of GPU compute for one local batch."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return batch_size / self.samples_per_sec_per_gpu

    def allreduce_time(
        self,
        n_ranks: int,
        nic_bandwidth: float,
        link_latency: float = 1.5e-6,
    ) -> float:
        """Allreduce time across ``n_ranks`` data-parallel workers.

        Bandwidth term is the ring bound ``2 (p-1)/p · bytes / bw``;
        the latency term uses hierarchical (tree) step counts
        ``2 log2(p)``, matching how NCCL/Horovod compose intra-node
        rings with inter-node trees — a pure ring's ``2(p-1)`` latency
        steps would dominate unrealistically at thousands of ranks.
        """
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if n_ranks == 1:
            return 0.0
        import math

        p = n_ranks
        bw_term = 2 * (p - 1) / p * self.gradient_bytes / nic_bandwidth
        lat_term = 2 * math.log2(p) * link_latency
        return bw_term + lat_term


#: ResNet50 — "a large network with 228 layers and 25.6M parameters".
RESNET50 = ModelSpec(
    name="resnet50",
    n_parameters=25_600_000,
    samples_per_sec_per_gpu=360.0,
    default_batch_size=80,
)

#: TResNet_M — GPU-optimized ResNet variant; higher V100 throughput.
TRESNET_M = ModelSpec(
    name="tresnet_m",
    n_parameters=31_400_000,
    samples_per_sec_per_gpu=520.0,
    default_batch_size=80,
)

#: CosmoFlow — 3D CNN on cosmology volumes; tiny parameter count per the
#: paper ("more than 51K parameters"), compute-heavy 3D convolutions.
COSMOFLOW = ModelSpec(
    name="cosmoflow",
    n_parameters=51_000,
    samples_per_sec_per_gpu=80.0,
    default_batch_size=4,
)

#: DeepCAM — climate segmentation on 768×1152×16 images (Gordon Bell 2018).
#: Throughput calibrated so aggregate read demand exceeds the PFS
#: bandwidth ceiling at the paper's largest scale (Fig 8d's divergence).
DEEPCAM = ModelSpec(
    name="deepcam",
    n_parameters=56_000_000,
    samples_per_sec_per_gpu=36.0,
    default_batch_size=2,
)

ALL_MODELS = {m.name: m for m in (RESNET50, TRESNET_M, COSMOFLOW, DEEPCAM)}
