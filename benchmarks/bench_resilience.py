"""Resilience bench (paper §III-H): fault rates vs epoch-time degradation.

Sweeps the fraction of crashed cache servers and prints epoch-time
degradation against the all-PFS bound, then runs the per-fault-kind
matrix (crash / hang / flap / degraded NVMe / flaky link) showing every
epoch completes on timeout-based detection alone.
"""

import pytest

from repro.experiments import fault_matrix, resilience_sweep

from conftest import BENCH_SCALE


def _run():
    if BENCH_SCALE == "paper":
        sweep = resilience_sweep(
            fail_fractions=(0.0, 0.125, 0.25, 0.5, 0.75),
            n_nodes=16, n_files=96,
        )
        matrix = fault_matrix(n_nodes=8, n_files=64)
    else:
        sweep = resilience_sweep(
            fail_fractions=(0.0, 0.25, 0.5), n_nodes=8, n_files=48
        )
        matrix = fault_matrix(n_nodes=4, n_files=32)
    return sweep, matrix


@pytest.mark.benchmark(group="resilience")
def test_bench_resilience(benchmark, capsys):
    sweep, matrix = benchmark.pedantic(_run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(sweep.render())
        print()
        print(matrix.render())

    # Graceful degradation: slower than warm, bounded by the PFS baseline.
    for warm, degraded in zip(sweep.warm, sweep.degraded):
        assert degraded >= warm * 0.99
        assert degraded < sweep.pfs_baseline
    # Recovery after probation: the recovered epoch beats the degraded
    # one (clients re-adopted the victims) but not warm — the victims'
    # share of the cache comes back cold and re-fetches from the PFS.
    for frac, degraded, recovered in zip(
        sweep.fail_fractions, sweep.degraded, sweep.recovered
    ):
        assert recovered < sweep.pfs_baseline
        if frac:
            assert recovered < degraded
    # Every fault kind completed its epoch.
    assert len(matrix.kinds) == 7
    assert all(t > 0 for t in matrix.epoch_seconds)
