"""DL workload models: datasets, model costs, loaders, training, accuracy."""

from .accuracy import AccuracyCurve, ClassificationTask, SGDTrainer, sharded_orders
from .dataset import (
    COSMOUNIVERSE,
    DEEPCAM_CLIMATE,
    IMAGENET21K,
    OPENIMAGES,
    DatasetSpec,
    SyntheticDataset,
)
from .loader import EpochPlan, Shard, make_epoch_plan
from .models import ALL_MODELS, COSMOFLOW, DEEPCAM, RESNET50, TRESNET_M, ModelSpec
from .training import TrainingConfig, TrainingJob, TrainingResult

__all__ = [
    "AccuracyCurve",
    "ALL_MODELS",
    "ClassificationTask",
    "COSMOFLOW",
    "COSMOUNIVERSE",
    "DatasetSpec",
    "DEEPCAM",
    "DEEPCAM_CLIMATE",
    "EpochPlan",
    "IMAGENET21K",
    "make_epoch_plan",
    "ModelSpec",
    "OPENIMAGES",
    "RESNET50",
    "SGDTrainer",
    "Shard",
    "sharded_orders",
    "SyntheticDataset",
    "TrainingConfig",
    "TrainingJob",
    "TrainingResult",
    "TRESNET_M",
]
