"""Mercury-like RPC over the simulated fabric (paper §III-C).

HVAC uses the Mercury communication library for RPC and bulk transfers
over Infiniband.  This module reproduces the two primitives HVAC needs:

* **RPC**: a named operation with small request/response payloads.  The
  caller's generator blocks until the registered handler (a generator
  run inside the callee's environment) returns.
* **Bulk transfer**: an RDMA-style pull of a large buffer between two
  nodes, initiated out-of-band from the RPC (Mercury's
  ``HG_Bulk_transfer``), paying a one-time registration/setup cost and
  then streaming at fabric bandwidth.

Handlers execute with unbounded concurrency at the endpoint; real
serialization points (NVMe queue depth, HVAC server software overhead)
are modelled by the resources the handler itself acquires, which mirrors
how a Mercury progress loop hands work to server threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from ..cluster import Fabric
from ..simcore import Environment, Event, SimulationError

__all__ = ["RPCEndpoint", "RPCError", "RPCTimeout", "BulkHandle"]

#: wire size of an RPC header (op id, cookies, bulk descriptors)
_HEADER_BYTES = 192
#: Mercury software cost to set up / tear down one bulk descriptor
_BULK_SETUP = 2.0e-6


class RPCError(Exception):
    """Remote handler raised, or endpoint is down."""


class RPCTimeout(RPCError):
    """The call did not complete within the caller's deadline."""


@dataclass(frozen=True)
class BulkHandle:
    """Descriptor for an exposed remote buffer (RDMA registration)."""

    node_id: int
    nbytes: int


class RPCEndpoint:
    """One addressable RPC endpoint pinned to a node.

    Multiple endpoints per node are allowed — that is exactly how
    HVAC(i×1) runs ``i`` server instances on one compute node.
    """

    def __init__(
        self,
        env: Environment,
        fabric: Fabric,
        node_id: int,
        name: str = "",
        metrics=None,
        spans=None,
    ):
        self.env = env
        self.fabric = fabric
        self.node_id = node_id
        self.name = name or f"ep@{node_id}"
        self._handlers: dict[str, Callable[..., Generator]] = {}
        self._alive = True
        self._hung = False
        #: optional :class:`~repro.simcore.MetricScope` for call outcome
        #: counters and a call-latency histogram
        self.metrics = metrics
        # Hoisted collectors: every successful call increments these, so
        # the per-call name lookups must not rebuild dotted labels
        # (PERF103).
        if metrics is not None:
            self._m_calls = metrics.counter("calls")
            self._m_call_seconds = metrics.histogram("call_seconds")
            self._m_status = {
                "timeout": metrics.counter("timeouts"),
                "error": metrics.counter("errors"),
            }
        else:
            self._m_calls = None
            self._m_call_seconds = None
            self._m_status = None
        #: optional :class:`~repro.obs.SpanRecorder`; when set, every
        #: outbound call records an ``rpc.<op>`` span under the caller's
        #: parent span
        self.spans = spans
        # Per-op string memos (span names, process names): ops are a
        # small fixed vocabulary, calls are per-event — build each
        # label once, not once per call (PERF103).
        self._span_names: dict[str, str] = {}
        self._serve_names: dict[str, str] = {}
        self._handler_names: dict[str, str] = {}
        #: optional membership piggyback hooks.  ``digest_provider()``
        #: returns ``(digest, extra_bytes)`` attached to every outbound
        #: request and every reply this endpoint sends;
        #: ``digest_sink(digest, peer_node)`` receives whatever rode in
        #: on the other direction.  Handlers never see the digests —
        #: membership traffic is free-riding, not a new RPC.
        self.digest_provider: Optional[Callable[[], tuple]] = None
        self.digest_sink: Optional[Callable[[Any, int], None]] = None

    def __repr__(self) -> str:
        state = "up" if self._alive else "DOWN"
        if self._hung:
            state = "HUNG"
        return f"<RPCEndpoint {self.name} node={self.node_id} {state}>"

    # -- server side ---------------------------------------------------
    def register(self, op: str, handler: Callable[..., Generator]) -> None:
        """Register ``handler(payload, src_node) -> generator`` for ``op``.

        The generator's return value becomes the RPC response.
        """
        if op in self._handlers:
            raise SimulationError(f"handler for {op!r} already registered on {self.name}")
        self._handlers[op] = handler

    @property
    def alive(self) -> bool:
        return self._alive

    def shutdown(self) -> None:
        """Kill the endpoint: all subsequent calls to it fail (§III-H failure model)."""
        self._alive = False

    def restart(self) -> None:
        self._alive = True
        self._hung = False

    @property
    def hung(self) -> bool:
        return self._hung

    def hang(self) -> None:
        """Gray failure: the endpoint keeps accepting requests but its
        progress loop stops — no handler runs, no reply is ever sent.
        Unlike :meth:`shutdown`, callers get *nothing*, not an error;
        only their own deadline can detect a hang."""
        self._hung = True

    def unhang(self) -> None:
        self._hung = False

    # -- label memos -----------------------------------------------------
    def _span_name(self, op: str) -> str:
        name = self._span_names.get(op)
        if name is None:
            name = self._span_names[op] = f"rpc.{op}"
        return name

    def _serve_name(self, op: str) -> str:
        """Process name for serving ``op`` here (memoized per op)."""
        name = self._serve_names.get(op)
        if name is None:
            name = self._serve_names[op] = f"{self.name}.{op}"
        return name

    def _handler_name(self, op: str) -> str:
        name = self._handler_names.get(op)
        if name is None:
            name = self._handler_names[op] = f"{self.name}.{op}.h"
        return name

    # -- client side -----------------------------------------------------
    def call(
        self,
        target: "RPCEndpoint",
        op: str,
        payload: Any = None,
        payload_bytes: int = 0,
        response_bytes: int = 0,
        timeout: Optional[float] = None,
        span: Optional[int] = None,
        tenant: Optional[int] = None,
    ) -> Generator:
        """Invoke ``op`` on ``target``; yields until the response arrives.

        Returns the handler's return value.  Raises :class:`RPCError` if
        the target is down or the handler raises; :class:`RPCTimeout` on
        deadline expiry (the in-flight handler is abandoned, as Mercury
        does on ``HG_Cancel``).

        ``span`` is an optional parent span id: with a recorder attached
        (:attr:`spans`) the call records an ``rpc.<op>`` child span whose
        status distinguishes ok / timeout / error; ``tenant`` tags that
        span for per-tenant attribution in multi-tenant fleets.
        Telemetry is pure list appends — it cannot perturb the event
        stream.
        """
        rec = self.spans
        sid = None
        t0 = self.env.now
        if rec is not None:
            if tenant is None:
                sid = rec.begin(
                    self._span_name(op), t0, span,
                    src=self.node_id, dst=target.node_id,
                )
            else:
                sid = rec.begin(
                    self._span_name(op), t0, span,
                    src=self.node_id, dst=target.node_id, tenant=tenant,
                )
        try:
            value = yield from self._call(
                target, op, payload, payload_bytes, response_bytes, timeout
            )
        except RPCError as err:
            status = "timeout" if isinstance(err, RPCTimeout) else "error"
            if self._m_status is not None:
                self._m_status[status].incr()
            if rec is not None:
                rec.end(sid, self.env.now, status=status)
            raise
        if self._m_calls is not None:
            self._m_calls.incr()
            self._m_call_seconds.add(self.env.now - t0)
        if rec is not None:
            rec.end(sid, self.env.now)
        return value

    def _call(
        self,
        target: "RPCEndpoint",
        op: str,
        payload: Any,
        payload_bytes: int,
        response_bytes: int,
        timeout: Optional[float],
    ) -> Generator:
        """The uninstrumented call path (see :meth:`call`)."""
        if not target._alive:
            raise RPCError(f"endpoint {target.name} is down")
        env = self.env

        # Membership digest piggybacks on the request header for free
        # (modulo its wire bytes) — suspicion spreads along whatever
        # request edges the workload already exercises.
        piggyback, extra_bytes = (None, 0)
        if self.digest_provider is not None:
            piggyback, extra_bytes = self.digest_provider()

        # Request header (+ inline payload) crosses the wire.
        delivered = yield from self.fabric.transfer(
            self.node_id, target.node_id, _HEADER_BYTES + payload_bytes + extra_bytes
        )
        if not delivered:
            # Request lost in the fabric: the caller learns nothing until
            # its own deadline expires (there is no negative ack).
            if timeout is not None:
                yield env.timeout(timeout)
            raise RPCTimeout(f"{op} on {target.name}: request lost")
        if not target._alive:
            raise RPCError(f"endpoint {target.name} died mid-call")

        done = env.event()
        env.process(
            target._serve(
                op, payload, self.node_id, response_bytes, done, piggyback=piggyback
            ),
            name=target._serve_name(op),
        )
        if timeout is None:
            outcome = yield done
        else:
            expiry = env.timeout(timeout)
            result = yield done | expiry
            if done not in result:
                raise RPCTimeout(f"{op} on {target.name} after {timeout}s")
            outcome = result[done]
        ok, value, reply_extra = outcome
        if reply_extra is not None and self.digest_sink is not None:
            self.digest_sink(reply_extra, target.node_id)
        if not ok:
            raise RPCError(f"{op} on {target.name} failed: {value!r}") from value
        return value

    def _serve(
        self,
        op: str,
        payload: Any,
        src: int,
        response_bytes: int,
        done: Event,
        piggyback: Any = None,
    ) -> Generator:
        if self._hung:
            # A hung server's progress loop never dispatches the request;
            # the caller's deadline is its only way out.
            return
        if piggyback is not None and self.digest_sink is not None:
            # Absorb the caller's membership digest before dispatch so a
            # server accused in it can refute on this very reply.
            self.digest_sink(piggyback, src)
        handler = self._handlers.get(op)
        if handler is None:
            done.succeed(
                (False, SimulationError(f"no handler for {op!r} on {self.name}"), None)
            )
            return
        try:
            value = yield self.env.process(
                handler(payload, src), name=self._handler_name(op)
            )
        except Exception as err:  # noqa: BLE001 — relayed to caller
            done.succeed((False, err, None))
            return
        if not self._alive:
            # Died while serving: response is lost.
            done.succeed((False, RPCError(f"endpoint {self.name} died"), None))
            return
        if self._hung:
            # Hung after serving: the reply is never posted.
            return
        reply_extra, reply_bytes = (None, 0)
        if self.digest_provider is not None:
            reply_extra, reply_bytes = self.digest_provider()
        delivered = yield from self.fabric.transfer(
            self.node_id, src, _HEADER_BYTES + response_bytes + reply_bytes
        )
        if not delivered:
            # Reply lost in the fabric (Mercury cancel semantics): the
            # caller sees only its deadline expire.
            return
        done.succeed((True, value, reply_extra))

    # -- bulk ------------------------------------------------------------
    def bulk_pull(self, handle: BulkHandle) -> Generator:
        """RDMA-read the remote buffer described by ``handle`` to here."""
        yield self.env.timeout(_BULK_SETUP)
        yield from self.fabric.transfer(handle.node_id, self.node_id, handle.nbytes)

    def bulk_push(self, dst_node: int, nbytes: int) -> Generator:
        """RDMA-write ``nbytes`` from here into an exposed buffer on ``dst_node``."""
        yield self.env.timeout(_BULK_SETUP)
        yield from self.fabric.transfer(self.node_id, dst_node, nbytes)
