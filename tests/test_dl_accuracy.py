"""Tests for the SGD accuracy surrogate (Fig 14 machinery)."""

import numpy as np
import pytest

from repro.dl import ClassificationTask, SGDTrainer, sharded_orders
from repro.experiments import accuracy_comparison
from repro.simcore import RandomStreams


def small_task(seed=0):
    return ClassificationTask(
        n_classes=12,
        n_features=12,
        n_train=600,
        n_test=400,
        class_spread=1.1,
        noise=1.5,
        seed=seed,
    )


def orders_for(task, n_epochs, seed=0):
    rand = RandomStreams(seed)
    return [
        rand.child(f"e{e}").shuffled("o", task.n_train) for e in range(n_epochs)
    ]


class TestClassificationTask:
    def test_shapes(self):
        t = small_task()
        assert t.x_train.shape == (600, 12)
        assert t.y_train.shape == (600,)
        assert t.x_test.shape == (400, 12)

    def test_seeded_reproducibility(self):
        a, b = small_task(3), small_task(3)
        assert np.array_equal(a.x_train, b.x_train)

    def test_labels_in_range(self):
        t = small_task()
        assert t.y_train.min() >= 0
        assert t.y_train.max() < 12


class TestSGDTrainer:
    def test_training_improves_accuracy(self):
        task = small_task()
        trainer = SGDTrainer(task)
        before, _ = trainer.evaluate()
        curve = trainer.train(orders_for(task, 8))
        assert curve.final_top1() > before + 0.3

    def test_top5_at_least_top1(self):
        task = small_task()
        curve = SGDTrainer(task).train(orders_for(task, 4))
        assert all(t5 >= t1 for t1, t5 in zip(curve.top1, curve.top5))

    def test_same_orders_same_curve(self):
        """Determinism underpinning the GPFS == HVAC claim."""
        task = small_task()
        c1 = SGDTrainer(task).train(orders_for(task, 5))
        c2 = SGDTrainer(task).train(orders_for(task, 5))
        assert c1.top1 == c2.top1
        assert c1.top5 == c2.top5

    def test_different_orders_different_trajectory_same_convergence(self):
        task = small_task()
        c1 = SGDTrainer(task).train(orders_for(task, 8, seed=0))
        c2 = SGDTrainer(task).train(orders_for(task, 8, seed=99))
        assert c1.top1 != c2.top1  # trajectories differ...
        assert abs(c1.final_top1() - c2.final_top1()) < 0.05  # ...endpoints agree

    def test_iterations_to_top1(self):
        task = small_task()
        curve = SGDTrainer(task).train(orders_for(task, 8))
        thresh = 0.9 * curve.final_top1()
        it = curve.iterations_to_top1(thresh)
        assert it is not None and it > 0
        assert curve.iterations_to_top1(2.0) is None  # unreachable


class TestShardedOrders:
    def test_only_visible_shard_sampled(self):
        orders = sharded_orders(100, 3, n_shards=4, visible_shard=1)
        rand = RandomStreams(0)
        base = rand.shuffled("shard-split", 100)
        shard = set(base[1::4].tolist())
        for order in orders:
            assert set(order.tolist()) <= shard

    def test_epoch_length_preserved(self):
        orders = sharded_orders(100, 2, n_shards=4)
        assert all(len(o) == 100 for o in orders)

    def test_invalid_shard(self):
        with pytest.raises(ValueError):
            sharded_orders(10, 1, n_shards=2, visible_shard=5)


class TestFig14Experiment:
    def test_gpfs_hvac_identical(self):
        cmp = accuracy_comparison(
            n_epochs=6, n_shards=8, task=small_task(), eval_every=25
        )
        assert cmp.identical_gpfs_hvac

    def test_sharding_hurts_accuracy(self):
        cmp = accuracy_comparison(
            n_epochs=6, n_shards=8, task=small_task(), eval_every=25
        )
        assert cmp.sharded.final_top1() < cmp.gpfs.final_top1() - 0.02

    def test_render_contains_rows(self):
        cmp = accuracy_comparison(
            n_epochs=3, n_shards=8, task=small_task(), eval_every=50
        )
        text = cmp.render()
        for label in ("GPFS", "HVAC", "sharded"):
            assert label in text
