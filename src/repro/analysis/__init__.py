"""Statistics and result formatting."""

from .charts import ascii_chart
from .dashboard import count_strip, degradation_dashboard, degradation_strip
from .persist import load_results, save_results, to_jsonable
from .stats import MeanCI, empirical_cdf, gini, load_imbalance, mean_ci
from .tables import format_kv, format_series, format_table

__all__ = [
    "ascii_chart",
    "count_strip",
    "degradation_dashboard",
    "degradation_strip",
    "empirical_cdf",
    "format_kv",
    "format_series",
    "format_table",
    "load_results",
    "save_results",
    "to_jsonable",
    "gini",
    "load_imbalance",
    "MeanCI",
    "mean_ci",
]
