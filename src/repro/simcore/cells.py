"""Canonical race-sanitizer cell-name formatting.

Every shared-state cell family whose name embeds an entity id —
``tenancy.quota.t<j>``, ``prefetch.queue.s<id>`` — must format that id
the same way in three places: the writer's ``note_access`` call, the
declared inventory in :mod:`repro.check.cell_registry`, and the cell
table in docs/INTERNALS.md.  A bare f-string in each place lets the
three drift independently (``t{tid}`` vs ``t-{tid}`` vs ``{tid}``),
which the static auditor (``repro check --cells``) would report as a
dead declared cell *and* an undeclared noted cell — two findings for
one typo.  :func:`cell_name` is the single formatting authority: the
writers call it with a concrete id, the registry calls it with a
``<placeholder>``, and the auditor's extractor resolves calls to it
symbolically, so writer and registry cannot disagree by construction.
"""

from __future__ import annotations

__all__ = ["cell_name"]


def cell_name(family: str, entity: str, ident) -> str:
    """``"<family>.<entity><ident>"`` — e.g. ``cell_name("tenancy.quota",
    "t", 3)`` → ``"tenancy.quota.t3"``.

    ``family`` is the dotted cell family, ``entity`` the one-letter (or
    short) entity marker, ``ident`` the entity id — or a literal
    ``"<j>"``-style placeholder when building a registry pattern.
    """
    return f"{family}.{entity}{ident}"
