"""Property-based stress tests for the simulation kernel.

Hypothesis drives randomized workloads through the engine and checks
global invariants: determinism, causality (time never goes backwards),
resource conservation, and store item conservation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import (
    AllOf,
    Container,
    Environment,
    Resource,
    Store,
)


@st.composite
def workload(draw):
    """A random mix of processes: delays, resource usage, store traffic."""
    n_procs = draw(st.integers(min_value=1, max_value=12))
    specs = []
    for _ in range(n_procs):
        specs.append({
            "kind": draw(st.sampled_from(["sleeper", "user", "producer", "consumer"])),
            "steps": draw(st.integers(min_value=1, max_value=5)),
            "delay": draw(st.floats(min_value=0.0, max_value=3.0,
                                    allow_nan=False, allow_infinity=False)),
        })
    capacity = draw(st.integers(min_value=1, max_value=4))
    return specs, capacity


def run_workload(specs, capacity):
    env = Environment()
    res = Resource(env, capacity=capacity)
    store = Store(env)
    trace = []
    produced = []
    consumed = []

    def sleeper(i, spec):
        for k in range(spec["steps"]):
            yield env.timeout(spec["delay"])
            trace.append(("sleep", i, k, env.now))

    def user(i, spec):
        for k in range(spec["steps"]):
            with res.request() as req:
                yield req
                assert res.count <= res.capacity  # invariant
                yield env.timeout(spec["delay"])
            trace.append(("used", i, k, env.now))

    def producer(i, spec):
        for k in range(spec["steps"]):
            yield env.timeout(spec["delay"])
            item = (i, k)
            produced.append(item)
            yield store.put(item)

    def consumer(i, spec):
        for k in range(spec["steps"]):
            item = yield store.get() | env.timeout(10.0)
            got = list(item.values())[0]
            if got is not None and isinstance(got, tuple):
                consumed.append(got)
            trace.append(("consumed", i, k, env.now))

    makers = {"sleeper": sleeper, "user": user,
              "producer": producer, "consumer": consumer}
    for i, spec in enumerate(specs):
        env.process(makers[spec["kind"]](i, spec))
    env.run(until=1000)
    return trace, produced, consumed, store


@given(workload())
@settings(max_examples=60, deadline=None)
def test_property_determinism(wl):
    """Identical inputs produce identical traces."""
    specs, capacity = wl
    t1 = run_workload(specs, capacity)[0]
    t2 = run_workload(specs, capacity)[0]
    assert t1 == t2


@given(workload())
@settings(max_examples=60, deadline=None)
def test_property_causality_and_conservation(wl):
    """Timestamps are monotonic per process; no store item is lost or
    duplicated; the resource never exceeds capacity (asserted inline)."""
    specs, capacity = wl
    trace, produced, consumed, store = run_workload(specs, capacity)
    # global trace time is non-decreasing (events appended in fire order)
    times = [t for *_, t in trace]
    assert all(a <= b + 1e-12 for a, b in zip(times, times[1:]))
    # consumed ⊆ produced, no duplicates, leftovers still in the store
    assert len(set(consumed)) == len(consumed)
    assert set(consumed) <= set(produced)
    leftovers = [x for x in store.items if isinstance(x, tuple)]
    assert set(consumed) | set(leftovers) == set(produced)


@given(
    amounts=st.lists(
        st.tuples(st.sampled_from(["put", "get"]),
                  st.floats(min_value=0.1, max_value=50.0)),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_container_level_bounds(amounts):
    """Container level stays within [0, capacity] under any traffic."""
    env = Environment()
    tank = Container(env, capacity=100.0, init=50.0)

    def actor(op, amount):
        if op == "put":
            yield tank.put(amount)
        else:
            yield tank.get(amount)
        assert -1e-9 <= tank.level <= tank.capacity + 1e-9

    for op, amount in amounts:
        env.process(actor(op, amount))
    env.run(until=10)
    assert -1e-9 <= tank.level <= tank.capacity + 1e-9


@given(
    n=st.integers(min_value=1, max_value=40),
    delays=st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=40),
)
@settings(max_examples=40, deadline=None)
def test_property_allof_fires_at_max(n, delays):
    """AllOf triggers exactly at the latest sub-event."""
    env = Environment()
    delays = delays[:n] or [1.0]

    def proc():
        events = [env.timeout(d) for d in delays]
        yield AllOf(env, events)
        return env.now

    assert env.run(env.process(proc())) == max(delays)
