"""Shared-resource primitives for the simulation kernel.

Provides the classic trio used throughout the HVAC models:

* :class:`Resource` — ``capacity`` concurrent holders, FIFO queueing.
  Models NVMe queue slots, MDS service threads, NIC DMA engines.
* :class:`PriorityResource` — like :class:`Resource` but the wait queue
  is ordered by a numeric priority (lower = sooner).
* :class:`Container` — a continuous quantity (bytes of cache capacity).
* :class:`Store` / :class:`PriorityStore` live in :mod:`.stores`.

Requests are events; the idiomatic usage mirrors SimPy::

    with resource.request() as req:
        yield req
        yield env.timeout(service_time)
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any

from .engine import Environment, Event, SimulationError

__all__ = ["Resource", "PriorityResource", "Preempted", "Container"]


class _BaseRequest(Event):
    """Common machinery for resource requests: context-manager + cancel."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "_BaseRequest":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release if held, or withdraw from the wait queue."""
        self.resource._cancel(self)


class Request(_BaseRequest):
    __slots__ = ()


class Release(Event):
    """Event for an explicit release; triggers immediately."""

    __slots__ = ()


class Preempted(Exception):
    """Cause delivered when a preemptive resource evicts a holder."""

    def __init__(self, by: Any, usage_since: float):
        super().__init__(by, usage_since)
        self.by = by
        self.usage_since = usage_since


class Resource:
    """FIFO resource with fixed integer capacity."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise SimulationError(f"capacity must be > 0, got {capacity}")
        self.env = env
        self._capacity = int(capacity)
        self.users: list[Request] = []
        # Deque: NVMe/NIC queues grant from the head once per service
        # completion, and list.pop(0) is O(n) per event (PERF105).
        self.queue: deque[Request] = deque()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self.users)

    @property
    def queued(self) -> int:
        """Number of waiting requests."""
        return len(self.queue)

    def request(self) -> Request:
        req = Request(self)
        if len(self.users) < self._capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)
        return req

    def release(self, request: Request) -> Release:
        """Explicitly release a granted request."""
        self._cancel(request)
        rel = Release(self.env)
        rel.succeed()
        return rel

    # -- internals -----------------------------------------------------
    def _cancel(self, request: Request) -> None:
        if request in self.users:  # perf: waive PERF105 -- users is capacity-bounded (typically 1-8 holders)
            self.users.remove(request)
            self._grant_next()
        else:
            try:
                self.queue.remove(request)
            except ValueError:
                pass  # never granted, never queued (double cancel) — no-op

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()


class _PriorityRequest(_BaseRequest):
    __slots__ = ("priority", "_key")

    def __init__(self, resource: "PriorityResource", priority: float):
        super().__init__(resource)
        self.priority = priority
        self._key = (priority, next(resource._tiebreak))

    def __lt__(self, other: "_PriorityRequest") -> bool:
        return self._key < other._key


class PriorityResource(Resource):
    """Resource whose waiters are served lowest-priority-value-first."""

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._tiebreak = itertools.count()
        self.queue = []  # heap of _PriorityRequest (heapq needs a list)

    def request(self, priority: float = 0.0) -> _PriorityRequest:  # type: ignore[override]
        req = _PriorityRequest(self, priority)
        if len(self.users) < self._capacity:
            self.users.append(req)
            req.succeed()
        else:
            heapq.heappush(self.queue, req)
        return req

    def _cancel(self, request: _PriorityRequest) -> None:  # type: ignore[override]
        if request in self.users:  # perf: waive PERF105 -- users is capacity-bounded (typically 1-8 holders)
            self.users.remove(request)
            self._grant_next()
        else:
            try:
                self.queue.remove(request)
                heapq.heapify(self.queue)
            except ValueError:
                pass

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            nxt = heapq.heappop(self.queue)
            self.users.append(nxt)
            nxt.succeed()


class _ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, env: Environment, amount: float):
        super().__init__(env)
        self.amount = amount


class _ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, env: Environment, amount: float):
        super().__init__(env)
        self.amount = amount


class Container:
    """A continuous stock of some quantity, e.g. free bytes on an NVMe.

    ``put(x)`` blocks while it would exceed ``capacity``; ``get(x)``
    blocks while fewer than ``x`` units are available.  Waiters are
    served FIFO but a blocked head-of-line request does not starve
    later, satisfiable requests (bypass is intentional: cache inserts of
    different sizes shouldn't convoy).
    """

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise SimulationError("capacity must be > 0")
        if not 0 <= init <= capacity:
            raise SimulationError("init must be within [0, capacity]")
        self.env = env
        self._capacity = float(capacity)
        self._level = float(init)
        self._puts: list[_ContainerPut] = []
        self._gets: list[_ContainerGet] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> _ContainerPut:
        if amount < 0:
            raise SimulationError("amount must be >= 0")
        evt = _ContainerPut(self.env, amount)
        self._puts.append(evt)
        self._settle()
        return evt

    def get(self, amount: float) -> _ContainerGet:
        if amount < 0:
            raise SimulationError("amount must be >= 0")
        evt = _ContainerGet(self.env, amount)
        self._gets.append(evt)
        self._settle()
        return evt

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for evt in list(self._puts):
                if self._level + evt.amount <= self._capacity:
                    self._level += evt.amount
                    self._puts.remove(evt)
                    evt.succeed()
                    progressed = True
            for evt in list(self._gets):
                if evt.amount <= self._level:
                    self._level -= evt.amount
                    self._gets.remove(evt)
                    evt.succeed(evt.amount)
                    progressed = True
