"""Unit tests for random streams and metric collectors."""

import numpy as np
import pytest

from repro.simcore import MetricRegistry, RandomStreams, Series, Tally, stable_hash64


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64("a", 1) == stable_hash64("a", 1)

    def test_distinct_inputs_distinct_hash(self):
        values = {stable_hash64("file", i) for i in range(1000)}
        assert len(values) == 1000

    def test_order_sensitivity(self):
        assert stable_hash64("a", "b") != stable_hash64("b", "a")

    def test_no_concat_ambiguity(self):
        # ("ab","c") must differ from ("a","bc")
        assert stable_hash64("ab", "c") != stable_hash64("a", "bc")

    def test_64bit_range(self):
        h = stable_hash64("x")
        assert 0 <= h < 2**64


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).stream("sizes").random(5)
        b = RandomStreams(7).stream("sizes").random(5)
        assert np.allclose(a, b)

    def test_different_names_independent(self):
        rs = RandomStreams(7)
        a = rs.stream("a").random(5)
        b = rs.stream("b").random(5)
        assert not np.allclose(a, b)

    def test_stream_cached(self):
        rs = RandomStreams(0)
        assert rs.stream("x") is rs.stream("x")

    def test_draws_in_one_stream_dont_affect_another(self):
        rs1 = RandomStreams(3)
        rs1.stream("noise").random(100)  # extra draws
        v1 = rs1.stream("shuffle").permutation(10)

        rs2 = RandomStreams(3)
        v2 = rs2.stream("shuffle").permutation(10)
        assert np.array_equal(v1, v2)

    def test_child_streams_differ_from_parent(self):
        rs = RandomStreams(3)
        child = rs.child("node0")
        assert not np.allclose(
            rs.stream("x").random(4), child.stream("x").random(4)
        )

    def test_shuffled_is_permutation(self):
        perm = RandomStreams(0).shuffled("s", 50)
        assert sorted(perm.tolist()) == list(range(50))

    def test_lognormal_sizes_mean(self):
        sizes = RandomStreams(0).lognormal_sizes("f", 163_000, 0.6, 200_000)
        assert abs(sizes.mean() - 163_000) / 163_000 < 0.02
        assert sizes.min() >= 1

    def test_lognormal_sizes_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            RandomStreams(0).lognormal_sizes("f", 0, 0.6, 10)

    def test_choice(self):
        rs = RandomStreams(1)
        assert rs.choice("c", ["only"]) == "only"


class TestSeries:
    def test_record_and_reduce(self):
        s = Series("lat")
        for t, v in [(0, 1.0), (1, 3.0), (2, 5.0)]:
            s.record(t, v)
        assert s.mean() == 3.0
        assert s.total() == 9.0
        assert len(s) == 3

    def test_rate(self):
        s = Series("tx")
        for t in range(11):
            s.record(float(t), 1)
        assert s.rate() == pytest.approx(1.0)

    def test_empty_series(self):
        s = Series("e")
        assert np.isnan(s.mean())
        assert s.total() == 0.0
        assert s.rate() == 0.0


class TestTally:
    def test_welford_matches_numpy(self):
        rng = np.random.default_rng(0)
        data = rng.random(1000)
        t = Tally("x")
        for x in data:
            t.add(float(x))
        assert t.mean == pytest.approx(float(np.mean(data)))
        assert t.std == pytest.approx(float(np.std(data, ddof=1)), rel=1e-9)
        assert t.min == pytest.approx(float(data.min()))
        assert t.max == pytest.approx(float(data.max()))

    def test_single_sample(self):
        t = Tally("x")
        t.add(4.0)
        assert t.mean == 4.0
        assert t.variance == 0.0

    def test_empty(self):
        t = Tally("x")
        assert np.isnan(t.mean)


class TestMetricRegistry:
    def test_counter_identity_and_incr(self):
        reg = MetricRegistry()
        reg.counter("hits").incr()
        reg.counter("hits").incr(4)
        assert reg.counter("hits").value == 5

    def test_snapshot_shapes(self):
        reg = MetricRegistry()
        reg.counter("c").incr()
        reg.tally("t").add(2.0)
        reg.get_series("s").record(0.0, 1.0)
        snap = reg.snapshot()
        assert snap["c"] == 1
        assert snap["t"]["mean"] == 2.0
        assert snap["s"]["n"] == 1
