"""SIM012 fixture: a set bound in one method, iterated in another.

``order()`` textually precedes ``reset()``, so the sequential SIM004
tracker never sees ``self._live`` holding a set when the comprehension
runs — the unordered-container taint crosses the method boundary and
only the class-level pass (SIM012) can follow it.
"""


class Tracker:
    def order(self):
        return [x for x in self._live]

    def reset(self):
        self._live = set()
