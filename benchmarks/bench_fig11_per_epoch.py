"""Fig 11: per-epoch anatomy — epoch-1, best random epoch, average epoch.

The paper's two claims:
* epoch-1 under every HVAC variant ≈ a GPFS epoch (every server must
  touch the PFS once), and
* once cached, the epoch time drops ≈3× vs GPFS for HVAC(4×1) at 512
  nodes [BS=4, Eps=10].
"""

import pytest

from repro.dl import IMAGENET21K, RESNET50
from repro.experiments import per_epoch_analysis

from conftest import BENCH_SCALE, bench_scale


def _run():
    n_nodes = 512 if BENCH_SCALE == "paper" else 32
    return per_epoch_analysis(
        RESNET50,
        IMAGENET21K,
        bench_scale(),
        n_nodes=n_nodes,
        batch_size=4,
        epochs=4,
    ), n_nodes


@pytest.mark.benchmark(group="fig11")
def test_fig11_per_epoch(benchmark, capsys):
    res, n_nodes = benchmark.pedantic(_run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(res.render())
        for label in ("HVAC(1x1)", "HVAC(2x1)", "HVAC(4x1)"):
            print(f"{label} cached-epoch speedup vs GPFS: "
                  f"{res.speedup_vs_gpfs(label):.2f}x")

    gpfs_epoch = res.r_epoch["GPFS"]
    for label in ("HVAC(1x1)", "HVAC(2x1)", "HVAC(4x1)"):
        # epoch-1 ≈ GPFS (within 40%: the HVAC path adds some latency
        # on top of the same PFS traffic).
        assert res.epoch1[label] == pytest.approx(res.epoch1["GPFS"], rel=0.40)
        # cached epochs beat epoch 1
        assert res.r_epoch[label] < res.epoch1[label]
        # avg sits between
        assert res.r_epoch[label] <= res.avg_epoch[label] <= res.epoch1[label]

    if BENCH_SCALE == "paper":
        # The ≈3× cached-epoch claim needs the saturated 512-node regime.
        assert res.speedup_vs_gpfs("HVAC(4x1)") > 2.0
