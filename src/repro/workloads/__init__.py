"""Benchmark workloads: MDTest (Figs 3-4) and IOR-style streaming."""

from .ior import IORConfig, IORResult, run_ior
from .mdtest import MDTestConfig, MDTestResult, run_mdtest

__all__ = [
    "IORConfig",
    "IORResult",
    "MDTestConfig",
    "MDTestResult",
    "run_ior",
    "run_mdtest",
]
