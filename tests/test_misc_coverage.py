"""Final coverage batch: presets, formatter edge cases, pathlike inputs,
alternative placement schemes in experiments."""

import os
import pathlib

import pytest

from repro.analysis import format_kv, format_series
from repro.cluster import SUMMIT
from repro.dl import COSMOFLOW, DEEPCAM, OPENIMAGES, TRESNET_M
from repro.experiments import load_balance
from repro.runtime import RuntimeDeployment, interposed_open


class TestDatasetPresets:
    def test_openimages_matches_paper_motivation(self):
        # "the Open Images dataset contains approximately 9 million images"
        assert OPENIMAGES.n_train_files == 9_000_000
        assert OPENIMAGES.size_sigma > 0

    def test_model_default_batches(self):
        assert COSMOFLOW.default_batch_size == 4  # Fig 8c caption
        assert DEEPCAM.default_batch_size == 2
        assert TRESNET_M.default_batch_size == 80


class TestFormatters:
    def test_format_series_mixed_x_types(self):
        out = format_series("epoch", ["e1", "R", "avg"], {"t": [1.0, 2.0, 3.0]})
        assert "e1" in out and "avg" in out

    def test_format_kv_integer_passthrough(self):
        out = format_kv({"count": 7})
        assert ": 7" in out

    def test_format_series_custom_float_fmt(self):
        out = format_series("x", [1], {"y": [3.14159]}, float_fmt="{:.1f}")
        assert "3.1" in out


class TestLoadBalanceSchemes:
    def test_consistent_scheme(self):
        res = load_balance([8], n_files=10_000, hash_scheme="consistent")
        assert res.gini_files[8] < 0.25

    def test_multiple_instances(self):
        res = load_balance([8], n_files=10_000, instances_per_node=4)
        # 32 servers' histogram
        xs, ps = res.file_cdfs[8]
        assert len(xs) == 32

    def test_cdf_probabilities_end_at_one(self):
        res = load_balance([4], n_files=2_000)
        _, ps = res.file_cdfs[4]
        assert ps[-1] == pytest.approx(1.0)


class TestRuntimePathlike:
    def test_pathlib_paths_accepted(self, tmp_path):
        pfs = tmp_path / "pfs"
        pfs.mkdir()
        (pfs / "a.bin").write_bytes(b"hello")
        with RuntimeDeployment(str(pfs), n_servers=1) as dep:
            with interposed_open(dep):
                data = open(pathlib.Path(pfs / "a.bin"), "rb").read()
            assert data == b"hello"
            assert dep.total_misses == 1

    def test_fileno_like_objects_passthrough(self, tmp_path):
        pfs = tmp_path / "pfs"
        pfs.mkdir()
        with RuntimeDeployment(str(pfs), n_servers=1) as dep:
            with interposed_open(dep):
                # open by file descriptor must pass through untouched
                fd = os.open(str(tmp_path / "side.txt"),
                             os.O_CREAT | os.O_WRONLY)
                with open(fd, "w") as fh:
                    fh.write("ok")
        assert (tmp_path / "side.txt").read_text() == "ok"


class TestSpecsConsistency:
    def test_testing_preset_is_fast(self):
        from repro.cluster import TESTING

        # The unit-test preset must stay tiny so the suite stays fast.
        assert TESTING.total_nodes <= 64
        assert TESTING.node.nvme.capacity_bytes <= 100_000_000

    def test_summit_hvac_defaults_match_paper_prototype(self):
        hvac = SUMMIT.hvac
        assert hvac.eviction_policy == "random"  # §III-G
        assert hvac.hash_scheme == "mod"  # §III-E prototype
        assert hvac.replication_factor == 1  # single-home prototype
        assert hvac.instances_per_node == 1
