"""Every fuzz invariant proven live against a deliberately-broken
deployment.

Each test monkeypatches one real bug *into* the deployment code — a
wedged client, an unbounded retry walk, lossy byte accounting, recovery
that never recovers, a membership view that never re-admits — runs the
ordinary executor + checker, and asserts exactly that invariant fires.
The end-to-end shrink/case-file/replay path rides on the lossy-routing
bug, because it reproduces on every scenario.
"""

import pytest

from repro.cli import main as cli_main
from repro.core import HVACDeployment
from repro.core.client import HVACClient
from repro.faults import FaultEvent, FailureDetector
from repro.fuzz import (
    InvariantConfig,
    Scenario,
    Workload,
    check_observation,
    execute,
    load_case,
    replay_case,
    run_campaign,
    shrink,
)
from repro.membership import MembershipView
from repro.simcore import EventTrace


def small_scenario(**kw) -> Scenario:
    defaults = dict(
        seed=3,
        n_nodes=3,
        n_files=6,
        mean_file_size=20_000,
        workload=Workload(kind="uniform", clients=(0, 2), reads_per_client=6),
    )
    defaults.update(kw)
    return Scenario(**defaults)


def run_and_check(scenario, config=None, second=False):
    config = config or InvariantConfig()
    obs = execute(scenario, config, trace=EventTrace())
    fp = None
    if second:
        fp = execute(scenario, config, trace=EventTrace()).fingerprint
    return check_observation(obs, config, second_fingerprint=fp), obs


class TestHungRead:
    def test_wedged_client_is_caught_not_waited_out(self, monkeypatch):
        scenario = small_scenario()
        warm_reads = len(scenario.workload.clients) * scenario.n_files
        orig = HVACClient.read
        calls = {"n": 0}

        def wedged(self, handle, nbytes):
            calls["n"] += 1
            if calls["n"] > warm_reads:
                yield self.env.timeout(1e6)  # lost wakeup: never resumes
            return (yield from orig(self, handle, nbytes))

        monkeypatch.setattr(HVACClient, "read", wedged)
        report, obs = run_and_check(scenario)
        assert "hung_read" in report.violated
        assert report.margins["hung_read"] == 0.0
        assert obs.aborted
        # the watchdog named the wedged client and interrupted it — the
        # run ended at the deadline, not at t=1e6
        assert obs.epochs[-1].hung_clients
        assert obs.t_end < 100.0

    def test_healthy_run_margin_stays_high(self):
        report, _obs = run_and_check(small_scenario())
        assert "hung_read" not in report.violated
        assert report.margins["hung_read"] > 0.5


class TestRetryBound:
    def test_unbounded_walk_with_deaf_detector(self, monkeypatch):
        # two bugs that together make the retry loop effectively
        # unbounded: the walk ignores its budget, and the detector never
        # accrues strikes (so the dead server stays an approved target)
        orig = HVACClient._forward_read

        def over_budget(self, path, size, client_node, parent=None,
                        max_retries=None):
            return orig(self, path, size, client_node, parent=parent,
                        max_retries=2 * self.spec.hvac.rpc_max_retries)

        monkeypatch.setattr(HVACClient, "_forward_read", over_budget)
        monkeypatch.setattr(
            FailureDetector, "record_failure", lambda self, sid: None
        )
        scenario = small_scenario(faults=(
            FaultEvent(time=0.0, kind="crash", node=1, duration=None),
        ))
        # generous deadline: the slow walk must register as a retry-loop
        # violation, not get cut short as a hang
        config = InvariantConfig(deadline_slack=30.0)
        report, obs = run_and_check(scenario, config)
        assert "retry_bound" in report.violated
        worst = max(
            v.value for v in report.violations if v.invariant == "retry_bound"
        )
        assert worst > obs.allowed_strikes

    def test_bounded_walk_stays_inside_budget(self):
        scenario = small_scenario(faults=(
            FaultEvent(time=0.0, kind="crash", node=1, duration=None),
        ))
        report, _obs = run_and_check(scenario)
        assert "retry_bound" not in report.violated


class TestReadConservation:
    def test_lost_bytes_are_caught(self, monkeypatch):
        orig = HVACClient._route_bytes

        def lossy(self, root, route, nbytes):
            orig(self, root, route, max(0, nbytes - 999))

        monkeypatch.setattr(HVACClient, "_route_bytes", lossy)
        report, _obs = run_and_check(small_scenario())
        assert "read_conservation" in report.violated
        assert report.margins["read_conservation"] < 1.0
        v = next(v for v in report.violations
                 if v.invariant == "read_conservation")
        assert v.value == v.bound - 999

    def test_invented_bytes_are_caught_too(self, monkeypatch):
        orig = HVACClient._route_bytes

        def inflating(self, root, route, nbytes):
            orig(self, root, route, nbytes + 1)

        monkeypatch.setattr(HVACClient, "_route_bytes", inflating)
        report, _obs = run_and_check(small_scenario())
        assert "read_conservation" in report.violated


class TestDeterminism:
    def test_run_varying_timing_diverges_fingerprints(self, monkeypatch):
        jitter = {"run": 0}
        orig = HVACClient.read

        def jittery(self, handle, nbytes):
            yield self.env.timeout(1e-7 * jitter["run"])
            return (yield from orig(self, handle, nbytes))

        monkeypatch.setattr(HVACClient, "read", jittery)
        scenario = small_scenario()
        config = InvariantConfig()
        jitter["run"] = 1
        obs = execute(scenario, config, trace=EventTrace())
        jitter["run"] = 2
        second = execute(scenario, config, trace=EventTrace()).fingerprint
        report = check_observation(obs, config, second_fingerprint=second)
        assert report.violated == ("determinism",)
        assert report.margins["determinism"] == 0.0

    def test_clean_double_run_passes(self):
        report, _obs = run_and_check(small_scenario(), second=True)
        assert "determinism" not in report.violated
        assert report.margins["determinism"] == 1.0


class TestSLORecovery:
    def test_recovery_that_never_recovers(self, monkeypatch):
        # force-heal calls recover_node; a no-op leaves the server dead,
        # so post-settle reads keep degrading and re-probes keep failing
        monkeypatch.setattr(
            HVACDeployment, "recover_node", lambda self, node_id: None
        )
        scenario = small_scenario(faults=(
            FaultEvent(time=0.0, kind="crash", node=1, duration=None),
        ))
        report, obs = run_and_check(scenario)
        assert "slo_recovery" in report.violated
        assert report.margins["slo_recovery"] == 0.0
        # the detector-transition evidence: failed re-probes after the
        # point where every fault was (supposedly) healed
        late_fails = [
            (t, owner, sid)
            for t, owner, kind, sid in obs.detector_transitions
            if kind == "reprobe_fail" and t >= obs.t_settled
        ]
        assert late_fails

    def test_real_recovery_is_clean(self):
        scenario = small_scenario(faults=(
            FaultEvent(time=0.0, kind="crash", node=1, duration=None),
        ))
        report, _obs = run_and_check(scenario)
        assert "slo_recovery" not in report.violated


class TestRepairConvergence:
    def test_view_that_never_readmits(self, monkeypatch):
        orig = MembershipView.routable
        monkeypatch.setattr(
            MembershipView, "routable",
            lambda self, sid: sid != 0 and orig(self, sid),
        )
        scenario = small_scenario(membership=True, replication=2)
        report, obs = run_and_check(scenario)
        assert "repair_convergence" in report.violated
        assert report.margins["repair_convergence"] == 0.0
        assert any("server 0" in entry for entry in obs.unconverged)

    def test_healthy_membership_converges(self):
        scenario = small_scenario(membership=True, replication=2)
        report, _obs = run_and_check(scenario)
        assert "repair_convergence" not in report.violated


class TestTenantIsolation:
    def _scenario(self, **kw):
        return small_scenario(
            tenants=2,
            tenant_workloads=(
                Workload(kind="hotstorm", clients=(1,), reads_per_client=5),
            ),
            **kw,
        )

    def test_cross_tenant_attribution_is_caught(self, monkeypatch):
        # the bug: the fleet hands tenant 1's reads a client that
        # accounts them to tenant 0 — every metric/SLO scope lies
        orig = HVACDeployment.client

        def mis_scoped(self, node_id, tenant=None):
            cli = orig(self, node_id, tenant=tenant)
            if tenant == 1:
                cli.tenant = 0
            return cli

        monkeypatch.setattr(HVACDeployment, "client", mis_scoped)
        report, _obs = run_and_check(self._scenario())
        assert "tenant_isolation" in report.violated
        assert report.margins["tenant_isolation"] == 0.0
        assert any(
            "owned by" in v.message
            for v in report.violations
            if v.invariant == "tenant_isolation"
        )

    def test_clean_multi_tenant_run_passes(self):
        report, _obs = run_and_check(self._scenario())
        assert "tenant_isolation" not in report.violated
        assert report.margins["tenant_isolation"] > 0.0

    def test_margin_narrows_when_a_fault_lands_on_one_tenant(self):
        # a mid-epoch crash degrades whichever tenant sits on the dead
        # node: not a violation, but the degraded-fraction spread must
        # pull the margin below a fault-free run's
        clean, _ = run_and_check(self._scenario())
        faulted, _ = run_and_check(self._scenario(faults=(
            FaultEvent(time=0.0, kind="crash", node=1, duration=0.03),
        )))
        assert "tenant_isolation" not in faulted.violated
        assert (faulted.margins["tenant_isolation"]
                <= clean.margins["tenant_isolation"])


class TestShrinkAndReplayEndToEnd:
    """The lossy-routing bug through the whole pipeline: campaign ->
    violation -> shrink -> case file -> replay (library and CLI)."""

    @pytest.fixture()
    def lossy(self, monkeypatch):
        orig = HVACClient._route_bytes

        def lossy(self, root, route, nbytes):
            orig(self, root, route, max(0, nbytes - 999))

        monkeypatch.setattr(HVACClient, "_route_bytes", lossy)

    def test_case_file_written_shrunk_and_replayable(self, lossy, tmp_path,
                                                     capsys):
        config = InvariantConfig(max_shrink_checks=10, determinism_every=0)
        result = run_campaign(
            runs=1, seed=21, corpus_dir=str(tmp_path), config=config
        )
        assert result.n_violations == 1
        assert len(result.case_paths) == 1
        case = load_case(result.case_paths[0])
        assert case["digest"] in result.case_paths[0]
        assert "read_conservation" in {
            v["invariant"] for v in case["violations"]
        }
        shrunk = case["shrunk"]
        assert shrunk is not None
        # the shrinker made the repro strictly smaller
        removed = shrunk["removed"]
        assert sum(removed.values()) > 0
        assert shrunk["scenario"]["n_files"] <= case["scenario"]["n_files"]

        # library replay: the bug is still patched in, so the shrunk
        # scenario reproduces the recorded invariant
        report, expected, _scenario = replay_case(result.case_paths[0])
        assert "read_conservation" in expected
        assert set(expected) <= set(report.violated)

        # CLI replay: same contract, exit code 0
        rc = cli_main(["fuzz", "--replay", result.case_paths[0]])
        out = capsys.readouterr().out
        assert rc == 0
        assert "reproduced" in out

    def test_direct_shrink_reaches_a_small_core(self, lossy):
        scenario = small_scenario(
            epochs=2,
            faults=(
                FaultEvent(time=0.0, kind="degrade", node=0, duration=0.01,
                           factor=2.0),
                FaultEvent(time=0.005, kind="degrade", node=1, duration=0.01,
                           factor=2.0),
            ),
        )
        config = InvariantConfig(max_shrink_checks=40)
        result = shrink(scenario, ("read_conservation",), config)
        # the bug needs no faults, no second client, no extra files
        assert result.shrunk.faults == ()
        assert len(result.shrunk.workload.clients) == 1
        assert result.shrunk.n_files == 1
        assert result.shrunk.epochs == 1
        assert "read_conservation" in result.report.violated

    def test_replay_without_the_bug_reports_not_reproduced(
            self, tmp_path, capsys, monkeypatch):
        # write a case under the bug...
        orig = HVACClient._route_bytes

        def lossy(self, root, route, nbytes):
            orig(self, root, route, max(0, nbytes - 999))

        monkeypatch.setattr(HVACClient, "_route_bytes", lossy)
        config = InvariantConfig(max_shrink_checks=4, determinism_every=0)
        result = run_campaign(
            runs=1, seed=21, corpus_dir=str(tmp_path), config=config
        )
        monkeypatch.setattr(HVACClient, "_route_bytes", orig)
        # ...then replay on the fixed deployment: the case no longer
        # reproduces, and the CLI says so (the "did my fix work" flow)
        rc = cli_main(["fuzz", "--replay", result.case_paths[0]])
        out = capsys.readouterr().out
        assert rc == 2
        assert "NOT reproduced" in out
