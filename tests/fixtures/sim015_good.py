"""SIM015 fixture (clean): the same element shape, but every iteration
over a set-valued element goes through ``sorted(...)``, so hash order
never reaches the kernel."""

groups = []


def enroll(a, b):
    groups.append({a, b})


def flush(env):
    for g in groups:
        for waiter in sorted(g):
            env.process(waiter)
