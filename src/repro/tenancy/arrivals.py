"""Seeded job-arrival process over a tenant fleet.

Generates a deterministic mix of jobs (training epoch sweeps + bursty
inference/eval readers) from named :class:`~repro.simcore.RandomStreams`
children, then replays them against a deployment: each arrival asks the
:class:`~repro.tenancy.admission.AdmissionController` for a verdict,
queued jobs wait for a reservation, degraded jobs run in the client's
``pfs_only`` mode, and admitted jobs read through their own per-tenant
HVAC client.  Everything — interarrival gaps, job shapes, per-burst
file picks — comes from named streams, so the whole fleet timeline
replays bit-for-bit from one seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simcore import AllOf, RandomStreams

from .tenant import TenantSpec

__all__ = ["JobArrival", "JobRecord", "run_jobs", "sample_jobs"]


@dataclass(frozen=True)
class JobArrival:
    """One job entering the fleet at ``time``."""

    time: float
    spec: TenantSpec
    #: compute node the job's reader runs on
    node: int = 0


@dataclass
class JobRecord:
    """What one arrival did (the experiment's admission evidence)."""

    tenant_id: int
    kind: str
    action: str = ""
    t_arrive: float = 0.0
    t_start: float = 0.0
    t_done: float = 0.0
    reads: int = 0
    record: object = field(default=None, repr=False)


def sample_jobs(
    seed: int,
    n_jobs: int,
    n_nodes: int,
    mean_interarrival: float = 0.002,
    first_tenant_id: int = 0,
) -> list[JobArrival]:
    """A seeded job mix: ~half training sweeps, ~half inference bursts.

    Pure function of its arguments — every draw comes from a named
    stream of one ``RandomStreams`` child, so campaigns replay exactly.
    """
    rand = RandomStreams(seed).child("tenancy.arrivals")
    jobs: list[JobArrival] = []
    t = 0.0
    for j in range(n_jobs):
        t += float(rand.exponential(f"gap.{j}", mean_interarrival))
        tid = first_tenant_id + j
        if int(rand.stream(f"kind.{j}").integers(2)):
            spec = TenantSpec(
                tenant_id=tid,
                kind="inference",
                weight=float(rand.choice(f"weight.{j}", (1.0, 2.0))),
                n_files=4 + int(rand.stream(f"files.{j}").integers(8)),
                file_size=int(rand.uniform(f"fsize.{j}", 20e3, 80e3)),
                reads=12 + int(rand.stream(f"reads.{j}").integers(20)),
                epochs=1 + int(rand.stream(f"bursts.{j}").integers(2)),
                think=float(rand.uniform(f"think.{j}", 0.0, 1e-4)),
                hot_fraction=float(rand.uniform(f"hot.{j}", 0.5, 0.9)),
            )
        else:
            n_files = 8 + int(rand.stream(f"files.{j}").integers(16))
            spec = TenantSpec(
                tenant_id=tid,
                kind="training",
                weight=1.0,
                n_files=n_files,
                file_size=int(rand.uniform(f"fsize.{j}", 40e3, 160e3)),
                reads=n_files,
                epochs=1 + int(rand.stream(f"epochs.{j}").integers(2)),
            )
        jobs.append(
            JobArrival(
                time=t, spec=spec, node=int(rand.stream(f"node.{j}").integers(n_nodes))
            )
        )
    return jobs


def job_plan(spec: TenantSpec, seed: int) -> list[list[tuple[str, int]]]:
    """Per-epoch/burst read plans for one job — pure data.

    Training sweeps the dataset in order; inference bursts draw
    hot-skewed picks from the job's own named stream.
    """
    files = spec.files()
    if spec.kind == "training":
        return [list(files[: spec.reads]) for _ in range(spec.epochs)]
    rand = RandomStreams(seed).child(f"tenancy.job.{spec.tenant_id}")
    n = len(files)
    plans = []
    for burst in range(spec.epochs):
        stream = rand.stream(f"burst.{burst}")
        picks = []
        for _ in range(spec.reads):
            if float(stream.uniform()) < spec.hot_fraction:
                picks.append(0)
            else:
                picks.append(int(stream.integers(n)))
        plans.append([files[i] for i in picks])
    return plans


def run_jobs(env, dep, fleet, jobs, admission, seed: int = 0) -> list[JobRecord]:
    """Replay ``jobs`` against the fleet; returns per-job records.

    Runs the simulation until every non-rejected job has finished its
    reads (queued jobs included — a queued job that never gets a
    reservation would deadlock the caller, so the admission queue limit
    must be sized against the job mix).
    """
    records = [JobRecord(tenant_id=a.spec.tenant_id, kind=a.spec.kind) for a in jobs]

    def job(arrival: JobArrival, rec: JobRecord):
        spec = arrival.spec
        rec.t_arrive = env.now
        fleet.add_tenant(spec)
        decision = admission.request(spec)
        rec.action = decision.action
        if decision.action == "reject":
            rec.t_start = rec.t_done = env.now
            return
        if decision.action == "queue":
            yield decision.event
            rec.action = "queue"  # ran after waiting; keep the verdict
        rec.t_start = env.now
        cli = fleet.client(arrival.node, spec.tenant_id)
        if decision.action == "degrade":
            cli.pfs_only = True
        try:
            for plan in job_plan(spec, seed):
                for path, size in plan:
                    yield from cli.read_file(path, size, arrival.node)
                    rec.reads += 1
                    if spec.think > 0.0:
                        yield env.timeout(spec.think)
        finally:
            if decision.action != "degrade":
                admission.release(spec.tenant_id)
        rec.t_done = env.now

    def arrive():
        procs = []
        for arrival, rec in zip(jobs, records):
            if arrival.time > env.now:
                yield env.timeout(arrival.time - env.now)
            procs.append(
                env.process(
                    job(arrival, rec), name=f"tenancy.job.t{arrival.spec.tenant_id}"
                )
            )
        yield AllOf(env, procs)

    env.run(env.process(arrive(), name="tenancy.arrivals"))
    return records
