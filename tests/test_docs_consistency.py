"""Documentation consistency guards.

DESIGN.md promises a bench per figure; these tests keep the promise
true as the repo evolves (a missing bench or a renamed file breaks CI,
not a reader's trust).
"""

import os
import re

import pytest

ROOT = os.path.join(os.path.dirname(__file__), "..")


def read(name):
    with open(os.path.join(ROOT, name)) as fh:
        return fh.read()


class TestDesignPromises:
    def test_every_listed_bench_exists(self):
        design = read("DESIGN.md")
        for match in re.finditer(r"benchmarks/(bench_\w+\.py)", design):
            path = os.path.join(ROOT, "benchmarks", match.group(1))
            assert os.path.exists(path), f"DESIGN.md references missing {match.group(1)}"

    def test_every_figure_has_a_bench(self):
        benches = os.listdir(os.path.join(ROOT, "benchmarks"))
        for fig in ("01", "03", "04", "08", "09", "10", "11", "12", "13", "14", "15"):
            assert any(f"fig{fig}" in b for b in benches), f"no bench for Fig {fig}"

    def test_referenced_test_files_exist(self):
        design = read("DESIGN.md")
        for match in re.finditer(r"tests/(test_\w+\.py)", design):
            path = os.path.join(ROOT, "tests", match.group(1))
            assert os.path.exists(path), f"DESIGN.md references missing {match.group(1)}"


class TestExperimentsDocument:
    def test_covers_every_figure(self):
        exp = read("EXPERIMENTS.md")
        for fig in (1, 3, 4, 8, 9, 10, 11, 12, 13, 14, 15):
            assert f"Fig {fig}" in exp, f"EXPERIMENTS.md missing Fig {fig}"

    def test_every_figure_scored(self):
        exp = read("EXPERIMENTS.md")
        assert exp.count("**Reproduced**") >= 11


class TestReadmePromises:
    def test_examples_table_matches_directory(self):
        readme = read("README.md")
        for name in os.listdir(os.path.join(ROOT, "examples")):
            if name.endswith(".py"):
                assert name in readme, f"README examples table missing {name}"

    def test_docs_links_resolve(self):
        readme = read("README.md")
        for match in re.finditer(r"\]\((docs/[\w./]+|[A-Z]+\.md)\)", readme):
            target = match.group(1)
            assert os.path.exists(os.path.join(ROOT, target)), target

    def test_cli_commands_in_readme_exist(self):
        from repro.cli import build_parser

        readme = read("README.md")
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if a.__class__.__name__ == "_SubParsersAction"
        )
        for cmd in re.findall(r"python -m repro (\w+)", readme):
            assert cmd in sub.choices, f"README shows unknown CLI command {cmd!r}"
