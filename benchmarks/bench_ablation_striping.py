"""Ablation: segment-level caching for large files (§III-E / conclusion).

The paper caches at file granularity and notes that "to ensure an even
load-distribution among HVAC servers for datasets with highly skewed
file sizes, segment-level caching can be implemented"; the conclusion
lists "data layout options for large files across multiple nodes" as
future work.  This bench measures both effects of the implemented
extension: warm read latency for DeepCAM-sized files, and byte-level
load balance under a skewed dataset.
"""

import pytest

from repro.analysis import format_table, gini
from repro.cluster import Allocation, SUMMIT
from repro.core import HVACDeployment
from repro.simcore import AllOf, Environment
from repro.storage import GPFS


def _read_all(env, dep, files, n_nodes):
    def reader(node):
        cli = dep.client(node)
        for path, size in files:
            yield from cli.read_file(path, size, node)

    t0 = env.now
    procs = [env.process(reader(n)) for n in range(n_nodes)]

    def wait():
        yield AllOf(env, procs)

    env.run(env.process(wait()))
    return env.now - t0


def _run():
    n_nodes = 8
    big_files = [(f"/d/vol{i}", 96 * 1024 * 1024) for i in range(12)]
    out = {}
    for label, hvac_kw in (
        ("file-granular", {}),
        ("segment-striped", dict(
            stripe_large_files=True,
            stripe_threshold=32 * 1024 * 1024,
            stripe_segment=16 * 1024 * 1024,
        )),
    ):
        env = Environment()
        spec = SUMMIT.with_hvac(**hvac_kw)
        alloc = Allocation(env, spec, n_nodes)
        pfs = GPFS(env, spec.pfs, n_nodes, spec.network.nic_bandwidth)
        dep = HVACDeployment(alloc, pfs)
        _read_all(env, dep, big_files, n_nodes)          # populate
        warm = _read_all(env, dep, big_files, n_nodes)   # measure
        loads = [s.cache.used_bytes for s in dep.servers]
        out[label] = (warm, gini(loads))
        dep.teardown()
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_segment_striping(benchmark, capsys):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["layout", "warm sweep (s)", "byte-load gini"],
            [[k, t, g] for k, (t, g) in out.items()],
            title="Ablation: segment-level caching for 96 MiB files, 8 nodes",
        ))

    t_plain, g_plain = out["file-granular"]
    t_striped, g_striped = out["segment-striped"]
    # Parallel segment fetches cut warm read time for large files...
    assert t_striped < t_plain
    # ...and spread bytes more evenly across servers.
    assert g_striped <= g_plain
