"""Figure 12: impact of batch size on training time.

The paper's finding is a *negative* result worth reproducing: growing
the batch from 4 to 128 improves training time only ~2–4% (fewer
round-trips amortize per-iteration costs), and the trend is the same on
GPFS, HVAC, and XFS — batch size is not where the I/O win is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import format_series
from ..cluster import ClusterSpec, SUMMIT
from ..dl import DatasetSpec, ModelSpec
from .harness import Scale, run_training

__all__ = ["BatchSizeResult", "batch_size_scaling"]


@dataclass
class BatchSizeResult:
    """Fig 12 panel: total minutes per system per batch size."""

    model_name: str
    n_nodes: int
    epochs: int
    batch_sizes: list[int]
    total_minutes: dict[str, list[float]] = field(default_factory=dict)

    def improvement_range(self, label: str) -> float:
        """Percent improvement from the smallest to the largest batch."""
        series = self.total_minutes[label]
        return 100.0 * (1.0 - series[-1] / series[0])

    def render(self) -> str:
        return format_series(
            "batch",
            self.batch_sizes,
            self.total_minutes,
            title=(
                f"Fig 12 ({self.model_name}, {self.n_nodes} nodes, "
                f"{self.epochs} epochs): training time vs batch size, minutes"
            ),
        )


def batch_size_scaling(
    model: ModelSpec,
    dataset_spec: DatasetSpec,
    batch_sizes: list[int],
    scale: Scale,
    n_nodes: int = 512,
    total_epochs: int = 80,
    spec: ClusterSpec = SUMMIT,
    systems: tuple[str, ...] = ("gpfs", "hvac1", "hvac2", "hvac4", "xfs"),
) -> BatchSizeResult:
    from ..baselines import SYSTEM_SETUPS

    result = BatchSizeResult(
        model_name=model.name,
        n_nodes=n_nodes,
        epochs=total_epochs,
        batch_sizes=list(batch_sizes),
    )
    for system in systems:
        label = SYSTEM_SETUPS[system].label
        series = []
        for batch in batch_sizes:
            res = run_training(
                system,
                model,
                dataset_spec,
                n_nodes,
                scale,
                spec=spec,
                batch_size=batch,
            )
            series.append(res.extrapolate_total(total_epochs) / 60.0)
        result.total_minutes[label] = series
    return result
