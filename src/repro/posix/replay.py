"""Trace replay: re-run a recorded I/O trace against another backend.

The what-if companion to :mod:`.tracing`: record a loader's trace once
(e.g. on GPFS), then replay the identical request stream against HVAC
or XFS and compare — the same methodology storage papers use with
Darshan traces, here driven entirely inside the simulation.

Replay preserves the trace's *think time*: gaps between consecutive
calls that the original application spent computing are reproduced as
delays, so a faster backend shows up as a shorter total, not merely as
the sum of faster calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..simcore import Environment
from ..storage.base import FileBackend
from .tracing import TraceLog

__all__ = ["ReplayResult", "replay_trace"]


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one replay."""

    system_label: str
    elapsed: float
    io_time: float
    think_time: float
    n_transactions: int

    @property
    def mean_transaction_latency(self) -> float:
        return self.io_time / self.n_transactions if self.n_transactions else 0.0


def replay_trace(
    env: Environment,
    log: TraceLog,
    backend: FileBackend,
    client_node: int = 0,
    system_label: str = "replay",
    preserve_think_time: bool = True,
) -> ReplayResult:
    """Replay ``log``'s open/read/close stream against ``backend``.

    Sizes come from the recorded reads; a file whose trace shows no read
    is replayed as a zero-byte transaction.
    """
    # Reconstruct per-path transaction sizes from the recorded reads.
    sizes: dict[str, int] = {}
    for record in log.records:
        if record.op == "read":
            sizes[record.path] = sizes.get(record.path, 0) + record.nbytes

    opens = log.ops("open")
    io_time = 0.0
    think_time = 0.0

    def driver() -> Generator:
        nonlocal io_time, think_time
        prev_end = None
        for record in opens:
            if preserve_think_time and prev_end is not None:
                gap = record.start - prev_end
                if gap > 0:
                    think_time += gap
                    yield env.timeout(gap)
            size = sizes.get(record.path, 0)
            t0 = env.now
            handle = yield from backend.open(record.path, size, client_node)
            if size:
                yield from backend.read(handle, size)
            yield from backend.close(handle)
            io_time += env.now - t0
            prev_end = record.start + record.duration  # trace-time cursor

    t0 = env.now
    env.run(env.process(driver(), name="replay"))
    return ReplayResult(
        system_label=system_label,
        elapsed=env.now - t0,
        io_time=io_time,
        think_time=think_time,
        n_transactions=len(opens),
    )
