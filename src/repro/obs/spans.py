"""Zero-wall-clock span tracing over the simulated clock.

A :class:`SpanRecorder` records *begin / end / annotate* events for each
logical operation as it crosses the stack — client ``read()`` → RPC
endpoint → server data mover → NVMe / GPFS — with parent/child links, so
one intercepted read yields a causal tree that includes its retries,
detector strikes, and PFS fallbacks.

Design constraints (these are the acceptance bar, not aspirations):

* **Hot-path cost is one ``list.append`` per event.**  No kernel events,
  no timeouts, no processes are ever created on behalf of a span, so
  attaching a recorder cannot change the event-stream fingerprint of an
  identically-seeded run with spans disabled.
* **Recording is deterministic** (simlint-clean): span ids come from a
  monotone counter and every recorded value derives from sim state, so
  two same-seed runs produce byte-identical timelines —
  :attr:`SpanRecorder.fingerprint` pins that property in tests.

Tree assembly, JSONL export, and SLO aggregation all happen *after* the
run, off the hot path (:meth:`SpanRecorder.spans`,
:meth:`SpanRecorder.to_jsonl_lines`, :mod:`repro.obs.slo`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["Span", "SpanRecorder"]

_BEGIN, _END, _ANNOTATE = "B", "E", "A"


@dataclass(slots=True)
class Span:
    """One assembled span (post-run view of the flat event list).

    Slotted: assembly materializes one record per span, and big SLO
    runs assemble hundreds of thousands of them (PERF101)."""

    sid: int
    parent: Optional[int]
    name: str
    t0: float
    t1: Optional[float] = None  #: None while open (e.g. abandoned handler)
    status: str = "open"
    attrs: dict = field(default_factory=dict)
    #: time-ordered ``(t, key, value)`` annotations
    annotations: list = field(default_factory=list)
    children: list[int] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        return self.t1 is not None

    @property
    def duration(self) -> float:
        return (self.t1 - self.t0) if self.t1 is not None else float("nan")

    def annotation(self, key: str, default=None):
        """Last value annotated under ``key`` (annotations can repeat)."""
        value = default
        for _, k, v in self.annotations:
            if k == key:
                value = v
        return value

    def to_json(self) -> str:
        return json.dumps(
            {
                "sid": self.sid,
                "parent": self.parent,
                "name": self.name,
                "t0": self.t0,
                "t1": self.t1,
                "status": self.status,
                "attrs": self.attrs,
                "annotations": [list(a) for a in self.annotations],
            },
            separators=(",", ":"),
        )


class SpanRecorder:
    """Append-only span event log on the sim clock.

    The recorder is passive: callers pass the current ``env.now`` in, it
    never reads a clock or touches the kernel.  All methods are O(1).
    """

    __slots__ = ("events", "_next_id")

    def __init__(self):
        #: flat event list: ("B", sid, parent, t, name, attrs) |
        #: ("E", sid, t, status) | ("A", sid, t, key, value)
        self.events: list[tuple] = []
        self._next_id = 0

    # -- hot path -----------------------------------------------------------
    def begin(
        self, name: str, t: float, parent: Optional[int] = None, **attrs
    ) -> int:
        """Open a span; returns its id (pass as ``parent`` to children)."""
        sid = self._next_id
        self._next_id = sid + 1
        self.events.append((_BEGIN, sid, parent, t, name, attrs))
        return sid

    def end(self, sid: int, t: float, status: str = "ok") -> None:
        self.events.append((_END, sid, t, status))

    def annotate(self, sid: int, t: float, key: str, value=None) -> None:
        self.events.append((_ANNOTATE, sid, t, key, value))

    # -- post-run views ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    @property
    def n_spans(self) -> int:
        return self._next_id

    def spans(self) -> dict[int, Span]:
        """Assemble the flat event list into linked :class:`Span`s."""
        out: dict[int, Span] = {}
        for ev in self.events:
            kind = ev[0]
            if kind == _BEGIN:
                _, sid, parent, t, name, attrs = ev
                out[sid] = Span(sid, parent, name, t, attrs=dict(attrs))
            elif kind == _END:
                _, sid, t, status = ev
                span = out.get(sid)
                if span is not None:
                    span.t1 = t
                    span.status = status
            else:
                _, sid, t, key, value = ev
                span = out.get(sid)
                if span is not None:
                    span.annotations.append((t, key, value))
        for span in out.values():
            if span.parent is not None and span.parent in out:
                out[span.parent].children.append(span.sid)
        return out

    def roots(self) -> list[Span]:
        """Top-level spans (no parent), in begin order."""
        return [s for s in self.spans().values() if s.parent is None]

    def named(self, name: str) -> list[Span]:
        """All spans called ``name``, in begin order."""
        return [s for s in self.spans().values() if s.name == name]

    @property
    def fingerprint(self) -> str:
        """Hex digest over the full timeline — byte-identical across
        same-seed runs (the determinism test's comparison key).  Floats
        are folded via ``repr`` so one-ulp drifts still diverge."""
        h = hashlib.blake2b(digest_size=16)
        for ev in self.events:
            h.update("|".join(repr(x) for x in ev).encode())
            h.update(b"\n")
        return h.hexdigest()

    def to_jsonl_lines(self) -> Iterator[str]:
        """One JSON object per span, in span-id order (the timeline dump
        ``repro slo`` writes next to its dashboard)."""
        assembled = self.spans()
        for sid in sorted(assembled):
            yield assembled[sid].to_json()

    def write_jsonl(self, path: str) -> int:
        """Write the JSONL timeline to ``path``; returns spans written."""
        n = 0
        with open(path, "w", encoding="utf-8") as fh:
            for line in self.to_jsonl_lines():
                fh.write(line + "\n")
                n += 1
        return n

    def __repr__(self) -> str:
        return f"<SpanRecorder {self.n_spans} spans, {len(self.events)} events>"
