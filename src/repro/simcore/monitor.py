"""Lightweight instrumentation for simulation components.

Collectors are plain append-only series with numpy-backed reduction, so
hot paths pay one ``list.append`` per sample.  Everything downstream
(tables, CDFs, confidence intervals) reads from these.

Names are hierarchical, dot-joined strings.  A :class:`MetricScope` is a
prefix view over one shared :class:`MetricRegistry` — components hold a
scope (``hvac.c3.detector``) instead of hand-assembling prefixes, and
scopes nest, so the observability layer (``repro.obs``) can slice the
namespace by component without any coordination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Series",
    "Counter",
    "Tally",
    "Histogram",
    "MetricScope",
    "MetricRegistry",
]


class Series:
    """Timestamped samples ``(t, value)``."""

    __slots__ = ("name", "_t", "_v")

    def __init__(self, name: str):
        self.name = name
        self._t: list[float] = []
        self._v: list[float] = []

    def record(self, t: float, value: float) -> None:
        self._t.append(t)
        self._v.append(value)

    def __len__(self) -> int:
        return len(self._v)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._t, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._v, dtype=float)

    def mean(self) -> float:
        return float(np.mean(self._v)) if self._v else float("nan")

    def total(self) -> float:
        return float(np.sum(self._v)) if self._v else 0.0

    def rate(self) -> float:
        """Samples per unit time over the observed window."""
        if len(self._t) < 2:
            return 0.0
        span = self._t[-1] - self._t[0]
        return (len(self._t) - 1) / span if span > 0 else float("inf")


class Counter:
    """Monotonic named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def incr(self, by: int = 1) -> None:
        self.value += by

    def __int__(self) -> int:
        return self.value


class Tally:
    """Streaming scalar statistics (count/mean/min/max/variance).

    Welford's algorithm; O(1) memory regardless of sample count, which
    matters for multi-million-transaction MDTest runs.
    """

    __slots__ = ("name", "n", "_mean", "_m2", "_min", "_max")

    def __init__(self, name: str):
        self.name = name
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    @property
    def mean(self) -> float:
        return self._mean if self.n else float("nan")

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def std(self) -> float:
        return self.variance**0.5

    @property
    def min(self) -> float:
        return self._min if self.n else float("nan")

    @property
    def max(self) -> float:
        return self._max if self.n else float("nan")


class Histogram:
    """Geometric-binned distribution with O(1) memory and quantiles.

    Bins grow by a constant factor (``bins_per_decade`` per power of
    ten) between ``lo`` and ``hi``, with explicit under/overflow bins,
    so latencies spanning microseconds to seconds all resolve.  ``add``
    is O(1) (one log, one increment) and never touches the kernel, so
    histograms are safe on hot paths.  Quantiles interpolate at the
    geometric midpoint of the covering bin, clamped to the observed
    min/max — deterministic, and within one bin width of exact.
    """

    __slots__ = (
        "name", "lo", "_log_growth", "_n_bins", "counts",
        "n", "_sum", "_min", "_max",
    )

    def __init__(
        self,
        name: str,
        lo: float = 1e-7,
        hi: float = 1e4,
        bins_per_decade: int = 8,
    ):
        if lo <= 0 or hi <= lo or bins_per_decade < 1:
            raise ValueError("need 0 < lo < hi and bins_per_decade >= 1")
        self.name = name
        self.lo = lo
        self._log_growth = math.log(10.0) / bins_per_decade
        self._n_bins = max(1, math.ceil(math.log10(hi / lo) * bins_per_decade))
        # counts[0] = underflow (x <= lo), counts[-1] = overflow (x > hi)
        self.counts = [0] * (self._n_bins + 2)
        self.n = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def add(self, x: float) -> None:
        if x <= self.lo:
            idx = 0
        else:
            b = int(math.log(x / self.lo) / self._log_growth) + 1
            idx = b if b <= self._n_bins else self._n_bins + 1
        self.counts[idx] += 1
        self.n += 1
        self._sum += x
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x

    @property
    def mean(self) -> float:
        return self._sum / self.n if self.n else float("nan")

    @property
    def min(self) -> float:
        return self._min if self.n else float("nan")

    @property
    def max(self) -> float:
        return self._max if self.n else float("nan")

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (0..1) from the bin counts."""
        if not self.n:
            return float("nan")
        if q <= 0.0:
            return self._min
        if q >= 1.0:
            return self._max
        target = q * self.n
        cum = 0
        for idx, c in enumerate(self.counts):
            if c == 0:
                continue
            cum += c
            if cum >= target:
                if idx == 0:
                    value = self.lo
                elif idx == self._n_bins + 1:
                    value = self._max  # overflow: all we know is the max
                else:
                    b_lo = self.lo * math.exp((idx - 1) * self._log_growth)
                    value = b_lo * math.exp(self._log_growth / 2.0)
                return min(max(value, self._min), self._max)
        return self._max  # pragma: no cover — cum always reaches n

    def percentiles(self) -> dict[str, float]:
        """The SLO trio: p50/p95/p99."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricScope:
    """A dotted-prefix view over a shared registry; scopes nest.

    ``registry.scope("hvac").scope("c3").counter("reads")`` names the
    same collector as ``registry.counter("hvac.c3.reads")`` — scopes add
    no storage beyond a per-scope collector cache, only naming
    discipline.  The cache makes repeated lookups lazy about label
    construction: the dotted name is built once per (scope, name), not
    once per sample, so hot paths that look collectors up by name pay a
    plain dict hit (PERF103).
    """

    __slots__ = ("registry", "prefix", "_counters", "_tallies",
                 "_series", "_histograms")

    def __init__(self, registry: "MetricRegistry", prefix: str):
        self.registry = registry
        self.prefix = prefix
        self._counters: dict[str, Counter] = {}
        self._tallies: dict[str, Tally] = {}
        self._series: dict[str, Series] = {}
        self._histograms: dict[str, Histogram] = {}

    def _name(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name  # perf: waive PERF103 -- miss path only; hits come from the per-scope collector cache

    def scope(self, name: str) -> "MetricScope":
        return MetricScope(self.registry, self._name(name))

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = self.registry.counter(self._name(name))
        return c

    def tally(self, name: str) -> Tally:
        t = self._tallies.get(name)
        if t is None:
            t = self._tallies[name] = self.registry.tally(self._name(name))
        return t

    def get_series(self, name: str) -> Series:
        s = self._series.get(name)
        if s is None:
            s = self._series[name] = self.registry.get_series(self._name(name))
        return s

    def histogram(self, name: str, **kwargs) -> Histogram:
        if kwargs:
            # Custom binning must reach the registry (first caller wins
            # there, same as before) — don't cache past the kwargs.
            return self.registry.histogram(self._name(name), **kwargs)
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = self.registry.histogram(self._name(name))
        return h

    def __repr__(self) -> str:
        return f"<MetricScope {self.prefix!r}>"


@dataclass
class MetricRegistry:
    """Namespaced container of collectors shared across one simulation."""

    series: dict[str, Series] = field(default_factory=dict)
    counters: dict[str, Counter] = field(default_factory=dict)
    tallies: dict[str, Tally] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def get_series(self, name: str) -> Series:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = Series(name)
        return s

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def tally(self, name: str) -> Tally:
        t = self.tallies.get(name)
        if t is None:
            t = self.tallies[name] = Tally(name)
        return t

    def histogram(self, name: str, **kwargs) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, **kwargs)
        return h

    def scope(self, prefix: str) -> MetricScope:
        """A nestable dotted-prefix view (see :class:`MetricScope`)."""
        return MetricScope(self, prefix)

    def under(self, prefix: str) -> dict[str, object]:
        """Every collector whose name sits under ``prefix.``."""
        dot = prefix + "."
        out: dict[str, object] = {}
        for pool in (self.counters, self.tallies, self.histograms, self.series):
            for name, collector in pool.items():
                if name.startswith(dot) or name == prefix:
                    out[name] = collector
        return out

    def snapshot(self) -> dict:
        """A plain-dict view of every collector (for result records)."""
        out: dict = {}
        for name, c in self.counters.items():
            out[name] = c.value
        for name, t in self.tallies.items():
            # perf: waive PERF105 -- post-run snapshot assembly, not per-event
            out[name] = {
                "n": t.n,
                "mean": t.mean,
                "std": t.std,
                "min": t.min,
                "max": t.max,
            }
        for name, h in self.histograms.items():
            # perf: waive PERF105 -- post-run snapshot assembly, not per-event
            out[name] = {
                "n": h.n,
                "mean": h.mean,
                "min": h.min,
                "max": h.max,
                **h.percentiles(),
            }
        for name, s in self.series.items():
            # perf: waive PERF105 -- post-run snapshot assembly, not per-event
            out[name] = {"n": len(s), "mean": s.mean(), "total": s.total()}
        return out
