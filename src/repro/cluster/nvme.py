"""Node-local NVMe device model.

A device is a bounded-queue-depth server: each I/O request occupies one
of ``queue_depth`` slots for ``latency + size / bandwidth`` seconds.
Reads and writes share the queue (as on real NVMe) but use their own
latency/bandwidth constants.  Capacity accounting is exposed so the
HVAC cache manager and the XFS staging baseline can both allocate space
and hit ENOSPC-like conditions deterministically.

Methods that take simulated time are generators; callers compose them
with ``yield from`` or wrap them in ``env.process``.
"""

from __future__ import annotations

from typing import Generator

from ..simcore import Environment, MetricRegistry, Resource
from .specs import NVMeSpec

__all__ = ["NVMeDevice", "DeviceFull"]


class DeviceFull(Exception):
    """Allocation would exceed device capacity."""

    def __init__(self, requested: int, free: int):
        super().__init__(f"requested {requested} bytes, {free} free")
        self.requested = requested
        self.free = free


class NVMeDevice:
    """One NVMe SSD attached to one compute node."""

    def __init__(
        self,
        env: Environment,
        spec: NVMeSpec,
        metrics: MetricRegistry | None = None,
        name: str = "nvme",
    ):
        self.env = env
        self.spec = spec
        self.name = name
        self.metrics = metrics or MetricRegistry()
        # All collectors live under the device's own dotted scope
        # (``nvme.reads``, ``nvme.read_seconds``, ...).
        self._scope = self.metrics.scope(name)
        self._queue = Resource(env, capacity=spec.queue_depth)
        # Media/bus bandwidth: command latencies overlap across the
        # queue, but data transfers share the device's rated bandwidth —
        # a capacity-1 server held for size/bandwidth per request.
        # Without this, QD concurrent requests would each see the full
        # rated bandwidth (QD× overdelivery).
        self._bandwidth = Resource(env, capacity=1)
        self._used_bytes = 0
        # Gray-failure hook: a degraded device serves at 1/factor of its
        # rated bandwidth with factor x latency (worn flash, thermal
        # throttling, a dying controller) without ever failing outright.
        self._slow_factor = 1.0

    # -- capacity accounting ------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        return self.spec.capacity_bytes - self._used_bytes

    def allocate(self, nbytes: int) -> None:
        """Reserve space (instantaneous bookkeeping; raises when full)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if nbytes > self.free_bytes:
            raise DeviceFull(nbytes, self.free_bytes)
        self._used_bytes += nbytes

    def release(self, nbytes: int) -> None:
        """Return previously allocated space."""
        if nbytes < 0 or nbytes > self._used_bytes:
            raise ValueError(f"invalid release of {nbytes} (used={self._used_bytes})")
        self._used_bytes -= nbytes

    # -- gray failures --------------------------------------------------
    @property
    def slow_factor(self) -> float:
        return self._slow_factor

    def degrade(self, factor: float) -> None:
        """Throttle the device to ``1/factor`` of rated bandwidth (§III-H
        gray failure: the server stays up but every I/O slows down)."""
        if factor < 1.0:
            raise ValueError("degradation factor must be >= 1")
        self._slow_factor = float(factor)
        self._scope.counter("degradations").incr()

    def restore(self) -> None:
        """Return the device to rated performance."""
        self._slow_factor = 1.0

    # -- timed I/O ------------------------------------------------------
    def read(self, nbytes: int) -> Generator:
        """Read ``nbytes``; occupies a queue slot for the service time."""
        t0 = self.env.now
        yield from self._io(nbytes, self.spec.read_latency, self.spec.read_bandwidth)
        self._scope.counter("reads").incr()
        self._scope.tally("read_bytes").add(nbytes)
        self._scope.histogram("read_seconds").add(self.env.now - t0)

    def write(self, nbytes: int) -> Generator:
        """Write ``nbytes`` (no implicit allocation — caller accounts)."""
        t0 = self.env.now
        yield from self._io(nbytes, self.spec.write_latency, self.spec.write_bandwidth)
        self._scope.counter("writes").incr()
        self._scope.tally("write_bytes").add(nbytes)
        self._scope.histogram("write_seconds").add(self.env.now - t0)

    def open_close(self) -> Generator:
        """The filesystem (XFS) cost of an open+close pair."""
        yield self.env.timeout(self.spec.fs_open_close_latency)

    def _io(self, nbytes: int, latency: float, bandwidth: float) -> Generator:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        with self._queue.request() as slot:
            yield slot
            yield self.env.timeout(latency * self._slow_factor)
            with self._bandwidth.request() as bw:
                yield bw
                yield self.env.timeout(nbytes * self._slow_factor / bandwidth)

    @property
    def inflight(self) -> int:
        """Requests currently holding a queue slot."""
        return self._queue.count
