"""Frontier outlook: the paper's closing claim, made quantitative.

"We envision HVAC as an important caching library for upcoming HPC
supercomputers such as Frontier."  This bench runs the ResNet50 sweep
on the FRONTIER preset (Slingshot-class NICs, bigger/faster node-local
NVMe, faster Lustre-class PFS) and checks that the *reason* HVAC keeps
mattering carries over: per-node storage grows faster than shared-PFS
metadata throughput, so the crossover where HVAC wins big persists.
"""

import pytest

from repro.analysis import format_series
from repro.cluster import FRONTIER, SUMMIT
from repro.dl import IMAGENET21K, RESNET50
from repro.experiments import node_scaling_analytic, normalized_to_gpfs

NODES = [16, 64, 256, 1024, 4096]


def _run():
    out = {}
    for spec in (SUMMIT, FRONTIER):
        res = node_scaling_analytic(
            RESNET50, IMAGENET21K, NODES, spec=spec, total_epochs=10,
            procs_per_node=spec.node.n_gpus,
        )
        out[spec.name] = res
    return out


@pytest.mark.benchmark(group="outlook")
def test_frontier_outlook(benchmark, capsys):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    gains = {name: normalized_to_gpfs(res) for name, res in out.items()}
    with capsys.disabled():
        for name, res in out.items():
            print()
            print(res.render() + f"   [{name}, analytic]")
            print()
            print(format_series(
                "nodes", NODES, gains[name],
                title=f"HVAC improvement over PFS-direct on {name} (%)",
            ))

    # The machine changed, the story didn't: at the top of each sweep
    # HVAC(4x1) still delivers a large improvement over the shared PFS.
    for name in ("summit", "frontier"):
        top = gains[name]["HVAC(4x1)"][-1]
        assert top > 40.0
    # Frontier's faster PFS pushes the crossover later, but its larger
    # node counts still cross it: saturation exists on both machines.
    frontier_res = out["frontier"]
    gpfs = frontier_res.total_minutes["GPFS"]
    assert gpfs[-1] > gpfs[-2] * 0.6  # flattening at 4,096 nodes
