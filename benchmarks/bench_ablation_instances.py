"""Ablation: client/server aggregation ratio (servers per node).

The paper lists "investigations of client/server aggregation ratios" as
future work; its evaluation stops at 4 instances/node.  This ablation
sweeps 1→8 instances and finds the knee: once the per-node data-mover
rate exceeds the NVMe/demand rate, more instances stop paying.
"""

import pytest

from repro.analysis import format_table
from repro.baselines import HVACSetup, XFSSetup
from repro.dl import IMAGENET21K, RESNET50
from repro.experiments import Scale, run_training

INSTANCES = (1, 2, 4, 8)


def _run():
    scale = Scale(files_per_rank=16, sim_batch_size=8, repetitions=1,
                  procs_per_node=6)
    n_nodes = 8
    xfs = run_training(XFSSetup(), RESNET50, IMAGENET21K, n_nodes, scale)
    rows = {}
    for inst in INSTANCES:
        res = run_training(HVACSetup(inst), RESNET50, IMAGENET21K, n_nodes, scale)
        rows[inst] = (
            res.best_random_epoch,
            100 * (res.best_random_epoch / xfs.best_random_epoch - 1),
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_server_instances(benchmark, capsys):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["instances/node", "warm epoch (s)", "overhead vs XFS (%)"],
            [[i, t, o] for i, (t, o) in rows.items()],
            title="Ablation: HVAC server instances per node",
        ))

    overheads = [rows[i][1] for i in INSTANCES]
    # Monotonic improvement with diminishing returns.
    assert overheads[0] > overheads[1] > overheads[2]
    gain_1_to_2 = overheads[0] - overheads[1]
    gain_4_to_8 = overheads[2] - overheads[3]
    assert gain_4_to_8 < gain_1_to_2  # the knee
