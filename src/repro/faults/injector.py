"""The fault injector: drives a :class:`FaultSchedule` against a live
deployment inside the simulation clock.

The injector is deliberately dumb — it only *applies* faults at their
scheduled times and heals transient ones after their duration.  All
detection intelligence lives on the client side
(:class:`~repro.faults.detector.FailureDetector`); no component under
test is told a fault happened.

The target is duck-typed: anything with ``fail_node`` / ``recover_node``
/ ``hang_node`` / ``unhang_node`` / ``degrade_node`` / ``restore_node``
and an ``allocation.fabric`` works (in practice,
:class:`~repro.core.deployment.HVACDeployment`).
"""

from __future__ import annotations

from typing import Generator

from ..simcore import Environment, Process
from .schedule import FaultEvent, FaultSchedule

__all__ = ["Injector"]


class Injector:
    """Replays one fault schedule against one deployment."""

    def __init__(self, deployment, schedule: FaultSchedule):
        self.deployment = deployment
        self.schedule = schedule
        self.env: Environment = deployment.env
        self.fabric = deployment.allocation.fabric
        #: chronological (sim time, description) log of applied actions
        self.log: list[tuple[float, str]] = []
        self._proc: Process | None = None

    # -- lifecycle --------------------------------------------------------
    def start(self) -> Process:
        """Begin replaying the schedule; onsets are relative to *now*."""
        if self._proc is not None:
            raise RuntimeError("injector already started")
        self._proc = self.env.process(self._run(), name="fault-injector")
        return self._proc

    @property
    def done(self) -> bool:
        return self._proc is not None and not self._proc.is_alive

    def _note(self, what: str) -> None:
        # race: waive RACE201 -- append-only diagnostic log; kernel orders same-timestamp events
        self.log.append((self.env.now, what))

    # -- replay -----------------------------------------------------------
    def _run(self) -> Generator:
        t0 = self.env.now
        for event in self.schedule:
            at = t0 + event.time
            if at > self.env.now:
                yield self.env.timeout(at - self.env.now)
            self._apply(event)
        # Keep the injector alive until spawned heal/flap children exist
        # only as their own processes; nothing to wait on here.
        return None

    def _apply(self, event: FaultEvent) -> None:
        dep = self.deployment
        kind = event.kind
        if kind == "crash":
            dep.fail_node(event.node)
            self._note(f"crash node {event.node}")
            if event.duration is not None:
                self._heal_later(event, lambda: dep.recover_node(event.node),
                                 f"recover node {event.node}")
        elif kind == "hang":
            dep.hang_node(event.node)
            self._note(f"hang node {event.node}")
            if event.duration is not None:
                self._heal_later(event, lambda: dep.unhang_node(event.node),
                                 f"unhang node {event.node}")
        elif kind == "flap":
            self.env.process(self._flap(event), name="fault.flap")
        elif kind == "degrade":
            dep.degrade_node(event.node, event.factor)
            self._note(f"degrade node {event.node} x{event.factor:g}")
            if event.duration is not None:
                self._heal_later(event, lambda: dep.restore_node(event.node),
                                 f"restore node {event.node}")
        elif kind == "flaky_link":
            src, dst = event.link
            self.fabric.set_link_fault(
                src, dst, drop_prob=event.drop_prob, extra_delay=event.extra_delay
            )
            self._note(f"flaky link {src}<->{dst} p={event.drop_prob:g}")
            if event.duration is not None:
                self._heal_later(
                    event, lambda: self.fabric.clear_link_fault(src, dst),
                    f"heal link {src}<->{dst}",
                )
        elif kind == "partition":
            self.fabric.isolate(event.node)
            self._note(f"partition node {event.node}")
            if event.duration is not None:
                self._heal_later(event, lambda: self.fabric.heal(event.node),
                                 f"heal partition node {event.node}")
        else:  # pragma: no cover - FaultEvent validates kinds
            raise ValueError(f"unknown fault kind {kind!r}")

    def _heal_later(self, event: FaultEvent, undo, label: str) -> None:
        def healer() -> Generator:
            yield self.env.timeout(event.duration)
            undo()
            self._note(label)

        self.env.process(healer(), name=f"fault.heal.{event.kind}")

    def _flap(self, event: FaultEvent) -> Generator:
        dep = self.deployment
        for _ in range(event.cycles):
            dep.fail_node(event.node)
            self._note(f"flap-down node {event.node}")
            yield self.env.timeout(event.period)
            dep.recover_node(event.node)
            self._note(f"flap-up node {event.node}")
            yield self.env.timeout(event.period)
