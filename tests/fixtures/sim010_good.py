"""SIM010 fixture (clean): the same flush with a sorted iteration
surface — trigger order is now a program property, not hash order."""

waiters = set()


def flush(env):
    for evt in sorted(waiters, key=lambda e: e.seq):
        evt.succeed()
    spawned = [env.process(w) for w in sorted(waiters, key=lambda e: e.seq)]
    return spawned
