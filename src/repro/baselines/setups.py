"""The compared storage systems, packaged uniformly (paper §IV-A3).

Each setup builds one of the systems the paper compares —

* **GPFS** — every transaction goes to the shared PFS;
* **XFS-on-NVMe** — the dataset is fully staged to every node's NVMe
  before the run; the linear-scaling upper bound;
* **HVAC(i×1)** — the proposed cache with ``i`` server instances/node;
* **LPCC-like** — a single-node read-only client cache (the Lustre
  LPCC comparison point from §II-D): hits only from the local NVMe,
  no remote peers, so cache capacity = one NVMe, not the aggregate

— behind one interface: ``backend_for_node(node_id) -> FileBackend``.
Experiments and benchmarks construct a setup, hand its backends to a
:class:`~repro.dl.training.TrainingJob`, and read the metrics back.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Optional

from ..cluster import Allocation, ClusterSpec
from ..core import HVACDeployment
from ..dl.dataset import SyntheticDataset
from ..simcore import Environment, MetricRegistry, RandomStreams
from ..storage import GPFS, FileBackend, LocalFS

__all__ = [
    "SystemHandle",
    "StorageSetup",
    "GPFSSetup",
    "XFSSetup",
    "HVACSetup",
    "LPCCLikeSetup",
    "SYSTEM_SETUPS",
]


@dataclass
class SystemHandle:
    """A built, ready-to-use storage system for one experiment run."""

    label: str
    backend_for_node: Callable[[int], FileBackend]
    metrics: MetricRegistry
    teardown: Callable[[], None] = lambda: None
    pfs: Optional[GPFS] = None
    deployment: Optional[HVACDeployment] = None
    #: simulated seconds spent staging data before the run (XFS only)
    stage_time: float = 0.0
    #: when staging is simulated event-by-event (XFSSetup with
    #: ``instant_stage=False``), call this to run the stage-in; it
    #: returns the simulated staging duration and updates stage_time.
    run_stage: Optional[Callable[[], float]] = None


class StorageSetup(abc.ABC):
    """Factory for one of the compared systems."""

    label: str = "abstract"

    @abc.abstractmethod
    def build(
        self,
        env: Environment,
        spec: ClusterSpec,
        n_nodes: int,
        dataset: SyntheticDataset,
        seed: int = 0,
    ) -> SystemHandle:
        """Construct the system for ``n_nodes`` and the given dataset."""


def _make_pfs(
    env: Environment, spec: ClusterSpec, n_nodes: int, metrics: MetricRegistry
) -> GPFS:
    return GPFS(
        env,
        spec.pfs,
        n_client_nodes=n_nodes,
        client_link_bandwidth=spec.network.nic_bandwidth,
        metrics=metrics,
    )


class GPFSSetup(StorageSetup):
    """Direct PFS access — the paper's baseline."""

    label = "GPFS"

    def build(self, env, spec, n_nodes, dataset, seed=0) -> SystemHandle:
        metrics = MetricRegistry()
        pfs = _make_pfs(env, spec, n_nodes, metrics)
        return SystemHandle(
            label=self.label,
            backend_for_node=lambda node_id: pfs,
            metrics=metrics,
            pfs=pfs,
        )


class XFSSetup(StorageSetup):
    """XFS-on-NVMe: full dataset staged on every node (upper I/O bound).

    Staging happens before the measured run (as in the paper); its cost
    is *reported* in :attr:`SystemHandle.stage_time` but not charged to
    training time.  ``instant_stage=False`` simulates the stage-in reads
    (GPFS → every node) event-by-event instead of computing it
    analytically from bandwidth.
    """

    label = "XFS-on-NVMe"

    def __init__(self, instant_stage: bool = True):
        self.instant_stage = instant_stage

    def build(self, env, spec, n_nodes, dataset, seed=0) -> SystemHandle:
        metrics = MetricRegistry()
        alloc = Allocation(
            env, spec, n_nodes, metrics=metrics,
            rand=RandomStreams(seed).child("cluster"),
        )
        backends = [
            LocalFS(env, node.node_id, node.nvme, metrics=metrics,
                    track_namespace=False)
            for node in alloc
        ]
        # Analytic stage-in estimate: the whole dataset flows once from
        # the PFS to each node, bounded by PFS aggregate bandwidth and
        # per-node NVMe write bandwidth (whichever binds).
        total = dataset.total_bytes
        pfs_bound = total * n_nodes / spec.pfs.aggregate_bandwidth
        nvme_bound = total / spec.node.nvme.write_bandwidth
        handle = SystemHandle(
            label=self.label,
            backend_for_node=lambda node_id: backends[node_id],
            metrics=metrics,
            stage_time=max(pfs_bound, nvme_bound),
        )
        if not self.instant_stage:
            handle.run_stage = self._make_stage(
                env, spec, n_nodes, dataset, backends, metrics, handle
            )
        return handle

    @staticmethod
    def _make_stage(env, spec, n_nodes, dataset, backends, metrics, handle):
        """Event-driven stage-in: every node pulls every file from the
        PFS and writes it to its NVMe (released space accounting so the
        untracked namespace doesn't double-count)."""
        pfs = _make_pfs(env, spec, n_nodes, metrics)

        def node_stage(node_id):
            fs = backends[node_id]
            for i in range(len(dataset)):
                size = dataset.size(i)
                yield from pfs.read_file(dataset.path(i), size, node_id)
                yield from fs.device.write(size)

        def run() -> float:
            from ..simcore import AllOf

            t0 = env.now
            procs = [env.process(node_stage(n)) for n in range(n_nodes)]

            def wait():
                yield AllOf(env, procs)

            env.run(env.process(wait(), name="xfs.stage"))
            handle.stage_time = env.now - t0
            return handle.stage_time

        return run


class HVACSetup(StorageSetup):
    """The proposed system: HVAC with ``instances`` servers per node."""

    def __init__(self, instances: int = 1):
        if instances < 1:
            raise ValueError("instances must be >= 1")
        self.instances = instances
        self.label = f"HVAC({instances}x1)"

    def build(self, env, spec, n_nodes, dataset, seed=0) -> SystemHandle:
        metrics = MetricRegistry()
        spec = spec.with_hvac(instances_per_node=self.instances)
        alloc = Allocation(
            env, spec, n_nodes, metrics=metrics,
            rand=RandomStreams(seed).child("cluster"),
        )
        pfs = _make_pfs(env, spec, n_nodes, metrics)
        dep = HVACDeployment(alloc, pfs, seed=seed, metrics=metrics)
        return SystemHandle(
            label=self.label,
            backend_for_node=dep.client,
            metrics=metrics,
            teardown=dep.teardown,
            pfs=pfs,
            deployment=dep,
        )


class LPCCLikeSetup(StorageSetup):
    """LPCC-style single-node read cache (§II-D comparison point).

    Implemented as an HVAC deployment whose placement pins every file to
    the reading node: hits come only from local NVMe, capacity is one
    device, and there is no cross-node aggregation — the two limitations
    the paper calls out for LPCC.
    """

    label = "LPCC-like"

    def build(self, env, spec, n_nodes, dataset, seed=0) -> SystemHandle:
        metrics = MetricRegistry()
        alloc = Allocation(
            env, spec, n_nodes, metrics=metrics,
            rand=RandomStreams(seed).child("cluster"),
        )
        pfs = _make_pfs(env, spec, n_nodes, metrics)
        dep = HVACDeployment.with_locality_split(
            alloc, pfs, local_fraction=1.0, seed=seed
        )
        return SystemHandle(
            label=self.label,
            backend_for_node=dep.client,
            metrics=metrics,
            teardown=dep.teardown,
            pfs=pfs,
            deployment=dep,
        )


#: the paper's Fig 8 lineup
SYSTEM_SETUPS: dict[str, StorageSetup] = {
    "gpfs": GPFSSetup(),
    "hvac1": HVACSetup(1),
    "hvac2": HVACSetup(2),
    "hvac4": HVACSetup(4),
    "xfs": XFSSetup(),
}
