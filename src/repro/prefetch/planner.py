"""The clairvoyant planner: seeded epoch plans → per-client schedules.

NoPFS's observation (PAPERS.md): because the global shuffle is a pure
function of ``(dataset seed, shuffle seed, epoch)``, the complete
per-rank access order of every future epoch is computable before
training starts.  :class:`ClairvoyantPlanner` materializes exactly that
— a ``(path, size)`` sequence per client, concatenated across epochs —
from :func:`~repro.dl.make_epoch_plan`, the same code path the data
loader itself uses, so plan and demand can never disagree.

The planner is pure data: no environment, no processes, no RNG draws of
its own (SIM002 — it only *reads* the dataset's seeded order).  Its
:meth:`digest` is a stable fingerprint of the whole schedule, pinning
same-seed plan identity in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..simcore import stable_hash64

__all__ = ["ClairvoyantPlanner", "ClientSchedule"]


@dataclass(frozen=True)
class ClientSchedule:
    """One client's full planned access order across all epochs."""

    key: object
    entries: tuple[tuple[str, int], ...]

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def total_bytes(self) -> int:
        return sum(size for _, size in self.entries)


class ClairvoyantPlanner:
    """Materialized per-client access schedules, keyed like
    :meth:`~repro.core.HVACDeployment.client` keys clients."""

    def __init__(self, schedules: Mapping[object, Sequence[tuple[str, int]]]):
        if not schedules:
            raise ValueError("planner needs at least one client schedule")
        self._schedules: dict[object, ClientSchedule] = {
            key: ClientSchedule(
                key=key,
                entries=tuple((str(p), int(s)) for p, s in entries),
            )
            for key, entries in schedules.items()
        }

    @classmethod
    def from_epoch_plans(
        cls,
        dataset,
        n_ranks: int,
        epochs: int,
        shuffle_seed: int = 0,
        keys: Sequence[object] | None = None,
        drop_remainder: bool = False,
    ) -> "ClairvoyantPlanner":
        """Plan ``epochs`` epochs of ``dataset`` for ``n_ranks`` readers.

        ``keys`` maps rank → client key (default: the rank itself, the
        classic one-client-per-node deployment).
        """
        from ..dl.loader import make_epoch_plan

        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if keys is not None and len(keys) != n_ranks:
            raise ValueError("keys must have one entry per rank")
        schedules: dict[object, list[tuple[str, int]]] = {}
        for rank in range(n_ranks):
            key = keys[rank] if keys is not None else rank
            schedules[key] = []
        for epoch in range(epochs):
            plan = make_epoch_plan(
                dataset,
                epoch,
                n_ranks,
                shuffle_seed=shuffle_seed,
                drop_remainder=drop_remainder,
            )
            for rank, shard in enumerate(plan.shards):
                key = keys[rank] if keys is not None else rank
                schedules[key].extend(
                    (dataset.path(int(i)), dataset.size(int(i)))
                    for i in shard.indices
                )
        return cls(schedules)

    @classmethod
    def from_plans(
        cls, plans: Mapping[object, Sequence[tuple[str, int]]]
    ) -> "ClairvoyantPlanner":
        """Plan from explicit per-client read lists (the fuzz executor's
        pure-data scenario plans)."""
        return cls(plans)

    # -- queries -----------------------------------------------------------
    @property
    def keys(self) -> list[object]:
        from ..core.deployment import client_key_order

        return sorted(self._schedules, key=client_key_order)

    def schedule(self, key) -> ClientSchedule:
        return self._schedules[key]

    def schedules(self) -> dict[object, ClientSchedule]:
        return {key: self._schedules[key] for key in self.keys}

    @property
    def total_entries(self) -> int:
        return sum(len(s) for s in self._schedules.values())

    def digest(self) -> int:
        """Stable fingerprint of the full schedule (plan identity)."""
        parts: list[str] = []
        for key in self.keys:
            sched = self._schedules[key]
            parts.append(str(key))
            parts.extend(f"{p}:{s}" for p, s in sched.entries)
        return stable_hash64("clairvoyant-plan", *parts)
