"""Command-line interface: regenerate the paper's figures and run
ad-hoc simulations without pytest.

    python -m repro fig9 --nodes 2 8 32
    python -m repro mdtest --file-size 32768 --nodes 1 4 16
    python -m repro train --system hvac4 --model resnet50 --nodes 16
    python -m repro info
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis import format_kv, format_series
from .cluster import SUMMIT
from .dl import ALL_MODELS, COSMOUNIVERSE, DEEPCAM_CLIMATE, IMAGENET21K
from .experiments import (
    Scale,
    generate_report,
    accuracy_comparison,
    fault_matrix,
    load_balance,
    mdtest_scaling,
    mdtest_scaling_analytic,
    membership_comparison,
    node_scaling,
    node_scaling_analytic,
    normalized_to_gpfs,
    overhead_vs_xfs,
    prefetch_comparison,
    resilience_sweep,
    run_training,
    slo_scenario,
    tenancy_isolation,
)

__all__ = ["main"]

_MODEL_DATASET = {
    "resnet50": IMAGENET21K,
    "tresnet_m": IMAGENET21K,
    "cosmoflow": COSMOUNIVERSE,
    "deepcam": DEEPCAM_CLIMATE,
}


def _scale(args: argparse.Namespace) -> Scale:
    return Scale(
        files_per_rank=args.files_per_rank,
        sim_batch_size=8,
        repetitions=args.repetitions,
        procs_per_node=args.procs_per_node,
    )


def _add_scale_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--files-per-rank", type=int, default=8,
                   help="sampled files per rank (event-count knob)")
    p.add_argument("--procs-per-node", type=int, default=4)
    p.add_argument("--repetitions", type=int, default=1)


def cmd_info(args: argparse.Namespace) -> int:
    spec = SUMMIT
    print(format_kv({
        "cluster": spec.name,
        "total nodes": spec.total_nodes,
        "GPFS aggregate bandwidth (TB/s)": spec.pfs.aggregate_bandwidth / 1e12,
        "GPFS metadata ceiling (tx/s)": spec.pfs.aggregate_metadata_ops
        / (spec.pfs.ops_per_open + spec.pfs.ops_per_close),
        "NVMe per node (GB/s)": spec.node.nvme.read_bandwidth / 1e9,
        "NVMe capacity per node (TB)": spec.node.nvme.capacity_bytes / 1e12,
        "NIC per node (GB/s)": spec.network.nic_bandwidth / 1e9,
        "HVAC mover overhead (us)": spec.hvac.server_request_overhead * 1e6,
    }, title="Calibrated Summit model (cluster/specs.py)"))
    print()
    print(format_kv(
        {name: f"{m.samples_per_sec_per_gpu:.0f} samples/s/GPU, "
               f"{m.n_parameters:,} params" for name, m in ALL_MODELS.items()},
        title="Workload models",
    ))
    return 0


def cmd_mdtest(args: argparse.Namespace) -> int:
    res = mdtest_scaling(
        args.file_size, args.nodes,
        ranks_per_node=args.procs_per_node,
        files_per_rank=args.files_per_rank,
    )
    print(res.render())
    if args.analytic:
        print()
        print(mdtest_scaling_analytic(
            args.file_size, [1, 4, 16, 64, 256, 1024, 4096]
        ).render() + "   [analytic]")
    return 0


def cmd_fig8(args: argparse.Namespace) -> int:
    model = ALL_MODELS[args.model]
    dataset = _MODEL_DATASET[args.model]
    res = node_scaling(
        model, dataset, args.nodes, _scale(args),
        systems=tuple(args.systems), total_epochs=args.epochs,
    )
    print(res.render())
    return 0


def cmd_fig9(args: argparse.Namespace) -> int:
    model = ALL_MODELS[args.model]
    dataset = _MODEL_DATASET[args.model]
    res = node_scaling(
        model, dataset, args.nodes, _scale(args), total_epochs=args.epochs
    )
    print(format_series("nodes", res.node_counts, normalized_to_gpfs(res),
                        title="Fig 9a: % improvement over GPFS"))
    print()
    print(format_series("nodes", res.node_counts, overhead_vs_xfs(res),
                        title="Fig 9b: % overhead vs XFS-on-NVMe"))
    if args.analytic:
        full = node_scaling_analytic(
            model, dataset, [1, 16, 64, 256, 512, 1024], total_epochs=args.epochs
        )
        print()
        print(format_series("nodes", full.node_counts, normalized_to_gpfs(full),
                            title="Fig 9a [analytic, full sweep]"))
    return 0


def cmd_fig14(args: argparse.Namespace) -> int:
    print(accuracy_comparison(n_epochs=args.epochs).render())
    return 0


def cmd_fig15(args: argparse.Namespace) -> int:
    print(load_balance(args.nodes, n_files=args.files).render())
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    text = generate_report(
        scale=_scale(args),
        node_counts=args.nodes,
        include_des=not args.analytic_only,
    )
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    model = ALL_MODELS[args.model]
    dataset = _MODEL_DATASET[args.model]
    res = run_training(args.system, model, dataset, args.nodes[0], _scale(args))
    print(format_kv({
        "system": res.system_label,
        "config": res.config_label,
        "epoch-1 (s)": res.first_epoch,
        "steady epoch (s)": res.best_random_epoch,
        f"extrapolated total, {args.epochs} epochs (min)":
            res.extrapolate_total(args.epochs) / 60,
        "cache hit rate": res.cache_hit_rate,
    }, title="Training simulation"))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from .check import run_check

    return run_check(
        paths=args.paths or None,
        lint_only=args.lint_only,
        determinism_only=args.determinism_only,
        races_only=args.races_only,
        seed=args.seed,
        n_nodes=args.nodes,
        files_per_rank=args.files_per_rank,
        block=args.block,
        taint=args.taint,
        races=args.races,
        races_output=args.races_output,
        perf=args.perf,
        cells=args.cells,
        cells_only=args.cells_only,
        cells_freshness_only=args.cells_freshness,
        cells_output=args.cells_output,
    )


def cmd_bench(args: argparse.Namespace) -> int:
    from .bench import run_bench_cli

    return run_bench_cli(
        output=args.output,
        compare=args.compare,
        tolerance=args.tolerance,
        repeats=args.repeats,
        scenarios=args.scenarios or None,
    )


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import InvariantConfig, replay_case, run_campaign
    from .fuzz.campaign import render_violations

    if args.replay:
        report, expected, scenario = replay_case(
            args.replay, original=args.original
        )
        which = "original" if args.original else "shrunk"
        print(f"replayed {which} scenario "
              f"({scenario.n_nodes} nodes, {len(scenario.faults)} faults, "
              f"workload {scenario.workload.kind})")
        print(f"expected violations: {', '.join(expected) or '(none)'}")
        print("observed:")
        print(render_violations(report.violations))
        if set(expected) <= set(report.violated):
            print("reproduced")
            return 0
        print("NOT reproduced")
        return 2

    config = InvariantConfig(determinism_every=args.determinism_every)
    sanitizer = None
    if args.races:
        from .check.races import RaceSanitizer

        sanitizer = RaceSanitizer()
    result = run_campaign(
        runs=args.runs,
        seed=args.seed,
        corpus_dir=args.corpus_dir or None,
        time_budget=args.time_budget,
        config=config,
        sanitizer=sanitizer,
    )
    print(result.render())
    for path in result.case_paths:
        print(f"wrote {path}")
    rc = 0
    if sanitizer is not None:
        sanitizer.finish()
        if sanitizer.reports:
            print(f"\n{len(sanitizer.reports)} same-timestamp race(s):")
            for rep in sanitizer.reports:
                print(rep.describe())
            rc = 1
        else:
            print("\nrace sanitizer: clean")
    return 1 if result.cases else rc


def cmd_resilience(args: argparse.Namespace) -> int:
    sweep = resilience_sweep(
        fail_fractions=args.fractions,
        n_nodes=args.nodes,
        n_files=args.files,
        seed=args.seed,
    )
    print(sweep.render())
    print()
    matrix = fault_matrix(
        n_nodes=min(args.nodes, 4), n_files=args.files, seed=args.seed
    )
    print(matrix.render())
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    if args.smoke:
        args.nodes = min(args.nodes, 3)
        args.files = min(args.files, 12)
        args.windows = min(args.windows, 8)
    result = slo_scenario(
        n_nodes=args.nodes,
        n_files=args.files,
        fault_time=args.fault_time,
        fault_node=args.fault_node,
        windows=args.windows,
        seed=args.seed,
    )
    print(result.render())
    if args.output_dir:
        paths = result.write_artifacts(args.output_dir)
        print()
        for name, path in paths.items():
            print(f"wrote {name}: {path}")
    return 0


def cmd_membership(args: argparse.Namespace) -> int:
    if args.smoke:
        args.nodes = min(args.nodes, 4)
        args.files = min(args.files, 12)
        args.windows = min(args.windows, 8)
        args.repair_bandwidths = args.repair_bandwidths[:2]
    result = membership_comparison(
        n_nodes=args.nodes,
        n_files=args.files,
        victims=tuple(args.victims),
        outage_epochs=args.outage_epochs,
        windows=args.windows,
        repair_bandwidths=tuple(args.repair_bandwidths),
        seed=args.seed,
    )
    print(result.render())
    if args.output_dir:
        paths = result.write_artifacts(args.output_dir)
        print()
        for name, path in paths.items():
            print(f"wrote {name}: {path}")
    return 0


def cmd_tenancy(args: argparse.Namespace) -> int:
    cache_fraction = None
    if args.smoke:
        args.nodes = min(args.nodes, 3)
        args.victim_files = min(args.victim_files, 12)
        args.aggressor_files = min(args.aggressor_files, 120)
        args.file_size = min(args.file_size, 100_000)
        args.storm_passes = min(args.storm_passes, 2)
        args.windows = min(args.windows, 8)
        args.jobs = min(args.jobs, 6)
        # Shrink the caches so the reduced-scale aggressor still thrashes
        # (12 MB dataset vs a 6 MB fleet pool).
        cache_fraction = 0.2
    result = tenancy_isolation(
        n_nodes=args.nodes,
        victim_files=args.victim_files,
        aggressor_files=args.aggressor_files,
        file_size=args.file_size,
        storm_passes=args.storm_passes,
        windows=args.windows,
        n_jobs=args.jobs,
        think=args.think,
        streams=args.streams,
        cache_fraction=cache_fraction,
        seed=args.seed,
    )
    print(result.render())
    if args.output_dir:
        paths = result.write_artifacts(args.output_dir)
        print()
        for name, path in paths.items():
            print(f"wrote {name}: {path}")
    return 0 if result.dominates() else 1


def cmd_prefetch(args: argparse.Namespace) -> int:
    if args.smoke:
        args.nodes = min(args.nodes, 3)
        args.files = min(args.files, 96)
        args.epochs = min(args.epochs, 3)
        args.windows = min(args.windows, 8)
    result = prefetch_comparison(
        n_nodes=args.nodes,
        n_files=args.files,
        file_size=args.file_size,
        epochs=args.epochs,
        windows=args.windows,
        lookahead=args.lookahead,
        outstanding=args.outstanding,
        cache_fraction=args.cache_fraction,
        compression_ratio=args.compression_ratio,
        decompress_cost_per_byte=args.decompress_cost,
        decompress_budget=args.decompress_budget,
        fault=not args.no_fault,
        seed=args.seed,
    )
    print(result.render())
    if args.output_dir:
        paths = result.write_artifacts(args.output_dir)
        print()
        for name, path in paths.items():
            print(f"wrote {name}: {path}")
    return 0 if result.dominates() else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HVAC reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="show the calibrated system model")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("mdtest", help="Figs 3-4: MDTest sweep")
    p.add_argument("--file-size", type=int, default=32 * 1024)
    p.add_argument("--nodes", type=int, nargs="+", default=[1, 4, 16])
    p.add_argument("--analytic", action="store_true")
    _add_scale_args(p)
    p.set_defaults(func=cmd_mdtest)

    p = sub.add_parser("fig8", help="Fig 8: training-time node sweep")
    p.add_argument("--model", choices=sorted(ALL_MODELS), default="resnet50")
    p.add_argument("--nodes", type=int, nargs="+", default=[2, 8])
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--systems", nargs="+",
                   default=["gpfs", "hvac1", "hvac4", "xfs"])
    _add_scale_args(p)
    p.set_defaults(func=cmd_fig8)

    p = sub.add_parser("fig9", help="Fig 9: normalized improvement/overhead")
    p.add_argument("--model", choices=sorted(ALL_MODELS), default="resnet50")
    p.add_argument("--nodes", type=int, nargs="+", default=[2, 8])
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--analytic", action="store_true")
    _add_scale_args(p)
    p.set_defaults(func=cmd_fig9)

    p = sub.add_parser("fig14", help="Fig 14: accuracy comparison")
    p.add_argument("--epochs", type=int, default=10)
    p.set_defaults(func=cmd_fig14)

    p = sub.add_parser("fig15", help="Fig 15: load balance")
    p.add_argument("--nodes", type=int, nargs="+", default=[32, 128, 512])
    p.add_argument("--files", type=int, default=50_000)
    p.set_defaults(func=cmd_fig15)

    p = sub.add_parser("report", help="full evaluation report (all figures)")
    p.add_argument("--nodes", type=int, nargs="+", default=[2, 8])
    p.add_argument("--analytic-only", action="store_true",
                   help="skip the DES; instant analytic-only report")
    p.add_argument("--output", default="",
                   help="write to a file instead of stdout")
    _add_scale_args(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "resilience",
        help="§III-H: epoch time vs failed servers + per-fault-kind matrix",
    )
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--files", type=int, default=48,
                   help="files per node per epoch")
    p.add_argument("--fractions", type=float, nargs="+",
                   default=[0.0, 0.25, 0.5],
                   help="fractions of nodes to crash")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_resilience)

    p = sub.add_parser(
        "slo",
        help="SLO dashboard: span-level telemetry for a crash-at-t "
        "scenario vs its no-fault baseline (+ JSONL span timelines)",
    )
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--files", type=int, default=32,
                   help="files per node per epoch")
    p.add_argument("--fault-time", type=float, default=0.002,
                   help="crash lands this many seconds into the epoch")
    p.add_argument("--fault-node", type=int, default=1)
    p.add_argument("--windows", type=int, default=12,
                   help="SLO window count across the measured epoch")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output-dir", default="",
                   help="also write dashboard.txt + span-timeline JSONL here")
    p.add_argument("--smoke", action="store_true",
                   help="tiny fast run (CI artifact smoke test)")
    p.set_defaults(func=cmd_slo)

    p = sub.add_parser(
        "membership",
        help="gossip membership, fault-aware remapping, peer repair: "
        "four failover modes on one crash/recover scenario "
        "+ repair-bandwidth sweep",
    )
    p.add_argument("--nodes", type=int, default=6)
    p.add_argument("--files", type=int, default=36,
                   help="files per node per epoch")
    p.add_argument("--victims", type=int, nargs="+", default=[1, 2],
                   help="nodes crashed as a correlated burst (adjacent "
                   "pair = whole replica sets lost)")
    p.add_argument("--outage-epochs", type=int, default=2,
                   help="measured epochs while the victims are down")
    p.add_argument("--windows", type=int, default=12,
                   help="SLO window count across the post-crash range")
    p.add_argument("--repair-bandwidths", type=float, nargs="+",
                   default=[1e6, 1e7, 1e8, 0.0],
                   help="repair throttle sweep, bytes/s (0 = unthrottled)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output-dir", default="",
                   help="also write report.txt + transitions.log here")
    p.add_argument("--smoke", action="store_true",
                   help="tiny fast run (CI artifact smoke test)")
    p.set_defaults(func=cmd_membership)

    p = sub.add_parser(
        "tenancy",
        help="multi-tenant fleet: hot-storm isolation under partition-"
        "vs-share cache policies + admission-controlled arrival mix "
        "(exit 0 iff weighted-fair dominates shared LRU for the victim)",
    )
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--victim-files", type=int, default=40,
                   help="victim tenant dataset size (files)")
    p.add_argument("--aggressor-files", type=int, default=400,
                   help="aggressor tenant dataset size (files); sized "
                   "past the aggregate cache so the shared pool thrashes")
    p.add_argument("--file-size", type=int, default=200_000)
    p.add_argument("--storm-passes", type=int, default=2,
                   help="measured passes both tenants make during the storm")
    p.add_argument("--windows", type=int, default=12,
                   help="SLO window count across the storm")
    p.add_argument("--jobs", type=int, default=8,
                   help="arrival-mix jobs for the admission demo")
    p.add_argument("--think", type=float, default=0.08,
                   help="victim service pacing (s); must exceed the shared "
                   "pool's eviction horizon for the storm to bite")
    p.add_argument("--streams", type=int, default=4,
                   help="parallel aggressor sweep streams per node")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output-dir", default="",
                   help="also write report.txt + windows.log here")
    p.add_argument("--smoke", action="store_true",
                   help="tiny fast run (CI artifact smoke test)")
    p.set_defaults(func=cmd_tenancy)

    p = sub.add_parser(
        "prefetch",
        help="clairvoyant prefetch: reactive bulk vs look-ahead staging "
        "vs compressed tier under contention + a mid-run crash (exit 0 "
        "iff clairvoyant dominates reactive on epoch-1 time and steady "
        "p99, and compression cuts PFS bytes within the CPU budget)",
    )
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--files", type=int, default=128,
                   help="dataset size (files); sized past the aggregate "
                   "cache so the uncompressed modes thrash")
    p.add_argument("--file-size", type=int, default=75_000)
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--windows", type=int, default=12,
                   help="SLO window count across the steady state")
    p.add_argument("--lookahead", type=int, default=8,
                   help="files staged ahead of each client's cursor")
    p.add_argument("--outstanding", type=int, default=2,
                   help="staged fetches in flight per server")
    p.add_argument("--cache-fraction", type=float, default=0.21,
                   help="per-node NVMe share given to the cache")
    p.add_argument("--compression-ratio", type=float, default=0.45,
                   help="stored/raw byte ratio of the compressed tier")
    p.add_argument("--decompress-cost", type=float, default=2e-9,
                   help="sim-seconds of decompression per raw byte on hit")
    p.add_argument("--decompress-budget", type=float, default=1.0,
                   help="max total decompression seconds for dominance")
    p.add_argument("--no-fault", action="store_true",
                   help="skip the mid-run crash/recover leg")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output-dir", default="",
                   help="also write report.txt + windows.log here")
    p.add_argument("--smoke", action="store_true",
                   help="tiny fast run (CI artifact smoke test)")
    p.set_defaults(func=cmd_prefetch)

    p = sub.add_parser(
        "fuzz",
        help="scenario fuzzer: seeded campaigns over random topologies/"
        "faults/workloads, six resilience invariants, autopilot "
        "near-violation bias, minimized JSON repro cases",
    )
    p.add_argument("--runs", type=int, default=25,
                   help="scenarios to execute")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (generator + autopilot)")
    p.add_argument("--time-budget", type=float, default=0.0,
                   help="stop after this many wall seconds (0 = no limit)")
    p.add_argument("--corpus-dir", default="",
                   help="write shrunk JSON case files here on violation")
    p.add_argument("--replay", metavar="CASE",
                   help="re-run one case file instead of a campaign "
                   "(exit 0 iff the recorded violations reproduce)")
    p.add_argument("--original", action="store_true",
                   help="with --replay: run the original scenario, "
                   "not the shrunk core")
    p.add_argument("--determinism-every", type=int, default=4,
                   help="double-run the fingerprint check every N-th "
                   "scenario (0 = never)")
    p.add_argument("--races", action="store_true",
                   help="attach the race sanitizer across all runs")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "check",
        help="determinism & sim-safety analyzer: SIM lint rules + "
        "same-seed double-run event-stream fingerprint comparison",
    )
    p.add_argument("paths", nargs="*",
                   help="files/dirs to lint (default: the installed repro tree)")
    p.add_argument("--lint-only", action="store_true",
                   help="skip the double-run determinism check")
    p.add_argument("--determinism-only", action="store_true",
                   help="skip the lint pass")
    p.add_argument("--taint", action="store_true",
                   help="run the interprocedural taint pass (SIM011): flag "
                   "sim-scope calls that transitively reach a "
                   "nondeterminism primitive in a helper/another module")
    p.add_argument("--races", action="store_true",
                   help="also run the sim-time race sanitizer over the "
                   "membership smoke scenario (two seeds)")
    p.add_argument("--races-only", action="store_true",
                   help="run only the race sanitizer")
    p.add_argument("--perf", action="store_true",
                   help="also run the hot-path performance analyzer "
                   "(PERF101-PERF105 over the sim-hot set)")
    p.add_argument("--races-output", metavar="FILE",
                   help="write race reports (or a clean marker) to FILE")
    p.add_argument("--cells", action="store_true",
                   help="also run the static shared-state audit "
                   "(RACE201-RACE204): prove every mutable cell reachable "
                   "from two concurrent process roots is sanitizer-noted")
    p.add_argument("--cells-only", action="store_true",
                   help="run only the shared-state audit")
    p.add_argument("--cells-freshness", action="store_true",
                   help="run only the cell-registry drift check (every "
                   "in-tree note_access family must have a declaration)")
    p.add_argument("--cells-output", metavar="FILE",
                   help="write the RACE report (or a clean marker) to FILE")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--nodes", type=int, default=2,
                   help="nodes in the determinism-check experiment")
    p.add_argument("--files-per-rank", type=int, default=4)
    p.add_argument("--block", type=int, default=2048,
                   help="fingerprint checkpoint interval (bisection grain)")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "bench",
        help="engine throughput on pinned scenarios (the perf "
        "trajectory behind BENCH_engine.json)",
    )
    p.add_argument("--output", metavar="FILE",
                   help="write the bench JSON (e.g. BENCH_engine.json)")
    p.add_argument("--compare", metavar="FILE",
                   help="compare against a checked-in bench JSON; exit "
                   "nonzero on regression")
    p.add_argument("--tolerance", type=float, default=0.6,
                   help="allowed events/sec drop vs the baseline "
                   "(0.6 = fail below 40%% of baseline)")
    p.add_argument("--repeats", type=int, default=3,
                   help="timing runs per scenario (best-of-N)")
    p.add_argument("--scenarios", nargs="*", metavar="NAME",
                   help="subset of pinned scenarios to run")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("train", help="one training simulation")
    p.add_argument("--system", default="hvac1",
                   help="gpfs | hvac1 | hvac2 | hvac4 | xfs")
    p.add_argument("--model", choices=sorted(ALL_MODELS), default="resnet50")
    p.add_argument("--nodes", type=int, nargs="+", default=[8])
    p.add_argument("--epochs", type=int, default=10)
    _add_scale_args(p)
    p.set_defaults(func=cmd_train)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
