"""Resilience experiment (paper §III-H): epoch time under faults.

Two drivers:

* :func:`resilience_sweep` — the quantitative claim: as the fraction of
  failed cache servers grows, epoch time degrades *gracefully* toward
  (and is bounded by) the all-PFS baseline, and returns to near-warm
  performance after the servers recover and finish probation.
* :func:`fault_matrix` — the qualitative claim: with failover enabled,
  an epoch *completes* (no deadlock, no unbounded stall) under every
  fault type the injector knows — crash, hang, flapping, degraded NVMe,
  flaky link — with liveness decided purely by client-side timeouts.

Both run on the TESTING spec with a tightened RPC deadline so detection
is fast relative to the tiny files, and both are deterministic under a
fixed seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..analysis import format_table
from ..cluster import Allocation, ClusterSpec, TESTING
from ..core import HVACDeployment
from ..faults import FaultSchedule, crash, degrade, flaky_link, flap, hang
from ..simcore import AllOf, Environment, RandomStreams
from ..storage import GPFS

__all__ = [
    "FaultMatrixResult",
    "ResilienceResult",
    "fault_matrix",
    "resilience_sweep",
]

FAULT_SPEC_OVERRIDES = dict(
    rpc_timeout=0.05,
    rpc_max_retries=4,
    rpc_backoff_base=1e-4,
    rpc_backoff_cap=2e-3,
    suspect_after=2,
    probation_period=0.05,
)


def _fault_spec(spec: ClusterSpec | None, **overrides) -> ClusterSpec:
    base = spec if spec is not None else TESTING
    return base.with_hvac(**{**FAULT_SPEC_OVERRIDES, **overrides})


def _build(spec: ClusterSpec, n_nodes: int, seed: int, spans=None, trace=None):
    env = Environment()
    if trace is not None:
        env.attach_trace(trace)
    alloc = Allocation(
        env, spec, n_nodes=n_nodes, rand=RandomStreams(seed).child("cluster")
    )
    pfs = GPFS(env, spec.pfs, n_nodes, spec.network.nic_bandwidth)
    dep = HVACDeployment(alloc, pfs, seed=seed, spans=spans)
    return env, dep, pfs


def _files(n_files: int, file_size: int) -> list[tuple[str, int]]:
    return [(f"/pfs/ds/f{i:04d}", file_size) for i in range(n_files)]


def _epoch(env, dep, n_nodes: int, files) -> float:
    """One epoch: every node reads every file through its HVAC client."""

    def reader(node):
        cli = dep.client(node)
        for path, size in files:
            yield from cli.read_file(path, size, node)

    t0 = env.now
    procs = [env.process(reader(n), name=f"epoch.n{n}") for n in range(n_nodes)]

    def wait():
        yield AllOf(env, procs)

    env.run(env.process(wait(), name="epoch"))
    return env.now - t0


def _pfs_epoch(env, pfs, n_nodes: int, files) -> float:
    """The degradation bound: the same epoch read straight from the PFS."""

    def reader(node):
        for path, size in files:
            yield from pfs.read_file(path, size, node)

    t0 = env.now
    procs = [env.process(reader(n)) for n in range(n_nodes)]

    def wait():
        yield AllOf(env, procs)

    env.run(env.process(wait(), name="pfs-epoch"))
    return env.now - t0


# ---------------------------------------------------------------------------
@dataclass
class ResilienceResult:
    """Fail-fraction sweep: epoch seconds per phase, per fraction."""

    n_nodes: int
    n_files: int
    fail_fractions: list[float]
    warm: list[float] = field(default_factory=list)
    degraded: list[float] = field(default_factory=list)
    recovered: list[float] = field(default_factory=list)
    pfs_fallbacks: list[int] = field(default_factory=list)
    pfs_baseline: float = 0.0

    def rows(self) -> list[list]:
        out = []
        for i, frac in enumerate(self.fail_fractions):
            out.append([
                f"{frac:.0%}",
                self.warm[i],
                self.degraded[i],
                self.degraded[i] / self.warm[i] if self.warm[i] else math.nan,
                self.recovered[i],
                self.pfs_fallbacks[i],
            ])
        return out

    def render(self) -> str:
        table = format_table(
            ["failed servers", "warm (s)", "degraded (s)", "slowdown",
             "recovered (s)", "PFS fallbacks"],
            self.rows(),
            title=(f"Resilience sweep ({self.n_nodes} nodes, "
                   f"{self.n_files} files/epoch/node)"),
            float_fmt="{:.4f}",
        )
        return (f"{table}\n"
                f"all-PFS baseline epoch: {self.pfs_baseline:.4f} s "
                f"(degradation bound)")


def resilience_sweep(
    fail_fractions=(0.0, 0.25, 0.5),
    n_nodes: int = 8,
    n_files: int = 48,
    file_size: int = 25_000,
    spec: ClusterSpec | None = None,
    seed: int = 0,
    spans=None,
    trace=None,
) -> ResilienceResult:
    """Epoch-time degradation vs fraction of crashed cache servers.

    For each fraction: warm the cache, crash ``ceil(frac * n_nodes)``
    nodes via a :class:`FaultSchedule`, measure the degraded epoch,
    recover the nodes, wait out probation, measure the recovered epoch.

    ``spans`` (an optional :class:`~repro.obs.SpanRecorder`) captures
    every deployment's read telemetry into one timeline — the
    determinism test's double-run comparison key.
    """
    spec = _fault_spec(spec)
    result = ResilienceResult(
        n_nodes=n_nodes, n_files=n_files,
        fail_fractions=[float(f) for f in fail_fractions],
    )
    files = _files(n_files, file_size)

    env, _, pfs = _build(spec, n_nodes, seed, trace=trace)
    result.pfs_baseline = _pfs_epoch(env, pfs, n_nodes, files)

    for frac in result.fail_fractions:
        env, dep, _ = _build(spec, n_nodes, seed, spans=spans, trace=trace)
        _epoch(env, dep, n_nodes, files)  # cold
        result.warm.append(_epoch(env, dep, n_nodes, files))

        n_failed = min(n_nodes - 1, math.ceil(frac * n_nodes)) if frac else 0
        victims = list(range(n_failed))
        dep.inject(FaultSchedule([crash(0.0, node) for node in victims]))
        fb0 = dep.metrics.counter("hvac.client_pfs_fallback").value
        result.degraded.append(_epoch(env, dep, n_nodes, files))
        result.pfs_fallbacks.append(
            dep.metrics.counter("hvac.client_pfs_fallback").value - fb0
        )

        for node in victims:
            dep.recover_node(node)
        if victims:
            # Let every client's probation for the victims expire so the
            # next epoch re-probes (and re-adopts) them.
            env.run(until=env.now + 2 * spec.hvac.probation_period)
        result.recovered.append(_epoch(env, dep, n_nodes, files))
        dep.teardown()
    return result


# ---------------------------------------------------------------------------
@dataclass
class FaultMatrixResult:
    """Per-fault-kind epoch completion under a mid-epoch injection."""

    n_nodes: int
    n_files: int
    kinds: list[str] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    timeouts: list[int] = field(default_factory=list)
    fallbacks: list[int] = field(default_factory=list)
    suspicions: list[int] = field(default_factory=list)

    def rows(self) -> list[list]:
        return [
            [k, t, to, fb, su]
            for k, t, to, fb, su in zip(
                self.kinds, self.epoch_seconds, self.timeouts,
                self.fallbacks, self.suspicions,
            )
        ]

    def render(self) -> str:
        return format_table(
            ["fault", "epoch (s)", "RPC timeouts", "PFS fallbacks",
             "suspicions"],
            self.rows(),
            title=(f"Fault matrix ({self.n_nodes} nodes, "
                   f"{self.n_files} files/epoch/node): every epoch completes"),
            float_fmt="{:.4f}",
        )


def _matrix_schedules(n_nodes: int) -> dict[str, FaultSchedule]:
    victim = 1 % n_nodes
    other = 2 % n_nodes
    return {
        "none": FaultSchedule(),
        "crash": FaultSchedule([crash(0.002, victim)]),
        "crash+recover": FaultSchedule([crash(0.002, victim, recover_after=0.05)]),
        "hang": FaultSchedule([hang(0.002, victim)]),
        "flap": FaultSchedule([flap(0.002, victim, period=0.01, cycles=3)]),
        "degrade": FaultSchedule([degrade(0.002, victim, factor=8.0)]),
        "flaky_link": FaultSchedule(
            [flaky_link(0.002, 0, other, drop_prob=0.5, duration=0.1)]
        ),
    }


def fault_matrix(
    n_nodes: int = 4,
    n_files: int = 32,
    file_size: int = 25_000,
    spec: ClusterSpec | None = None,
    seed: int = 0,
    spans=None,
) -> FaultMatrixResult:
    """Inject each fault kind mid-epoch and show the epoch completing.

    The warm epoch runs first; the fault lands 2 ms into the measured
    epoch.  Every row finishing is the §III-H qualitative claim — a dead
    or misbehaving HVAC server degrades performance, never correctness.
    """
    spec = _fault_spec(spec)
    files = _files(n_files, file_size)
    result = FaultMatrixResult(n_nodes=n_nodes, n_files=n_files)
    for kind, schedule in _matrix_schedules(n_nodes).items():
        env, dep, _ = _build(spec, n_nodes, seed, spans=spans)
        _epoch(env, dep, n_nodes, files)  # warm
        to0 = dep.metrics.counter("hvac.client_rpc_timeouts").value
        fb0 = dep.metrics.counter("hvac.client_pfs_fallback").value
        dep.inject(schedule)
        elapsed = _epoch(env, dep, n_nodes, files)
        result.kinds.append(kind)
        result.epoch_seconds.append(elapsed)
        result.timeouts.append(
            dep.metrics.counter("hvac.client_rpc_timeouts").value - to0
        )
        result.fallbacks.append(
            dep.metrics.counter("hvac.client_pfs_fallback").value - fb0
        )
        result.suspicions.append(
            sum(dep.client(n).detector.n_suspicions for n in range(n_nodes))
        )
        dep.teardown()
    return result
