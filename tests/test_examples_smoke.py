"""Smoke tests: every shipped example must run to completion.

Examples are documentation that executes; these tests keep them from
rotting.  Each runs in a subprocess exactly as a user would run it.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        res = run_example("quickstart.py")
        assert res.returncode == 0, res.stderr
        assert "speedup" in res.stdout
        assert "cache purged at job end: True" in res.stdout

    def test_imagenet_scaling_study_quick(self):
        res = run_example("imagenet_scaling_study.py", "--quick")
        assert res.returncode == 0, res.stderr
        assert "Fig 8" in res.stdout
        assert "Improvement over GPFS" in res.stdout

    def test_mdtest_motivation(self):
        res = run_example("mdtest_motivation.py")
        assert res.returncode == 0, res.stderr
        assert "Fig 3" in res.stdout and "Fig 4" in res.stdout

    def test_failover_and_replication(self):
        res = run_example("failover_and_replication.py")
        assert res.returncode == 0, res.stderr
        assert "PFS fallbacks" in res.stdout

    def test_real_file_cache_demo(self):
        res = run_example("real_file_cache_demo.py")
        assert res.returncode == 0, res.stderr
        assert "hit rate" in res.stdout

    def test_profile_and_prefetch(self):
        res = run_example("profile_and_prefetch.py")
        assert res.returncode == 0, res.stderr
        assert "whole-file single-read pattern : True" in res.stdout
        assert "prefetch removed" in res.stdout
