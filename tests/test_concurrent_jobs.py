"""Tests for the paper's two-concurrent-jobs-per-node methodology (§IV-B)."""

import pytest

from repro.cluster import SUMMIT
from repro.dl import IMAGENET21K, RESNET50
from repro.experiments import Scale, run_training

SCALE = Scale(files_per_rank=8, sim_batch_size=4, repetitions=1, procs_per_node=4)


class TestConcurrentJobs:
    def test_validation(self):
        with pytest.raises(ValueError):
            run_training("xfs", RESNET50, IMAGENET21K, 2, SCALE,
                         concurrent_jobs=0)
        with pytest.raises(ValueError):
            run_training("xfs", RESNET50, IMAGENET21K, 2, SCALE,
                         concurrent_jobs=3)  # 4 procs don't split by 3

    def test_two_jobs_complete(self):
        res = run_training("hvac1", RESNET50, IMAGENET21K, 2, SCALE,
                           concurrent_jobs=2)
        assert len(res.epoch_times) == 2
        assert res.cache_hit_rate > 0

    def test_contention_slows_shared_storage(self):
        """Two jobs hammering GPFS run slower per job than one job with
        the same per-job rank count (the PFS is shared)."""
        spec = SUMMIT.with_pfs(metadata_ops_per_sec=500.0, n_metadata_servers=2)
        half = Scale(files_per_rank=8, sim_batch_size=4, repetitions=1,
                     procs_per_node=2)
        solo = run_training("gpfs", RESNET50, IMAGENET21K, 4, half, spec=spec)
        both = run_training("gpfs", RESNET50, IMAGENET21K, 4, SCALE, spec=spec,
                            concurrent_jobs=2)
        assert both.epoch_times[0] > solo.epoch_times[0]

    def test_xfs_isolates_jobs_better_than_gpfs(self):
        """Node-local storage scales with the node; the shared PFS
        doesn't — the contention penalty is smaller on XFS."""
        spec = SUMMIT.with_pfs(metadata_ops_per_sec=500.0, n_metadata_servers=2)
        half = Scale(files_per_rank=8, sim_batch_size=4, repetitions=1,
                     procs_per_node=2)

        def penalty(system):
            solo = run_training(system, RESNET50, IMAGENET21K, 4, half, spec=spec)
            both = run_training(system, RESNET50, IMAGENET21K, 4, SCALE,
                                spec=spec, concurrent_jobs=2)
            return both.epoch_times[1] / solo.epoch_times[1]

        assert penalty("gpfs") > penalty("xfs")

    def test_jobs_have_distinct_datasets(self):
        """Concurrent jobs must not share cache entries (distinct paths)."""
        res = run_training("hvac1", RESNET50, IMAGENET21K, 2, SCALE,
                           concurrent_jobs=2)
        # Hit rate ≈ warm/total epochs, not inflated by cross-job reuse.
        assert res.cache_hit_rate <= 0.55
