"""Shared experiment harness.

Every figure driver goes through :func:`run_training`: build a fresh
environment, build the storage system, size the sampled dataset to the
rank count, run the configured epochs, return the scale-corrected
result.  ``Scale`` centralizes the event-count knobs so tests can run
tiny instances of the *same* experiment code the benchmarks run big.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..analysis import MeanCI, mean_ci
from ..baselines import SYSTEM_SETUPS, StorageSetup, SystemHandle
from ..cluster import ClusterSpec, SUMMIT
from ..dl import (
    DatasetSpec,
    ModelSpec,
    SyntheticDataset,
    TrainingConfig,
    TrainingJob,
    TrainingResult,
)
from ..simcore import Environment

__all__ = ["Scale", "run_training", "repeat_training", "resolve_setup"]


@dataclass(frozen=True)
class Scale:
    """Event-count control for one experiment run.

    ``files_per_rank`` sets the sampled dataset size
    (``n_ranks × files_per_rank`` files); reported times are multiplied
    by the resulting scale factor.  ``repetitions`` matches the paper's
    three-run averaging.
    """

    files_per_rank: int = 16
    sim_batch_size: int = 8
    repetitions: int = 3
    procs_per_node: int = 6
    epochs_simulated: int = 2
    #: epoch-time estimator (see TrainingConfig.epoch_estimator):
    #: "mean-rank" removes straggler sampling noise when extrapolating
    #: saturated systems from small per-rank samples.
    epoch_estimator: str = "barrier"

    def smaller(self) -> "Scale":
        """A unit-test-sized variant."""
        return replace(
            self, files_per_rank=4, sim_batch_size=2, repetitions=1, procs_per_node=2
        )


def resolve_setup(system: str | StorageSetup) -> StorageSetup:
    if isinstance(system, StorageSetup):
        return system
    try:
        return SYSTEM_SETUPS[system]
    except KeyError:
        raise ValueError(
            f"unknown system {system!r}; choose from {sorted(SYSTEM_SETUPS)}"
        ) from None


def run_training(
    system: str | StorageSetup,
    model: ModelSpec,
    dataset_spec: DatasetSpec,
    n_nodes: int,
    scale: Scale,
    spec: ClusterSpec = SUMMIT,
    batch_size: int = 0,
    epochs: int | None = None,
    seed: int = 0,
    concurrent_jobs: int = 1,
    trace=None,
) -> TrainingResult:
    """Training simulation on one storage system.

    ``concurrent_jobs`` reproduces the paper's §IV-B methodology of
    "two concurrently running DL training jobs per node": that many
    independent jobs (own dataset copy and shuffle stream, disjoint
    rank pools splitting the node's GPUs) share one storage system,
    contending for the PFS, the HVAC servers, and the NVMe.  The
    returned result is the first job's (they are statistically
    identical); its ``epoch_times`` include the contention.

    ``trace`` (an :class:`~repro.simcore.EventTrace`) is attached to the
    freshly built environment so ``repro check`` can fingerprint the
    run's event stream.
    """
    if concurrent_jobs < 1:
        raise ValueError("concurrent_jobs must be >= 1")
    if scale.procs_per_node % concurrent_jobs:
        raise ValueError("procs_per_node must divide among concurrent jobs")
    setup = resolve_setup(system)
    procs_per_job = scale.procs_per_node // concurrent_jobs
    n_ranks = n_nodes * procs_per_job
    sample = min(
        dataset_spec.n_train_files, max(n_ranks, n_ranks * scale.files_per_rank)
    )
    env = Environment()
    if trace is not None:
        env.attach_trace(trace)
    # The handle is sized by one job's dataset; jobs use distinct paths
    # (distinct dataset seeds) so they don't share cache entries.
    datasets = []
    for job_idx in range(concurrent_jobs):
        job_spec = dataset_spec
        if job_idx > 0:
            # Each job trains on its own dataset copy (distinct paths,
            # distinct shuffle stream) — no cross-job cache sharing.
            job_spec = replace(
                dataset_spec,
                pfs_dir=f"{dataset_spec.pfs_dir}/job{job_idx}",
            )
        ds, factor = SyntheticDataset.scaled(
            job_spec, sample, seed=seed + 1000 * job_idx
        )
        datasets.append((ds, factor))
    handle: SystemHandle = setup.build(env, spec, n_nodes, datasets[0][0], seed=seed)

    jobs = []
    for job_idx, (ds, factor) in enumerate(datasets):
        config = TrainingConfig(
            model=model,
            dataset=ds,
            n_nodes=n_nodes,
            procs_per_node=procs_per_job,
            batch_size=batch_size,
            epochs=epochs or scale.epochs_simulated,
            scale_factor=factor,
            sim_batch_size=scale.sim_batch_size,
            shuffle_seed=seed + job_idx,
            epoch_estimator=scale.epoch_estimator,
        )
        jobs.append(
            TrainingJob(env, config, handle.backend_for_node, handle.label)
        )

    if concurrent_jobs == 1:
        result = jobs[0].run()
    else:
        procs = [
            env.process(job.run_process(), name=f"job{j}")
            for j, job in enumerate(jobs)
        ]
        from ..simcore import AllOf

        def driver():
            yield AllOf(env, procs)

        env.run(env.process(driver(), name="jobs"))
        result = jobs[0].result
    if handle.deployment is not None:
        result.cache_hit_rate = handle.deployment.hit_rate()
    handle.teardown()
    return result


def repeat_training(
    system: str | StorageSetup,
    model: ModelSpec,
    dataset_spec: DatasetSpec,
    n_nodes: int,
    scale: Scale,
    total_epochs: int,
    spec: ClusterSpec = SUMMIT,
    batch_size: int = 0,
) -> tuple[MeanCI, list[TrainingResult]]:
    """Paper-style repeated runs: mean ± 95% CI of the total training
    time extrapolated to ``total_epochs`` epochs."""
    results = [
        run_training(
            system,
            model,
            dataset_spec,
            n_nodes,
            scale,
            spec=spec,
            batch_size=batch_size,
            seed=rep,
        )
        for rep in range(scale.repetitions)
    ]
    totals = [r.extrapolate_total(total_epochs) for r in results]
    return mean_ci(totals), results
