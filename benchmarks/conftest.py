"""Shared benchmark configuration.

Benchmarks double as the paper's figure generators: each bench runs the
experiment at a configurable scale and *prints the figure's rows* so
``pytest benchmarks/ --benchmark-only -s`` regenerates the evaluation.

Scale knobs (environment variables, all optional):

* ``HVAC_BENCH_SCALE`` — ``small`` (default; CI-friendly), ``paper``
  (closer to the paper's node counts; minutes of wall time).
"""

import os

import pytest

from repro.experiments import Scale

BENCH_SCALE = os.environ.get("HVAC_BENCH_SCALE", "small")


def bench_scale() -> Scale:
    if BENCH_SCALE == "paper":
        return Scale(
            files_per_rank=16,
            sim_batch_size=8,
            repetitions=3,
            procs_per_node=6,
            epoch_estimator="mean-rank",
        )
    return Scale(
        files_per_rank=8, sim_batch_size=4, repetitions=1, procs_per_node=4
    )


def bench_nodes() -> list[int]:
    """Node sweep for DES benches (Fig 8-style)."""
    if BENCH_SCALE == "paper":
        return [1, 8, 32, 128, 512]
    return [2, 8, 32]


def paper_nodes() -> list[int]:
    """The paper's full sweep — used by analytic benches (instant)."""
    return [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]


@pytest.fixture(scope="session")
def scale() -> Scale:
    return bench_scale()
