"""Tests for trace replay and the event-driven XFS stage-in."""

import pytest

from repro.baselines import XFSSetup
from repro.cluster import Allocation, SUMMIT, TESTING
from repro.core import HVACDeployment
from repro.dl import IMAGENET21K, SyntheticDataset
from repro.posix import TracingBackend, replay_trace
from repro.simcore import Environment
from repro.storage import GPFS


def record_trace(n_files=20, think=0.001):
    """Record a loader trace against GPFS, with think time between files."""
    env = Environment()
    pfs = GPFS(env, TESTING.pfs, 2, TESTING.network.nic_bandwidth)
    traced = TracingBackend(env, pfs)

    def loader():
        for i in range(n_files):
            yield from traced.read_file(f"/d/f{i}", 10_000, 0)
            yield env.timeout(think)

    env.run(env.process(loader()))
    return traced.log


class TestReplay:
    def test_replay_reproduces_transaction_count(self):
        log = record_trace()
        env = Environment()
        pfs = GPFS(env, TESTING.pfs, 2, TESTING.network.nic_bandwidth)
        res = replay_trace(env, log, pfs, system_label="GPFS")
        assert res.n_transactions == 20
        assert res.elapsed > 0
        assert res.io_time > 0

    def test_think_time_preserved(self):
        log = record_trace(think=0.01)
        env = Environment()
        pfs = GPFS(env, TESTING.pfs, 2, TESTING.network.nic_bandwidth)
        res = replay_trace(env, log, pfs)
        # 19 gaps of ~10 ms each
        assert res.think_time == pytest.approx(19 * 0.01, rel=0.2)

    def test_think_time_can_be_dropped(self):
        log = record_trace(think=0.01)
        env = Environment()
        pfs = GPFS(env, TESTING.pfs, 2, TESTING.network.nic_bandwidth)
        res = replay_trace(env, log, pfs, preserve_think_time=False)
        assert res.think_time == 0.0

    def test_what_if_hvac_beats_gpfs_on_rereads(self):
        """The intended use: replay one trace against two systems."""
        # A trace with re-reads (two passes over the same files).
        env = Environment()
        pfs = GPFS(env, TESTING.pfs, 2, TESTING.network.nic_bandwidth)
        traced = TracingBackend(env, pfs)

        def loader():
            for _ in range(2):
                for i in range(15):
                    yield from traced.read_file(f"/d/f{i}", 20_000, 0)

        env.run(env.process(loader()))
        log = traced.log

        env_g = Environment()
        gpfs = GPFS(env_g, TESTING.pfs, 2, TESTING.network.nic_bandwidth)
        res_gpfs = replay_trace(env_g, log, gpfs, system_label="GPFS")

        env_h = Environment()
        alloc = Allocation(env_h, TESTING, 2)
        pfs_h = GPFS(env_h, TESTING.pfs, 2, TESTING.network.nic_bandwidth)
        dep = HVACDeployment(alloc, pfs_h)
        res_hvac = replay_trace(env_h, log, dep.client(0), system_label="HVAC")

        assert res_hvac.io_time < res_gpfs.io_time
        assert res_hvac.n_transactions == res_gpfs.n_transactions

    def test_mean_latency(self):
        log = record_trace(n_files=10)
        env = Environment()
        pfs = GPFS(env, TESTING.pfs, 2, TESTING.network.nic_bandwidth)
        res = replay_trace(env, log, pfs)
        assert res.mean_transaction_latency == pytest.approx(
            res.io_time / 10
        )


class TestEventDrivenStaging:
    def test_instant_stage_has_no_runner(self):
        env = Environment()
        ds, _ = SyntheticDataset.scaled(IMAGENET21K, 32)
        h = XFSSetup().build(env, SUMMIT, 2, ds)
        assert h.run_stage is None
        assert h.stage_time > 0  # analytic estimate

    def test_simulated_stage_runs_and_times(self):
        env = Environment()
        ds, _ = SyntheticDataset.scaled(IMAGENET21K, 32)
        h = XFSSetup(instant_stage=False).build(env, SUMMIT, 2, ds)
        assert h.run_stage is not None
        elapsed = h.run_stage()
        assert elapsed > 0
        assert h.stage_time == elapsed
        # Both nodes hold the full dataset's bytes on their NVMe.
        for node_id in (0, 1):
            dev = h.backend_for_node(node_id).device
            assert dev.metrics is not None

    def test_simulated_stage_close_to_analytic_estimate(self):
        """The analytic bound and the DES agree within 2× at small scale
        (the DES includes metadata and per-request latencies the bound
        ignores)."""
        env = Environment()
        ds, _ = SyntheticDataset.scaled(IMAGENET21K, 64)
        h_est = XFSSetup().build(env, SUMMIT, 2, ds)
        env2 = Environment()
        h_sim = XFSSetup(instant_stage=False).build(env2, SUMMIT, 2, ds)
        simulated = h_sim.run_stage()
        assert simulated >= h_est.stage_time * 0.5
