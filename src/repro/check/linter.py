"""File walking, scope classification, and inline waivers for simlint.

Usage::

    from repro.check import lint_paths
    violations = lint_paths(["src"])

A violation can be silenced at the offending line (or the line directly
above it) with an explicit, reasoned waiver::

    gen = np.random.default_rng(s)  # simlint: waive SIM002 -- sanctioned site

``# simlint: waive`` with no codes waives every rule on that line; a
comma-separated code list waives only those.  Waivers are deliberately
loud in the diff — the acceptance bar is "fixed or explicitly waived",
never silently ignored.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterable, Iterator

from .rules import RULES, Violation, collect_violations

__all__ = ["lint_source", "lint_file", "lint_paths", "scope_of"]

_WAIVE_RE = re.compile(r"#\s*simlint:\s*waive\b([^#\n]*)")

#: package path fragments whose code legitimately touches real clocks,
#: threads, and files — SIM001/SIM007 do not apply there
_RUNTIME_PARTS = ("runtime", "posix")

#: directories never descended into
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "build", "dist"}


def scope_of(path: str) -> str:
    """``"runtime"`` for real-clock/thread packages, else ``"sim"``."""
    parts = os.path.normpath(path).split(os.sep)
    return "runtime" if any(p in _RUNTIME_PARTS for p in parts) else "sim"


def _waived_codes(line: str) -> set[str] | None:
    """Codes waived by ``line``'s comment: a set, ``{"*"}`` for all,
    or ``None`` when there is no waiver."""
    m = _WAIVE_RE.search(line)
    if m is None:
        return None
    codes = set(re.findall(r"SIM\d{3}", m.group(1)))
    return codes or {"*"}


def _apply_waivers(
    violations: list[Violation], lines: list[str]
) -> list[Violation]:
    kept = []
    for v in violations:
        waived = False
        # the flagged line itself, then a comment-only line above it
        for lineno in (v.line, v.line - 1):
            if not 1 <= lineno <= len(lines):
                continue
            text = lines[lineno - 1]
            if lineno != v.line and not text.lstrip().startswith("#"):
                continue
            codes = _waived_codes(text)
            if codes is not None and ("*" in codes or v.rule in codes):
                waived = True
                break
        if not waived:
            kept.append(v)
    return kept


def lint_source(
    source: str,
    path: str = "<string>",
    scope: str | None = None,
    rules: Iterable[str] | None = None,
) -> list[Violation]:
    """Lint one module's source text (the fixture-test entry point)."""
    tree = ast.parse(source, filename=path)
    violations = collect_violations(
        tree, path, scope=scope or scope_of(path), rules=rules
    )
    violations = _apply_waivers(violations, source.splitlines())
    violations.sort(key=lambda v: (v.line, v.col, v.rule))
    return violations


def lint_file(path: str, rules: Iterable[str] | None = None) -> list[Violation]:
    with open(path, encoding="utf-8") as fh:
        return lint_source(fh.read(), path=path, rules=rules)


def _iter_python_files(root: str) -> Iterator[str]:
    if os.path.isfile(root):
        yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def lint_paths(
    paths: Iterable[str], rules: Iterable[str] | None = None
) -> list[Violation]:
    """Lint every ``.py`` file under the given files/directories."""
    unknown = set(rules or ()) - set(RULES)
    if unknown:
        raise ValueError(f"unknown rule codes: {sorted(unknown)}")
    violations: list[Violation] = []
    for root in paths:
        for path in _iter_python_files(root):
            violations.extend(lint_file(path, rules=rules))
    return violations
