"""Fig 3: MDTest 32 KB open-read-close transactions/s, GPFS vs XFS-on-NVMe.

Regenerates the paper's small-file motivation figure: GPFS saturates at
the metadata ceiling while XFS-on-NVMe scales linearly with nodes.
"""

import pytest

from repro.experiments import SMALL_FILE, mdtest_scaling, mdtest_scaling_analytic

from conftest import bench_nodes, paper_nodes


def _run():
    des = mdtest_scaling(
        SMALL_FILE, bench_nodes(), ranks_per_node=6, files_per_rank=8
    )
    analytic = mdtest_scaling_analytic(SMALL_FILE, paper_nodes())
    return des, analytic


@pytest.mark.benchmark(group="fig03")
def test_fig03_mdtest_small_files(benchmark, capsys):
    des, analytic = benchmark.pedantic(_run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(des.render())
        print()
        print(analytic.render() + "   [analytic, full sweep]")
        print()
        from repro.analysis import ascii_chart

        print(ascii_chart(
            analytic.node_counts, analytic.tx_per_sec,
            title="Fig 3 shape: the metadata plateau vs linear NVMe",
            log_x=True, log_y=True, x_label="nodes", y_label="tx/s",
        ))

    # Paper claim: the XFS/GPFS gap widens with node count.
    ratios = des.ratio()
    assert ratios[-1] > ratios[0] > 1.0
    # Full sweep: GPFS flat by 1024 nodes, XFS still doubling.
    g = analytic.tx_per_sec["GPFS"]
    x = analytic.tx_per_sec["XFS-on-NVMe"]
    assert g[-1] == pytest.approx(g[-2], rel=0.05)
    assert x[-1] == pytest.approx(2 * x[-2], rel=0.05)
