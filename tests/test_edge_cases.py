"""Edge-case coverage across the stack: resource cleanup on interrupt,
RPC endpoint resilience, runtime concurrency, preset sanity."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import FRONTIER, SUMMIT, Fabric, NetworkSpec
from repro.dl import IMAGENET21K, SyntheticDataset
from repro.rpc import RPCEndpoint, RPCError
from repro.runtime import RuntimeDeployment, RuntimeServer
from repro.simcore import Environment, Interrupt, Resource, Store


class TestResourceCleanupOnInterrupt:
    def test_interrupted_holder_releases_via_context_manager(self):
        env = Environment()
        res = Resource(env, capacity=1)
        got = []

        def holder():
            try:
                with res.request() as req:
                    yield req
                    yield env.timeout(100)
            except Interrupt:
                pass  # the with-block must have released on unwind

        def waiter():
            yield env.timeout(1)
            with res.request() as req:
                yield req
                got.append(env.now)

        p = env.process(holder())
        env.process(waiter())

        def interrupter():
            yield env.timeout(2)
            p.interrupt()

        env.process(interrupter())
        env.run()
        assert got == [2.0]
        assert res.count == 0

    def test_interrupted_waiter_leaves_queue(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder():
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def impatient():
            try:
                with res.request() as req:
                    yield req
            except Interrupt:
                pass

        env.process(holder())
        p = env.process(impatient())

        def interrupter():
            yield env.timeout(1)
            p.interrupt()

        env.process(interrupter())
        env.run(until=5)
        assert res.queued == 0

    def test_store_get_interrupt_no_phantom_consumer(self):
        env = Environment()
        store = Store(env)
        got = []

        def quitter():
            try:
                yield store.get()
            except Interrupt:
                pass

        def consumer():
            yield env.timeout(2)
            item = yield store.get()
            got.append(item)

        p = env.process(quitter())
        env.process(consumer())

        def interrupter():
            yield env.timeout(1)
            p.interrupt()

        def producer():
            yield env.timeout(3)
            yield store.put("x")

        env.process(interrupter())
        env.process(producer())
        env.run()
        # The interrupted getter must not swallow the item.
        assert got == ["x"]


class TestRPCResilience:
    def make(self):
        env = Environment()
        fab = Fabric(env, NetworkSpec(nic_bandwidth=1e6, link_latency=1e-4,
                                      per_message_overhead=0.0), 2)
        return env, fab

    def test_timeout_leaves_endpoint_usable(self):
        env, fab = self.make()
        srv = RPCEndpoint(env, fab, 1)
        cli = RPCEndpoint(env, fab, 0)

        def slow(payload, src):
            yield env.timeout(100)
            return "late"

        def fast(payload, src):
            yield env.timeout(0.001)
            return "quick"

        srv.register("slow", slow)
        srv.register("fast", fast)
        results = []

        def caller():
            try:
                yield from cli.call(srv, "slow", timeout=0.1)
            except RPCError:
                results.append("timed-out")
            value = yield from cli.call(srv, "fast")
            results.append(value)

        env.process(caller())
        env.run(until=10)
        assert results == ["timed-out", "quick"]

    def test_restart_allows_new_calls(self):
        env, fab = self.make()
        srv = RPCEndpoint(env, fab, 1)
        cli = RPCEndpoint(env, fab, 0)

        def echo(payload, src):
            yield env.timeout(0)
            return payload

        srv.register("echo", echo)
        results = []

        def caller():
            srv.shutdown()
            try:
                yield from cli.call(srv, "echo", payload=1)
            except RPCError:
                results.append("down")
            srv.restart()
            value = yield from cli.call(srv, "echo", payload=2)
            results.append(value)

        env.process(caller())
        env.run()
        assert results == ["down", 2]


class TestRuntimeConcurrency:
    def test_many_threads_one_deployment(self, tmp_path):
        pfs = tmp_path / "pfs"
        pfs.mkdir()
        for i in range(30):
            (pfs / f"f{i}.bin").write_bytes(bytes([i]) * 512)

        with RuntimeDeployment(str(pfs), n_servers=3) as dep:
            errors = []

            def worker(tid):
                try:
                    for i in range(30):
                        data = dep.client.read_file(str(pfs / f"f{i}.bin"))
                        assert data == bytes([i]) * 512
                except Exception as err:  # noqa: BLE001
                    errors.append(err)

            threads = [threading.Thread(target=worker, args=(t,)) for t in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert dep.total_hits + dep.total_misses == 180

    def test_random_eviction_mode(self, tmp_path):
        pfs = tmp_path / "pfs"
        pfs.mkdir()
        for i in range(8):
            (pfs / f"f{i}.bin").write_bytes(b"x" * 1000)
        srv = RuntimeServer(0, str(pfs), str(tmp_path / "c"),
                            capacity_bytes=3000, eviction="random")
        try:
            for i in range(8):
                srv.submit(f"f{i}.bin").result()
            assert srv.used_bytes <= 3000
            assert srv.stats.evictions == 5
        finally:
            srv.shutdown()


class TestPresets:
    def test_frontier_envelope(self):
        assert FRONTIER.total_nodes == 9408
        assert FRONTIER.node.nvme.read_bandwidth > SUMMIT.node.nvme.read_bandwidth
        assert FRONTIER.network.nic_bandwidth > SUMMIT.network.nic_bandwidth
        assert (FRONTIER.pfs.aggregate_bandwidth
                > SUMMIT.pfs.aggregate_bandwidth)

    def test_with_network_override(self):
        s = SUMMIT.with_network(rack_size=18)
        assert s.network.rack_size == 18
        assert SUMMIT.network.rack_size == 0


class TestDatasetProperties:
    @given(n=st.integers(min_value=1, max_value=2000))
    @settings(max_examples=30, deadline=None)
    def test_paths_unique(self, n):
        ds = SyntheticDataset(IMAGENET21K.scaled_to(n))
        paths = ds.paths()
        assert len(set(paths)) == n

    @given(
        n=st.integers(min_value=2, max_value=500),
        e1=st.integers(min_value=0, max_value=10),
        e2=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_orders_permutation_every_epoch(self, n, e1, e2):
        ds = SyntheticDataset(IMAGENET21K.scaled_to(n))
        o1, o2 = ds.epoch_order(e1), ds.epoch_order(e2)
        assert sorted(o1.tolist()) == list(range(n))
        if e1 == e2:
            assert (o1 == o2).all()
