"""RACE201 fixture (clean): the same fan-out, but the shared counter
is a declared cell and every worker notes the write, so the runtime
sanitizer orders the mutations."""

RACE_CELLS = (
    ("pool.total", ("total",), "shared fan-in counter"),
)


class Pool:
    def __init__(self, env, jobs):
        self.env = env
        self.jobs = jobs
        self.total = 0

    def start(self):
        for job in self.jobs:
            self.env.process(self._worker(job))

    def _worker(self, job):
        yield self.env.timeout(1.0)
        self.env.note_access("pool.total", "w")
        self.total += job
