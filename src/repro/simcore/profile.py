"""Deterministic sim-time profiler: event/handler attribution per component.

The hot-set ranking behind ``repro check --perf`` is *measured*, not
guessed: attach a :class:`SimProfiler` to an
:class:`~repro.simcore.Environment` and every fired event is attributed
to a **component** — its :func:`~repro.simcore.trace.event_label` with
digit runs collapsed (``Process:hvac3.svc`` → ``Process:hvac#.svc``) so
per-entity instances aggregate.

Deterministic by construction: the profiler counts kernel quantities
only (events fired, callbacks run, child events scheduled) and reads
only simulated time — no wall clock, no RNG — so a same-seed double run
produces bit-identical attribution.  It rides the same engine observer
hook as the trace and the race sanitizer and is pay-for-what-you-use:
detached, it costs one flag check per event.
"""

from __future__ import annotations

import re
from typing import Optional

__all__ = ["ComponentProfile", "SimProfiler"]

_DIGIT_RUNS = re.compile(r"\d+")


def _rank(c: "ComponentProfile") -> tuple[int, str]:
    """Sort key: most events first, ties broken by component name."""
    return (-c.events, c.component)


class ComponentProfile:
    """Aggregated kernel counters for one digit-normalized event label."""

    __slots__ = (
        "component", "events", "callbacks", "scheduled",
        "first_time", "last_time",
    )

    def __init__(self, component: str):
        self.component = component
        self.events = 0
        self.callbacks = 0
        self.scheduled = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None

    def as_dict(self) -> dict:
        return {
            "component": self.component,
            "events": self.events,
            "callbacks": self.callbacks,
            "scheduled": self.scheduled,
            "first_time": self.first_time,
            "last_time": self.last_time,
        }


class SimProfiler:
    """Attributes per-component event counts and handler costs.

    Engine-facing protocol (mirrors the race sanitizer's):

    * :meth:`begin_event` — called as an event is popped;
    * :meth:`note_schedule` — called for every event pushed while the
      current event's callbacks run (its *children*);
    * :meth:`end_event` — called after the callbacks ran, with how many
      there were.
    """

    __slots__ = (
        "components", "total_events", "total_callbacks", "total_scheduled",
        "_labels", "_current",
    )

    def __init__(self):
        self.components: dict[str, ComponentProfile] = {}
        self.total_events = 0
        self.total_callbacks = 0
        self.total_scheduled = 0
        # Raw-label memo: normalization runs once per distinct label.
        self._labels: dict[str, ComponentProfile] = {}
        self._current: Optional[ComponentProfile] = None

    # -- engine hook ---------------------------------------------------
    def begin_event(
        self, time: float, priority: int, seq: int, label: str
    ) -> None:
        comp = self._labels.get(label)
        if comp is None:
            key = _DIGIT_RUNS.sub("#", label)
            comp = self.components.get(key)
            if comp is None:
                comp = self.components[key] = ComponentProfile(key)
            self._labels[label] = comp
        comp.events += 1
        if comp.first_time is None:
            comp.first_time = time
        comp.last_time = time
        self.total_events += 1
        self._current = comp

    def note_schedule(self, seq: int, delay: float) -> None:
        self.total_scheduled += 1
        comp = self._current
        if comp is not None:
            comp.scheduled += 1

    def end_event(self, n_callbacks: int) -> None:
        comp = self._current
        if comp is not None:
            comp.callbacks += n_callbacks
            self.total_callbacks += n_callbacks
            self._current = None

    # -- reporting -----------------------------------------------------
    def top(self, n: int = 10) -> list[ComponentProfile]:
        """Components ranked by events fired (ties broken by name)."""
        ranked = sorted(self.components.values(), key=_rank)
        return ranked[:n]

    def as_dict(self) -> dict:
        """Stable, JSON-able attribution — the determinism-test key."""
        return {
            "total_events": self.total_events,
            "total_callbacks": self.total_callbacks,
            "total_scheduled": self.total_scheduled,
            "components": [
                c.as_dict()
                for c in sorted(self.components.values(), key=_rank)
            ],
        }

    def describe(self, n: int = 15) -> str:
        lines = [
            f"{'component':<36} {'events':>8} {'callbacks':>10} "
            f"{'scheduled':>10}",
        ]
        for c in self.top(n):
            lines.append(
                f"{c.component:<36} {c.events:>8} {c.callbacks:>10} "
                f"{c.scheduled:>10}"
            )
        lines.append(
            f"{'TOTAL':<36} {self.total_events:>8} "
            f"{self.total_callbacks:>10} {self.total_scheduled:>10}"
        )
        return "\n".join(lines)
