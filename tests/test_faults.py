"""Tests for the fault-injection subsystem and the failure detector:
schedules, the injector, gray failures, and oracle-free liveness."""

import inspect

import pytest

import repro.core.client as client_mod
from repro.cluster import Allocation, TESTING
from repro.core import HVACDeployment
from repro.experiments import fault_matrix, resilience_sweep
from repro.faults import (
    FailureDetector,
    FaultEvent,
    FaultSchedule,
    Injector,
    crash,
    degrade,
    flaky_link,
    flap,
    hang,
    partition,
)
from repro.simcore import AllOf, Environment
from repro.storage import GPFS

FAST_DETECT = dict(
    rpc_timeout=0.02,
    rpc_backoff_base=1e-4,
    rpc_backoff_cap=1e-3,
    suspect_after=2,
    probation_period=0.05,
)


def build(n_nodes=4, **hvac):
    env = Environment()
    spec = TESTING.with_hvac(**{**FAST_DETECT, **hvac})
    alloc = Allocation(env, spec, n_nodes=n_nodes)
    pfs = GPFS(env, spec.pfs, n_nodes, spec.network.nic_bandwidth)
    dep = HVACDeployment(alloc, pfs)
    return env, dep, pfs


FILES = [(f"/d/f{i}", 25_000) for i in range(24)]


def epoch_proc(env, dep, node_ids, files=FILES):
    def reader(node):
        cli = dep.client(node)
        for path, size in files:
            yield from cli.read_file(path, size, node)

    procs = [env.process(reader(n)) for n in node_ids]

    def wait():
        yield AllOf(env, procs)

    return env.process(wait())


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "meteor", node=0)

    def test_node_faults_require_node(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "crash")

    def test_flaky_link_requires_link(self):
        with pytest.raises(ValueError):
            FaultEvent(0.0, "flaky_link", node=0)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(-1.0, "crash", node=0)
        with pytest.raises(ValueError):
            FaultEvent(0.0, "degrade", node=0, factor=0.5)
        with pytest.raises(ValueError):
            FaultEvent(0.0, "flaky_link", link=(0, 1), drop_prob=1.5)

    def test_describe_mentions_target(self):
        assert "node 3" in crash(0.5, 3).describe()
        assert "link" in flaky_link(0.5, 0, 1).describe()


class TestFaultSchedule:
    def test_events_sorted_by_time(self):
        sched = FaultSchedule([crash(0.5, 1), hang(0.1, 2), flap(0.3, 0)])
        assert [e.time for e in sched] == [0.1, 0.3, 0.5]

    def test_shift_and_concat(self):
        a = FaultSchedule([crash(0.1, 0)])
        b = FaultSchedule([hang(0.0, 1)])
        merged = a + b.shifted(0.2)
        assert [e.time for e in merged] == [0.1, 0.2]
        assert len(merged) == 2

    def test_random_is_deterministic(self):
        kw = dict(crash_rate=5.0, hang_rate=3.0, degrade_rate=2.0,
                  flaky_rate=2.0, horizon=2.0)
        one = FaultSchedule.random(8, seed=7, **kw)
        two = FaultSchedule.random(8, seed=7, **kw)
        assert one.events == two.events
        assert len(one) > 0
        other = FaultSchedule.random(8, seed=8, **kw)
        assert one.events != other.events

    def test_random_zero_rates_empty(self):
        assert len(FaultSchedule.random(4, seed=0)) == 0

    def test_random_flaky_links_never_self(self):
        sched = FaultSchedule.random(2, seed=3, flaky_rate=20.0, horizon=1.0)
        for event in sched:
            assert event.link[0] != event.link[1]


class TestFailureDetector:
    def test_strikes_below_threshold_stay_usable(self):
        env = Environment()
        det = FailureDetector(env, 4, suspect_after=3, probation=1.0)
        det.record_failure(1)
        det.record_failure(1)
        assert det.usable(1)
        assert det.suspects() == []

    def test_blacklist_and_probation_expiry(self):
        env = Environment()
        det = FailureDetector(env, 4, suspect_after=2, probation=1.0)
        det.record_failure(2)
        det.record_failure(2)
        assert not det.usable(2)
        assert det.suspects() == [2]
        env.run(env.timeout(1.5))  # advance the clock past probation
        assert det.usable(2)  # the next request is the re-probe

    def test_success_pardons(self):
        env = Environment()
        det = FailureDetector(env, 4, suspect_after=2, probation=1.0)
        det.record_failure(0)
        det.record_failure(0)
        env.run(env.timeout(2.0))
        det.record_success(0)
        assert det.usable(0)
        assert det.strikes(0) == 0
        assert det.n_reprobes == 1

    def test_repeat_offender_probation_grows_capped(self):
        env = Environment()
        det = FailureDetector(
            env, 2, suspect_after=1, probation=1.0,
            probation_growth=2.0, probation_cap_factor=4.0,
        )
        for _ in range(8):
            det.record_failure(0)
        # capped at probation * cap_factor, not 2**7
        assert det._until[0] <= env.now + 4.0 + 1e-9

    def test_transitions_suspect_expiry_reprobe_ok(self):
        env = Environment()
        det = FailureDetector(env, 4, suspect_after=2, probation=1.0)
        det.record_failure(2)
        assert det.transitions == []  # one strike is not suspicion
        det.record_failure(2)
        assert det.transitions == [(0.0, "suspect", 2)]
        env.run(env.timeout(1.5))
        assert det.usable(2)  # lazy expiry logs the probation end
        det.record_success(2)  # ...and the re-probe lands
        assert [kind for _t, kind, _sid in det.transitions] == [
            "suspect", "probation_expired", "reprobe_ok"
        ]
        # the expiry is stamped with the probation deadline, not the
        # (later) instant the next request happened to look
        assert det.transitions[1] == (1.0, "probation_expired", 2)

    def test_transitions_failed_reprobe(self):
        env = Environment()
        det = FailureDetector(env, 4, suspect_after=2, probation=1.0)
        det.record_failure(1)
        det.record_failure(1)
        env.run(env.timeout(1.2))
        det.record_failure(1)  # the re-probe itself fails
        kinds = [kind for _t, kind, _sid in det.transitions]
        assert kinds == ["suspect", "probation_expired", "reprobe_fail"]
        assert not det.usable(1)  # back on probation
        # a strike while *still on probation* is not a re-probe outcome
        det.record_failure(1)
        assert [k for _t, k, _sid in det.transitions] == kinds

    def test_transitions_time_ordered_per_server(self):
        env = Environment()
        det = FailureDetector(env, 4, suspect_after=1, probation=0.5)
        det.record_failure(0)
        env.run(env.timeout(0.7))
        det.record_success(0)
        det.record_failure(3)
        for sid in (0, 3):
            times = [t for t, _k, s in det.transitions if s == sid]
            assert times == sorted(times)


class TestInjector:
    def test_crash_applies_at_scheduled_time(self):
        env, dep, _ = build()
        inj = Injector(dep, FaultSchedule([crash(0.01, 2)]))
        inj.start()
        env.run(env.timeout(0.005))
        assert all(s.alive for s in dep.servers_on_node(2))
        env.run(env.timeout(0.01))
        assert all(not s.alive for s in dep.servers_on_node(2))
        assert inj.log and inj.log[0][0] == pytest.approx(0.01)

    def test_crash_recover_heals(self):
        env, dep, _ = build()
        dep.inject(FaultSchedule([crash(0.0, 1, recover_after=0.02)]))
        env.run(env.timeout(0.01))
        assert not dep.servers_on_node(1)[0].alive
        env.run(env.timeout(0.02))
        assert dep.servers_on_node(1)[0].alive

    def test_flap_cycles(self):
        env, dep, _ = build()
        inj = dep.inject(FaultSchedule([flap(0.0, 3, period=0.01, cycles=2)]))
        env.run(env.timeout(0.1))
        downs = [w for _, w in inj.log if w.startswith("flap-down")]
        ups = [w for _, w in inj.log if w.startswith("flap-up")]
        assert len(downs) == 2 and len(ups) == 2
        assert dep.servers_on_node(3)[0].alive

    def test_degrade_throttles_nvme_and_restores(self):
        env, dep, _ = build()
        device = dep._fs_by_node[0].device
        dep.inject(FaultSchedule([degrade(0.0, 0, factor=8.0, duration=0.05)]))
        env.run(env.timeout(0.01))
        assert device.slow_factor == 8.0
        env.run(env.timeout(0.1))
        assert device.slow_factor == 1.0

    def test_hang_and_unhang(self):
        env, dep, _ = build()
        dep.inject(FaultSchedule([hang(0.0, 1, duration=0.02)]))
        env.run(env.timeout(0.01))
        assert dep.servers_on_node(1)[0].hung
        assert dep.servers_on_node(1)[0].alive  # hung is not dead
        env.run(env.timeout(0.05))
        assert not dep.servers_on_node(1)[0].hung

    def test_flaky_link_sets_and_clears_fabric_fault(self):
        env, dep, _ = build()
        fabric = dep.allocation.fabric
        dep.inject(FaultSchedule(
            [flaky_link(0.0, 0, 1, drop_prob=1.0, duration=0.02)]
        ))
        env.run(env.timeout(0.01))
        assert fabric._link_state(0, 1)[0] == 1.0
        assert fabric._link_state(1, 0)[0] == 1.0
        env.run(env.timeout(0.05))
        assert fabric._link_state(0, 1)[0] == 0.0

    def test_partition_isolates_node(self):
        env, dep, _ = build()
        fabric = dep.allocation.fabric
        dep.inject(FaultSchedule([partition(0.0, 2, duration=0.02)]))
        env.run(env.timeout(0.01))
        assert fabric._link_state(2, 0)[0] == 1.0
        assert fabric._link_state(1, 2)[0] == 1.0
        env.run(env.timeout(0.05))
        assert fabric._link_state(2, 0)[0] == 0.0

    def test_injector_cannot_start_twice(self):
        env, dep, _ = build()
        inj = Injector(dep, FaultSchedule())
        inj.start()
        with pytest.raises(RuntimeError):
            inj.start()


class TestOracleFreeLiveness:
    def test_client_never_reads_server_alive(self):
        """The §III-H acceptance criterion: liveness decisions come only
        from observed timeouts/errors, never from server state."""
        source = inspect.getsource(client_mod)
        assert ".alive" not in source
        assert "_failed" not in source

    def test_hung_server_blacklisted_then_epoch_proceeds(self):
        env, dep, _ = build()
        env.run(epoch_proc(env, dep, [0]))  # warm
        dep.hang_node(1)
        env.run(epoch_proc(env, dep, [0]))
        cli = dep.client(0)
        hung_sids = [s.server_id for s in dep.servers_on_node(1)]
        # The hung node was suspected via timeouts alone...
        assert cli.detector.n_suspicions >= 1
        assert dep.metrics.counter("hvac.client_rpc_timeouts").value >= 2
        # ...and at most suspect_after + retry probes were paid.
        assert any(cli.detector.strikes(sid) >= 2 for sid in hung_sids)

    def test_reprobe_after_unhang_restores_service(self):
        env, dep, _ = build()
        env.run(epoch_proc(env, dep, [0]))
        dep.hang_node(1)
        env.run(epoch_proc(env, dep, [0]))  # strikes + blacklist
        dep.unhang_node(1)
        env.run(env.timeout(0.5))  # even grown probation expires
        before = dep.metrics.counter("hvac.client_pfs_fallback").value
        env.run(epoch_proc(env, dep, [0]))
        after = dep.metrics.counter("hvac.client_pfs_fallback").value
        assert after == before  # re-probed server serves its files again
        cli = dep.client(0)
        assert cli.detector.suspects() == []

    def test_failed_server_dedup_waiters_do_not_hang(self):
        """fail() must flush in-flight dedup events: a waiter parked on a
        dead fetch would otherwise stall forever."""
        env, dep, _ = build(n_nodes=2)
        victim = dep.servers[dep.client(0).replica_order("/d/dedup")[0]]

        def reader(node):
            cli = dep.client(node)
            yield from cli.read_file("/d/dedup", 200_000, node)

        # Two clients race the same cold file through one server, which
        # dies while the first fetch is in flight.
        p0 = env.process(reader(0))
        p1 = env.process(reader(1))

        def killer():
            # Wait until the fetch is actually in flight, then kill.
            while not victim._inflight:
                yield env.timeout(1e-5)
            victim.fail()

        env.process(killer())

        def wait():
            yield AllOf(env, [p0, p1])

        env.run(env.process(wait()))  # must terminate (PFS fallback)
        assert victim._inflight == {}

    def test_recover_clears_inflight(self):
        env, dep, _ = build()
        server = dep.servers[0]
        server._inflight["/stale"] = env.event()
        server.fail()
        server.recover()
        assert server._inflight == {}


class TestResilienceExperiments:
    def test_fault_matrix_every_epoch_completes(self):
        matrix = fault_matrix(n_nodes=4, n_files=12)
        assert matrix.kinds == [
            "none", "crash", "crash+recover", "hang", "flap", "degrade",
            "flaky_link",
        ]
        assert all(t > 0 for t in matrix.epoch_seconds)
        none = matrix.epoch_seconds[matrix.kinds.index("none")]
        # Faulty epochs cost more than the healthy one, boundedly.
        assert max(matrix.epoch_seconds) < 1000 * none
        # Hangs are detected by timeouts, crashes by fast errors.
        assert matrix.timeouts[matrix.kinds.index("hang")] >= 1
        assert matrix.fallbacks[matrix.kinds.index("crash")] >= 1

    def test_resilience_sweep_graceful_and_deterministic(self):
        kw = dict(fail_fractions=(0.0, 0.5), n_nodes=4, n_files=12, seed=3)
        one = resilience_sweep(**kw)
        # Degradation is graceful: slower than warm, below the PFS bound.
        assert one.degraded[1] > one.warm[1]
        assert one.degraded[1] < one.pfs_baseline
        assert one.pfs_fallbacks[1] > 0
        # Recovery after probation returns toward warm.
        assert one.recovered[1] < one.degraded[1] * 1.01
        # Bit-for-bit determinism under a fixed seed.
        two = resilience_sweep(**kw)
        assert one.warm == two.warm
        assert one.degraded == two.degraded
        assert one.recovered == two.recovered
        assert one.pfs_fallbacks == two.pfs_fallbacks


class TestScheduleDrivenEpochs:
    @pytest.mark.parametrize("schedule", [
        FaultSchedule([crash(0.001, 1)]),
        FaultSchedule([crash(0.001, 1, recover_after=0.01)]),
        FaultSchedule([hang(0.001, 1)]),
        FaultSchedule([flap(0.001, 1, period=0.005, cycles=3)]),
        FaultSchedule([degrade(0.001, 1, factor=16.0)]),
        FaultSchedule([flaky_link(0.001, 0, 1, drop_prob=0.7, duration=0.05)]),
        FaultSchedule([partition(0.001, 1, duration=0.05)]),
    ], ids=["crash", "crash+recover", "hang", "flap", "degrade",
            "flaky_link", "partition"])
    def test_epoch_completes_under_every_fault_type(self, schedule):
        env, dep, _ = build()
        env.run(epoch_proc(env, dep, [0, 1, 2, 3]))  # warm
        dep.inject(schedule)
        env.run(epoch_proc(env, dep, [0, 1, 2, 3]))  # must terminate

    def test_random_schedule_epoch_deterministic(self):
        def run_once():
            env, dep, _ = build(n_nodes=4)
            sched = FaultSchedule.random(
                4, seed=11, crash_rate=20.0, hang_rate=10.0,
                flaky_rate=10.0, horizon=0.5, mean_outage=0.02,
            )
            dep.inject(sched)
            env.run(epoch_proc(env, dep, [0, 1, 2, 3]))
            return env.now

        assert run_once() == run_once()
