"""Node-local cache management and eviction (paper §III-G).

Each HVAC server instance owns a :class:`CacheManager` over (a slice
of) its node's NVMe.  The paper's prototype evicts *randomly* when the
dataset outgrows the aggregate node-local capacity and notes that "various
cache-eviction and replacement policies can be considered" — we provide
``random`` (paper default), ``lru``, ``fifo``, and ``minio`` (CoorDL's
no-replacement policy: once full, new items are simply not cached, so the
cached subset is stable across epochs).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generator, Optional

import numpy as np

from ..simcore import Environment, MetricRegistry
from ..storage.localfs import LocalFS

__all__ = ["CacheManager", "EvictionPolicy", "make_policy"]


class EvictionPolicy:
    """Victim selection strategy over the cached-file index.

    The whole hierarchy is slotted (PERF101): ``on_access`` runs on
    every cache hit, so instances live on the per-read path."""

    __slots__ = ()

    name = "abstract"

    def on_insert(self, path: str) -> None:
        raise NotImplementedError

    def on_access(self, path: str) -> None:
        raise NotImplementedError

    def on_delete(self, path: str) -> None:
        raise NotImplementedError

    def victim(self) -> Optional[str]:
        """Path to evict next, or None to refuse insertion (MinIO-style)."""
        raise NotImplementedError


class RandomEviction(EvictionPolicy):
    """The HVAC prototype's policy: evict a uniformly random resident file."""

    __slots__ = ("_rng", "_paths", "_index")

    name = "random"

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._paths: list[str] = []
        self._index: dict[str, int] = {}

    def on_insert(self, path: str) -> None:
        self._index[path] = len(self._paths)
        self._paths.append(path)

    def on_access(self, path: str) -> None:
        pass

    def on_delete(self, path: str) -> None:
        # Swap-remove keeps victim() O(1).
        idx = self._index.pop(path)
        last = self._paths.pop()
        if last != path:
            self._paths[idx] = last
            self._index[last] = idx

    def victim(self) -> Optional[str]:
        if not self._paths:
            return None
        return self._paths[int(self._rng.integers(len(self._paths)))]


class LRUEviction(EvictionPolicy):
    __slots__ = ("_order",)

    name = "lru"

    def __init__(self):
        self._order: OrderedDict[str, None] = OrderedDict()

    def on_insert(self, path: str) -> None:
        self._order[path] = None

    def on_access(self, path: str) -> None:
        self._order.move_to_end(path)

    def on_delete(self, path: str) -> None:
        self._order.pop(path, None)

    def victim(self) -> Optional[str]:
        return next(iter(self._order), None)


class FIFOEviction(EvictionPolicy):
    __slots__ = ("_order",)

    name = "fifo"

    def __init__(self):
        self._order: OrderedDict[str, None] = OrderedDict()

    def on_insert(self, path: str) -> None:
        self._order[path] = None

    def on_access(self, path: str) -> None:
        pass

    def on_delete(self, path: str) -> None:
        self._order.pop(path, None)

    def victim(self) -> Optional[str]:
        return next(iter(self._order), None)


class MinIOEviction(EvictionPolicy):
    """CoorDL's MinIO: cache until full, then never replace.

    Guarantees the cached fraction of the dataset is identical in every
    epoch, trading hit rate for stability.
    """

    __slots__ = ()

    name = "minio"

    def on_insert(self, path: str) -> None:
        pass

    def on_access(self, path: str) -> None:
        pass

    def on_delete(self, path: str) -> None:
        pass

    def victim(self) -> Optional[str]:
        return None  # refuse: caller skips caching the new file


def make_policy(name: str, rng: np.random.Generator) -> EvictionPolicy:
    """Build a policy by name.

    ``rng`` (used by ``random`` only) must be a named stream derived
    from the experiment's :class:`~repro.simcore.RandomStreams` tree —
    never a locally minted generator — so eviction draws replay
    bit-for-bit and stay isolated from every other component (SIM002).
    """
    if name == "random":
        return RandomEviction(rng)
    if name == "lru":
        return LRUEviction()
    if name == "fifo":
        return FIFOEviction()
    if name == "minio":
        return MinIOEviction()
    raise ValueError(f"unknown eviction policy {name!r}")


class CacheManager:
    """Byte-budgeted cache of whole files on one server's LocalFS slice.

    With ``compression_ratio < 1`` the cache becomes a FanStore-style
    compressed tier: residents occupy ``ratio × raw`` bytes on the
    device (and against quotas), and every hit pays a deterministic
    ``decompress_cost_per_byte × raw`` sim-seconds of CPU before the
    bytes are usable.  At the default ratio of 1.0 the tier is inert —
    no extra events, byte-identical schedules.
    """

    def __init__(
        self,
        env: Environment,
        localfs: LocalFS,
        capacity_bytes: int,
        policy: EvictionPolicy,
        metrics: MetricRegistry | None = None,
        name: str = "cache",
        compression_ratio: float = 1.0,
        decompress_cost_per_byte: float = 0.0,
    ):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if not 0 < compression_ratio <= 1:
            raise ValueError("compression_ratio must be in (0, 1]")
        if decompress_cost_per_byte < 0:
            raise ValueError("decompress_cost_per_byte must be >= 0")
        self.env = env
        self.localfs = localfs
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self.metrics = metrics or MetricRegistry()
        self.name = name
        self.compression_ratio = compression_ratio
        self.decompress_cost_per_byte = decompress_cost_per_byte
        self._compressed = compression_ratio < 1.0
        self._scope = self.metrics.scope(name)
        # Hoisted collectors: every hit/miss/evict bumps one of these on
        # the read path, so the per-op name lookups must not rebuild
        # dotted labels (PERF103).
        self._m_hits = self._scope.counter("hits")
        self._m_uncacheable = self._scope.counter("uncacheable")
        self._m_refused = self._scope.counter("refused")
        self._m_inserts = self._scope.counter("inserts")
        self._m_evictions = self._scope.counter("evictions")
        self._m_read_seconds = self._scope.tally("read_seconds")
        self._m_decompress_seconds = self._scope.tally("decompress_seconds")
        self._sizes: dict[str, int] = {}
        #: device-resident (possibly compressed) size per path
        self._stored: dict[str, int] = {}
        self._used = 0
        self._raw_used = 0
        #: optional :class:`~repro.tenancy.TenantCacheArbiter`; when set
        #: it owns admission and victim selection on the insert path
        self.arbiter = None
        #: race-sanitizer cell: the whole map is one cell because the
        #: byte budget couples entries (an insert can evict any path)
        self._cell = f"cache.{name}"

    # -- queries -----------------------------------------------------------
    def contains(self, path: str) -> bool:
        self.env.note_access(self._cell, "r")
        return path in self._sizes

    @property
    def used_bytes(self) -> int:
        """Device bytes occupied (compressed sizes when the tier is on)."""
        return self._used

    @property
    def raw_bytes(self) -> int:
        """Uncompressed bytes the residents represent."""
        return self._raw_used

    @property
    def n_files(self) -> int:
        return len(self._sizes)

    def stored_size(self, path: str) -> int:
        """Device-resident size of ``path`` (raises KeyError if absent)."""
        return self._stored[path]

    def contents(self) -> list[tuple[str, int]]:
        """``(path, size)`` of every resident file, in sorted order —
        the stable iteration surface repair planning walks."""
        self.env.note_access(self._cell, "r")
        return sorted(self._sizes.items())

    def touch(self, path: str) -> None:
        """Record a cache hit for recency-tracking policies."""
        if path in self._sizes:
            self.policy.on_access(path)
            if self.arbiter is not None:
                self.arbiter.on_access(path)
            self._m_hits.incr()

    # -- mutation ------------------------------------------------------------
    def insert(self, path: str, size: int, tenant: Optional[int] = None) -> Generator:
        """Write ``path`` into the cache, evicting as needed.

        Returns True if cached; False if the policy refused (MinIO when
        full), the file alone exceeds capacity, or — under a tenancy
        arbiter — the owning tenant is over quota / out of slab room.
        """
        if size <= 0:
            raise ValueError("size must be positive")
        self.env.note_access(self._cell, "w")
        if path in self._sizes:
            self.touch(path)
            return True
        # Everything below the index — capacity checks, victim budget,
        # quota/slab admission, device accounting — sees the *stored*
        # (compressed) size; only serving knows the raw one.
        stored = max(1, int(size * self.compression_ratio)) if self._compressed else size
        if stored > self.capacity_bytes:
            self._m_uncacheable.incr()
            return False
        arb = self.arbiter
        if arb is not None:
            # The arbiter owns the whole decision: quota/slab admission
            # first, then mode-specific victim selection (it calls back
            # into _evict for each victim it picks).
            if not arb.admit(tenant, path, stored):
                self._m_refused.incr()
                return False
            if not arb.make_room(tenant, path, stored):
                self._m_refused.incr()
                return False
        else:
            while self._used + stored > self.capacity_bytes:
                victim = self.policy.victim()
                if victim is None:
                    self._m_refused.incr()
                    return False
                self._evict(victim)
        # Bookkeeping happens eagerly, before the timed device write, so
        # the index and device accounting can never diverge (a purge or
        # failure mid-write still sees the reservation).
        self.localfs.device.allocate(stored)
        self._sizes[path] = size
        self._stored[path] = stored
        self._used += stored
        self._raw_used += size
        self.policy.on_insert(path)
        if arb is not None:
            arb.on_insert(tenant, path, stored)
        self._m_inserts.incr()
        yield from self.localfs.device.write(stored)
        return True

    def _evict(self, path: str) -> None:
        self.env.note_access(self._cell, "w")
        size = self._sizes.pop(path)
        stored = self._stored.pop(path)
        self._used -= stored
        self._raw_used -= size
        self.localfs.device.release(stored)
        self.policy.on_delete(path)
        if self.arbiter is not None:
            self.arbiter.on_evict(path)
        self._m_evictions.incr()

    def evict(self, path: str) -> None:
        """Explicit eviction (tests/teardown)."""
        if path not in self._sizes:
            raise KeyError(path)
        self._evict(path)

    def purge(self) -> None:
        """Drop everything — the job-end lifecycle teardown (§III-D)."""
        for path in list(self._sizes):
            self._evict(path)

    # -- timed access --------------------------------------------------------
    def read(self, path: str) -> Generator:
        """Serve a cached file from the NVMe; returns its size."""
        self.env.note_access(self._cell, "r")
        size = self._sizes.get(path)
        if size is None:
            raise KeyError(path)
        self.touch(path)
        t0 = self.env.now
        # No per-read open/close: the data mover keeps cache-file
        # descriptors open across requests (unlike the client-visible
        # XFS path, which pays the full <open, read, close> each time).
        yield from self.localfs.device.read(self._stored[path])
        if self._compressed:
            cost = self.decompress_cost_per_byte * size
            if cost > 0:
                yield self.env.timeout(cost)
            self._m_decompress_seconds.add(cost)
        self._m_read_seconds.add(self.env.now - t0)
        return size
