"""Telemetry subsystem: spans, metric scopes, SLO rollup, determinism.

The load-bearing properties pinned here:

* span recording is *passive* — attaching a recorder does not change the
  event-stream fingerprint of an identically-seeded run without one;
* the span timeline itself is deterministic — two same-seed runs of the
  resilience experiment produce byte-identical timelines;
* a crash-at-t fault visibly shifts the SLO metrics (tail latency,
  degraded fraction, bytes-by-path) relative to the no-fault baseline;
* striped reads account hits per segment (a single lost segment is a
  partial hit, not a whole-file miss).
"""

import json
import math

import pytest

from repro.analysis import degradation_dashboard, degradation_strip
from repro.cluster import Allocation, TESTING
from repro.core import HVACDeployment
from repro.experiments import resilience_sweep, slo_scenario
from repro.obs import ROUTES, SpanRecorder, compute_slo
from repro.simcore import (
    AllOf,
    Environment,
    EventTrace,
    Histogram,
    MetricRegistry,
)
from repro.storage import GPFS


# ---------------------------------------------------------------------------
# Histogram + scopes (simcore.monitor extensions)
# ---------------------------------------------------------------------------
class TestHistogram:
    def test_empty(self):
        h = Histogram("h")
        assert math.isnan(h.mean) and math.isnan(h.quantile(0.5))

    def test_quantiles_track_samples(self):
        h = Histogram("h")
        for i in range(1, 101):
            h.add(i * 1e-3)  # 1ms .. 100ms
        assert h.n == 100
        assert h.min == pytest.approx(1e-3)
        assert h.max == pytest.approx(0.1)
        assert h.mean == pytest.approx(0.0505)
        # geometric bins: within one bin width (~33%) of the exact value
        assert h.quantile(0.5) == pytest.approx(0.05, rel=0.35)
        assert h.quantile(0.99) == pytest.approx(0.099, rel=0.35)
        p = h.percentiles()
        assert p["p50"] <= p["p95"] <= p["p99"]

    def test_extremes_clamped_to_observed(self):
        h = Histogram("h")
        h.add(0.002)
        h.add(0.004)
        assert h.quantile(0.0) == 0.002
        assert h.quantile(1.0) == 0.004
        assert 0.002 <= h.quantile(0.5) <= 0.004

    def test_under_and_overflow(self):
        h = Histogram("h", lo=1e-3, hi=1e0, bins_per_decade=4)
        h.add(1e-9)   # underflow
        h.add(1e9)    # overflow
        assert h.n == 2
        assert h.counts[0] == 1 and h.counts[-1] == 1
        # underflow resolves to the lo edge, overflow to the observed max
        assert h.quantile(0.25) == pytest.approx(1e-3)
        assert h.quantile(0.99) == pytest.approx(1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", lo=0.0)
        with pytest.raises(ValueError):
            Histogram("h", lo=1.0, hi=0.5)


class TestMetricScope:
    def test_scope_names_alias_registry_names(self):
        reg = MetricRegistry()
        reg.scope("hvac").scope("c3").counter("reads").incr(5)
        assert reg.counter("hvac.c3.reads").value == 5

    def test_under_slices_the_namespace(self):
        reg = MetricRegistry()
        reg.counter("hvac.c0.reads").incr()
        reg.counter("hvac.c1.reads").incr()
        reg.tally("hvac.c0.lat").add(1.0)
        reg.counter("gpfs.reads").incr()
        got = reg.under("hvac.c0")
        assert set(got) == {"hvac.c0.reads", "hvac.c0.lat"}

    def test_snapshot_includes_histograms(self):
        reg = MetricRegistry()
        reg.scope("nvme").histogram("read_seconds").add(1e-4)
        snap = reg.snapshot()
        entry = snap["nvme.read_seconds"]
        assert entry["n"] == 1
        assert {"p50", "p95", "p99"} <= set(entry)


# ---------------------------------------------------------------------------
# SpanRecorder
# ---------------------------------------------------------------------------
class TestSpanRecorder:
    def test_tree_assembly_and_annotations(self):
        rec = SpanRecorder()
        root = rec.begin("client.read", 0.0, client=3, bytes=100)
        child = rec.begin("rpc.read", 0.1, parent=root, dst=1)
        rec.annotate(root, 0.2, "bytes:remote", 100)
        rec.annotate(root, 0.3, "degraded", 1)
        rec.end(child, 0.4, status="timeout")
        rec.end(root, 0.5)
        spans = rec.spans()
        assert spans[root].children == [child]
        assert spans[child].parent == root
        assert spans[child].status == "timeout"
        assert spans[root].duration == pytest.approx(0.5)
        assert spans[root].annotation("bytes:remote") == 100
        assert [s.sid for s in rec.roots()] == [root]
        assert [s.sid for s in rec.named("rpc.read")] == [child]

    def test_annotation_last_wins(self):
        rec = SpanRecorder()
        sid = rec.begin("x", 0.0)
        rec.annotate(sid, 0.1, "k", 1)
        rec.annotate(sid, 0.2, "k", 2)
        assert rec.spans()[sid].annotation("k") == 2
        assert rec.spans()[sid].annotation("missing", "d") == "d"

    def test_open_span_has_nan_duration(self):
        rec = SpanRecorder()
        sid = rec.begin("abandoned", 1.0)
        span = rec.spans()[sid]
        assert not span.closed
        assert math.isnan(span.duration)

    def test_jsonl_round_trip(self, tmp_path):
        rec = SpanRecorder()
        a = rec.begin("a", 0.0, k="v")
        rec.end(a, 1.0)
        rec.begin("b", 2.0, parent=a)
        path = tmp_path / "spans.jsonl"
        assert rec.write_jsonl(str(path)) == 2
        lines = path.read_text().splitlines()
        objs = [json.loads(line) for line in lines]
        assert [o["sid"] for o in objs] == [0, 1]
        assert objs[0]["attrs"] == {"k": "v"}
        assert objs[1]["t1"] is None

    def test_fingerprint_distinguishes_timelines(self):
        r1, r2 = SpanRecorder(), SpanRecorder()
        for r in (r1, r2):
            sid = r.begin("x", 0.0)
            r.end(sid, 1.0)
        assert r1.fingerprint == r2.fingerprint
        r2.annotate(0, 1.0, "extra")
        assert r1.fingerprint != r2.fingerprint


# ---------------------------------------------------------------------------
# SLO rollup (unit level, hand-built timeline)
# ---------------------------------------------------------------------------
def _synthetic_recorder():
    rec = SpanRecorder()
    # client 0: two clean reads, one degraded (pfs) read later
    for t0, dt, route in [(0.0, 0.1, "local"), (1.0, 0.1, "remote")]:
        sid = rec.begin("client.read", t0, client=0, bytes=100)
        rec.annotate(sid, t0 + dt, f"bytes:{route}", 100)
        rec.end(sid, t0 + dt)
    sid = rec.begin("client.read", 3.0, client=0, bytes=100)
    rec.annotate(sid, 3.9, "bytes:pfs", 100)
    rec.annotate(sid, 3.9, "degraded", 1)
    rec.end(sid, 3.9)
    # server 1: one hit, one miss
    sid = rec.begin("server.read", 0.0, server=1, bytes=100)
    rec.annotate(sid, 0.05, "hit", 1)
    rec.end(sid, 0.05)
    sid = rec.begin("server.read", 1.0, server=1, bytes=100)
    rec.annotate(sid, 1.5, "hit", 0)
    rec.end(sid, 1.5)
    return rec


class TestComputeSLO:
    def test_windows_and_routes(self):
        report = compute_slo(_synthetic_recorder(), window=1.0,
                             origin=0.0, horizon=4.0)
        total = report.totals
        assert total.n_reads == 3
        assert total.degraded == 1
        assert total.degraded_fraction == pytest.approx(1 / 3)
        assert total.bytes_by_path == {"local": 100, "remote": 100, "pfs": 100}
        assert len(total.windows) == 4
        assert [w.n_reads for w in total.windows] == [1, 1, 0, 1]
        # read completing at 3.9 lands in window [3, 4)
        assert total.windows[3].degraded == 1
        assert total.windows[3].bytes_by_path["pfs"] == 100
        # half-open windows align to origin
        assert total.windows[0].t0 == 0.0 and total.windows[0].t1 == 1.0
        assert report.window_times() == [0.5, 1.5, 2.5, 3.5]

    def test_latency_percentiles(self):
        report = compute_slo(_synthetic_recorder(), window=4.0,
                             origin=0.0, horizon=4.0)
        total = report.totals
        # latencies 0.1, 0.1, 0.9
        assert total.p50 == pytest.approx(0.1)
        assert total.p99 > total.p50

    def test_server_view(self):
        report = compute_slo(_synthetic_recorder(), window=2.0,
                             origin=0.0, horizon=4.0)
        srv = report.servers[1]
        assert srv.n_reads == 2
        assert srv.degraded == 1  # the miss
        assert srv.bytes_by_path["local"] == 100  # the hit, from NVMe
        assert srv.bytes_by_path["pfs"] == 100    # the miss, fetched

    def test_horizon_excludes_out_of_range_reads(self):
        report = compute_slo(_synthetic_recorder(), window=1.0,
                             origin=0.0, horizon=2.0)
        assert report.totals.n_reads == 2  # the t=3.9 read is out of range

    def test_window_validation(self):
        with pytest.raises(ValueError):
            compute_slo(SpanRecorder(), window=0.0)

    def test_empty_recorder(self):
        report = compute_slo(SpanRecorder(), window=1.0)
        assert report.totals.n_reads == 0
        assert report.clients == {} and report.servers == {}


class TestDashboard:
    def test_strip_ramp(self):
        assert degradation_strip([0.0, 0.5, 1.0]) == " +@"
        # out-of-range inputs clamp instead of indexing out of bounds
        assert degradation_strip([-1.0, 2.0]) == " @"

    def test_requires_a_report(self):
        with pytest.raises(ValueError):
            degradation_dashboard({})


# ---------------------------------------------------------------------------
# End-to-end: instrumented deployment
# ---------------------------------------------------------------------------
def build(n_nodes=3, spans=None, trace=None, **hvac):
    env = Environment()
    if trace is not None:
        env.attach_trace(trace)
    spec = TESTING.with_hvac(**hvac) if hvac else TESTING
    alloc = Allocation(env, spec, n_nodes=n_nodes)
    pfs = GPFS(env, spec.pfs, n_nodes, spec.network.nic_bandwidth)
    dep = HVACDeployment(alloc, pfs, spans=spans)
    return env, dep


FILES = [(f"/data/f{i}", 30_000) for i in range(20)]


def read_epoch(env, dep, files, node_ids):
    def reader(node_id):
        cli = dep.client(node_id)
        for path, size in files:
            yield from cli.read_file(path, size, node_id)

    procs = [env.process(reader(n)) for n in node_ids]

    def wait():
        yield AllOf(env, procs)

    env.run(env.process(wait()))


class TestInstrumentedDeployment:
    def test_span_tree_covers_the_stack(self):
        rec = SpanRecorder()
        env, dep = build(spans=rec)
        read_epoch(env, dep, FILES, [0, 1])
        reads = rec.named("client.read")
        assert len(reads) == 2 * len(FILES)
        assert all(s.closed for s in reads)
        spans = rec.spans()
        # every client.read has an rpc.read child; rpc.read has a
        # server.read child (linked across the endpoint via the payload)
        for read in reads:
            kids = [spans[k].name for k in read.children]
            assert "rpc.read" in kids
        assert rec.named("server.read")
        assert rec.named("server.pfs_fetch")  # cold epoch misses
        # server.read spans link across the RPC boundary into the
        # client's tree: their parent is the client.read root
        server_reads = rec.named("server.read")
        assert server_reads
        for srv in server_reads:
            assert spans[srv.parent].name == "client.read"
        # and mover-side children hang off the server.read span
        for child_name in ("server.bulk", "server.nvme", "server.pfs_fetch"):
            for child in rec.named(child_name):
                assert spans[child.parent].name == "server.read"

    def test_route_bytes_cover_all_reads(self):
        rec = SpanRecorder()
        env, dep = build(spans=rec)
        read_epoch(env, dep, FILES, [0, 1])
        totals = compute_slo(rec, window=1.0).totals
        assert totals.total_bytes == 2 * len(FILES) * 30_000
        assert set(totals.bytes_by_path) == set(ROUTES)

    def test_per_component_metrics_populated(self):
        rec = SpanRecorder()
        env, dep = build(spans=rec)
        read_epoch(env, dep, FILES, [0, 1])
        m = dep.metrics
        # aggregate names unchanged
        assert m.counter("hvac.client_opens").value == 2 * len(FILES)
        # per-client shadows
        assert m.counter("hvac.c0.client_opens").value == len(FILES)
        assert m.counter("hvac.c0.rpc.calls").value > 0
        assert m.histograms["hvac.c0.read_seconds"].n == len(FILES)
        # per-server shadows + endpoint scope
        per_server = sum(
            c.value for n, c in m.counters.items()
            if n.startswith("hvac.s") and n.endswith(".bytes_served")
        )
        assert per_server == m.counter("hvac.bytes_served").value

    def test_detector_metrics_on_crash(self):
        rec = SpanRecorder()
        env, dep = build(
            spans=rec,
            rpc_timeout=0.05, rpc_max_retries=2, suspect_after=1,
            probation_period=10.0,
        )
        read_epoch(env, dep, FILES[:6], [0])
        dep.fail_node(1)
        read_epoch(env, dep, FILES[:6], [0])
        m = dep.metrics
        strikes = sum(
            c.value for n, c in m.counters.items()
            if n.endswith(".detector.strikes")
        )
        suspicions = sum(
            c.value for n, c in m.counters.items()
            if n.endswith(".detector.suspicions")
        )
        assert strikes > 0 and suspicions > 0
        # fallback reads annotated degraded on their root spans
        degraded = [
            s for s in rec.named("client.read")
            if s.annotation("degraded") is not None
        ]
        assert degraded
        assert rec.named("pfs.fallback")


class TestStripedSegmentAccounting:
    STRIPED = dict(
        stripe_large_files=True,
        stripe_threshold=1_000_000,
        stripe_segment=500_000,
    )
    BIG = 2_000_000  # 4 segments

    def test_full_hit_after_warm(self):
        env, dep = build(n_nodes=4, **self.STRIPED)
        env.run(env.process(dep.client(0).read_file("/d/big", self.BIG, 0)))
        env.run(env.process(dep.client(0).read_file("/d/big", self.BIG, 0)))
        m = dep.metrics
        assert m.counter("hvac.client_seg_misses").value == 4
        assert m.counter("hvac.client_seg_hits").value == 4
        assert m.counter("hvac.client_hits").value == 1
        assert m.counter("hvac.client_misses").value == 1
        assert m.counter("hvac.client_partial_hits").value == 0

    def test_lost_segment_is_partial_hit_not_whole_file_miss(self):
        env, dep = build(
            n_nodes=4,
            rpc_timeout=0.05, rpc_max_retries=2, suspect_after=1,
            replication_factor=1,
            **self.STRIPED,
        )
        env.run(env.process(dep.client(0).read_file("/d/big", self.BIG, 0)))
        # Crash one node that homes at least one segment; its segments
        # fall back to the PFS, the rest still hit.
        homes = [
            dep.placement.replicas(f"/d/big#seg{i}", client=0)[0]
            for i in range(4)
        ]
        victim = homes[0]
        n_lost = sum(1 for h in homes if h == victim)
        assert n_lost < 4, "need a surviving segment"
        dep.servers[victim].fail()
        env.run(env.process(dep.client(0).read_file("/d/big", self.BIG, 0)))
        m = dep.metrics
        assert m.counter("hvac.client_partial_hits").value == 1
        assert m.counter("hvac.client_seg_misses").value == 4  # cold first read
        assert m.counter("hvac.client_seg_fallbacks").value == n_lost
        assert m.counter("hvac.client_seg_hits").value == 4 - n_lost  # survivors
        # degraded read counted once at file level
        assert m.counter("hvac.client_degraded_reads").value == 1


# ---------------------------------------------------------------------------
# Determinism acceptance criteria
# ---------------------------------------------------------------------------
class TestTelemetryDeterminism:
    SWEEP = dict(fail_fractions=(0.0, 0.5), n_nodes=3, n_files=8, seed=7)

    def test_same_seed_double_run_identical_span_timeline(self):
        rec1, rec2 = SpanRecorder(), SpanRecorder()
        resilience_sweep(spans=rec1, **self.SWEEP)
        resilience_sweep(spans=rec2, **self.SWEEP)
        assert len(rec1.events) == len(rec2.events)
        assert rec1.fingerprint == rec2.fingerprint

    def test_spans_do_not_perturb_the_event_stream(self):
        def run(spans):
            trace = EventTrace()
            env, dep = build(n_nodes=3, spans=spans, trace=trace)
            read_epoch(env, dep, FILES, [0, 1, 2])
            read_epoch(env, dep, FILES, [0, 1, 2])
            return trace

        with_spans = run(SpanRecorder())
        without = run(None)
        assert with_spans.count == without.count
        assert with_spans.fingerprint == without.fingerprint


# ---------------------------------------------------------------------------
# SLO scenario + dashboard (the `repro slo` driver)
# ---------------------------------------------------------------------------
class TestSLOScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return slo_scenario(n_nodes=3, n_files=12, windows=8)

    def test_fault_shifts_slo_metrics(self, result):
        base, fault = result.baseline.totals, result.faulted.totals
        assert base.n_reads == fault.n_reads > 0
        assert base.degraded_fraction == 0.0
        assert fault.degraded_fraction > 0.0
        assert fault.p99 > base.p99
        assert base.bytes_by_path["pfs"] == 0
        assert fault.bytes_by_path["pfs"] > 0
        # both rolled over the same absolute window grid
        assert result.baseline.t0 == result.faulted.t0
        assert result.baseline.t1 == result.faulted.t1
        assert len(result.baseline.totals.windows) == 8

    def test_dashboard_renders_the_shift(self, result):
        text = result.render()
        assert "baseline" in text and "crash@" in text
        assert "degraded-read fraction" in text
        assert "per-client SLOs" in text
        # the faulted strip shows at least one non-clean window
        strip_section = text.split("degraded-read fraction")[1]
        fault_line = [l for l in strip_section.splitlines() if "crash@" in l][0]
        assert fault_line.count("|") == 2
        assert fault_line.split("|")[1].strip() != ""

    def test_artifacts_written(self, result, tmp_path):
        paths = result.write_artifacts(str(tmp_path))
        assert (tmp_path / "dashboard.txt").exists()
        jsonls = [p for name, p in paths.items() if name.startswith("spans[")]
        assert len(jsonls) == 2
        for p in jsonls:
            first = json.loads(open(p).readline())
            assert {"sid", "name", "t0", "t1"} <= set(first)

    def test_validation(self):
        with pytest.raises(ValueError):
            slo_scenario(n_nodes=1)
