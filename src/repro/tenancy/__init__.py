"""Fleet-level multi-tenancy: one HVAC deployment, N independent jobs.

The paper deploys HVAC per job — the cache lives and dies with one
allocation.  This package asks the fleet question instead: what happens
when several workloads (training sweeps, bursty inference/eval readers)
*share* the node-local cache layer?  It provides

* :class:`TenantSpec` / :func:`tenant_of_path` — tenant identity and the
  ``/pfs/t<j>/`` namespace attribution (pure string parse, no metadata
  service — the same hash-not-lookup spirit as HVAC's placement);
* :class:`QuotaLedger` — fleet-wide per-tenant byte/file quotas, each
  tenant's counters a named race-sanitizer cell ``tenancy.quota.t<j>``;
* :class:`TenantCacheArbiter` — partition-vs-share cache policies
  (``shared`` global LRU, ``dedicated`` slabs, ``weighted`` fair with
  per-tenant watermarks) arbitrated inside each server's CacheManager;
* :class:`AdmissionController` — reject / queue / degrade-to-PFS when
  the fleet is saturated;
* :class:`TenantFleet` — the wiring layer splitting per-job client
  state from fleet-wide server state;
* :func:`sample_jobs` / :func:`run_jobs` — the seeded job-arrival
  process replaying a deterministic mix against the fleet.
"""

from .admission import ACTIONS, AdmissionController, AdmissionDecision
from .arbiter import TENANCY_MODES, TenantCacheArbiter
from .arrivals import JobArrival, JobRecord, job_plan, run_jobs, sample_jobs
from .fleet import TenantFleet
from .quota import QuotaLedger
from .tenant import TENANT_KINDS, TenantSpec, tenant_of_path

__all__ = [
    "ACTIONS",
    "AdmissionController",
    "AdmissionDecision",
    "JobArrival",
    "JobRecord",
    "QuotaLedger",
    "TENANCY_MODES",
    "TENANT_KINDS",
    "TenantCacheArbiter",
    "TenantFleet",
    "TenantSpec",
    "job_plan",
    "run_jobs",
    "sample_jobs",
    "tenant_of_path",
]
