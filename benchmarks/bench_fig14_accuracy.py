"""Fig 14: training-to-accuracy — HVAC does not perturb SGD.

GPFS and HVAC feed the learner identical shuffle sequences, so their
top-1/top-5 trajectories are bit-identical; a statically sharded loader
(the contrasted technique) degrades accuracy.
"""

import pytest

from repro.experiments import accuracy_comparison

from conftest import BENCH_SCALE


def _run():
    epochs = 20 if BENCH_SCALE == "paper" else 10
    return accuracy_comparison(n_epochs=epochs, n_shards=16, eval_every=20)


@pytest.mark.benchmark(group="fig14")
def test_fig14_accuracy(benchmark, capsys):
    cmp = benchmark.pedantic(_run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(cmp.render())
        n = len(cmp.gpfs.iterations)
        idxs = [0, n // 4, n // 2, 3 * n // 4, n - 1]
        print("\niter   GPFS-top1  HVAC-top1  sharded-top1")
        for i in idxs:
            print(f"{cmp.gpfs.iterations[i]:5d}  {cmp.gpfs.top1[i]:9.3f}  "
                  f"{cmp.hvac.top1[i]:9.3f}  {cmp.sharded.top1[i]:12.3f}")

    # Bit-identical GPFS vs HVAC trajectories (the paper's claim).
    assert cmp.identical_gpfs_hvac
    # Both reach their accuracy thresholds at the same iterations.
    thresh = 0.95 * cmp.gpfs.final_top1()
    assert (cmp.gpfs.iterations_to_top1(thresh)
            == cmp.hvac.iterations_to_top1(thresh))
    # Sharding degrades the final accuracy.
    assert cmp.sharded.final_top1() < cmp.gpfs.final_top1()
