"""``repro check --perf`` — the sim-hot-path performance analyzer.

The simulation kernel dispatches hundreds of thousands of events per
wall-clock second, so a per-event allocation or O(n) container scan that
would be invisible anywhere else dominates the profile here.  This pass
finds those patterns *statically*, on exactly the code that runs per
event:

1. **The sim-hot set.**  Using the same module-level call graph the
   taint pass builds (:mod:`.callgraph`), every function in the kernel's
   dispatch modules (``simcore/engine.py``), the RPC delivery path
   (``rpc/endpoint.py``), and the per-read client/server/cache path
   (``core/{client,server,cache}.py``) is a root; the hot set is the
   closure over resolved call edges.  Observer modules the kernel
   invokes through duck-typed attributes (trace, sanitizer, profiler,
   metrics, spans) are added explicitly — the graph cannot resolve
   those edges.  A bare-name instantiation of a class defined in the
   file set marks that class *churned*: its methods join the hot set
   even when the individual call sites cannot be resolved.
2. **PERF rules** (below) run only inside hot functions, so cold setup
   and analysis code is never flagged.

========  ============================================================
PERF101   a class churned on the hot path has no ``__slots__`` — every
          instance carries a dict the kernel allocates per event
PERF102   closure/lambda defined inside a hot function — one code/cell
          allocation per call; hoist to module level or a bound method
PERF103   eager string/label construction (f-string / ``.format``)
          flowing into a metrics/span/process-name sink, or returned,
          on the hot path — build labels once, or guard behind the
          engine's observer flag
PERF104   the same ≥2-link attribute chain read ≥2× inside one loop —
          hoist it to a local before the loop
PERF105   O(n)-per-event container use: ``list.pop(0)``, membership
          tests against known lists, ``sorted()``/``min()``/``max()``
          over a container inside a loop, dict/set rebuilds in a loop
========  ============================================================

False positives are silenced inline, loudly and with a reason::

    if request in self.users:  # perf: waive PERF105 -- users is capacity-bounded

Waivers that stop suppressing anything are reported as *stale* (same
machinery as simlint's), so they cannot rot.

When the linted file set contains none of the root modules (fixture
tests, ad-hoc snippets), every function is treated as hot — the rules
then behave as a plain per-function lint.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass

from .callgraph import CallGraph
from .linter import (
    StaleWaiver,
    _apply_waivers,
    _iter_python_files,
    _waiver_comment_lines,
    scope_of,
)
from .rules import Violation

__all__ = [
    "PERF_RULES",
    "PerfLint",
    "perf_lint_files",
    "perf_lint_source",
    "perf_lint_tree",
]

#: rule code -> one-line rationale (mirrored in docs/INTERNALS.md)
PERF_RULES: dict[str, str] = {
    "PERF101": "class churned on the sim hot path has no __slots__; every "
    "instance carries an attribute dict allocated per event — add "
    "__slots__ (or @dataclass(slots=True))",
    "PERF102": "closure/lambda defined inside a hot function allocates a "
    "code object and cells per call — hoist to module level or a bound "
    "method",
    "PERF103": "eager string/label construction on the sim hot path; the "
    "label is rebuilt per event even when no observer consumes it — "
    "memoize it, or guard behind the observer flag",
    "PERF104": "the same attribute chain is dereferenced repeatedly inside "
    "one loop — hoist it to a local before the loop",
    "PERF105": "O(n)-per-event container operation — use a deque/set/heap, "
    "or move the scan off the per-event path",
}

#: dotted-module suffixes whose every function is a hot-set root: the
#: kernel's dispatch loop, RPC delivery, and the per-read data path
HOT_ROOT_MODULES = (
    "simcore.engine",
    "rpc.endpoint",
    "core.client",
    "core.server",
    "core.cache",
)

#: observer/collector modules the kernel invokes through duck-typed
#: attributes (``trace.record``, ``profiler.begin_event``, metric and
#: span appends) — call edges the graph cannot resolve, seeded hot
DEFAULT_EXTRA_HOT = (
    "simcore.monitor",
    "simcore.trace",
    "simcore.profile",
    "simcore.stores",
    "simcore.resources",
    "obs.spans",
)

_PERF_WAIVE_RE = re.compile(r"#\s*perf:\s*waive\b([^#\n]*)")
_PERF_CODE_RE = re.compile(r"PERF\d{3}")

#: call targets whose string arguments are metric/span/process labels
_LABEL_SINKS = {
    "counter", "tally", "histogram", "get_series", "scope",
    "begin", "annotate", "end", "process", "note_access", "_incr", "incr",
}

#: functions the rules never fire in: construction and debug repr run
#: once per object (or per failure), not once per event — labels and
#: allocations there are exactly the hoist targets the rules point to
_SETUP_EXEMPT = {"__init__", "__post_init__", "__repr__"}

#: additional PERF103 exemptions: human-facing formatting helpers
_PERF103_EXEMPT = _SETUP_EXEMPT | {"describe", "render"}

#: annotation heads that mark a binding as a list
_LIST_ANNOTATIONS = ("list", "List", "MutableSequence", "Sequence")


# ---------------------------------------------------------------------------
# class inventory (PERF101 + churned-class hot expansion)
# ---------------------------------------------------------------------------

@dataclass
class _ClassInfo:
    name: str
    module: str
    path: str
    line: int
    slotted: bool
    exceptionish: bool
    base_names: tuple[str, ...]
    #: resolved after the full scan: all bases are in-set or object
    known_bases: bool = True


def _terminal_name(node: ast.expr) -> str | None:
    """``C`` for ``C``; ``C`` for ``pkg.mod.C``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_slotted(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        if isinstance(dec, ast.Call) and _terminal_name(dec.func) == "dataclass":
            for kw in dec.keywords:
                if (
                    kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
    for stmt in node.body:
        targets = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _is_exceptionish(name: str, base_names: tuple[str, ...]) -> bool:
    suffixes = ("Error", "Exception", "Warning")
    if name.endswith(suffixes):
        return True
    for base in base_names:
        if base in ("Exception", "BaseException") or base.endswith(suffixes):
            return True
    return False


def _scan_classes(parsed: list[tuple[str, str, ast.Module]]) -> dict[str, list[_ClassInfo]]:
    """Every class defined in the file set, keyed by bare name."""
    out: dict[str, list[_ClassInfo]] = {}
    for path, _, tree in parsed:
        module = _module_suffix(path)
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = tuple(
                b for b in (_terminal_name(base) for base in node.bases)
                if b is not None
            )
            info = _ClassInfo(
                name=node.name,
                module=module,
                path=path,
                line=node.lineno,
                slotted=_is_slotted(node),
                exceptionish=_is_exceptionish(node.name, bases),
                base_names=bases,
            )
            out.setdefault(node.name, []).append(info)
    # Resolve base knowledge: a class whose bases are all defined in the
    # set (or object/metaclass-free) is a slots candidate; inheriting an
    # unknown external base (NamedTuple, Enum, ...) means __slots__
    # would not remove the instance dict anyway.
    for infos in out.values():
        for info in infos:
            info.known_bases = all(
                b == "object" or b in out for b in info.base_names
            )
    return out


def _module_suffix(path: str) -> str:
    """Dotted module name for suffix matching (mirrors callgraph's)."""
    norm = os.path.normpath(path)
    if norm.endswith(".py"):
        norm = norm[:-3]
    parts = [p for p in norm.split(os.sep) if p not in ("", ".", "..")]
    return ".".join(parts)


def _matches(module: str, suffixes: tuple[str, ...]) -> bool:
    return any(
        module == s or module.endswith("." + s) for s in suffixes
    )


# ---------------------------------------------------------------------------
# hot-set computation
# ---------------------------------------------------------------------------

def _hot_set(
    graph: CallGraph, classes: dict[str, list[_ClassInfo]]
) -> tuple[set[str], set[str], bool]:
    """Hot function keys, churned class names, and the all-hot flag."""
    roots = {
        key
        for key, info in graph.functions.items()
        if _matches(info.module, HOT_ROOT_MODULES)
    }
    extra = {
        key
        for key, info in graph.functions.items()
        if _matches(info.module, DEFAULT_EXTRA_HOT)
    }
    if not roots:
        # No kernel module in the file set: fixture / ad-hoc lint.
        # Everything is hot so the rules behave as a plain lint.
        return set(graph.functions), set(classes), True

    hot = roots | extra
    churned: set[str] = set()
    #: class-name -> its method keys, for churned expansion
    methods_of: dict[str, list[str]] = {}
    for key, info in graph.functions.items():
        qual = info.qualname
        if "." in qual:
            methods_of.setdefault(qual.split(".", 1)[0], []).append(key)

    changed = True
    while changed:
        changed = False
        for key in list(hot):
            info = graph.functions[key]
            for call in info.calls:
                if call.target is not None:
                    if call.target not in hot:
                        hot.add(call.target)
                        changed = True
                    continue
                # Constructor retry: an unresolved bare CapWords call to
                # a class defined in the set churns that class.
                cname = call.display.split(".")[-1]
                if cname[:1].isupper() and cname in classes and cname not in churned:
                    churned.add(cname)
                    for mkey in methods_of.get(cname, ()):
                        if mkey not in hot:
                            hot.add(mkey)
                            changed = True
        # A hot constructor churns its whole class: instances built per
        # event get all their methods driven per event too.
        for key in list(hot):
            info = graph.functions[key]
            if info.qualname.endswith(".__init__"):
                cname = info.qualname.rsplit(".", 1)[0].rsplit(".", 1)[-1]
                if cname not in churned:
                    churned.add(cname)
                for mkey in methods_of.get(cname, ()):
                    if mkey not in hot:
                        hot.add(mkey)
                        changed = True
    return hot, churned, False


# ---------------------------------------------------------------------------
# the per-file rule visitor
# ---------------------------------------------------------------------------

def _is_label_expr(node: ast.expr) -> bool:
    """An eagerly-built string: f-string with holes, or ``.format()``."""
    if isinstance(node, ast.JoinedStr):
        return any(isinstance(v, ast.FormattedValue) for v in node.values)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "format"
    ):
        return True
    return False


def _attr_chain(node: ast.expr) -> tuple[str, int] | None:
    """``("self.env.now", 2)`` for a pure Name.attr.attr chain."""
    links = 0
    cur = node
    parts: list[str] = []
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        links += 1
        cur = cur.value
    if not isinstance(cur, ast.Name) or links == 0:
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts)), links


class _PerfVisitor(ast.NodeVisitor):
    """PERF101–PERF105 over one module, restricted to hot functions."""

    def __init__(
        self,
        path: str,
        hot_quals: set[str],
        all_hot: bool,
        slotless: dict[str, _ClassInfo],
        list_attrs: set[str],
    ):
        self.path = path
        self.hot_quals = hot_quals
        self.all_hot = all_hot
        self.slotless = slotless  # churned, slot-eligible classes by name
        self.list_attrs = list_attrs
        self.violations: list[Violation] = []
        self._class_stack: list[str] = []
        #: (qualname, is_hot) of the enclosing *top-level* function
        self._func_stack: list[tuple[str, bool]] = []
        self._loop_depth = 0
        self._local_lists: set[str] = set()
        #: ids of lambdas in default-argument position (built once at
        #: def time, not per call — never PERF102)
        self._default_lambdas: set[int] = set()

    # -- plumbing ---------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, detail: str) -> None:
        self.violations.append(
            Violation(
                rule,
                self.path,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                f"{detail} [{PERF_RULES[rule].split(' — ')[0].split(';')[0]}]",
            )
        )

    @property
    def _hot(self) -> bool:
        return bool(self._func_stack) and self._func_stack[-1][1]

    @property
    def _func_name(self) -> str:
        return self._func_stack[-1][0].rsplit(".", 1)[-1] if self._func_stack else ""

    # -- structure --------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _note_default_lambdas(self, node) -> None:
        for default in (*node.args.defaults, *node.args.kw_defaults):
            if default is None:
                continue
            for sub in ast.walk(default):
                if isinstance(sub, ast.Lambda):
                    self._default_lambdas.add(id(sub))

    def _visit_func(self, node) -> None:
        self._note_default_lambdas(node)
        if self._func_stack:
            # Nested def inside a hot function: a per-call closure.
            if self._hot:
                self._emit(
                    "PERF102", node,
                    f"nested def {node.name!r} is created on every call",
                )
            # Its body still runs on the hot path — keep visiting with
            # the enclosing function's hotness.
            self.generic_visit(node)
            return
        qual = ".".join([*self._class_stack, node.name])
        hot = (
            self.all_hot or qual in self.hot_quals
        ) and node.name not in _SETUP_EXEMPT
        self._func_stack.append((qual, hot))
        saved_lists = self._local_lists
        self._local_lists = set()
        self.generic_visit(node)
        self._local_lists = saved_lists
        self._func_stack.pop()

    visit_FunctionDef = visit_AsyncFunctionDef = _visit_func

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._note_default_lambdas(node)
        if self._hot and id(node) not in self._default_lambdas:
            self._emit("PERF102", node, "lambda is created on every call")
        self.generic_visit(node)

    # -- local list tracking (PERF105 membership) --------------------------
    def _is_list_expr(self, node: ast.expr | None) -> bool:
        if isinstance(node, (ast.List, ast.ListComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("list", "sorted")
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                if self._is_list_expr(node.value):
                    self._local_lists.add(target.id)
                else:
                    self._local_lists.discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            ann = ast.unparse(node.annotation).split("[")[0]
            if self._is_list_expr(node.value) or ann in _LIST_ANNOTATIONS:
                self._local_lists.add(node.target.id)
        self.generic_visit(node)

    # -- loops: PERF104 + the in-loop PERF105 shapes ------------------------
    def visit_For(self, node: ast.For) -> None:
        self._enter_loop(node, iter_node=node.iter, body=node.body + node.orelse)

    def visit_While(self, node: ast.While) -> None:
        self._enter_loop(node, iter_node=None, body=node.body + node.orelse)

    def _enter_loop(self, node, iter_node, body) -> None:
        if self._hot:
            self._scan_loop_chains(node, iter_node, body)
        if iter_node is not None:
            self.visit(iter_node)
        if isinstance(node, ast.While):
            self.visit(node.test)
        self._loop_depth += 1
        for stmt in body:
            self.visit(stmt)
        self._loop_depth -= 1

    def _scan_loop_chains(self, loop, iter_node, body) -> None:
        """PERF104: count repeated attribute chains within one loop."""
        # Names whose binding legitimately changes per iteration.
        rebound: set[str] = set()
        for n in ast.walk(loop):
            if isinstance(n, ast.For):
                for t in ast.walk(n.target):
                    if isinstance(t, ast.Name):
                        rebound.add(t.id)
            elif isinstance(n, ast.Assign):
                for t in n.targets:
                    for sub in ast.walk(t):
                        if isinstance(sub, ast.Name):
                            rebound.add(sub.id)
            elif isinstance(n, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(n.target, ast.Name):
                    rebound.add(n.target.id)
            elif isinstance(n, ast.withitem) and n.optional_vars is not None:
                for sub in ast.walk(n.optional_vars):
                    if isinstance(sub, ast.Name):
                        rebound.add(sub.id)

        counts: dict[str, list[ast.expr]] = {}
        iter_nodes = set()
        if iter_node is not None:
            iter_nodes = {id(sub) for sub in ast.walk(iter_node)}
        seen: set[int] = set()
        for stmt in body:
            for n in ast.walk(stmt):
                if id(n) in iter_nodes or not isinstance(n, ast.Attribute):
                    continue
                if id(n) in seen:
                    continue
                chain = _attr_chain(n)
                if chain is None:
                    continue
                dotted, links = chain
                # Mark sub-chains visited so a.b.c doesn't also count a.b.
                for sub in ast.walk(n):
                    seen.add(id(sub))
                if links < 2:
                    continue
                root = dotted.split(".", 1)[0]
                if root in rebound or root == "_":
                    continue
                counts.setdefault(dotted, []).append(n)
        for dotted, nodes in counts.items():
            if len(nodes) >= 2:
                self._emit(
                    "PERF104", nodes[1],
                    f"{dotted} dereferenced {len(nodes)}x in this loop",
                )

    # -- calls: PERF101/103/105 ---------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if self._hot:
            name = _terminal_name(node.func)
            # PERF101: churned slotless class instantiation
            if (
                isinstance(node.func, (ast.Name, ast.Attribute))
                and name in self.slotless
            ):
                info = self.slotless[name]
                self._emit(
                    "PERF101", node,
                    f"instantiates slotless class {name} "
                    f"(defined at {info.path}:{info.line})",
                )
            # PERF103: eager label flowing into a sink
            if name in _LABEL_SINKS and self._func_name not in _PERF103_EXEMPT:
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    if _is_label_expr(arg):
                        self._emit(
                            "PERF103", arg,
                            f"label built eagerly in call to {name}()",
                        )
            # PERF105: list.pop(0)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "pop"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == 0
            ):
                self._emit(
                    "PERF105", node,
                    ".pop(0) shifts the whole list; use collections.deque",
                )
            # PERF105: sorted()/min()/max() over a container inside a loop
            if (
                self._loop_depth > 0
                and isinstance(node.func, ast.Name)
                and (
                    node.func.id == "sorted"
                    or (node.func.id in ("min", "max") and len(node.args) == 1)
                )
                and node.args
            ):
                self._emit(
                    "PERF105", node,
                    f"{node.func.id}() rescans its container on every "
                    "iteration of this loop",
                )
        self.generic_visit(node)

    # -- PERF103 in return position ------------------------------------------
    def visit_Return(self, node: ast.Return) -> None:
        if (
            self._hot
            and node.value is not None
            and self._func_name not in _PERF103_EXEMPT
        ):
            # Walk the whole return expression: conditional returns
            # (``f"..." if x else y``) still build the label eagerly.
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.expr) and _is_label_expr(sub):
                    self._emit(
                        "PERF103", sub,
                        "label built eagerly on every call (return position)",
                    )
                    break
        self.generic_visit(node)

    # -- PERF105 membership against a known list ------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        if self._hot:
            for op, rhs in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.In, ast.NotIn)):
                    continue
                is_list = (
                    isinstance(rhs, ast.Name) and rhs.id in self._local_lists
                ) or (
                    isinstance(rhs, ast.Attribute)
                    and rhs.attr in self.list_attrs
                )
                if is_list:
                    target = ast.unparse(rhs)
                    self._emit(
                        "PERF105", node,
                        f"membership test against list {target} is O(n) "
                        "per call",
                    )
        self.generic_visit(node)

    # -- PERF105 dict/set rebuilds in loops -----------------------------------
    def visit_Dict(self, node: ast.Dict) -> None:
        if self._hot and self._loop_depth > 0 and node.keys:
            self._emit(
                "PERF105", node,
                "dict literal rebuilt on every iteration of this loop",
            )
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        if self._hot and self._loop_depth > 0:
            self._emit(
                "PERF105", node,
                "dict rebuilt by comprehension on every iteration of this loop",
            )
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        if self._hot and self._loop_depth > 0:
            self._emit(
                "PERF105", node,
                "set rebuilt by comprehension on every iteration of this loop",
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# list-attribute inventory (PERF105 membership on self.<attr>)
# ---------------------------------------------------------------------------

def _scan_list_attrs(parsed: list[tuple[str, str, ast.Module]]) -> set[str]:
    """Attribute names bound to lists (``self.x = []``) and never to a
    different container anywhere in the file set."""
    listish: set[str] = set()
    otherish: set[str] = set()
    for _, _, tree in parsed:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                targets, value, ann = node.targets, node.value, None
            elif isinstance(node, ast.AnnAssign):
                targets, value, ann = [node.target], node.value, node.annotation
            else:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                is_list = isinstance(value, (ast.List, ast.ListComp)) or (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in ("list", "sorted")
                )
                if ann is not None and not is_list:
                    is_list = ast.unparse(ann).split("[")[0] in _LIST_ANNOTATIONS
                if is_list:
                    listish.add(target.attr)
                elif value is not None:
                    otherish.add(target.attr)
    return listish - otherish


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------

@dataclass
class PerfLint:
    """The result of a ``--perf`` pass over one file set."""

    violations: list[Violation]
    stale_waivers: list[StaleWaiver]
    n_files: int
    n_hot: int
    all_hot: bool

    @property
    def clean(self) -> bool:
        return not self.violations and not self.stale_waivers


def _no_waiver(line: int, rule: str) -> bool:
    return False


def perf_lint_files(files: list[tuple[str, str]]) -> PerfLint:
    """Run the hot-path analyzer over ``(path, source)`` pairs."""
    parsed: list[tuple[str, str, ast.Module]] = []
    for path, source in files:
        parsed.append((path, source, ast.parse(source, filename=path)))

    graph = CallGraph.build(
        (path, tree, scope_of(path), _no_waiver) for path, _, tree in parsed
    )
    classes = _scan_classes(parsed)
    hot, churned, all_hot = _hot_set(graph, classes)
    list_attrs = _scan_list_attrs(parsed)

    # PERF101 candidates: churned classes that could take __slots__.
    slotless: dict[str, _ClassInfo] = {}
    for cname in sorted(churned):
        for info in classes.get(cname, ()):
            if not info.slotted and not info.exceptionish and info.known_bases:
                slotless[cname] = info
                break

    hot_by_path: dict[str, set[str]] = {}
    for key in hot:
        info = graph.functions[key]
        hot_by_path.setdefault(info.path, set()).add(info.qualname)

    violations: list[Violation] = []
    stale: list[StaleWaiver] = []
    for path, source, tree in parsed:
        visitor = _PerfVisitor(
            path,
            hot_by_path.get(path, set()),
            all_hot,
            slotless,
            list_attrs,
        )
        visitor.visit(tree)
        lines = source.splitlines()
        found = visitor.violations
        # Dedupe (nested loops can re-count the same chain).
        unique: dict[tuple, Violation] = {}
        for v in found:
            unique.setdefault((v.rule, v.line, v.col), v)
        kept, used = _apply_waivers(
            sorted(unique.values(), key=lambda v: (v.line, v.col, v.rule)),
            lines,
            _PERF_WAIVE_RE,
            _PERF_CODE_RE,
        )
        violations.extend(kept)
        for lineno, codes in sorted(
            _waiver_comment_lines(source, _PERF_WAIVE_RE, _PERF_CODE_RE).items()
        ):
            if lineno not in used:
                stale.append(StaleWaiver(path, lineno, frozenset(codes)))
    return PerfLint(
        violations, stale, n_files=len(files), n_hot=len(hot), all_hot=all_hot
    )


def perf_lint_tree(paths: list[str]) -> PerfLint:
    """Analyze every ``.py`` file under the given files/directories."""
    files: list[tuple[str, str]] = []
    for root in paths:
        for path in _iter_python_files(root):
            with open(path, encoding="utf-8") as fh:
                files.append((path, fh.read()))
    return perf_lint_files(files)


def perf_lint_source(source: str, path: str = "<string>") -> list[Violation]:
    """Analyze one module's source text (the fixture-test entry point).

    With no kernel module present every function counts as hot.
    """
    return perf_lint_files([(path, source)]).violations
