#!/usr/bin/env python3
"""Quickstart: HVAC in 60 seconds.

Builds an 8-node Summit-like allocation, deploys HVAC over it, trains a
toy epoch loop against GPFS-direct and against HVAC, and prints the
cache's effect.  Everything is simulated — run it anywhere.

    python examples/quickstart.py
"""

from repro.analysis import format_kv, format_table
from repro.cluster import Allocation, SUMMIT
from repro.core import HVACDeployment
from repro.simcore import Environment
from repro.storage import GPFS


def read_dataset(env, backend_for_node, files, n_nodes, label, results):
    """One 'epoch': every node reads every file (whole-file transactions)."""

    def node_reader(node_id):
        backend = backend_for_node(node_id)
        for path, size in files:
            yield from backend.read_file(path, size, node_id)

    def epoch():
        t0 = env.now
        procs = [env.process(node_reader(n)) for n in range(n_nodes)]
        for p in procs:
            yield p
        results.append((label, env.now - t0))

    env.run(env.process(epoch()))


def main() -> None:
    n_nodes = 8
    files = [(f"/gpfs/alpine/dataset/img-{i:04d}.jpg", 163_000) for i in range(400)]

    # --- GPFS only: every epoch hits the parallel file system. -----------
    env = Environment()
    pfs = GPFS(env, SUMMIT.pfs, n_nodes, SUMMIT.network.nic_bandwidth)
    gpfs_times = []
    for _ in range(3):
        read_dataset(env, lambda n: pfs, files, n_nodes, "GPFS", gpfs_times)

    # --- With HVAC: epoch 1 populates node-local NVMe, the rest hit cache.
    # Four server instances per node — the paper's best configuration.
    env = Environment()
    spec = SUMMIT.with_hvac(instances_per_node=4)
    alloc = Allocation(env, spec, n_nodes=n_nodes)
    pfs2 = GPFS(env, spec.pfs, n_nodes, spec.network.nic_bandwidth)
    hvac = HVACDeployment(alloc, pfs2)
    hvac_times = []
    for _ in range(3):
        read_dataset(env, hvac.client, files, n_nodes, "HVAC", hvac_times)

    rows = []
    for e in range(3):
        g = gpfs_times[e][1]
        h = hvac_times[e][1]
        rows.append([f"epoch {e + 1}", g, h, g / h])
    print(format_table(
        ["", "GPFS (s)", "HVAC (s)", "speedup"],
        rows,
        title=f"Reading {len(files)} files x {n_nodes} nodes, 3 epochs",
        float_fmt="{:.4f}",
    ))
    print()
    print(format_kv({
        "cached files": hvac.total_cached_files,
        "cached bytes": hvac.total_cached_bytes,
        "cache hit rate": hvac.hit_rate(),
        "servers": hvac.n_servers,
    }, title="HVAC deployment state"))
    hvac.teardown()
    print("\ncache purged at job end:", hvac.total_cached_bytes == 0)


if __name__ == "__main__":
    main()
