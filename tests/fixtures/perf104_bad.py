"""PERF104 fixture: an attribute chain re-walked inside a loop.

``conn.stats.reads`` is two loads per mention; the loop repeats the
walk on every iteration even though ``conn`` never changes."""


def drain(conn, batch, out):
    for item in batch:
        out.append(conn.stats.reads)
        out.append(conn.stats.reads + item)
