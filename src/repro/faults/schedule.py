"""Declarative fault schedules.

A :class:`FaultSchedule` is an ordered list of :class:`FaultEvent`\\ s,
each naming a fault *kind*, its target, its onset time (relative to
injector start) and — for transient faults — a duration after which the
injector heals it.  Schedules are plain data: they can be written by
hand, generated deterministically from a seed
(:meth:`FaultSchedule.random`), printed, and replayed bit-for-bit.

Kinds
-----
``crash``       crash-stop a node's servers (recover after ``duration``)
``hang``        servers accept requests but never reply (gray failure)
``flap``        ``cycles`` fail/recover cycles of ``period`` seconds each
``degrade``     throttle the node's NVMe by ``factor`` (gray failure)
``flaky_link``  drop/delay messages on one node pair (``link``)
``partition``   drop *all* fabric traffic to/from a node
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..simcore import RandomStreams

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "crash",
    "degrade",
    "flaky_link",
    "flap",
    "hang",
    "partition",
]

FAULT_KINDS = ("crash", "hang", "flap", "degrade", "flaky_link", "partition")


@dataclass(frozen=True)
class FaultEvent:
    """One fault: what happens, to whom, when, and for how long."""

    time: float
    kind: str
    node: Optional[int] = None
    link: Optional[tuple[int, int]] = None
    #: transient faults heal after this long; None = permanent
    duration: Optional[float] = None
    #: NVMe slowdown for ``degrade`` (>= 1)
    factor: float = 4.0
    #: message-loss probability for ``flaky_link``
    drop_prob: float = 0.5
    #: added one-way delay for ``flaky_link`` (seconds)
    extra_delay: float = 0.0
    #: half-period of one ``flap`` cycle (down ``period``, up ``period``)
    period: float = 0.01
    #: number of ``flap`` cycles
    cycles: int = 3

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise ValueError("fault time must be >= 0")
        if self.kind == "flaky_link":
            if self.link is None:
                raise ValueError("flaky_link needs link=(src, dst)")
        elif self.node is None:
            raise ValueError(f"{self.kind} needs a target node")
        if self.duration is not None and self.duration < 0:
            raise ValueError("duration must be >= 0")
        if self.factor < 1.0:
            raise ValueError("degrade factor must be >= 1")
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ValueError("drop_prob must be in [0, 1]")
        if self.extra_delay < 0 or self.period < 0 or self.cycles < 0:
            raise ValueError("delay/period/cycles must be >= 0")

    def describe(self) -> str:
        target = f"link{self.link}" if self.link is not None else f"node {self.node}"
        tail = ""
        if self.kind == "degrade":
            tail = f" x{self.factor:g}"
        elif self.kind == "flaky_link":
            tail = f" p={self.drop_prob:g}"
            if self.extra_delay:
                tail += f" +{self.extra_delay:g}s"
        elif self.kind == "flap":
            tail = f" {self.cycles}x{self.period:g}s"
        if self.duration is not None:
            tail += f" for {self.duration:g}s"
        return f"t={self.time:g}: {self.kind} {target}{tail}"


class FaultSchedule:
    """An immutable, time-ordered sequence of fault events."""

    def __init__(self, events: Sequence[FaultEvent] = ()):
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: e.time)
        )

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __add__(self, other: "FaultSchedule") -> "FaultSchedule":
        return FaultSchedule(self.events + other.events)

    def shifted(self, dt: float) -> "FaultSchedule":
        """The same schedule with every onset moved ``dt`` later."""
        from dataclasses import replace

        return FaultSchedule([replace(e, time=e.time + dt) for e in self.events])

    def describe(self) -> str:
        if not self.events:
            return "(no faults)"
        return "\n".join(e.describe() for e in self.events)

    @classmethod
    def random(
        cls,
        n_nodes: int,
        seed: int = 0,
        horizon: float = 1.0,
        crash_rate: float = 0.0,
        hang_rate: float = 0.0,
        degrade_rate: float = 0.0,
        flaky_rate: float = 0.0,
        mean_outage: float = 0.1,
        degrade_factor: float = 4.0,
        drop_prob: float = 0.5,
        rack_size: int = 0,
        rack_crash_rate: float = 0.0,
        switch_flaky_rate: float = 0.0,
        burst_spread: float = 0.0,
    ) -> "FaultSchedule":
        """A seeded random schedule: each rate is expected events per
        simulated second over ``[0, horizon)``, arrivals Poisson, targets
        uniform, outages exponential with ``mean_outage``.  The same
        arguments always produce the identical schedule.

        Correlated failures (require ``rack_size >= 1``):

        * ``rack_crash_rate`` — power/cooling bursts: every node of one
          random rack crashes within a ``burst_spread``-long uniform
          stagger window and shares one exponential outage duration;
        * ``switch_flaky_rate`` — a rack's uplink switch goes flaky:
          every (rack node, outside node) link drops with ``drop_prob``
          for one shared exponential duration.
        """
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if (rack_crash_rate > 0 or switch_flaky_rate > 0) and rack_size < 1:
            raise ValueError("correlated failure rates require rack_size >= 1")
        if burst_spread < 0:
            raise ValueError("burst_spread must be >= 0")
        rand = RandomStreams(seed)
        events: list[FaultEvent] = []

        def arrivals(name: str, rate: float):
            t = 0.0
            while rate > 0:
                t += rand.exponential(name, 1.0 / rate)
                if t >= horizon:
                    return
                yield t

        def pick_node(name: str) -> int:
            return int(rand.stream(name).integers(n_nodes))

        for t in arrivals("crash", crash_rate):
            events.append(
                FaultEvent(
                    t, "crash", node=pick_node("crash.node"),
                    duration=rand.exponential("crash.outage", mean_outage),
                )
            )
        for t in arrivals("hang", hang_rate):
            events.append(
                FaultEvent(
                    t, "hang", node=pick_node("hang.node"),
                    duration=rand.exponential("hang.outage", mean_outage),
                )
            )
        for t in arrivals("degrade", degrade_rate):
            events.append(
                FaultEvent(
                    t, "degrade", node=pick_node("degrade.node"),
                    duration=rand.exponential("degrade.outage", mean_outage),
                    factor=degrade_factor,
                )
            )
        for t in arrivals("flaky", flaky_rate if n_nodes >= 2 else 0.0):
            src = pick_node("flaky.src")
            dst = pick_node("flaky.dst")
            if src == dst:
                dst = (dst + 1) % n_nodes
            events.append(
                FaultEvent(
                    t, "flaky_link", link=(src, dst),
                    duration=rand.exponential("flaky.outage", mean_outage),
                    drop_prob=drop_prob,
                )
            )

        def rack_nodes(name: str) -> list[int]:
            n_racks = -(-n_nodes // rack_size)
            rack = int(rand.stream(name).integers(n_racks))
            lo = rack * rack_size
            return list(range(lo, min(lo + rack_size, n_nodes)))

        for t in arrivals("rack.crash", rack_crash_rate):
            members = rack_nodes("rack.crash.rack")
            outage = rand.exponential("rack.crash.outage", mean_outage)
            for node in members:
                stagger = (
                    rand.uniform("rack.crash.stagger", 0.0, burst_spread)
                    if burst_spread > 0
                    else 0.0
                )
                events.append(
                    FaultEvent(t + stagger, "crash", node=node, duration=outage)
                )
        for t in arrivals(
            "switch.flaky", switch_flaky_rate if n_nodes >= 2 else 0.0
        ):
            members = rack_nodes("switch.flaky.rack")
            outage = rand.exponential("switch.flaky.outage", mean_outage)
            inside = set(members)
            for node in members:
                for other in range(n_nodes):
                    if other in inside:
                        continue
                    events.append(
                        FaultEvent(
                            t, "flaky_link", link=(node, other),
                            duration=outage, drop_prob=drop_prob,
                        )
                    )
        return cls(events)


# -- terse constructors (read well in schedules) -------------------------
def crash(
    time: float, node: int, recover_after: Optional[float] = None
) -> FaultEvent:
    """Crash-stop ``node``'s servers; recover cold after ``recover_after``."""
    return FaultEvent(time, "crash", node=node, duration=recover_after)


def hang(time: float, node: int, duration: Optional[float] = None) -> FaultEvent:
    """Hang ``node``'s servers: requests land, replies never come."""
    return FaultEvent(time, "hang", node=node, duration=duration)


def flap(time: float, node: int, period: float = 0.01, cycles: int = 3) -> FaultEvent:
    """``cycles`` fail/recover cycles, each half lasting ``period``."""
    return FaultEvent(time, "flap", node=node, period=period, cycles=cycles)


def degrade(
    time: float, node: int, factor: float = 4.0, duration: Optional[float] = None
) -> FaultEvent:
    """Throttle ``node``'s NVMe to 1/``factor`` of rated speed."""
    return FaultEvent(time, "degrade", node=node, factor=factor, duration=duration)


def flaky_link(
    time: float,
    src: int,
    dst: int,
    drop_prob: float = 0.5,
    extra_delay: float = 0.0,
    duration: Optional[float] = None,
) -> FaultEvent:
    """Drop/delay messages between ``src`` and ``dst`` (both directions)."""
    return FaultEvent(
        time, "flaky_link", link=(src, dst), drop_prob=drop_prob,
        extra_delay=extra_delay, duration=duration,
    )


def partition(time: float, node: int, duration: Optional[float] = None) -> FaultEvent:
    """Cut all fabric traffic to/from ``node`` (transient partition)."""
    return FaultEvent(time, "partition", node=node, duration=duration)
