"""Sim-time race sanitizer: detection, exemptions, and the clean gate.

The sanitizer's contract has three legs, each pinned here:

1. it *finds* same-timestamp write/write and read/write overlaps on a
   shared-state cell (seeded synthetic fixtures, plus the pre-fix
   repair-manager spawn path as a regression);
2. it *exempts* orderings that are program-defined (causal chains,
   idempotent same-tag writes) so real code isn't drowned in noise;
3. it *observes only*: the membership smoke scenario runs sanitizer-
   clean, with a bit-for-bit identical event-stream fingerprint.
"""

import pytest

from repro.check import RaceSanitizer, run_races
from repro.check.races import membership_smoke
from repro.simcore import Environment, EventTrace


def _sanitized_env():
    env = Environment()
    san = RaceSanitizer()
    env.attach_sanitizer(san)
    return env, san


def _writer(env, cell, at, mode="w", tag=None):
    yield env.timeout(at)
    env.note_access(cell, mode, tag=tag)


class TestDetection:
    def test_same_timestamp_write_write(self):
        env, san = _sanitized_env()
        env.process(_writer(env, "counter", 1.0), name="a")
        env.process(_writer(env, "counter", 1.0), name="b")
        env.run()
        san.finish()
        assert len(san.reports) == 1
        r = san.reports[0]
        assert r.kind == "w/w"
        assert r.cell == "counter" and r.time == 1.0
        assert r.a_seq < r.b_seq

    def test_read_write_conflicts(self):
        env, san = _sanitized_env()
        env.process(_writer(env, "slot", 1.0, mode="r"), name="reader")
        env.process(_writer(env, "slot", 1.0, mode="w"), name="writer")
        env.run()
        san.finish()
        assert len(san.reports) == 1
        assert san.reports[0].kind in ("r/w", "w/r")

    def test_report_carries_both_stacks_and_describes(self):
        env, san = _sanitized_env()
        env.process(_writer(env, "slot", 1.0), name="a")
        env.process(_writer(env, "slot", 1.0), name="b")
        env.run()
        san.finish()
        (r,) = san.reports
        assert any("_writer" in s for s in r.a_sites)
        assert any("_writer" in s for s in r.b_sites)
        text = r.describe()
        assert "same-timestamp race" in text and "slot" in text
        assert "heap insertion sequence" in text

    def test_final_timestamp_needs_finish(self):
        # the last group is only analyzable once no event can join it
        env, san = _sanitized_env()
        env.process(_writer(env, "slot", 1.0), name="a")
        env.process(_writer(env, "slot", 1.0), name="b")
        env.run()
        assert san.reports == []
        san.finish()
        assert len(san.reports) == 1

    def test_repeated_conflict_reported_once(self):
        env, san = _sanitized_env()

        def loop(env):
            for _ in range(5):
                yield env.timeout(1.0)
                env.note_access("slot", "w")

        env.process(loop(env), name="a")
        env.process(loop(env), name="b")
        env.run()
        san.finish()
        assert len(san.reports) == 1  # same structural pair, deduped


class TestExemptions:
    def test_read_read_is_fine(self):
        env, san = _sanitized_env()
        env.process(_writer(env, "slot", 1.0, mode="r"), name="a")
        env.process(_writer(env, "slot", 1.0, mode="r"), name="b")
        env.run()
        san.finish()
        assert san.reports == []

    def test_distinct_cells_are_fine(self):
        env, san = _sanitized_env()
        env.process(_writer(env, "slot.a", 1.0), name="a")
        env.process(_writer(env, "slot.b", 1.0), name="b")
        env.run()
        san.finish()
        assert san.reports == []

    def test_distinct_timestamps_are_fine(self):
        env, san = _sanitized_env()
        env.process(_writer(env, "slot", 1.0), name="a")
        env.process(_writer(env, "slot", 2.0), name="b")
        env.run()
        san.finish()
        assert san.reports == []

    def test_causal_chain_is_program_ordered(self):
        # parent writes, then spawns the child at the same instant: the
        # child's position after the parent is the program's own choice
        env, san = _sanitized_env()

        def child(env):
            env.note_access("slot", "w", tag="child")
            yield env.timeout(0.0)

        def parent(env):
            yield env.timeout(1.0)
            env.note_access("slot", "w", tag="parent")
            env.process(child(env), name="child")

        env.process(parent(env), name="parent")
        env.run()
        san.finish()
        assert san.reports == []

    def test_sibling_spawns_share_a_root(self):
        # one starter spawning both streams (the repair-manager fix
        # pattern): their order is the starter's loop order
        env, san = _sanitized_env()

        def stream(env, tag):
            env.note_access("slot", "w", tag=tag)
            yield env.timeout(0.0)

        def starter(env):
            yield env.timeout(1.0)
            env.process(stream(env, "s1"), name="s1")
            env.process(stream(env, "s2"), name="s2")

        env.process(starter(env), name="starter")
        env.run()
        san.finish()
        assert san.reports == []

    def test_idempotent_same_tag_writes_commute(self):
        env, san = _sanitized_env()
        env.process(_writer(env, "view.m3", 1.0, tag=(3, 1, "dead")), name="a")
        env.process(_writer(env, "view.m3", 1.0, tag=(3, 1, "dead")), name="b")
        env.run()
        san.finish()
        assert san.reports == []

    def test_differing_tags_still_race(self):
        env, san = _sanitized_env()
        env.process(_writer(env, "view.m3", 1.0, tag=(3, 1, "dead")), name="a")
        env.process(_writer(env, "view.m3", 1.0, tag=(3, 2, "alive")), name="b")
        env.run()
        san.finish()
        assert len(san.reports) == 1

    def test_driver_context_access_is_ignored(self):
        env, san = _sanitized_env()
        env.note_access("slot", "w")  # outside any event: program order
        env.process(_writer(env, "slot", 1.0), name="a")
        env.run()
        san.finish()
        assert san.reports == []

    def test_no_sanitizer_note_access_is_noop(self):
        env = Environment()
        env.note_access("slot", "w")  # must not raise


class TestSmokeGate:
    """The in-tree scenario gate: instrumented components run race-free."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_membership_smoke_is_sanitizer_clean(self, seed):
        san = RaceSanitizer()
        membership_smoke(seed=seed, sanitizer=san)
        assert san.reports == [], "\n\n".join(
            r.describe() for r in san.reports
        )

    def test_sanitizer_leaves_fingerprint_unchanged(self):
        plain = EventTrace()
        membership_smoke(seed=0, trace=plain)
        sanitized = EventTrace()
        membership_smoke(seed=0, sanitizer=RaceSanitizer(), trace=sanitized)
        assert plain.count == sanitized.count
        assert plain.fingerprint == sanitized.fingerprint

    def test_smoke_is_deterministic_across_runs(self):
        a, b = EventTrace(), EventTrace()
        membership_smoke(seed=0, trace=a)
        membership_smoke(seed=0, trace=b)
        assert a.fingerprint == b.fingerprint


class TestRepairSpawnRegression:
    """The race the sanitizer surfaced in-tree: burst recoveries used to
    spawn repair streams straight from their callers, so the first
    ``throttle`` order on the shared limiter was pure heap-insertion
    accident.  The batched starter fixed it; keep both directions pinned.
    """

    def test_old_direct_spawn_races_on_the_limiter(self, monkeypatch):
        from repro.membership.repair import RepairManager

        def direct_spawn(self, server):
            self.in_flight += 1
            self.env.process(
                self._repair(server), name=f"repair.s{server.server_id}"
            )

        monkeypatch.setattr(RepairManager, "on_recover", direct_spawn)
        san = RaceSanitizer()
        membership_smoke(seed=0, sanitizer=san)
        assert any(r.cell == "limiter.repair" for r in san.reports)

    def test_batched_starter_is_clean_and_deterministic(self):
        san = RaceSanitizer()
        a = EventTrace()
        membership_smoke(seed=0, sanitizer=san, trace=a)
        assert not any(r.cell == "limiter.repair" for r in san.reports)
        b = EventTrace()
        membership_smoke(seed=0, trace=b)
        assert a.fingerprint == b.fingerprint


class TestQuotaCellRegression:
    """Per-tenant quota counters are sanitizer cells: an unsynchronized
    same-timestamp update to one tenant's ledger must be caught, while
    the real (causally ordered) charge/release paths stay clean."""

    @staticmethod
    def _ledger(env):
        from repro.tenancy import QuotaLedger, TenantSpec

        return QuotaLedger(env, [TenantSpec(tenant_id=0, quota_bytes=10_000)])

    def test_unsynchronized_charges_race(self):
        env, san = _sanitized_env()
        ledger = self._ledger(env)

        def mover(env):
            yield env.timeout(1.0)
            ledger.charge(0, 2_000)

        env.process(mover(env), name="mover.s0")
        env.process(mover(env), name="mover.s1")
        env.run()
        san.finish()
        assert any(r.cell == "tenancy.quota.t0" for r in san.reports)
        assert any(r.kind == "w/w" for r in san.reports)

    def test_admission_read_racing_a_charge_is_caught(self):
        env, san = _sanitized_env()
        ledger = self._ledger(env)

        def mover(env):
            yield env.timeout(1.0)
            ledger.charge(0, 2_000)

        def admitter(env):
            yield env.timeout(1.0)
            ledger.would_exceed(0, 4_000)

        env.process(mover(env), name="mover.s0")
        env.process(admitter(env), name="admission")
        env.run()
        san.finish()
        assert any(
            r.cell == "tenancy.quota.t0" and r.kind in ("r/w", "w/r")
            for r in san.reports
        )

    def test_sequenced_charge_and_release_are_clean(self):
        env, san = _sanitized_env()
        ledger = self._ledger(env)

        def mover(env):
            yield env.timeout(1.0)
            ledger.charge(0, 2_000)
            ledger.charge(0, 3_000)
            yield env.timeout(1.0)
            ledger.release(0, 2_000)

        env.process(mover(env), name="mover.s0")
        env.run()
        san.finish()
        assert san.reports == []
        assert ledger.used_bytes(0) == 3_000 and ledger.used_files(0) == 1

    def test_distinct_tenants_are_distinct_cells(self):
        from repro.tenancy import QuotaLedger, TenantSpec

        env, san = _sanitized_env()
        ledger = QuotaLedger(
            env, [TenantSpec(tenant_id=0), TenantSpec(tenant_id=1)]
        )

        def mover(env, tid):
            yield env.timeout(1.0)
            ledger.charge(tid, 1_000)

        env.process(mover(env, 0), name="mover.s0")
        env.process(mover(env, 1), name="mover.s1")
        env.run()
        san.finish()
        assert san.reports == []


class TestPrefetchCellRegression:
    """Each server's staging queue head + credit pool is one sanitizer
    cell (``prefetch.queue.s<id>``), written only by that server's
    worker process.  An unsynchronized caller touching the credit
    accounting must be caught, while a real clairvoyant run stays
    sanitizer-clean with an unchanged fingerprint."""

    @staticmethod
    def _fixture(env):
        from repro.cluster import TESTING, Allocation
        from repro.core import HVACDeployment
        from repro.prefetch import ClairvoyantPlanner, LookaheadScheduler
        from repro.storage import GPFS

        spec = TESTING
        alloc = Allocation(env, spec, n_nodes=2)
        pfs = GPFS(env, spec.pfs, 2, spec.network.nic_bandwidth)
        dep = HVACDeployment(alloc, pfs, seed=0)
        files = [(f"/pfs/races/f{i:02d}", 4_000) for i in range(12)]
        plans = {
            n: [files[(i + 5 * n) % len(files)] for i in range(len(files))]
            for n in range(2)
        }
        planner = ClairvoyantPlanner.from_plans(plans)
        sched = LookaheadScheduler(dep, planner, lookahead=4, outstanding=2)
        return dep, sched, plans

    def test_unsynchronized_credit_updates_race(self):
        env, san = _sanitized_env()
        _dep, sched, _plans = self._fixture(env)
        sid = next(iter(sched._cells))

        def taker(env):
            yield env.timeout(1.0)
            sched._take_credit(sid)

        env.process(taker(env), name="taker.a")
        env.process(taker(env), name="taker.b")
        env.run()
        san.finish()
        assert any(r.cell == f"prefetch.queue.s{sid}" for r in san.reports)
        assert any(r.kind == "w/w" for r in san.reports)

    def test_sequenced_credit_cycle_is_clean(self):
        env, san = _sanitized_env()
        _dep, sched, _plans = self._fixture(env)
        sid = next(iter(sched._cells))

        def cycler(env):
            yield env.timeout(1.0)
            sched._take_credit(sid)
            sched._release_credit(sid)
            yield env.timeout(1.0)
            sched._take_credit(sid)

        env.process(cycler(env), name="cycler")
        env.run()
        san.finish()
        assert san.reports == []

    def test_distinct_servers_are_distinct_cells(self):
        env, san = _sanitized_env()
        _dep, sched, _plans = self._fixture(env)
        sids = list(sched._cells)
        assert len(sids) >= 2, "fixture must spread the plan over servers"

        def taker(env, sid):
            yield env.timeout(1.0)
            sched._take_credit(sid)

        for sid in sids[:2]:
            env.process(taker(env, sid), name=f"taker.s{sid}")
        env.run()
        san.finish()
        assert san.reports == []

    def _run_clairvoyant(self, sanitizer=None, trace=None):
        env = Environment()
        if trace is not None:
            env.attach_trace(trace)
        if sanitizer is not None:
            env.attach_sanitizer(sanitizer)
        dep, sched, plans = self._fixture(env)
        dep.attach_prefetch(sched)
        sched.start()

        def reader(env, node):
            cli = dep.client(node)
            for path, size in plans[node]:
                yield from cli.read_file(path, size, node)

        for n in sorted(plans):
            env.process(reader(env, n), name=f"reader.n{n}")
        env.run()
        sched.stop()
        if sanitizer is not None:
            sanitizer.finish()
        return sched

    def test_real_staging_run_is_sanitizer_clean(self):
        san = RaceSanitizer()
        sched = self._run_clairvoyant(sanitizer=san)
        assert sched.files_staged > 0, "fixture must actually stage files"
        assert san.reports == [], "\n\n".join(
            r.describe() for r in san.reports
        )

    def test_sanitizer_leaves_prefetch_fingerprint_unchanged(self):
        plain = EventTrace()
        self._run_clairvoyant(trace=plain)
        sanitized = EventTrace()
        self._run_clairvoyant(sanitizer=RaceSanitizer(), trace=sanitized)
        assert plain.count == sanitized.count
        assert plain.fingerprint == sanitized.fingerprint


class TestRunRaces:
    def test_clean_run_exits_zero_and_writes_marker(self, tmp_path, capsys):
        out = tmp_path / "races.txt"
        assert run_races(seed=0, output=str(out), verbose=False) == 0
        assert "clean" in out.read_text()

    def test_racy_run_exits_nonzero_and_writes_reports(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.membership.repair import RepairManager

        def direct_spawn(self, server):
            self.in_flight += 1
            self.env.process(
                self._repair(server), name=f"repair.s{server.server_id}"
            )

        monkeypatch.setattr(RepairManager, "on_recover", direct_spawn)
        out = tmp_path / "races.txt"
        assert run_races(seed=0, output=str(out), verbose=False) == 1
        text = out.read_text()
        assert "limiter.repair" in text and "same-timestamp race" in text
