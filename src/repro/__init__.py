"""repro — a reproduction of HVAC (Khan et al., IEEE CLUSTER 2022).

High-Velocity AI Cache: a distributed read-only cache over node-local
NVMe for large-scale deep-learning training on HPC systems.

Two execution modes share the HVAC core logic:

* **Simulation** (default): a deterministic discrete-event model of the
  full Summit-like stack — GPFS with metadata/data servers, per-node
  NVMe, an Infiniband-like fabric, Mercury-like RPC — driving the
  paper's DL workloads at up to 1,024 nodes.
* **Runtime** (:mod:`repro.runtime`): a working single-machine HVAC
  over real directories with a Python-level ``open()`` interposer.

Quick start::

    from repro.simcore import Environment
    from repro.cluster import Allocation, SUMMIT
    from repro.storage import GPFS
    from repro.core import HVACDeployment

    env = Environment()
    alloc = Allocation(env, SUMMIT, n_nodes=8)
    pfs = GPFS(env, SUMMIT.pfs, 8, SUMMIT.network.nic_bandwidth)
    hvac = HVACDeployment(alloc, pfs)

See ``examples/`` and DESIGN.md for the full tour.
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "cluster",
    "core",
    "dl",
    "experiments",
    "model",
    "posix",
    "rpc",
    "runtime",
    "simcore",
    "storage",
    "workloads",
]
