"""RACE204 fixture: colliding cell-name templates.

Two problems the shape checker catches: ``pool.<a>`` and
``pool.<a>.<b>`` intersect (an id containing a dot makes two distinct
cells render the same string), and ``job.<t><n>`` concatenates two
holes with no separator, so ``t=1, n=23`` and ``t=12, n=3`` collide.
"""

RACE_CELLS = (
    ("pool.<a>", ("_slots",), "per-pool slot table"),
    ("pool.<a>.<b>", ("_subslots",), "per-slot sub-table"),
    ("job.<t><n>", ("_jobs",), "per-(tenant, job) row"),
)


class Board:
    def __init__(self, env):
        self.env = env
        self._slots = {}
        self._subslots = {}
        self._jobs = {}

    def claim(self, a):
        self.env.note_access(f"pool.{a}", "w")
        self._slots[a] = True

    def subclaim(self, a, b):
        self.env.note_access(f"pool.{a}.{b}", "w")
        self._subslots[(a, b)] = True

    def enqueue(self, t, n):
        self.env.note_access(f"job.{t}{n}", "w")
        self._jobs[(t, n)] = True
