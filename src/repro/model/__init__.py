"""Closed-form analytic performance model (cross-check for the DES)."""

from .analytic import AnalyticModel, EpochPrediction

__all__ = ["AnalyticModel", "EpochPrediction"]
