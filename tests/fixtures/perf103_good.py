"""PERF103 fixture (clean): the label memoized per server — the
f-string runs once per distinct id, and the hot path pays a dict hit."""

_LABELS: dict = {}


def read_label(server_id):
    got = _LABELS.get(server_id)
    if got is None:
        name = f"server{server_id}.read"
        got = _LABELS[server_id] = name
    return got
