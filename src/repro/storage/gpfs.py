"""GPFS-like shared parallel file system (Alpine model).

Reproduces the two bottlenecks that motivate HVAC (paper §II-C):

* **Metadata path** — every ``open`` contacts the metadata server owning
  the file (hash-partitioned namespace) for a lookup plus a read-token
  grant; every ``close`` releases the token.  Each MDS is a serial
  server with finite ops/s, so millions of concurrent small-file opens
  saturate the *low count of metadata resources* exactly as described.
* **Data path** — file contents are striped over NSD data servers, each
  a serial bandwidth server; 154 × 16.3 GB/s ≈ the 2.5 TB/s aggregate
  Summit observes.  The issuing client additionally pays for its own
  node's storage-network link, so a single client can never exceed one
  NIC of PFS bandwidth.

The model intentionally omits writes: HVAC only ever reads from the PFS
(the paper's central simplification), and MDTest here measures the same
read transactions the paper's Figures 3–4 do.
"""

from __future__ import annotations

from typing import Generator

from ..cluster.specs import PFSSpec
from ..simcore import (
    AllOf,
    Environment,
    MetricRegistry,
    Resource,
    stable_hash64,
)
from .base import FileBackend, OpenFile

__all__ = ["GPFS"]


class _MetadataServer:
    """One MDS: serial token/lookup server with finite op throughput."""

    __slots__ = ("env", "res", "op_time")

    def __init__(self, env: Environment, ops_per_sec: float):
        self.env = env
        self.res = Resource(env, capacity=1)
        self.op_time = 1.0 / ops_per_sec

    def do_ops(self, n_ops: float) -> Generator:
        with self.res.request() as slot:
            yield slot
            yield self.env.timeout(n_ops * self.op_time)


class _DataServer:
    """One NSD server: serial bandwidth server plus a pure-delay term.

    The server is *occupied* for ``overhead + transfer`` (this job's
    footprint); the observed ``latency`` on top is interference from the
    rest of the center and delays the caller without consuming this
    server's capacity.
    """

    __slots__ = ("env", "res", "latency", "overhead", "bandwidth")

    def __init__(
        self,
        env: Environment,
        latency: float,
        overhead: float,
        bandwidth: float,
    ):
        self.env = env
        self.res = Resource(env, capacity=1)
        self.latency = latency
        self.overhead = overhead
        self.bandwidth = bandwidth

    def serve(self, nbytes: int) -> Generator:
        yield self.env.timeout(self.latency)
        with self.res.request() as slot:
            yield slot
            yield self.env.timeout(self.overhead + nbytes / self.bandwidth)


class GPFS(FileBackend):
    """The shared parallel file system, sized by a :class:`PFSSpec`."""

    def __init__(
        self,
        env: Environment,
        spec: PFSSpec,
        n_client_nodes: int,
        client_link_bandwidth: float,
        metrics: MetricRegistry | None = None,
    ):
        self.env = env
        self.spec = spec
        self.metrics = metrics or MetricRegistry()
        self._scope = self.metrics.scope("gpfs")
        self._mds = [
            _MetadataServer(env, spec.metadata_ops_per_sec)
            for _ in range(spec.n_metadata_servers)
        ]
        self._nsd = [
            _DataServer(
                env,
                spec.data_latency,
                spec.data_server_overhead,
                spec.data_server_bandwidth,
            )
            for _ in range(spec.n_data_servers)
        ]
        # One storage-network link per client node (shared by all the
        # node's processes): GPFS traffic rides the node NIC.
        self._client_links = [Resource(env, capacity=1) for _ in range(n_client_nodes)]
        self._client_bw = client_link_bandwidth

    # -- placement -------------------------------------------------------
    def mds_for(self, path: str) -> int:
        return stable_hash64("gpfs-mds", path) % len(self._mds)

    def nsd_for(self, path: str, stripe_index: int) -> int:
        # GPFS round-robins stripes from a per-file random start.
        start = stable_hash64("gpfs-nsd", path) % len(self._nsd)
        return (start + stripe_index) % len(self._nsd)

    def stripes_of(self, size: int) -> int:
        return max(1, -(-size // self.spec.stripe_size))

    # -- FileBackend -------------------------------------------------------
    def open(self, path: str, size: int, client_node: int) -> Generator:
        """Lookup + read-token acquisition at the owning MDS."""
        t0 = self.env.now
        yield self.env.timeout(self.spec.client_overhead)
        yield from self._mds[self.mds_for(path)].do_ops(self.spec.ops_per_open)
        self._scope.counter("opens").incr()
        self._scope.tally("open_seconds").add(self.env.now - t0)
        return OpenFile(path=path, size=size, backend=self, client_node=client_node)

    def read(self, handle: OpenFile, nbytes: int) -> Generator:
        """Fetch the stripes covering ``nbytes`` from their NSD servers."""
        if handle.closed:
            raise ValueError(f"read on closed handle {handle.path}")
        nbytes = min(nbytes, handle.size - handle.offset)
        if nbytes <= 0:
            return 0
        t0 = self.env.now
        spec = self.spec
        first = handle.offset // spec.stripe_size
        last = (handle.offset + nbytes - 1) // spec.stripe_size

        # Stripe fetches proceed in parallel on their servers …
        fetches = []
        for stripe in range(first, last + 1):
            lo = max(handle.offset, stripe * spec.stripe_size)
            hi = min(handle.offset + nbytes, (stripe + 1) * spec.stripe_size)
            server = self._nsd[self.nsd_for(handle.path, stripe)]
            fetches.append(self.env.process(server.serve(hi - lo)))
        # … while the client's own link constrains total delivery.
        link = self._client_links[handle.client_node]
        with link.request() as slot:
            yield slot
            yield self.env.timeout(nbytes / self._client_bw)
        yield AllOf(self.env, fetches)

        handle.offset += nbytes
        self._scope.counter("reads").incr()
        self._scope.tally("read_bytes").add(nbytes)
        self._scope.histogram("read_seconds").add(self.env.now - t0)
        return nbytes

    def close(self, handle: OpenFile) -> Generator:
        """Token release at the owning MDS."""
        if handle.closed:
            raise ValueError(f"double close of {handle.path}")
        handle.closed = True
        yield from self._mds[self.mds_for(handle.path)].do_ops(self.spec.ops_per_close)
        self._scope.counter("closes").incr()

    # -- capacity questions ----------------------------------------------
    @property
    def aggregate_bandwidth(self) -> float:
        return self.spec.aggregate_bandwidth

    @property
    def aggregate_metadata_ops(self) -> float:
        return self.spec.aggregate_metadata_ops
