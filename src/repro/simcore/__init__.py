"""Deterministic discrete-event simulation kernel (SimPy-like, from scratch)."""

from .engine import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    StopProcess,
    Timeout,
)
from .cells import cell_name
from .monitor import Counter, Histogram, MetricRegistry, MetricScope, Series, Tally
from .profile import ComponentProfile, SimProfiler
from .rand import RandomStreams, stable_hash64
from .resources import Container, PriorityResource, Resource
from .stores import FilterStore, PriorityStore, Store, StoreFull
from .trace import EventRecord, EventTrace, event_label

__all__ = [
    "AllOf",
    "AnyOf",
    "ComponentProfile",
    "Condition",
    "Container",
    "Counter",
    "Environment",
    "Event",
    "EventRecord",
    "EventTrace",
    "event_label",
    "FilterStore",
    "Histogram",
    "Interrupt",
    "MetricRegistry",
    "MetricScope",
    "PriorityResource",
    "PriorityStore",
    "Process",
    "RandomStreams",
    "cell_name",
    "Resource",
    "Series",
    "SimProfiler",
    "SimulationError",
    "stable_hash64",
    "StopProcess",
    "Store",
    "StoreFull",
    "Tally",
    "Timeout",
]
