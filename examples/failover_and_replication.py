#!/usr/bin/env python3
"""Failure handling and replication (the paper's §III-H future work).

Demonstrates the failure semantics the paper proposes:

* with ``replication_factor=1`` (the prototype), losing a node's NVMe
  degrades to PFS reads — slower, but the training run survives;
* with ``replication_factor=2``, replicas absorb the failure with no
  PFS traffic at all, and recovery brings the node back cold.

    python examples/failover_and_replication.py
"""

from repro.analysis import format_table
from repro.cluster import Allocation, SUMMIT
from repro.core import HVACDeployment
from repro.simcore import Environment
from repro.storage import GPFS

N_NODES = 8
FILES = [(f"/gpfs/alpine/ds/f{i:03d}", 163_000) for i in range(200)]


def epoch(env, dep, tag):
    def reader(node_id):
        cli = dep.client(node_id)
        for path, size in FILES:
            yield from cli.read_file(path, size, node_id)

    t0 = env.now

    def run():
        procs = [env.process(reader(n)) for n in range(N_NODES)]
        for p in procs:
            yield p

    env.run(env.process(run()))
    return env.now - t0


def scenario(replication: int):
    env = Environment()
    spec = SUMMIT.with_hvac(replication_factor=replication)
    alloc = Allocation(env, spec, n_nodes=N_NODES)
    pfs = GPFS(env, spec.pfs, N_NODES, spec.network.nic_bandwidth)
    dep = HVACDeployment(alloc, pfs)

    t_warmup = epoch(env, dep, "cold")
    t_healthy = epoch(env, dep, "warm")
    dep.fail_node(3)  # NVMe failure on node 3
    t_degraded = epoch(env, dep, "after failure")
    fallbacks = dep.metrics.counter("hvac.client_pfs_fallback").value
    dep.recover_node(3)
    t_recovering = epoch(env, dep, "recovering")  # node 3 re-fetches its share
    t_recovered = epoch(env, dep, "recovered")
    dep.teardown()
    return [t_warmup, t_healthy, t_degraded, t_recovering, t_recovered], fallbacks


def main() -> None:
    rows = []
    for repl in (1, 2):
        times, fallbacks = scenario(repl)
        rows.append([f"r={repl}", *times, fallbacks])
    print(format_table(
        ["config", "cold (s)", "warm (s)", "node-3 dead (s)",
         "recovering (s)", "recovered (s)", "PFS fallbacks"],
        rows,
        title=(f"Epoch time across a node failure "
               f"({N_NODES} nodes, {len(FILES)} files/epoch/node)"),
        float_fmt="{:.4f}",
    ))
    print("\nr=1: the failed node's files fall back to GPFS (degraded).")
    print("r=2: replicas keep serving; zero PFS fallbacks (paper §III-H).")


if __name__ == "__main__":
    main()
