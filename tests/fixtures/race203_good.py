"""RACE203 fixture (clean): every write to the celled attribute has a
``note_access`` in scope, wipe included."""

RACE_CELLS = (
    ("store.items", ("_items",), "shared key/value table"),
)


class Store:
    def __init__(self, env):
        self.env = env
        self._items = {}

    def put(self, key, value):
        self.env.note_access("store.items", "w")
        self._items[key] = value

    def wipe(self):
        self.env.note_access("store.items", "w")
        self._items.clear()
