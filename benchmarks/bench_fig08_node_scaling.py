"""Fig 8 (a–d): training time vs node count for the four DL applications.

GPFS / HVAC(1×1) / HVAC(2×1) / HVAC(4×1) / XFS-on-NVMe across the node
sweep, for ResNet50 and TResNet_M on ImageNet21K, CosmoFlow on
cosmoUniverse, and DeepCAM on the climate dataset.  The DES runs a
reduced sweep; the analytic model prints the paper's full 1→1,024 range.
"""

import pytest

from repro.dl import (
    COSMOFLOW,
    COSMOUNIVERSE,
    DEEPCAM,
    DEEPCAM_CLIMATE,
    IMAGENET21K,
    RESNET50,
    TRESNET_M,
)
from repro.experiments import node_scaling, node_scaling_analytic

from conftest import bench_nodes, bench_scale, paper_nodes

PANELS = [
    ("a", RESNET50, IMAGENET21K),
    ("b", TRESNET_M, IMAGENET21K),
    ("c", COSMOFLOW, COSMOUNIVERSE),
    ("d", DEEPCAM, DEEPCAM_CLIMATE),
]


def _run_panel(model, dataset):
    des = node_scaling(
        model,
        dataset,
        bench_nodes(),
        bench_scale(),
        systems=("gpfs", "hvac1", "hvac2", "hvac4", "xfs"),
        total_epochs=10,
    )
    analytic = node_scaling_analytic(model, dataset, paper_nodes(), total_epochs=10)
    return des, analytic


@pytest.mark.parametrize("panel,model,dataset", PANELS, ids=[p[0] for p in PANELS])
@pytest.mark.benchmark(group="fig08")
def test_fig08_panel(benchmark, capsys, panel, model, dataset):
    des, analytic = benchmark.pedantic(
        _run_panel, args=(model, dataset), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(f"--- Fig 8({panel}) ---")
        print(des.render())
        print()
        print(analytic.render() + "   [analytic, full sweep]")
        if panel == "a":
            from repro.analysis import ascii_chart

            print()
            print(ascii_chart(
                analytic.node_counts, analytic.total_minutes,
                title="Fig 8(a) shape: GPFS flattens, HVAC tracks XFS",
                log_x=True, log_y=True,
                x_label="nodes", y_label="minutes",
            ))

    # Ordering claim at every DES point: XFS <= HVAC variants <= ~GPFS.
    # Large-file datasets (CosmoFlow/DeepCAM) get extra slack at small
    # node counts: an unsaturated 2.5 TB/s PFS can legitimately beat
    # per-node NVMe there, and the HVAC-vs-GPFS win only appears once
    # the PFS saturates (checked on the analytic full sweep below).
    gpfs_slack = 1.15 if dataset.mean_file_bytes < 1e6 else 1.35
    for i in range(len(des.node_counts)):
        xfs = des.total_minutes["XFS-on-NVMe"][i]
        hvac4 = des.total_minutes["HVAC(4x1)"][i]
        hvac1 = des.total_minutes["HVAC(1x1)"][i]
        gpfs = des.total_minutes["GPFS"][i]
        assert xfs <= hvac4 * 1.05
        assert hvac4 <= hvac1 * 1.05
        assert hvac1 <= gpfs * gpfs_slack

    # Full-sweep claim: at 1,024 nodes HVAC clearly beats GPFS.
    g = analytic.total_minutes["GPFS"][-1]
    h = analytic.total_minutes["HVAC(4x1)"][-1]
    assert h < g
