"""Scenario executor: one :class:`Scenario` → one :class:`Observation`.

The run phases mirror the hand-written resilience experiments so fuzz
findings transfer to them directly:

1. **warm** — every client reads the full dataset once; its duration
   calibrates the epoch deadline.
2. **inject** — the scenario's fault schedule starts.
3. **measured epochs** — the workload plans run under a deadline
   watchdog; clients that miss it are recorded (and interrupted) as
   hung, never waited on forever.
4. **heal + settle** — run past the last transient fault's heal time,
   force-heal any permanent faults, then wait out every detector
   probation (and a few gossip rounds when membership is on).
5. **recovery epoch** — the same workload once more; its SLO windows
   are what the ``slo_recovery`` invariant inspects.
6. **convergence** — with membership on, wait (bounded) for repair to
   drain and snapshot every client view against ground truth.

Every run gets a :class:`~repro.simcore.EventTrace` (the determinism
fingerprint), a :class:`~repro.obs.SpanRecorder` (per-read byte/retry
accounting), and per-client invariant counters registered as
race-sanitizer cells (``fuzz.reads.n<node>``, or
``fuzz.reads.t<j>.n<node>`` in multi-tenant scenarios) so ``repro fuzz
--races`` extends the ``--races`` guarantee over fuzzed interleavings.

Multi-tenant scenarios (``scenario.tenants > 1``) run one reader unit
per (tenant, client) pair: every unit gets its own fleet client via
``dep.client(node, tenant=j)``, its own namespace's files and plan,
and its own board cell, so tenant isolation holes surface as ordinary
invariant violations.  Single-tenant scenarios keep the exact
pre-tenancy client keys, process names, and cells — their event
fingerprints are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster import Allocation
from ..core import HVACDeployment, client_key_order
from ..obs import SLOReport, SpanRecorder, compute_slo
from ..simcore import (
    AllOf,
    AnyOf,
    Environment,
    EventTrace,
    Interrupt,
    RandomStreams,
)
from ..storage import GPFS
from .invariants import InvariantConfig
from .scenario import Scenario

__all__ = ["EpochResult", "Observation", "execute"]

#: metric counters snapshotted (post-fault deltas) into every observation
_COUNTERS = (
    "client_hits",
    "client_misses",
    "client_retries",
    "client_retry_aborts",
    "client_rpc_timeouts",
    "client_rpc_failures",
    "client_pfs_fallback",
    "client_degraded_reads",
)


@dataclass
class EpochResult:
    """One deadline-supervised workload epoch.

    ``hung_clients`` holds bare node ids in single-tenant runs and
    ``t<j>.n<node>`` labels in multi-tenant runs.
    """

    label: str
    duration: float
    deadline: float
    hung_clients: tuple = ()

    @property
    def hung(self) -> bool:
        return bool(self.hung_clients)


@dataclass
class Observation:
    """Everything the invariant checker needs from one run."""

    scenario: Scenario
    warm_duration: float = 0.0
    epochs: list[EpochResult] = field(default_factory=list)
    aborted: bool = False
    t_fault: float = 0.0
    t_heal: float = 0.0
    t_settled: float = 0.0
    t_converged: float | None = None
    t_end: float = 0.0
    allowed_strikes: int = 0
    reads_planned: int = 0
    spans: SpanRecorder = field(default_factory=SpanRecorder)
    counters: dict[str, int] = field(default_factory=dict)
    #: merged ``(t, owner_client, kind, server_id)`` detector transitions
    detector_transitions: list[tuple] = field(default_factory=list)
    #: merged ``(t, owner_client, sid, old, new, inc, why)`` view log
    membership_transitions: list[tuple] = field(default_factory=list)
    #: human-readable view/ground-truth mismatches at the final snapshot
    unconverged: list[str] = field(default_factory=list)
    repair_in_flight: int = 0
    fingerprint: str = ""
    slo: SLOReport | None = None


@dataclass(frozen=True)
class _Unit:
    """One reader: a (tenant, client) pair with its plan and dataset.

    ``tenant`` is ``None`` in single-tenant scenarios so the client
    keys, process names, and board cells stay byte-identical to the
    pre-tenancy executor (existing corpus fingerprints still hold).
    """

    tenant: int | None
    node: int
    plan: tuple
    files: tuple
    delay: float
    think: float

    @property
    def key(self):
        return self.node if self.tenant is None else (self.node, self.tenant)

    @property
    def label(self) -> str:
        if self.tenant is None:
            return f"n{self.node}"
        return f"t{self.tenant}.n{self.node}"

    @property
    def cell(self) -> str:
        return f"fuzz.reads.{self.label}"

    @property
    def hung_id(self):
        return self.node if self.tenant is None else self.label


class _Board:
    """Per-scenario invariant counters, one sanitizer cell per reader.

    Each cell has a single writer (that unit's reader process); the
    epoch watchdog reads them all at the deadline to name the hung
    clients.  Registering them keeps ``--races`` meaningful over fuzz
    runs: if a refactor ever lets two events touch one unit's counter
    at the same timestamp — or lets a read completion tie with the
    deadline — the sanitizer reports it.
    """

    def __init__(self, env, units):
        self.env = env
        self.cells = {u.key: u.cell for u in units}
        self.started = {u.key: 0 for u in units}
        self.done = {u.key: 0 for u in units}

    def begin_read(self, key) -> None:
        self.env.note_access(self.cells[key], "w")
        self.started[key] += 1

    def end_read(self, key) -> None:
        self.env.note_access(self.cells[key], "w")
        self.done[key] += 1

    def unfinished(self, key, planned: int) -> bool:
        self.env.note_access(self.cells[key], "r")
        return self.done[key] < planned


def _force_heal(dep: HVACDeployment, scenario: Scenario) -> None:
    """Heal permanent faults the injector never will (duration=None)."""
    for ev in scenario.faults:
        if ev.duration is not None or ev.kind == "flap":
            continue
        node = ev.node
        if node is None:
            continue
        if ev.kind == "crash":
            if not all(s.alive for s in dep.servers_on_node(node)):
                dep.recover_node(node)
        elif ev.kind == "hang":
            if any(s.hung for s in dep.servers_on_node(node)):
                dep.unhang_node(node)
        elif ev.kind == "degrade":
            dep.restore_node(node)


def _owner_label(key):
    """Bare node id for classic clients, ``t<j>.n<node>`` for fleet ones."""
    return key if isinstance(key, int) else f"t{key[1]}.n{key[0]}"


def _detector_transitions(dep) -> list[tuple]:
    rows = []
    for key in sorted(dep._clients, key=client_key_order):
        cli = dep._clients[key]
        norm = client_key_order(key)
        for t, kind, sid in cli.detector.transitions:
            rows.append(((t, norm, kind, sid), (t, _owner_label(key), kind, sid)))
    rows.sort(key=lambda r: r[0])
    return [r[1] for r in rows]


def _membership_transitions(dep) -> list[tuple]:
    rows = []
    for key in sorted(dep.views, key=client_key_order):
        norm = client_key_order(key)
        owner = _owner_label(key)
        for t, sid, old, new, inc, why in dep.views[key].transitions:
            rows.append(((t, norm, sid), (t, owner, sid, old, new, inc, why)))
    rows.sort(key=lambda r: r[0])
    return [r[1] for r in rows]


def _view_mismatches(dep) -> list[str]:
    """Client views vs ground truth, post-heal: every healthy server
    must be routable again (the remap/repair story's end state)."""
    out = []
    for node in sorted(dep.views, key=client_key_order):
        view = dep.views[node]
        for server in dep.servers:
            healthy = server.alive and not server.hung
            if healthy and not view.routable(server.server_id):
                out.append(
                    f"client {_owner_label(node)} still routes around "
                    f"healthy server "
                    f"{server.server_id} (state "
                    f"{view.state_of(server.server_id)})"
                )
    return out


def execute(
    scenario: Scenario,
    config: InvariantConfig | None = None,
    trace: EventTrace | None = None,
    sanitizer=None,
) -> Observation:
    """Run one scenario end to end; never raises on scenario behavior
    (hung epochs are recorded and interrupted, not waited out)."""
    config = config or InvariantConfig()
    spec = scenario.spec()
    n_nodes = scenario.n_nodes

    env = Environment()
    if trace is None:
        trace = EventTrace()
    env.attach_trace(trace)
    if sanitizer is not None:
        env.attach_sanitizer(sanitizer)

    alloc = Allocation(
        env, spec, n_nodes=n_nodes,
        rand=RandomStreams(scenario.seed).child("cluster"),
    )
    pfs = GPFS(env, spec.pfs, n_nodes, spec.network.nic_bandwidth)
    spans = SpanRecorder()
    dep = HVACDeployment(alloc, pfs, seed=scenario.seed, spans=spans)

    files = scenario.files()
    if dep.repair is not None:
        dep.repair.attach_manifest(files)

    obs = Observation(
        scenario=scenario,
        spans=spans,
        allowed_strikes=spec.hvac.rpc_max_retries,
    )
    multi = scenario.tenants > 1
    units: list[_Unit] = []
    for j in range(scenario.tenants):
        twl = scenario.workload_of(j)
        tplans = scenario.plans(tenant=j)
        tfiles = scenario.files(j)
        straggler = twl.clients[-1] if twl.kind == "straggler" else None
        for n in twl.clients:
            units.append(
                _Unit(
                    tenant=j if multi else None,
                    node=n,
                    plan=tuple(tplans[n]),
                    files=tuple(tfiles),
                    delay=twl.straggler_delay if n == straggler else 0.0,
                    think=twl.think if n == straggler else 0.0,
                )
            )
    obs.reads_planned = scenario.epochs * sum(len(u.plan) for u in units)
    board = _Board(env, units)

    sched = None
    if scenario.prefetch:
        from ..prefetch import ClairvoyantPlanner, LookaheadScheduler

        # The full demand order each reader will issue: the warm pass
        # over the dataset, then the measured epochs, then the recovery
        # epoch.  A reader interrupted mid-epoch re-enters off-plan and
        # simply freezes its window (divergence, not a fault).
        plan_entries = {
            u.key: tuple(u.files) + u.plan * (scenario.epochs + 1)
            for u in units
        }
        sched = LookaheadScheduler(dep, ClairvoyantPlanner.from_plans(plan_entries))
        dep.attach_prefetch(sched)
        sched.start()

    def reader(unit, warmup=False):
        cli = dep.client(unit.node, tenant=unit.tenant)
        delay = 0.0 if warmup else unit.delay
        think = 0.0 if warmup else unit.think
        plan = unit.files if warmup else unit.plan
        try:
            if delay > 0.0:
                yield env.timeout(delay)
            for path, size in plan:
                if not warmup:
                    board.begin_read(unit.key)
                yield from cli.read_file(path, size, unit.node)
                if not warmup:
                    board.end_read(unit.key)
                if think > 0.0:
                    yield env.timeout(think)
        except Interrupt:
            return  # deadline watchdog gave up on this epoch

    def warm_epoch() -> float:
        t0 = env.now
        procs = [
            env.process(reader(u, warmup=True), name=f"fuzz.warm.{u.label}")
            for u in units
        ]

        def wait():
            yield AllOf(env, procs)

        env.run(env.process(wait(), name="fuzz.warm"))
        return env.now - t0

    def epoch(label: str, deadline: float) -> EpochResult:
        t0 = env.now
        done_before = dict(board.done)
        procs = {
            u.key: env.process(reader(u), name=f"fuzz.{label}.{u.label}")
            for u in units
        }
        all_done = AllOf(env, list(procs.values()))
        overdue = env.timeout(deadline)
        hung: list = []

        def watchdog():
            yield AnyOf(env, [all_done, overdue])
            for u in units:
                planned = done_before[u.key] + len(u.plan)
                if board.unfinished(u.key, planned):
                    hung.append(u.hung_id)

        env.run(env.process(watchdog(), name=f"fuzz.{label}.watchdog"))
        if hung:
            for u in units:
                if procs[u.key].is_alive:
                    procs[u.key].interrupt("epoch deadline")
            alive = [p for p in procs.values() if p.is_alive]
            if alive:

                def reap():
                    yield AllOf(env, alive)

                env.run(env.process(reap(), name=f"fuzz.{label}.reap"))
        return EpochResult(label, env.now - t0, deadline, tuple(hung))

    # 1: warm (fault-free, so it terminates without supervision)
    obs.warm_duration = warm_epoch()
    deadline = config.deadline_slack + config.deadline_factor * obs.warm_duration

    # 2: inject
    obs.t_fault = env.now
    base_counts = {
        name: dep.metrics.counter(f"hvac.{name}").value for name in _COUNTERS
    }
    dep.inject(scenario.schedule())

    # 3: measured epochs
    for i in range(scenario.epochs):
        result = epoch(f"e{i}", deadline)
        obs.epochs.append(result)
        if result.hung:
            obs.aborted = True
            break

    # 4: heal + settle
    obs.t_heal = obs.t_fault + scenario.heal_horizon()
    if not obs.aborted:
        if obs.t_heal > env.now:
            env.run(until=obs.t_heal)
        _force_heal(dep, scenario)
        settle = obs.t_heal + 2 * spec.hvac.probation_period
        for node in sorted(dep._clients, key=client_key_order):
            det = dep._clients[node].detector
            settle = max(settle, max(det._until, default=0.0))
        if scenario.membership:
            settle += 3 * spec.hvac.gossip_interval + spec.hvac.suspect_to_dead
        if settle > env.now:
            env.run(until=settle + 1e-6)
        obs.t_settled = env.now

        # 5: recovery epoch
        recovery = epoch("recovery", deadline)
        obs.epochs.append(recovery)
        if recovery.hung:
            obs.aborted = True

    # 6: convergence (membership stack only)
    if not obs.aborted and dep.repair is not None:
        conv_deadline = obs.t_settled + config.convergence_window
        while dep.repair.in_flight > 0 and env.now < conv_deadline:
            env.run(until=min(env.now + 1e-3, conv_deadline) + 1e-9)
        if dep.repair.in_flight == 0:
            obs.t_converged = env.now
    if dep.repair is not None:
        obs.repair_in_flight = dep.repair.in_flight
    if scenario.membership and not obs.aborted:
        obs.unconverged = _view_mismatches(dep)

    obs.t_end = env.now
    obs.counters = {
        name: dep.metrics.counter(f"hvac.{name}").value - base_counts[name]
        for name in _COUNTERS
    }
    obs.detector_transitions = _detector_transitions(dep)
    obs.membership_transitions = _membership_transitions(dep)
    if sched is not None:
        sched.stop()
    dep.teardown()

    if obs.t_end > obs.t_fault and not obs.aborted:
        window = (obs.t_end - obs.t_fault) / config.windows
        obs.slo = compute_slo(
            spans, window, origin=obs.t_fault, horizon=obs.t_end
        )
    obs.fingerprint = trace.fingerprint
    return obs
