"""Cache pre-population — the paper's named future work.

§IV-C: *"Our future work will investigate utilizing prefetching
techniques to pre-populate the HVAC cache and reduce the performance
overhead of epoch-1."*

:class:`CachePrefetcher` implements the natural design: at job start,
every server walks the list of files it *homes* (computable locally
from the shared placement function — no coordination, in keeping with
HVAC's no-metadata philosophy) and pulls them from the PFS through its
normal data-mover path.  Demand reads that arrive for a file whose
prefetch is in flight dedup against it via the server's existing
in-flight table, so prefetching composes with epoch-1 instead of racing
it.

``max_outstanding`` throttles each server's prefetch stream so demand
requests queued behind it on the shared FIFO are not starved.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

from ..rpc import RPCError, RPCTimeout
from ..simcore import AllOf, Environment, Event, Process
from .deployment import HVACDeployment
from .server import HVACServer, ReadRequest

__all__ = ["CachePrefetcher"]


class CachePrefetcher:
    """Pre-populates an HVAC deployment's caches from the PFS."""

    def __init__(
        self,
        deployment: HVACDeployment,
        paths: Sequence[str],
        sizes: Sequence[int],
        max_outstanding: int = 4,
    ):
        if len(paths) != len(sizes):
            raise ValueError("paths and sizes must have equal length")
        if max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        self.deployment = deployment
        self.env: Environment = deployment.env
        self.max_outstanding = max_outstanding
        # Partition the file list by home server — each server's worker
        # computes this from the placement alone (metadata-free).
        self._per_server: dict[int, list[tuple[str, int]]] = {}
        placement = deployment.placement
        for path, size in zip(paths, sizes):
            home = placement.home(path)
            self._per_server.setdefault(home, []).append((path, int(size)))
        self._proc: Optional[Process] = None
        self.files_prefetched = 0
        self.bytes_prefetched = 0

    # -- driving -----------------------------------------------------------
    def start(self) -> Process:
        """Launch prefetch workers on every involved server."""
        if self._proc is not None:
            raise RuntimeError("prefetcher already started")
        self._proc = self.env.process(self._run(), name="hvac.prefetch")
        return self._proc

    @property
    def done(self) -> bool:
        return self._proc is not None and not self._proc.is_alive

    def _run(self) -> Generator:
        workers = [
            self.env.process(
                self._server_worker(self.deployment.servers[sid], files),
                name=f"hvac.prefetch.s{sid}",
            )
            for sid, files in self._per_server.items()
        ]
        yield AllOf(self.env, workers)

    def _server_worker(
        self, server: HVACServer, files: list[tuple[str, int]]
    ) -> Generator:
        """Issue this server's homed files through its data-mover FIFO,
        ``max_outstanding`` at a time (a sliding window, not batch
        drain: the old drain-all-then-refill loop re-enqueued a full
        wave at the completion instant, so a demand read landing at
        that same instant was ordered behind it by heap-insertion
        accident)."""
        outstanding: list[Event] = []
        for path, size in files:
            if len(outstanding) >= self.max_outstanding:
                try:
                    yield outstanding.pop(0)
                except (RPCError, RPCTimeout):
                    # The server died mid-fetch; abandon its slice — a
                    # prefetch has no caller to propagate into, and the
                    # demand path degrades on its own.
                    return
                # Give up the turn before reusing the freed slot: any
                # demand read dispatched at this instant reaches the
                # FIFO ahead of the next prefetch put, making the
                # ordering causal instead of accidental.
                yield self.env.timeout(0.0)
            if not server.alive:
                return
            if server.cache.contains(path):
                continue  # demand traffic beat us to it
            req = ReadRequest(
                path=path,
                size=size,
                client_node=server.node_id,
                done=self.env.event(),
            )
            yield server.queue.put(req)
            outstanding.append(req.done)
            # race: waive RACE201 -- commutative counter increment; worker order never surfaces
            self.files_prefetched += 1
            # race: waive RACE201 -- commutative counter increment
            self.bytes_prefetched += size
        while outstanding:
            try:
                yield outstanding.pop(0)
            except (RPCError, RPCTimeout):
                return
