"""DL training datasets (paper §IV-A3).

The two datasets the paper evaluates with:

* **ImageNet21K** — 11,797,632 training files, ~163 KB average (1.1 TB
  total for a compressed copy; reported total 1.1 TB for the sampled
  variant the paper used), long-tailed JPEG size distribution.
* **cosmoUniverse** — 524,288 training TFRecords, 1.3 TB total
  (≈2.5 MB/file), near-uniform sizes (preprocessed records).

plus a DeepCAM-like preset (MLPerf-HPC climate segmentation: large
HDF5 samples) used for Fig 8d / Fig 12b.

A :class:`SyntheticDataset` materializes paths and per-file sizes from a
seeded size distribution.  ``scaled(...)`` produces a *statistically
representative* smaller dataset for tractable event counts: same mean
file size and distribution shape, fewer files, with ``scale_factor``
recording the time-extrapolation multiplier (see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..simcore import RandomStreams

__all__ = [
    "DatasetSpec",
    "SyntheticDataset",
    "IMAGENET21K",
    "COSMOUNIVERSE",
    "DEEPCAM_CLIMATE",
    "OPENIMAGES",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Statistical description of a training dataset."""

    name: str
    n_train_files: int
    n_valid_files: int
    mean_file_bytes: float
    #: lognormal sigma; 0 → all files exactly mean-sized
    size_sigma: float
    pfs_dir: str = "/gpfs/alpine/dataset"

    @property
    def total_train_bytes(self) -> float:
        return self.n_train_files * self.mean_file_bytes

    def scaled_to(self, n_files: int) -> "DatasetSpec":
        """Same distribution, fewer files (validation scales along)."""
        if n_files < 1:
            raise ValueError("n_files must be >= 1")
        ratio = n_files / self.n_train_files
        return replace(
            self,
            n_train_files=n_files,
            n_valid_files=max(1, int(self.n_valid_files * ratio)),
        )


#: ImageNet-21K as used for ResNet50 / TResNet_M (paper Table-less §IV-A3).
IMAGENET21K = DatasetSpec(
    name="imagenet21k",
    n_train_files=11_797_632,
    n_valid_files=561_052,
    mean_file_bytes=163_000.0,
    size_sigma=0.6,
    pfs_dir="/gpfs/alpine/imagenet21k/train",
)

#: cosmoUniverse TFRecords for CosmoFlow (1.3 TB / 524,288 samples).
COSMOUNIVERSE = DatasetSpec(
    name="cosmouniverse",
    n_train_files=524_288,
    n_valid_files=65_536,
    mean_file_bytes=2.48e6,
    size_sigma=0.05,
    pfs_dir="/gpfs/alpine/cosmoUniverse/train",
)

#: DeepCAM climate data: 768×1152×16 samples, large HDF5 files.
DEEPCAM_CLIMATE = DatasetSpec(
    name="deepcam-climate",
    n_train_files=121_266,
    n_valid_files=15_158,
    mean_file_bytes=14.3e6,
    size_sigma=0.02,
    pfs_dir="/gpfs/alpine/deepcam/train",
)

#: Open Images (mentioned in the paper's motivation: ~9 M images).
OPENIMAGES = DatasetSpec(
    name="openimages",
    n_train_files=9_000_000,
    n_valid_files=125_436,
    mean_file_bytes=210_000.0,
    size_sigma=0.7,
    pfs_dir="/gpfs/alpine/openimages/train",
)


class SyntheticDataset:
    """Materialized file list: paths + per-file sizes.

    Paths are stable functions of (dataset name, index) so placement and
    shuffles are reproducible across runs and backends.
    """

    def __init__(self, spec: DatasetSpec, seed: int = 0):
        self.spec = spec
        self.seed = seed
        rand = RandomStreams(seed)
        n = spec.n_train_files
        if spec.size_sigma > 0:
            self.sizes = rand.lognormal_sizes(
                f"{spec.name}.sizes", spec.mean_file_bytes, spec.size_sigma, n
            )
        else:
            self.sizes = np.full(n, int(spec.mean_file_bytes), dtype=np.int64)
        self._prefix = spec.pfs_dir.rstrip("/")

    def __len__(self) -> int:
        return self.spec.n_train_files

    def path(self, index: int) -> str:
        if not 0 <= index < len(self):
            raise IndexError(index)
        return f"{self._prefix}/{self.spec.name}-{index:09d}"

    def size(self, index: int) -> int:
        return int(self.sizes[index])

    def paths(self) -> list[str]:
        return [self.path(i) for i in range(len(self))]

    @property
    def total_bytes(self) -> int:
        return int(self.sizes.sum())

    @classmethod
    def scaled(
        cls, spec: DatasetSpec, n_files: int, seed: int = 0
    ) -> tuple["SyntheticDataset", float]:
        """A representative sub-dataset plus its time scale factor."""
        ds = cls(spec.scaled_to(n_files), seed=seed)
        return ds, spec.n_train_files / n_files

    def epoch_order(self, epoch: int, seed: int = 0) -> np.ndarray:
        """The global shuffled file order for ``epoch``.

        Seeded by (dataset seed, shuffle seed, epoch) only — crucially
        *not* by the storage backend, which is the paper's Fig 14
        invariant: HVAC never perturbs the SGD shuffle sequence.
        """
        rand = RandomStreams(self.seed)
        return rand.child(f"shuffle-{seed}").shuffled(f"epoch-{epoch}", len(self))
