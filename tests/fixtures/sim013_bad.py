"""SIM013 fixture: unordered-container taint through function returns.

``candidates()`` returns a set; ``pick()`` forwards it verbatim through
its own ``return``, so ``drain()``'s loop replays in hash order even
though no set expression appears anywhere near the loop — only the
return-tracking taint pass (SIM013) can follow the container across two
return boundaries to the iteration site.
"""


def candidates():
    return {"a", "b", "c"}


def pick():
    return candidates()


def drain(out):
    for name in pick():
        out.append(name)
