"""Fault injection and failure detection (paper §III-H, made honest).

The seed reproduction *asserted* resilience: tests killed a server by
hand and the client consulted an omniscient ``server.alive`` flag.  This
package replaces both sides of that oracle:

* :class:`FaultSchedule` / :class:`Injector` — a declarative, seedable
  list of fault events (crash, crash-recover, hang, flapping, NVMe
  degradation, flaky links, partitions) driven against a deployment
  inside the simulation clock;
* :class:`FailureDetector` — client-side liveness *suspicion* built only
  from observed RPC timeouts and errors, with blacklisting, probation
  and re-probing.  No component ever reads another's health flag.
"""

from .detector import FailureDetector
from .injector import Injector
from .schedule import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    crash,
    degrade,
    flaky_link,
    flap,
    hang,
    partition,
)

__all__ = [
    "crash",
    "degrade",
    "FailureDetector",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "flaky_link",
    "flap",
    "hang",
    "Injector",
    "partition",
]
