"""PERF103 fixture: a metric label built eagerly on every call.

The f-string interpolates ``server_id`` on each invocation even though
the result is the same for a given server."""


def read_label(server_id):
    return f"server{server_id}.read"
