"""Tests for system setups and the MDTest workload."""

import pytest

from repro.baselines import (
    SYSTEM_SETUPS,
    GPFSSetup,
    HVACSetup,
    LPCCLikeSetup,
    XFSSetup,
)
from repro.cluster import SUMMIT, TESTING
from repro.dl import IMAGENET21K, SyntheticDataset
from repro.simcore import Environment
from repro.workloads import MDTestConfig, run_mdtest


def dataset(n=256):
    return SyntheticDataset.scaled(IMAGENET21K, n)[0]


class TestSetups:
    def test_registry_has_paper_lineup(self):
        assert set(SYSTEM_SETUPS) == {"gpfs", "hvac1", "hvac2", "hvac4", "xfs"}

    def test_labels(self):
        assert GPFSSetup().label == "GPFS"
        assert XFSSetup().label == "XFS-on-NVMe"
        assert HVACSetup(2).label == "HVAC(2x1)"

    def test_hvac_invalid_instances(self):
        with pytest.raises(ValueError):
            HVACSetup(0)

    def test_gpfs_backend_shared_across_nodes(self):
        env = Environment()
        h = GPFSSetup().build(env, TESTING, 4, dataset())
        assert h.backend_for_node(0) is h.backend_for_node(3)

    def test_xfs_backend_per_node(self):
        env = Environment()
        h = XFSSetup().build(env, TESTING, 4, dataset())
        assert h.backend_for_node(0) is not h.backend_for_node(1)

    def test_xfs_stage_time_positive(self):
        env = Environment()
        h = XFSSetup().build(env, SUMMIT, 4, dataset())
        assert h.stage_time > 0

    def test_hvac_deployment_attached(self):
        env = Environment()
        h = HVACSetup(2).build(env, TESTING, 4, dataset())
        assert h.deployment is not None
        assert h.deployment.n_servers == 8
        h.teardown()
        assert all(not s.alive for s in h.deployment.servers)

    def test_lpcc_like_pins_locally(self):
        env = Environment()
        h = LPCCLikeSetup().build(env, TESTING, 4, dataset(32))
        files = [(f"/d/f{i}", 10_000) for i in range(20)]

        def reader():
            cli = h.backend_for_node(2)
            for path, size in files:
                yield from cli.read_file(path, size, 2)

        env.run(env.process(reader()))
        for server in h.deployment.servers:
            if server.node_id != 2:
                assert server.cache.n_files == 0


class TestMDTest:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            MDTestConfig(n_nodes=0)
        with pytest.raises(ValueError):
            MDTestConfig(n_nodes=1, file_size=0)

    def test_single_pass_transaction_count(self):
        env = Environment()
        h = XFSSetup().build(env, TESTING, 2, dataset())
        cfg = MDTestConfig(n_nodes=2, ranks_per_node=3, file_size=1024, files_per_rank=5)
        res = run_mdtest(env, cfg, h.backend_for_node, h.label)
        assert res.transactions == 2 * 3 * 5
        assert res.tx_per_sec > 0

    def test_stonewall_window(self):
        env = Environment()
        h = XFSSetup().build(env, TESTING, 1, dataset())
        cfg = MDTestConfig(
            n_nodes=1, ranks_per_node=2, file_size=1024,
            files_per_rank=4, window_seconds=0.01,
        )
        res = run_mdtest(env, cfg, h.backend_for_node, h.label)
        assert res.elapsed >= 0.01
        # ranks re-loop: more transactions than one pass
        assert res.transactions > 8

    def test_xfs_beats_gpfs_small_files(self):
        """The motivating gap of Figs 3."""
        rates = {}
        for name in ("gpfs", "xfs"):
            env = Environment()
            h = SYSTEM_SETUPS[name].build(env, SUMMIT, 4, dataset())
            cfg = MDTestConfig(n_nodes=4, ranks_per_node=6,
                               file_size=32 * 1024, files_per_rank=8)
            rates[name] = run_mdtest(env, cfg, h.backend_for_node, h.label).tx_per_sec
        assert rates["xfs"] > 2 * rates["gpfs"]

    def test_gpfs_saturates_with_nodes(self):
        """Fig 3's shape: GPFS tx/s stops scaling, XFS keeps going."""
        def rate(name, nodes):
            env = Environment()
            h = SYSTEM_SETUPS[name].build(env, SUMMIT, nodes, dataset())
            cfg = MDTestConfig(n_nodes=nodes, ranks_per_node=6,
                               file_size=32 * 1024, files_per_rank=6)
            return run_mdtest(env, cfg, h.backend_for_node, h.label).tx_per_sec

        gpfs_speedup = rate("gpfs", 128) / rate("gpfs", 8)
        xfs_speedup = rate("xfs", 128) / rate("xfs", 8)
        assert xfs_speedup > 14  # linear
        assert gpfs_speedup < xfs_speedup / 1.5  # saturating

    def test_bandwidth_property(self):
        env = Environment()
        h = XFSSetup().build(env, TESTING, 1, dataset())
        cfg = MDTestConfig(n_nodes=1, ranks_per_node=1, file_size=1000, files_per_rank=3)
        res = run_mdtest(env, cfg, h.backend_for_node, h.label)
        assert res.read_bandwidth == pytest.approx(res.tx_per_sec * 1000)
