"""Multi-tenant isolation experiment: partition-vs-share under a storm.

The driver behind ``repro tenancy``.  One hot-storm scenario — a small
*victim* tenant serving hot-skewed inference reads while an *aggressor*
tenant thrashes the fleet with a dataset several times the aggregate
cache — is replayed under the three cache-tenancy policies:

* ``shared``    — one global LRU pool (the status quo): the aggressor's
  churn evicts the victim's working set, so victim reads keep missing
  into a PFS the storm has already saturated — deadline strikes, retry
  walks, PFS fallbacks, blown p99;
* ``dedicated`` — hard per-tenant slabs: perfect isolation, zero
  statistical multiplexing;
* ``weighted``  — weighted-fair with per-tenant watermarks: the victim's
  resident set sits under its watermark so eviction always bills the
  over-water aggressor.

Reported per policy: the victim's p99 and degraded-read fraction during
the storm (from the per-tenant SLO rollup), the aggressor's p99, cache
occupancy per tenant, and quota refusals.  The dominance claim mirrors
``repro membership``: **weighted-fair strictly beats shared-global-LRU
for the victim (p99 and degraded fraction) at bounded aggressor cost.**

A second section exercises the fleet lifecycle end to end: a seeded
job-arrival mix replayed through the admission controller (admit /
queue / degrade-to-PFS / reject) with the resulting per-job log.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

from ..analysis import count_strip, degradation_dashboard, format_table
from ..cluster import ClusterSpec
from ..obs import SLOReport, SpanRecorder, compute_slo
from ..simcore import AllOf
from ..tenancy import (
    TENANCY_MODES,
    TenantFleet,
    TenantSpec,
    run_jobs,
    sample_jobs,
)
from .resilience import _build, _fault_spec

__all__ = [
    "TENANCY_SPEC_OVERRIDES",
    "TenancyResult",
    "tenancy_isolation",
]

#: storm tuning on top of resilience's FAULT_SPEC_OVERRIDES: global LRU
#: (the policy the shared mode is named for) and a deadline sitting
#: between an NVMe hit (~0.7 ms on TESTING) and a PFS fetch queued
#: behind the storm (>= 4 ms), so every cache-isolation failure
#: surfaces as a *degraded* read (deadline strike -> retry/fallback),
#: not just a slow one.  ``suspect_after`` is effectively disabled:
#: the servers are healthy — the strikes are congestion, and letting
#: them trip probation would turn the comparison into a failover test.
TENANCY_SPEC_OVERRIDES = dict(
    eviction_policy="lru",
    rpc_timeout=0.003,
    rpc_max_retries=2,
    suspect_after=1_000_000,
)


def _victim_spec(n_files: int, file_size: int) -> TenantSpec:
    return TenantSpec(
        tenant_id=0,
        name="victim",
        kind="inference",
        n_files=n_files,
        file_size=file_size,
        hot_fraction=0.8,
    )


def _aggressor_spec(n_files: int, file_size: int) -> TenantSpec:
    return TenantSpec(
        tenant_id=1,
        name="aggressor",
        kind="training",
        n_files=n_files,
        file_size=file_size,
    )


@dataclass
class ModeOutcome:
    """Everything one policy's storm run produced."""

    mode: str
    storm_seconds: float = 0.0
    victim_reads: int = 0
    victim_p50: float = math.nan
    victim_p99: float = math.nan
    victim_degraded_fraction: float = 0.0
    aggressor_p99: float = math.nan
    aggressor_degraded_fraction: float = 0.0
    #: fleet-wide resident bytes per tenant at storm end
    occupancy: dict[int, int] = field(default_factory=dict)
    refusals: int = 0
    pfs_fallbacks: int = 0
    slo: SLOReport | None = None


@dataclass
class TenancyResult:
    """Three-policy storm comparison + the admission-control demo."""

    n_nodes: int
    victim: TenantSpec
    aggressor: TenantSpec
    storm_passes: int
    windows: int
    aggressor_cost_bound: float
    outcomes: dict[str, ModeOutcome] = field(default_factory=dict)
    #: (tenant, kind, action, t_arrive, t_start, t_done, reads)
    admission_rows: list[list] = field(default_factory=list)
    admission_counts: dict[str, int] = field(default_factory=dict)
    dashboard: str = ""

    def rows(self) -> list[list]:
        out = []
        for mode, oc in self.outcomes.items():
            out.append([
                mode,
                oc.victim_p50,
                oc.victim_p99,
                f"{oc.victim_degraded_fraction:.1%}",
                oc.aggressor_p99,
                oc.occupancy.get(self.victim.tenant_id, 0),
                oc.occupancy.get(self.aggressor.tenant_id, 0),
                oc.pfs_fallbacks,
                oc.storm_seconds,
            ])
        return out

    def dominates(self) -> bool:
        """The acceptance predicate: weighted-fair strictly beats the
        shared global LRU for the victim — lower p99 *and* lower
        degraded fraction — while costing the aggressor no more than
        ``aggressor_cost_bound`` times its shared-mode p99."""
        shared = self.outcomes["shared"]
        weighted = self.outcomes["weighted"]
        bounded = (
            math.isnan(shared.aggressor_p99)
            or weighted.aggressor_p99
            <= self.aggressor_cost_bound * shared.aggressor_p99
        )
        return (
            weighted.victim_p99 < shared.victim_p99
            and weighted.victim_degraded_fraction < shared.victim_degraded_fraction
            and bounded
        )

    def render(self) -> str:
        blocks = [format_table(
            ["policy", "victim p50", "victim p99", "victim degr",
             "aggr p99", "victim B", "aggr B", "PFS fb", "storm (s)"],
            self.rows(),
            title=(f"Hot-storm isolation ({self.n_nodes} nodes; victim "
                   f"{self.victim.n_files}x{self.victim.file_size}B hot reads "
                   f"vs aggressor {self.aggressor.n_files}x"
                   f"{self.aggressor.file_size}B thrash, "
                   f"{self.storm_passes} passes)"),
            float_fmt="{:.4f}",
        )]
        verdict = "yes" if self.dominates() else "NO"
        blocks.append(
            "weighted-fair strictly dominates shared global LRU for the "
            "victim (p99, degraded fraction) at bounded aggressor cost "
            f"(<= {self.aggressor_cost_bound:g}x): {verdict}"
        )
        if self.admission_rows:
            blocks.append(format_table(
                ["tenant", "kind", "action", "arrive", "start", "done",
                 "reads"],
                self.admission_rows,
                title=(
                    "Admission-controlled arrival mix "
                    + " ".join(
                        f"{k}={v}" for k, v in self.admission_counts.items()
                    )
                ),
                float_fmt="{:.4f}",
            ))
        if self.dashboard:
            blocks.append(self.dashboard)
        return "\n\n".join(blocks)

    def window_log(self) -> str:
        """The determinism artifact: every per-tenant SLO window of
        every policy run, machine-checkably ordered."""
        lines = []
        for mode, oc in self.outcomes.items():
            lines.append(f"== {mode} ==")
            if oc.slo is None:
                continue
            for tid in sorted(oc.slo.tenants):
                for w in oc.slo.tenants[tid].windows:
                    lines.append(
                        f"t{tid} [{w.t0:.9f},{w.t1:.9f}) n={w.n_reads} "
                        f"degraded={w.degraded} p99={w.p99:.9f}"
                    )
        return "\n".join(lines) + "\n"

    def write_artifacts(self, outdir: str) -> dict[str, str]:
        """Write ``report.txt`` + ``windows.log``; returns
        ``{artifact name: path}``."""
        os.makedirs(outdir, exist_ok=True)
        paths: dict[str, str] = {}
        report = os.path.join(outdir, "report.txt")
        with open(report, "w", encoding="utf-8") as fh:
            fh.write(self.render() + "\n")
        paths["report"] = report
        log = os.path.join(outdir, "windows.log")
        with open(log, "w", encoding="utf-8") as fh:
            fh.write(self.window_log())
        paths["windows"] = log
        return paths


def _sweep_readers(env, fleet, spec, n_nodes: int, passes: int, streams: int = 1):
    """Spawn ``streams`` sweep processes per node for ``spec``.

    Each process owns a round-robin slice of the tenant's dataset and
    sweeps it in order ``passes`` times — the training/thrash pattern.
    Extra streams deepen the tenant's in-flight fetch count (and so the
    PFS queue it builds).
    """
    files = spec.files()
    total = n_nodes * streams

    def reader(node, lane):
        cli = fleet.client(node, spec.tenant_id)
        mine = files[node * streams + lane :: total]
        for _ in range(passes):
            for path, size in mine:
                yield from cli.read_file(path, size, node)

    return [
        env.process(
            reader(n, k), name=f"tenancy.t{spec.tenant_id}.n{n}.{k}"
        )
        for n in range(n_nodes)
        for k in range(streams)
    ]


def _victim_service(env, fleet, spec, n_nodes: int, stop: dict, think: float):
    """Spawn the victim's continuous inference service, one per node.

    Each node cycles over its slice of the victim's dataset, reading
    the tenant-wide hot file before every slice read (the 80/20 skew
    reduced to a deterministic schedule) and pacing with ``think`` —
    a low-rate latency-sensitive service running for however long the
    storm lasts, stopping at the end of the cycle that sees
    ``stop["done"]``.
    """
    files = spec.files()
    hot_path, hot_size = files[0]

    def reader(node):
        cli = fleet.client(node, spec.tenant_id)
        mine = files[node::n_nodes]
        while not stop["done"]:
            for path, size in mine:
                if path != hot_path:
                    yield from cli.read_file(hot_path, hot_size, node)
                yield from cli.read_file(path, size, node)
                if stop["done"]:
                    return
                yield env.timeout(think)

    return [
        env.process(reader(n), name=f"tenancy.t{spec.tenant_id}.n{n}")
        for n in range(n_nodes)
    ]


def _run_mode(
    mode: str,
    spec: ClusterSpec,
    n_nodes: int,
    victim: TenantSpec,
    aggressor: TenantSpec,
    storm_passes: int,
    windows: int,
    seed: int,
    think: float,
    streams: int,
    trace=None,
) -> ModeOutcome:
    """One warm -> storm cycle under one cache-tenancy policy."""
    oc = ModeOutcome(mode=mode)
    rec = SpanRecorder()
    env, dep, _ = _build(spec, n_nodes, seed, spans=rec, trace=trace)
    fleet = TenantFleet(dep, mode=mode, tenants=[victim, aggressor])
    m = dep.metrics

    # Warm: the victim populates its working set, storm-free.
    warm = _sweep_readers(env, fleet, victim, n_nodes, passes=1)

    def wait(procs):
        yield AllOf(env, procs)

    env.run(env.process(wait(warm), name="tenancy.warm"))

    # Storm: the aggressor thrashes for `storm_passes` sweeps while the
    # victim's inference service runs alongside for the whole duration.
    t0 = env.now
    fallbacks0 = m.counter("hvac.client_pfs_fallback").value
    stop = {"done": False}
    victims = _victim_service(env, fleet, victim, n_nodes, stop, think)
    storm = _sweep_readers(
        env, fleet, aggressor, n_nodes, passes=storm_passes, streams=streams
    )

    def run_storm():
        yield AllOf(env, storm)
        stop["done"] = True
        yield AllOf(env, victims)

    env.run(env.process(run_storm(), name="tenancy.storm"))
    t_end = env.now

    oc.storm_seconds = t_end - t0
    oc.occupancy = fleet.occupancy()
    oc.refusals = sum(
        fleet.ledger.refusals(tid) for tid in fleet.tenants
    )
    oc.pfs_fallbacks = m.counter("hvac.client_pfs_fallback").value - fallbacks0
    window = max((t_end - t0) / windows, 1e-9)
    oc.slo = compute_slo(rec, window, origin=t0, horizon=t_end)
    vic = oc.slo.tenants.get(victim.tenant_id)
    if vic is not None:
        oc.victim_reads = vic.n_reads
        oc.victim_p50 = vic.p50
        oc.victim_p99 = vic.p99
        oc.victim_degraded_fraction = vic.degraded_fraction
    agg = oc.slo.tenants.get(aggressor.tenant_id)
    if agg is not None:
        oc.aggressor_p99 = agg.p99
        oc.aggressor_degraded_fraction = agg.degraded_fraction
    dep.teardown()
    return oc


def _strip_dashboard(result: TenancyResult) -> str:
    """Degradation strips per policy + per-tenant degraded-read strips
    on each policy's own storm window grid."""
    reports = {
        mode: oc.slo for mode, oc in result.outcomes.items() if oc.slo is not None
    }
    dash = degradation_dashboard(
        reports,
        title="storm SLO windows (origin = storm onset)",
        per_client=False,
    )
    labels = [
        (f"{mode}/t{tid}", oc.slo.tenants[tid])
        for mode, oc in result.outcomes.items()
        if oc.slo is not None
        for tid in sorted(oc.slo.tenants)
    ]
    width = max((len(lbl) for lbl, _ in labels), default=0)
    lines = ["-- degraded reads per tenant per window (count; '+'=10+) --"]
    for lbl, ent in labels:
        counts = [w.degraded for w in ent.windows]
        lines.append(f"{lbl.ljust(width)} |{count_strip(counts)}|")
    return dash + "\n\n" + "\n".join(lines)


def _admission_demo(
    spec: ClusterSpec, n_nodes: int, n_jobs: int, seed: int, trace=None
) -> tuple[list[list], dict[str, int]]:
    """Replay a seeded arrival mix through the admission controller."""
    env, dep, _ = _build(spec, n_nodes, seed + 1, trace=trace)
    fleet = TenantFleet(dep, mode="weighted")
    # Undersized budget + short queue so the mix exercises every verdict
    # (degrade_ok means saturation degrades rather than rejects here;
    # the reject path is covered by the unit tests).
    admission = fleet.make_admission(overcommit=0.08, queue_limit=1)
    jobs = sample_jobs(seed, n_jobs, n_nodes, first_tenant_id=10)
    records = run_jobs(env, dep, fleet, jobs, admission, seed=seed)
    dep.teardown()
    rows = [
        [f"t{r.tenant_id}", r.kind, r.action, r.t_arrive, r.t_start,
         r.t_done, r.reads]
        for r in records
    ]
    return rows, admission.counts()


def tenancy_isolation(
    n_nodes: int = 4,
    victim_files: int = 40,
    aggressor_files: int = 400,
    file_size: int = 200_000,
    storm_passes: int = 2,
    windows: int = 12,
    n_jobs: int = 8,
    aggressor_cost_bound: float = 1.5,
    think: float = 0.08,
    streams: int = 4,
    cache_fraction: float | None = None,
    spec: ClusterSpec | None = None,
    seed: int = 0,
    trace=None,
) -> TenancyResult:
    """Run the three tenancy policies through the hot-storm scenario,
    then the admission-control arrival demo.

    The defaults size the aggressor's dataset (~80 MB on TESTING) well
    past the fleet's aggregate cache (~36 MB at 4 nodes) so the shared
    pool is in perpetual thrash, while the victim's working set (~8 MB)
    fits comfortably under its weighted-fair watermark (~18 MB).
    ``think`` paces the victim so its per-file re-access gap exceeds the
    shared pool's eviction horizon — the regime where a global LRU
    sacrifices a low-rate tenant to a high-rate one.  ``cache_fraction``
    (when set) shrinks every server's cache, which is how ``--smoke``
    keeps the same thrash regime at reduced scale.
    """
    if n_nodes < 2:
        raise ValueError("tenancy_isolation needs >= 2 nodes")
    overrides = dict(TENANCY_SPEC_OVERRIDES)
    if cache_fraction is not None:
        overrides["cache_fraction"] = cache_fraction
    base = _fault_spec(spec, **overrides)
    victim = _victim_spec(victim_files, file_size)
    aggressor = _aggressor_spec(aggressor_files, file_size)
    result = TenancyResult(
        n_nodes=n_nodes,
        victim=victim,
        aggressor=aggressor,
        storm_passes=storm_passes,
        windows=windows,
        aggressor_cost_bound=aggressor_cost_bound,
    )
    for mode in TENANCY_MODES:
        result.outcomes[mode] = _run_mode(
            mode, base, n_nodes, victim, aggressor,
            storm_passes, windows, seed, think, streams, trace=trace,
        )
    result.admission_rows, result.admission_counts = _admission_demo(
        base, n_nodes, n_jobs, seed, trace=trace
    )
    result.dashboard = _strip_dashboard(result)
    return result
