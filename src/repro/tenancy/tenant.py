"""Tenant identity, namespaces, and per-tenant workload shapes.

A :class:`TenantSpec` is plain frozen data describing one workload
("job") sharing the HVAC fleet: its identity and cache weight, its
byte/file quotas, and the shape of the read traffic it generates —
training jobs sweep their dataset in epochs, inference/eval jobs issue
bursty hot-file reads with think-time pacing.

Every tenant owns a PFS namespace prefix (``/pfs/t<j>/``), which is how
fleet-side components (the cache arbiter, repair) attribute a path to a
tenant without any metadata service — the same hash-not-lookup spirit
as HVAC's placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["TenantSpec", "tenant_of_path"]

TENANT_KINDS = ("training", "inference")

#: namespace prefix every tenant path starts with
_NS_PREFIX = "/pfs/t"


@dataclass(frozen=True)
class TenantSpec:
    """One workload sharing the fleet (plain data, JSON-friendly)."""

    tenant_id: int
    #: display name; defaults to ``t<j>``
    name: str = ""
    #: ``training`` (epoch sweeps) or ``inference`` (bursty hot reads)
    kind: str = "training"
    #: weighted-fair cache share / dedicated slab sizing weight
    weight: float = 1.0
    #: fleet-wide cached-byte quota (None = unlimited)
    quota_bytes: Optional[int] = None
    #: fleet-wide cached-file quota (None = unlimited)
    quota_files: Optional[int] = None
    # -- workload shape -------------------------------------------------
    n_files: int = 16
    file_size: int = 25_000
    #: reads per epoch (training) / per burst (inference)
    reads: int = 16
    #: epochs (training) / bursts (inference)
    epochs: int = 1
    #: per-read think time (inference pacing; 0 = back to back)
    think: float = 0.0
    #: ``inference``: fraction of reads hammering the hot file
    hot_fraction: float = 0.8

    def __post_init__(self):
        if self.tenant_id < 0:
            raise ValueError("tenant_id must be >= 0")
        if self.kind not in TENANT_KINDS:
            raise ValueError(f"unknown tenant kind {self.kind!r}")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.n_files < 1 or self.file_size < 1:
            raise ValueError("n_files and file_size must be >= 1")
        if self.reads < 1 or self.epochs < 1:
            raise ValueError("reads and epochs must be >= 1")
        if self.quota_bytes is not None and self.quota_bytes < 0:
            raise ValueError("quota_bytes must be >= 0")
        if self.quota_files is not None and self.quota_files < 0:
            raise ValueError("quota_files must be >= 0")
        if not (0.0 <= self.hot_fraction <= 1.0):
            raise ValueError("hot_fraction must be in [0, 1]")
        if self.think < 0:
            raise ValueError("think must be >= 0")

    @property
    def label(self) -> str:
        return self.name or f"t{self.tenant_id}"

    @property
    def namespace(self) -> str:
        """The tenant's PFS path prefix."""
        return f"{_NS_PREFIX}{self.tenant_id}"

    @property
    def dataset_bytes(self) -> int:
        return self.n_files * self.file_size

    def files(self) -> list[tuple[str, int]]:
        """The tenant's dataset: ``(path, size)`` under its namespace."""
        ns = self.namespace
        return [(f"{ns}/f{i:04d}", self.file_size) for i in range(self.n_files)]


def tenant_of_path(path: str) -> Optional[int]:
    """Tenant id a path belongs to, or None for non-tenant paths.

    Pure string parse of the ``/pfs/t<j>/`` namespace prefix — no
    metadata lookup, so the fleet side can attribute ownership of any
    path (including striped ``#seg`` sub-paths) without coordination.
    """
    if not path.startswith(_NS_PREFIX):
        return None
    end = path.find("/", len(_NS_PREFIX))
    if end < 0:
        return None
    digits = path[len(_NS_PREFIX):end]
    if not digits.isdigit():
        return None
    return int(digits)
