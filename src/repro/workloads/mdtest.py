"""MDTest: the metadata/transaction benchmark of paper §II-C (Figs 3–4).

MDTest is an MPI program where every rank performs ``<open, read,
close>`` transactions on (pre-created) files and the aggregate
transactions/second is reported.  The paper runs it with 32 KB files
(metadata-bound regime) and 8 MB files (bandwidth-bound regime) to show
the widening gap between GPFS and node-local XFS as nodes scale.

Ranks here loop for a fixed measurement window over private file sets,
mirroring MDTest's unique-directory-per-rank default (no shared-file
contention — the contention that matters is inside the storage system).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

from ..simcore import AllOf, Environment
from ..storage.base import FileBackend

__all__ = ["MDTestConfig", "MDTestResult", "run_mdtest"]


@dataclass(frozen=True)
class MDTestConfig:
    """One MDTest invocation."""

    n_nodes: int
    ranks_per_node: int = 6
    file_size: int = 32 * 1024
    files_per_rank: int = 32
    #: measurement window; ranks that finish their files early re-loop
    #: until the window closes (MDTest -W style stonewalling)
    window_seconds: float = 0.0  # 0 → single pass over files_per_rank

    def __post_init__(self):
        if self.n_nodes < 1 or self.ranks_per_node < 1:
            raise ValueError("need at least one rank")
        if self.file_size < 1 or self.files_per_rank < 1:
            raise ValueError("file_size and files_per_rank must be >= 1")

    @property
    def n_ranks(self) -> int:
        return self.n_nodes * self.ranks_per_node


@dataclass
class MDTestResult:
    """Aggregate outcome of one run."""

    config: MDTestConfig
    system_label: str
    transactions: int
    elapsed: float

    @property
    def tx_per_sec(self) -> float:
        return self.transactions / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def read_bandwidth(self) -> float:
        """Aggregate bytes/s delivered."""
        return self.transactions * self.config.file_size / self.elapsed


def run_mdtest(
    env: Environment,
    config: MDTestConfig,
    backend_for_node: Callable[[int], FileBackend],
    system_label: str = "storage",
) -> MDTestResult:
    """Execute MDTest; returns aggregate transactions/second."""
    done_counts = [0] * config.n_ranks
    t0 = env.now
    deadline = t0 + config.window_seconds if config.window_seconds > 0 else None

    def rank_proc(rank: int) -> Generator:
        node_id = rank // config.ranks_per_node
        backend = backend_for_node(node_id)
        pass_idx = 0
        while True:
            for i in range(config.files_per_rank):
                path = f"/gpfs/mdtest/rank{rank}/file{i}"
                yield from backend.read_file(path, config.file_size, node_id)
                done_counts[rank] += 1
                if deadline is not None and env.now >= deadline:
                    return
            pass_idx += 1
            if deadline is None:
                return

    procs = [
        env.process(rank_proc(r), name=f"mdtest.r{r}") for r in range(config.n_ranks)
    ]

    def driver() -> Generator:
        yield AllOf(env, procs)

    env.run(env.process(driver(), name="mdtest"))
    elapsed = env.now - t0
    return MDTestResult(
        config=config,
        system_label=system_label,
        transactions=sum(done_counts),
        elapsed=elapsed,
    )
