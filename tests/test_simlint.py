"""simlint: per-rule good/bad fixtures, waivers, taint, repo cleanliness."""

import os

import pytest

from repro.check import RULES, lint_paths, lint_source, lint_tree, scope_of

SRC_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src", "repro"
)
FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


def codes(source, **kw):
    return [v.rule for v in lint_source(source, **kw)]


# ---------------------------------------------------------------------------
# Per-rule fixtures: every rule must fire on its bad snippet and stay
# silent on the corresponding good one.
# ---------------------------------------------------------------------------

BAD_FIXTURES = {
    "SIM001": "import time\n\ndef cost():\n    return time.time()\n",
    "SIM002": "import random\n\nrng = random.Random(3)\n",
    "SIM003": "def place(path, n):\n    return hash(path) % n\n",
    "SIM004": "seen = set()\n\ndef order():\n    return [x for x in seen]\n",
    "SIM005": (
        "def proc(env):\n"
        "    env.timeout(1.0)\n"  # created, never yielded
        "    yield env.timeout(2.0)\n"
    ),
    "SIM006": (
        "def poll(env):\n"
        "    if env.now == 5.0:\n"
        "        return True\n"
    ),
    "SIM007": "import time\n\ndef serve():\n    time.sleep(0.1)\n",
    "SIM008": "vals = {0.1, 0.2, 0.3}\n\ndef total():\n    return sum(vals)\n",
    "SIM009": (
        "index = {}\n\n"
        "def register(obj):\n"
        "    index[id(obj)] = obj\n"
    ),
    "SIM010": (
        "waiters = set()\n\n"
        "def flush():\n"
        "    for evt in waiters:\n"
        "        evt.succeed()\n"
    ),
    "SIM011": (
        "import time\n\n"
        "def stamp():\n"
        "    return time.time()\n\n"
        "def cost(env):\n"
        "    return env.now + stamp()\n"
    ),
    "SIM012": (
        "class Tracker:\n"
        "    def order(self):\n"  # iterates before the binding method:
        "        return [x for x in self._live]\n"  # SIM004 can't see it
        "    def reset(self):\n"
        "        self._live = set()\n"
    ),
    "SIM013": (
        "def live():\n"
        "    return {3, 1}\n\n"  # unordered producer
        "def drain(out):\n"
        "    for sid in live():\n"  # hash order crosses the return
        "        out.append(sid)\n"
    ),
    "SIM014": (
        "def live():\n"
        "    yield from {3, 1}\n\n"  # unordered yield path
        "def drain(out):\n"
        "    for sid in live():\n"  # hash order flows down the yields
        "        out.append(sid)\n"
    ),
    "SIM015": (
        "groups = []\n\n"
        "def enroll(a, b):\n"
        "    groups.append({a, b})\n\n"  # set laundered into a list slot
        "def flush(out):\n"
        "    for g in groups:\n"
        "        for x in g:\n"  # element iterated in hash order
        "            out.append(x)\n"
    ),
    "SIM016": (
        "from collections import namedtuple\n\n"
        "Row = namedtuple('Row', 'key members')\n\n"
        "def flush(out, a, b):\n"
        "    row = Row('k', {a, b})\n\n"  # set laundered into a field
        "    for x in row.members:\n"  # field iterated in hash order
        "        out.append(x)\n"
    ),
}

GOOD_FIXTURES = {
    "SIM001": (
        "def cost(env):\n"
        "    return env.now\n"
    ),
    "SIM002": (
        "from repro.simcore import RandomStreams\n\n"
        "rng = RandomStreams(3).stream('evict')\n"
    ),
    "SIM003": (
        "from repro.simcore import stable_hash64\n\n"
        "def place(path, n):\n"
        "    return stable_hash64(path) % n\n"
    ),
    "SIM004": (
        "seen = set()\n\n"
        "def order():\n"
        "    return [x for x in sorted(seen)]\n"
    ),
    "SIM005": (
        "def proc(env):\n"
        "    yield env.timeout(1.0)\n"
        "    t = env.timeout(2.0)\n"  # assigned for later composition: fine
        "    yield t\n"
    ),
    "SIM006": (
        "def poll(env):\n"
        "    if env.now >= 5.0:\n"
        "        return True\n"
    ),
    "SIM007": (
        "def proc(env):\n"
        "    yield env.timeout(0.1)\n"
    ),
    "SIM008": (
        "vals = {0.1, 0.2, 0.3}\n\n"
        "def total():\n"
        "    return sum(sorted(vals))\n"
    ),
    "SIM009": (
        "index = {}\n\n"
        "def register(obj):\n"
        "    index[obj.name] = obj\n"
    ),
    "SIM010": (
        "waiters = set()\n\n"
        "def flush():\n"
        "    for evt in sorted(waiters, key=lambda e: e.seq):\n"
        "        evt.succeed()\n"
    ),
    "SIM011": (
        "def clock(env):\n"
        "    return env.now\n\n"
        "def cost(env):\n"
        "    return clock(env) + 1.0\n"
    ),
    "SIM012": (
        "class Tracker:\n"
        "    def order(self):\n"
        "        return sorted(self._live)\n"
        "    def reset(self):\n"
        "        self._live = set()\n"
    ),
    "SIM013": (
        "def live():\n"
        "    return sorted({3, 1})\n\n"
        "def drain(out):\n"
        "    for sid in live():\n"
        "        out.append(sid)\n"
    ),
    "SIM014": (
        "def live():\n"
        "    yield from sorted({3, 1})\n\n"
        "def drain(out):\n"
        "    for sid in live():\n"
        "        out.append(sid)\n"
    ),
    "SIM015": (
        "groups = []\n\n"
        "def enroll(a, b):\n"
        "    groups.append({a, b})\n\n"
        "def flush(out):\n"
        "    for g in groups:\n"
        "        for x in sorted(g):\n"
        "            out.append(x)\n"
    ),
    "SIM016": (
        "from collections import namedtuple\n\n"
        "Row = namedtuple('Row', 'key members')\n\n"
        "def flush(out, a, b):\n"
        "    row = Row('k', {a, b})\n\n"
        "    for x in sorted(row.members):\n"
        "        out.append(x)\n"
    ),
}


class TestRuleFixtures:
    @pytest.mark.parametrize("rule", sorted(RULES))
    def test_bad_fixture_fires(self, rule):
        assert rule in codes(BAD_FIXTURES[rule], scope="sim")

    @pytest.mark.parametrize("rule", sorted(RULES))
    def test_good_fixture_clean(self, rule):
        assert codes(GOOD_FIXTURES[rule], scope="sim") == []

    def test_violation_renders_location(self):
        (v,) = lint_source(BAD_FIXTURES["SIM003"], path="pkg/mod.py")
        assert v.rule == "SIM003"
        assert v.line == 2
        assert "pkg/mod.py:2:" in v.render()


class TestRuleDetails:
    def test_sim001_aliased_import(self):
        src = "from time import perf_counter\n\ndef f():\n    return perf_counter()\n"
        assert codes(src, scope="sim") == ["SIM001"]

    def test_sim002_dunder_import_smuggling(self):
        # the exact trick runtime/server.py used to ship
        src = "r = __import__('random').Random(7)\n"
        assert codes(src) == ["SIM002"]

    def test_sim002_numpy_alias_and_global_draws(self):
        src = "import numpy as np\n\ng = np.random.default_rng(0)\n"
        assert codes(src) == ["SIM002"]
        src = "import random\n\nrandom.shuffle([1, 2])\n"
        assert codes(src) == ["SIM002"]

    def test_sim002_applies_in_runtime_scope_too(self):
        src = "import random\n\nrng = random.Random(1)\n"
        assert codes(src, scope="runtime") == ["SIM002"]

    def test_sim004_set_literal_and_call(self):
        assert codes("for x in {1, 2, 3}:\n    pass\n") == ["SIM004"]
        assert codes("xs = list(set([3, 1]))\n") == ["SIM004"]

    def test_sim004_self_attribute_tracking(self):
        src = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self._live: set[int] = set()\n"
            "    def order(self):\n"
            "        return [x for x in self._live]\n"
        )
        assert codes(src) == ["SIM004"]

    def test_sim004_dict_iteration_is_fine(self):
        assert codes("d = {}\nfor k in d:\n    pass\n") == []

    def test_sim005_only_in_generators(self):
        # outside a process generator the call is just a weird no-op,
        # not a suspended-forever process — stay quiet
        src = "def setup(env):\n    env.timeout(1.0)\n"
        assert codes(src) == []

    def test_sim005_spawning_processes_is_fine(self):
        src = (
            "def drain(self):\n"
            "    while True:\n"
            "        yield self.queue.get()\n"
            "        self.env.process(self.svc())\n"
        )
        assert codes(src) == []

    def test_sim006_both_sides(self):
        assert codes("ok = 0.0 != env.now\n") == ["SIM006"]

    def test_sim007_thread_join_vs_str_join(self):
        assert codes("def f(t):\n    yield 1\n    t.join()\n") == ["SIM007"]
        assert codes("def f(parts):\n    yield 1\n    s = ','.join(parts)\n") == []

    def test_sim008_qualified_reducers(self):
        src = "import math\n\nxs = set()\nt = math.fsum(xs)\n"
        assert codes(src) == ["SIM008"]
        src = "import numpy as np\n\nxs = {1.0, 2.0}\nt = np.sum(xs)\n"
        assert codes(src) == ["SIM008"]

    def test_sim008_set_literal_argument(self):
        assert codes("t = sum({0.5, 0.25})\n") == ["SIM008"]

    def test_sim008_ordered_reductions_are_fine(self):
        assert codes("xs = [0.1, 0.2]\nt = sum(xs)\n") == []
        assert codes("xs = {0.1, 0.2}\nt = sum(sorted(xs))\n") == []
        # a generator over a set is the SIM004 iteration hazard, and
        # only that — no double report
        assert codes("xs = {0.1}\nt = sum(x for x in xs)\n") == ["SIM004"]

    def test_sim009_subscript_read_and_write(self):
        assert codes("d = {}\nd[id(1)] = 2\n") == ["SIM009"]
        assert codes("d = {}\nx = d[id(1)]\n") == ["SIM009"]

    def test_sim009_dict_literal_and_comprehension(self):
        assert codes("a = object()\nd = {id(a): 1}\n") == ["SIM009"]
        assert codes("d = {id(o): o for o in [1, 2]}\n") == ["SIM009"]

    def test_sim009_id_in_set_membership_is_fine(self):
        # the engine's cycle guard: id() into a *set*, pure membership,
        # never iterated — address instability can't leak into order
        assert codes("s = set()\ns.add(id(1))\nok = id(2) in s\n") == []

    def test_wall_clock_rules_skip_runtime_scope(self):
        src = "import time\n\ndef f():\n    time.sleep(1)\n    return time.time()\n"
        assert codes(src, scope="sim") == ["SIM007", "SIM001"]  # source order
        assert codes(src, scope="runtime") == []


class TestSim010Details:
    def test_comprehension_spawn(self):
        src = (
            "live = set()\n\n"
            "def go(env):\n"
            "    return [env.process(w) for w in live]\n"
        )
        assert "SIM010" in codes(src)

    def test_callbacks_append(self):
        src = (
            "live = set()\n\n"
            "def chain(evt):\n"
            "    for w in live:\n"
            "        w.callbacks.append(evt)\n"
        )
        assert "SIM010" in codes(src)

    def test_list_iteration_is_fine(self):
        src = (
            "live = []\n\n"
            "def flush():\n"
            "    for evt in live:\n"
            "        evt.succeed()\n"
        )
        assert codes(src) == []

    def test_non_scheduling_call_in_set_loop_is_sim004_only(self):
        src = (
            "live = set()\n\n"
            "def total():\n"
            "    acc = 0\n"
            "    for w in live:\n"
            "        acc += w.weight()\n"
            "    return acc\n"
        )
        assert codes(src) == ["SIM004"]


class TestSim011Details:
    def test_chain_through_two_helpers(self):
        src = (
            "import time\n\n"
            "def inner():\n"
            "    return time.time()\n\n"
            "def outer():\n"
            "    return inner()\n\n"
            "def cost(env):\n"
            "    return env.now + outer()\n"
        )
        got = lint_source(src, scope="sim")
        sim011 = [v for v in got if v.rule == "SIM011"]
        assert len(sim011) == 2  # at outer()'s call of inner, and cost's of outer
        assert any("outer -> inner" in v.message for v in sim011)

    def test_waived_primitive_does_not_taint(self):
        # a waiver sanctions the site — callers must not inherit SIM011
        src = (
            "import time\n\n"
            "def stamp():\n"
            "    return time.time()  # simlint: waive SIM001 -- wall-clock telemetry\n\n"
            "def cost(env):\n"
            "    return env.now + stamp()\n"
        )
        assert codes(src) == []

    def test_set_argument_into_iterating_callee(self):
        src = (
            "def drain(items):\n"
            "    return [x.key for x in items]\n\n"
            "def plan():\n"
            "    live = set()\n"
            "    return drain(live)\n"
        )
        got = lint_source(src, scope="sim")
        assert [v.rule for v in got] == ["SIM011"]
        assert "unordered set" in got[0].message

    def test_rng_stream_helpers_stay_clean(self):
        src = (
            "from repro.simcore import RandomStreams\n\n"
            "def streams(seed):\n"
            "    return RandomStreams(seed).stream('evict')\n\n"
            "def pick(seed):\n"
            "    return streams(seed).integers(10)\n"
        )
        assert codes(src) == []


class TestWaivers:
    def test_same_line_waiver(self):
        src = "h = hash('x')  # simlint: waive SIM003 -- demo\n"
        assert codes(src) == []

    def test_line_above_waiver(self):
        src = "# simlint: waive SIM003 -- demo\nh = hash('x')\n"
        assert codes(src) == []

    def test_bare_waiver_covers_all_rules(self):
        src = "import random\n\nr = random.Random(hash('x'))  # simlint: waive\n"
        assert codes(src) == []

    def test_waiver_is_code_specific(self):
        src = "import random\n\nr = random.Random(hash('x'))  # simlint: waive SIM003\n"
        assert codes(src) == ["SIM002"]

    def test_non_comment_line_above_does_not_waive(self):
        src = "x = 1  # simlint: waive SIM003\nh = hash('x')\n"
        assert codes(src) == ["SIM003"]


class TestStaleWaivers:
    def test_stale_waiver_reported(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            "x = 1  # simlint: waive SIM003 -- excuse that outlived its bug\n"
        )
        result = lint_tree([str(tmp_path)])
        assert result.violations == []
        assert len(result.stale_waivers) == 1
        stale = result.stale_waivers[0]
        assert stale.line == 1 and stale.codes == frozenset({"SIM003"})
        assert "stale waiver" in stale.render()
        assert not result.clean

    def test_used_waiver_is_not_stale(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("h = hash('x')  # simlint: waive SIM003 -- demo\n")
        result = lint_tree([str(tmp_path)])
        assert result.violations == [] and result.stale_waivers == []
        assert result.clean

    def test_waiver_quoted_in_docstring_is_not_a_waiver(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text('"""e.g. # simlint: waive SIM003 -- docs"""\n')
        result = lint_tree([str(tmp_path)])
        assert result.stale_waivers == []

    def test_run_lint_exits_nonzero_on_stale_waiver(self, tmp_path, capsys):
        from repro.check import run_lint

        mod = tmp_path / "mod.py"
        mod.write_text("x = 1  # simlint: waive -- nothing here anymore\n")
        assert run_lint([str(tmp_path)]) == 1
        assert "stale waiver" in capsys.readouterr().out

    def test_sim011_waiver_exempt_without_taint(self, tmp_path):
        # only the cross-module pass can consume a SIM011 waiver; a
        # taint-off run must not call it stale
        mod = tmp_path / "mod.py"
        mod.write_text("y = helper()  # simlint: waive SIM011 -- sanctioned\n")
        assert lint_tree([str(tmp_path)], taint=False).stale_waivers == []


class TestCrossModuleTaint:
    def test_taint_catches_what_per_function_pass_misses(self):
        paths = [
            os.path.join(FIXTURES, "runtime", "clockutil.py"),
            os.path.join(FIXTURES, "taint_caller.py"),
        ]
        plain = lint_tree(paths, taint=False)
        assert plain.violations == []  # the per-function pass is blind
        tainted = lint_tree(paths, taint=True)
        rules = [v.rule for v in tainted.violations]
        assert rules == ["SIM011"]
        v = tainted.violations[0]
        assert v.path.endswith("taint_caller.py")
        assert "read_clock" in v.message and "SIM001" in v.message

    def test_sim010_fixture_files(self):
        bad = lint_tree([os.path.join(FIXTURES, "sim010_bad.py")])
        assert "SIM010" in [v.rule for v in bad.violations]
        good = lint_tree([os.path.join(FIXTURES, "sim010_good.py")])
        assert good.violations == []

    def test_sim012_fixture_files(self):
        bad = lint_tree([os.path.join(FIXTURES, "sim012_bad.py")])
        rules = [v.rule for v in bad.violations]
        assert rules == ["SIM012"]
        assert "self._live" in bad.violations[0].message
        assert "reset" in bad.violations[0].message
        good = lint_tree([os.path.join(FIXTURES, "sim012_good.py")])
        assert good.violations == []

    def test_sim013_fixture_files(self):
        bad = lint_tree([os.path.join(FIXTURES, "sim013_bad.py")])
        rules = [v.rule for v in bad.violations]
        assert rules == ["SIM013"]
        v = bad.violations[0]
        # flagged at drain()'s loop, naming the transitive producer
        assert "pick" in v.message and "unordered" in v.message
        good = lint_tree([os.path.join(FIXTURES, "sim013_good.py")])
        assert good.violations == []

    def test_sim013_waived_at_producer_is_sanctioned(self):
        src = (
            "def live():\n"
            "    return {3, 1}  # simlint: waive SIM013 -- order rechecked downstream\n\n"
            "def drain(out):\n"
            "    for sid in live():\n"
            "        out.append(sid)\n"
        )
        assert codes(src, scope="sim") == []

    def test_sim013_order_preserving_wrapper_still_fires(self):
        src = (
            "def live():\n"
            "    return {3, 1}\n\n"
            "def drain(out):\n"
            "    for sid in list(live()):\n"
            "        out.append(sid)\n"
        )
        assert "SIM013" in codes(src, scope="sim")

    def test_sim013_sorted_at_call_site_is_clean(self):
        src = (
            "def live():\n"
            "    return {3, 1}\n\n"
            "def drain(out):\n"
            "    for sid in sorted(live()):\n"
            "        out.append(sid)\n"
        )
        assert codes(src, scope="sim") == []

    def test_sim014_fixture_files(self):
        bad = lint_tree([os.path.join(FIXTURES, "sim014_bad.py")])
        rules = [v.rule for v in bad.violations]
        assert rules == ["SIM014"]
        v = bad.violations[0]
        # flagged at drain()'s loop, naming the delegating producer
        assert "relay" in v.message and "yield" in v.message
        good = lint_tree([os.path.join(FIXTURES, "sim014_good.py")])
        assert good.violations == []

    def test_sim014_waived_at_producer_is_sanctioned(self):
        src = (
            "def live():\n"
            "    yield from {3, 1}  # simlint: waive SIM014 -- order rechecked downstream\n\n"
            "def drain(out):\n"
            "    for sid in live():\n"
            "        out.append(sid)\n"
        )
        assert codes(src, scope="sim") == []

    def test_sim014_order_preserving_wrappers_still_fire(self):
        # at the consuming loop AND inside the delegation itself
        src = (
            "def live():\n"
            "    yield from {3, 1}\n\n"
            "def drain(out):\n"
            "    for sid in list(live()):\n"
            "        out.append(sid)\n"
        )
        assert "SIM014" in codes(src, scope="sim")
        src = (
            "def live():\n"
            "    yield from list({3, 1})\n\n"
            "def drain(out):\n"
            "    for sid in live():\n"
            "        out.append(sid)\n"
        )
        assert "SIM014" in codes(src, scope="sim")

    def test_sim014_sorted_neutralizes_either_end(self):
        src = (
            "def live():\n"
            "    yield from {3, 1}\n\n"
            "def drain(out):\n"
            "    for sid in sorted(live()):\n"
            "        out.append(sid)\n"
        )
        assert codes(src, scope="sim") == []
        src = (
            "def live():\n"
            "    yield from sorted({3, 1})\n\n"
            "def drain(out):\n"
            "    for sid in live():\n"
            "        out.append(sid)\n"
        )
        assert codes(src, scope="sim") == []

    def test_sim014_crosses_return_of_a_generator(self):
        # ``return g()`` forwards the tainted generator verbatim
        src = (
            "def live():\n"
            "    yield from {3, 1}\n\n"
            "def pick():\n"
            "    return live()\n\n"
            "def drain(out):\n"
            "    for sid in pick():\n"
            "        out.append(sid)\n"
        )
        assert "SIM014" in codes(src, scope="sim")

    def test_sim014_yield_from_an_unordered_returner(self):
        # delegation to a plain function that *returns* a set
        src = (
            "def live():\n"
            "    return {3, 1}\n\n"
            "def relay():\n"
            "    yield from live()\n\n"
            "def drain(out):\n"
            "    for sid in relay():\n"
            "        out.append(sid)\n"
        )
        assert "SIM014" in codes(src, scope="sim")

    def test_sim014_nested_def_keeps_yields_to_itself(self):
        src = (
            "def outer():\n"
            "    def inner():\n"
            "        yield from {3, 1}\n"
            "    return sorted(inner())\n\n"
            "def drain(out):\n"
            "    for sid in outer():\n"
            "        out.append(sid)\n"
        )
        assert codes(src, scope="sim") == []

    def test_sim015_fixture_files(self):
        bad = lint_tree([os.path.join(FIXTURES, "sim015_bad.py")])
        rules = [v.rule for v in bad.violations]
        assert rules == ["SIM015"]
        assert bad.violations[0].line == 18
        assert "groups" in bad.violations[0].message
        good = lint_tree([os.path.join(FIXTURES, "sim015_good.py")])
        assert good.violations == []

    def test_sim015_dict_values_items_and_subscript(self):
        # a dict whose values are sets taints ``.values()``, ``.items()``
        # pairs, and direct subscripts alike
        src = (
            "table = {}\n"
            "def put(k, a, b):\n"
            "    table[k] = {a, b}\n\n"
            "def drain(env):\n"
            "    for grp in table.values():\n"
            "        for w in grp:\n"
            "            env.process(w)\n"
            "    for _k, grp in table.items():\n"
            "        env.process(list(grp))\n"
            "    env.process(max(table[0]))\n"
        )
        lines = sorted(v.line for v in lint_source(src, scope="sim"))
        assert lines == [7, 10, 11]

    def test_sim015_sorted_element_is_exempt(self):
        src = (
            "groups = [{1, 2}]\n"
            "def drain(env):\n"
            "    order = [w for g in groups for w in sorted(g)]\n"
            "    env.process(order)\n"
        )
        assert codes(src, scope="sim") == []

    def test_sim015_waiver(self):
        src = (
            "groups = [{1, 2}]\n"
            "def drain(env):\n"
            "    for g in groups:\n"
            "        for w in g:  # simlint: waive SIM015 -- singleton sets\n"
            "            env.process(w)\n"
        )
        assert codes(src, scope="sim") == []

    def test_sim016_fixture_files(self):
        bad = lint_tree([os.path.join(FIXTURES, "sim016_bad.py")])
        rules = [v.rule for v in bad.violations]
        assert rules == ["SIM016", "SIM016"]
        assert "Row.members" in bad.violations[0].message
        good = lint_tree([os.path.join(FIXTURES, "sim016_good.py")])
        assert good.violations == []

    def test_sim016_dataclass_annotation_and_default_factory(self):
        # annotation taint through a function parameter, default-factory
        # taint through a direct construction
        src = (
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class Unit:\n"
            "    label: str\n"
            "    paths: set\n"
            "    extra: object = field(default_factory=set)\n\n"
            "def drain(env, u: Unit):\n"
            "    env.process(list(u.extra))\n"
        )
        assert "SIM016" in codes(src, scope="sim")

    def test_sim016_positional_unpack_carries_taint(self):
        src = (
            "from collections import namedtuple\n"
            "Row = namedtuple('Row', ['key', 'members'])\n\n"
            "def drain(env, a, b):\n"
            "    row = Row('k', {a, b})\n"
            "    key, members = row\n"
            "    for w in members:\n"
            "        env.process(w)\n"
        )
        assert "SIM016" in codes(src, scope="sim")

    def test_sim016_sorted_field_is_exempt(self):
        src = (
            "from collections import namedtuple\n"
            "Row = namedtuple('Row', 'key members')\n\n"
            "def drain(env, a, b):\n"
            "    row = Row('k', {a, b})\n"
            "    env.process(sorted(row.members))\n"
        )
        assert codes(src, scope="sim") == []

    def test_sim016_ordered_field_is_clean(self):
        src = (
            "from collections import namedtuple\n"
            "Row = namedtuple('Row', 'key members')\n\n"
            "def drain(env, a, b):\n"
            "    row = Row('k', (a, b))\n"  # tuple field: ordered
            "    for w in row.members:\n"
            "        env.process(w)\n"
        )
        assert codes(src, scope="sim") == []

    def test_sim016_waiver(self):
        src = (
            "from collections import namedtuple\n"
            "Row = namedtuple('Row', 'key members')\n\n"
            "def drain(env, a, b):\n"
            "    row = Row('k', {a, b})\n"
            "    for w in row.members:  # simlint: waive SIM016 -- singleton\n"
            "        env.process(w)\n"
        )
        assert codes(src, scope="sim") == []


class TestScope:
    def test_scope_classification(self):
        assert scope_of("src/repro/simcore/engine.py") == "sim"
        assert scope_of("src/repro/runtime/server.py") == "runtime"
        assert scope_of("src/repro/posix/interpose.py") == "runtime"

    def test_unknown_rule_code_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_paths([SRC_ROOT], rules=["SIM999"])


class TestRepoIsClean:
    def test_tree_lints_clean(self):
        """The determinism contract holds for the shipped tree: every
        SIM violation has been fixed or explicitly waived inline."""
        violations = lint_paths([SRC_ROOT])
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_tree_is_clean_under_taint_and_waiver_hygiene(self):
        """The stronger CI gate: the cross-module taint pass finds no
        hidden primitive behind any sim-scope call, and no waiver has
        gone stale."""
        result = lint_tree([SRC_ROOT], taint=True)
        assert result.clean, "\n".join(
            [v.render() for v in result.violations]
            + [w.render() for w in result.stale_waivers]
        )
