"""AST rules for the sim-safety linter (``repro check``).

Each rule guards one way the reproduction's bit-for-bit determinism
contract (docs/INTERNALS.md, "Determinism contract") has been broken in
the wild, or plausibly will be:

========  ============================================================
SIM001    wall-clock reads (``time.time`` & friends) in sim code
SIM002    RNG constructed or global-state RNG drawn outside
          :class:`repro.simcore.rand.RandomStreams`
SIM003    salted builtin ``hash()`` used for placement/ordering
SIM004    iteration over an unordered ``set`` (scheduling/RNG hazards)
SIM005    an event created in a process generator but never yielded
SIM006    ``==``/``!=`` on float sim timestamps (``env.now``)
SIM007    blocking calls (``time.sleep``, bare ``.join()``) in sim code
SIM008    float reduction (``sum``/``fsum``/``np.sum``) over an
          unordered ``set`` — accumulation order changes the result
SIM009    dict keyed by ``id(...)`` — key values are memory addresses,
          so any iteration over it replays in allocation order
SIM010    event scheduling (``.succeed()``/``.callbacks.append``/
          ``env.process``) from iteration over an unordered ``set``
SIM011    call into a helper that *transitively* reaches one of the
          above primitives (emitted by the interprocedural taint pass
          with the full source→sink chain)
SIM012    ``set`` stored in an attribute by one method, iterated in
          another — taint carried by container membership across
          method boundaries
SIM013    iterating the result of a call whose callee (transitively)
          *returns* an unordered container — taint carried by the
          return value across function boundaries
SIM014    iterating a generator that (transitively) ``yield from``-s an
          unordered container — taint carried down the yield path
          across delegation hops
SIM015    ``set`` stored as an *element* of a list/dict/tuple and later
          iterated at a sim-scope site — taint carried by container
          elements, which name-based set tracking cannot see
SIM016    ``set`` carried in a dataclass/namedtuple *field* and later
          iterated through the record — taint laundered through typed
          record attributes (field annotations, construction-site
          arguments, positional unpacking)
========  ============================================================

The rules are deliberately heuristic: they aim at the handful of
patterns that actually corrupt replay determinism, and anything flagged
in error can be waived inline with ``# simlint: waive SIMxxx -- why``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

__all__ = ["RULES", "Violation", "collect_violations"]

#: rule code -> one-line rationale (mirrored in docs/INTERNALS.md)
RULES: dict[str, str] = {
    "SIM001": "wall-clock read in sim code; simulated time must come from env.now",
    "SIM002": "RNG constructed/drawn outside simcore.rand.RandomStreams; "
    "use a named stream so draws in one component don't perturb another",
    "SIM003": "builtin hash() is salted per interpreter; use "
    "simcore.rand.stable_hash64 for cross-run-stable placement/ordering",
    "SIM004": "iterating an unordered set; order feeds scheduling/RNG — "
    "iterate sorted(...) or keep an ordered structure",
    "SIM005": "event created but discarded inside a process generator; "
    "did you forget to yield it?",
    "SIM006": "== / != on float sim timestamps; compare with <=/>= or a tolerance",
    "SIM007": "blocking call in sim code; real threads/sleeps break the "
    "single-threaded deterministic event loop",
    "SIM008": "float reduction over an unordered set; FP addition is "
    "non-associative, so accumulation order changes the result — "
    "reduce over sorted(...) or an ordered container",
    "SIM009": "dict keyed by id(...); id values are memory addresses that "
    "differ across runs, so iterating the dict (or sorting its keys) "
    "replays in allocation order — key by a stable identity instead",
    "SIM010": "event scheduling from iteration over an unordered set; the "
    "trigger/callback/spawn order becomes the set's hash order, which is "
    "exactly the heap insertion sequence the kernel ties on — iterate "
    "sorted(...) or keep an ordered structure",
    "SIM011": "call into a helper that transitively reaches a "
    "nondeterminism primitive (wall clock, unmanaged RNG, salted hash(), "
    "unordered-set iteration, blocking call); fix at the source or waive "
    "the call site — reported by the interprocedural taint pass",
    "SIM012": "set stored in an attribute by one method and iterated in "
    "another; the container membership carries the unordered taint across "
    "methods, where sequential tracking loses it — iterate sorted(...) "
    "or keep an ordered structure",
    "SIM013": "iterating the result of a call whose callee (transitively) "
    "returns an unordered container; hash order crosses the return "
    "boundary into the caller's loop, where local set tracking cannot "
    "see it — return sorted(...) from the callee or sort at the call "
    "site — reported by the interprocedural taint pass",
    "SIM014": "iterating a generator whose yield path (transitively) "
    "drains an unordered container; yield from forwards hash order "
    "through every delegation hop, where the return-tracking pass "
    "cannot see it — yield from sorted(...) in the producer or sort at "
    "the call site — reported by the interprocedural taint pass",
    "SIM015": "iterating a set stored as an element of a list/dict/tuple; "
    "the outer container is ordered but its elements carry the unordered "
    "taint, which name-based set tracking loses at the insertion — "
    "iterate sorted(elem) or store ordered elements",
    "SIM016": "iterating a set carried in a dataclass/namedtuple field; "
    "the record is ordered but the field value is not, and name-based "
    "set tracking loses the taint at construction — iterate "
    "sorted(rec.field) or store an ordered field",
}

#: SIM001 targets (fully-qualified after import-alias resolution)
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

#: SIM002 targets: RNG constructors and module-global-state draws
_RNG_CONSTRUCT = {
    "random.Random",
    "random.SystemRandom",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.Philox",
}
_RNG_GLOBAL_DRAW = {
    "random.seed",
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.choices",
    "random.shuffle",
    "random.sample",
    "random.uniform",
    "random.gauss",
    "numpy.random.seed",
    "numpy.random.rand",
    "numpy.random.randn",
    "numpy.random.randint",
    "numpy.random.random",
    "numpy.random.choice",
    "numpy.random.shuffle",
    "numpy.random.permutation",
    "numpy.random.uniform",
}

#: SIM005: pure-condition factories whose result is useless unless yielded
_EVENT_FACTORIES = {"timeout", "event", "all_of", "any_of"}

#: SIM007 module-level blocking calls
_BLOCKING = {"time.sleep", "input"}

#: SIM008 qualified float reducers (the ``sum`` builtin is special-cased)
_FLOAT_REDUCERS = {"math.fsum", "numpy.sum", "numpy.nansum"}


@dataclass(frozen=True)
class Violation:
    """One rule hit, addressable as ``path:line``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


def _root_name(node: ast.expr) -> str | None:
    """The leftmost name of an attribute chain (``a`` for ``a.b.c``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class _SimVisitor(ast.NodeVisitor):
    """One file's worth of rule checks."""

    def __init__(self, path: str, scope: str, active: set[str]):
        self.path = path
        self.scope = scope  # "sim" | "runtime"
        self.active = active
        self.violations: list[Violation] = []
        #: local alias -> canonical module ("np" -> "numpy")
        self._imports: dict[str, str] = {}
        #: names / self-attributes known to be bound to sets
        self._set_names: set[str] = set()
        #: stack of (function node, is_generator)
        self._funcs: list[tuple[ast.AST, bool]] = []
        #: nesting depth of loops/comprehensions iterating a set (SIM010)
        self._set_iter_depth = 0

    # -- plumbing ---------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str | None = None) -> None:
        if rule not in self.active:
            return
        self.violations.append(
            Violation(
                rule,
                self.path,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                message or RULES[rule],
            )
        )

    def _qualname(self, node: ast.expr) -> str | None:
        """Dotted name of a call target with import aliases resolved.

        ``np.random.default_rng`` -> ``numpy.random.default_rng``;
        ``__import__("random").Random`` -> ``random.Random``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(self._imports.get(node.id, node.id))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "__import__"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            parts.append(node.args[0].value)
        else:
            return None
        return ".".join(reversed(parts))

    # -- import tracking --------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._imports[alias.asname or alias.name.split(".")[0]] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            if node.module:
                self._imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # -- set-binding tracking (SIM004) ------------------------------------
    @staticmethod
    def _bound_name(target: ast.expr) -> str | None:
        """``x`` or ``self.x`` assignment targets, keyed by bare name."""
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            return target.attr
        return None

    def _is_set_expr(self, node: ast.expr | None) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        ):
            return True
        name = self._bound_name(node) if isinstance(node, (ast.Name, ast.Attribute)) else None
        return name is not None and name in self._set_names

    def _note_binding(self, target: ast.expr, value: ast.expr | None,
                      annotation: ast.expr | None = None) -> None:
        name = self._bound_name(target)
        if name is None:
            return
        is_set = self._is_set_expr(value)
        if annotation is not None:
            ann = ast.unparse(annotation)
            is_set = is_set or ann.split("[")[0] in (
                "set", "Set", "frozenset", "FrozenSet", "AbstractSet", "MutableSet"
            )
        if is_set:
            self._set_names.add(name)
        elif value is not None:
            self._set_names.discard(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_binding(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._note_binding(node.target, node.value, node.annotation)
        self.generic_visit(node)

    # -- iteration contexts (SIM004) ---------------------------------------
    def _check_iteration(self, iter_node: ast.expr) -> None:
        if self._is_set_expr(iter_node):
            self._emit("SIM004", iter_node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        if self._is_set_expr(node.iter):
            self._set_iter_depth += 1
            self.generic_visit(node)
            self._set_iter_depth -= 1
        else:
            self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        over_set = False
        for gen in node.generators:
            self._check_iteration(gen.iter)
            over_set = over_set or self._is_set_expr(gen.iter)
        if over_set:
            self._set_iter_depth += 1
            self.generic_visit(node)
            self._set_iter_depth -= 1
        else:
            self.generic_visit(node)

    visit_ListComp = visit_SetComp = visit_GeneratorExp = _visit_comp

    def visit_DictComp(self, node: ast.DictComp) -> None:
        if self._is_id_call(node.key):
            self._emit("SIM009", node)
        self._visit_comp(node)

    # -- id()-keyed dicts (SIM009) ------------------------------------------
    @staticmethod
    def _is_id_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        )

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # d[id(x)] — reads and writes alike seed an address-keyed table;
        # id(x) in a *set* (pure membership, never iterated for order)
        # stays legal, which is why the rule keys on subscripts.
        if self._is_id_call(node.slice):
            self._emit("SIM009", node)
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        if any(key is not None and self._is_id_call(key) for key in node.keys):
            self._emit("SIM009", node)
        self.generic_visit(node)

    # -- function context (SIM005/SIM007) ----------------------------------
    @staticmethod
    def _is_generator(node) -> bool:
        """Does this function contain a yield of its own (ignoring
        nested defs/lambdas)?"""
        stack = list(ast.iter_child_nodes(node))
        while stack:
            child = stack.pop()
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(child, (ast.Yield, ast.YieldFrom)):
                return True
            stack.extend(ast.iter_child_nodes(child))
        return False

    def _visit_func(self, node) -> None:
        self._funcs.append((node, self._is_generator(node)))
        self.generic_visit(node)
        self._funcs.pop()

    visit_FunctionDef = visit_AsyncFunctionDef = _visit_func

    @property
    def _in_generator(self) -> bool:
        return bool(self._funcs) and self._funcs[-1][1]

    # -- statement-level (SIM005) -------------------------------------------
    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        if self._in_generator and isinstance(value, ast.Call):
            func = value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _EVENT_FACTORIES
                and (_root_name(func.value) or "").endswith("env")
            ) or (
                isinstance(func, ast.Name)
                and func.id in ("Timeout", "AllOf", "AnyOf")
            ):
                self._emit("SIM005", node)
        self.generic_visit(node)

    # -- comparisons (SIM006) ------------------------------------------------
    @staticmethod
    def _is_sim_clock(node: ast.expr) -> bool:
        return isinstance(node, ast.Attribute) and node.attr == "now"

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, (lhs, rhs) in zip(node.ops, zip(operands, operands[1:])):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                self._is_sim_clock(lhs) or self._is_sim_clock(rhs)
            ):
                self._emit("SIM006", node)
                break
        self.generic_visit(node)

    # -- calls (SIM001/002/003/007) -------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        qual = self._qualname(node.func)
        if qual is not None:
            if self.scope == "sim" and qual in _WALL_CLOCK:
                self._emit("SIM001", node)
            if qual in _RNG_CONSTRUCT:
                self._emit("SIM002", node)
            elif qual in _RNG_GLOBAL_DRAW:
                self._emit(
                    "SIM002", node,
                    RULES["SIM002"] + " (module-global RNG state)",
                )
            if self.scope == "sim" and qual in _BLOCKING:
                self._emit("SIM007", node)
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            self._emit("SIM003", node)
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "iter", "enumerate", "max", "min")
            and node.args
        ):
            # materializing/iterating a set fixes its (unordered) order
            self._check_iteration(node.args[0])
        if node.args and self._is_set_expr(node.args[0]) and (
            (isinstance(node.func, ast.Name) and node.func.id == "sum")
            or qual in _FLOAT_REDUCERS
        ):
            # accumulation order over a set is the hash order; float
            # addition is non-associative, so the total drifts with it
            self._emit("SIM008", node)
        if (
            self.scope == "sim"
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and not node.args
            and all(kw.arg == "timeout" for kw in node.keywords)
        ):
            # str.join always takes a positional iterable; a bare
            # .join() / .join(timeout=...) is a thread join.
            self._emit("SIM007", node, RULES["SIM007"] + " (thread join)")
        if self._set_iter_depth > 0 and self._is_scheduling_call(node):
            # the set's hash order becomes the callback/trigger/spawn
            # order, i.e. the kernel's same-timestamp tie-break order
            self._emit("SIM010", node)
        self.generic_visit(node)

    @staticmethod
    def _is_scheduling_call(node: ast.Call) -> bool:
        """Calls that feed the event queue: triggering an event,
        registering a callback, or spawning a process."""
        func = node.func
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr in ("succeed", "fail", "trigger", "interrupt"):
            return True
        if (
            func.attr == "append"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "callbacks"
        ):
            return True
        return func.attr == "process" and (
            (_root_name(func.value) or "").endswith("env")
        )


#: iteration-fixing callables SIM012 shares with the sequential rule
_ITER_CALLS = ("list", "tuple", "iter", "enumerate", "max", "min")


class _ClassSetVisitor(ast.NodeVisitor):
    """SIM012: container-membership taint across methods of one class.

    The sequential tracker in :class:`_SimVisitor` follows ``self.x``
    by bare name in *textual* order, so a set bound in ``reset()`` and
    iterated in an ``order()`` method defined above it slips through.
    This pass is class-aware and two-phase: first collect every
    attribute a class ever binds to a set (skipping attributes that are
    *also* bound to non-set values — those the sequential tracker's
    last-binding-wins rule handles more precisely), then flag any
    iteration of such an attribute in a method other than a binding
    one.  Sites the sequential rule already reports are deduped by the
    caller, so SIM012 is exactly the cross-method complement of SIM004.
    """

    def __init__(self, path: str):
        self.path = path
        self.violations: list[Violation] = []

    @staticmethod
    def _self_name(method) -> str | None:
        args = method.args.posonlyargs + method.args.args
        return args[0].arg if args else None

    @staticmethod
    def _is_set_value(value: ast.expr | None, annotation: ast.expr | None) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("set", "frozenset")
        ):
            return True
        if annotation is not None:
            ann = ast.unparse(annotation)
            return ann.split("[")[0] in (
                "set", "Set", "frozenset", "FrozenSet", "AbstractSet",
                "MutableSet",
            )
        return False

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods = [
            m for m in node.body
            if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        #: attr -> method names that bind it to a set
        set_attrs: dict[str, set[str]] = {}
        non_set: set[str] = set()
        for method in methods:
            self_name = self._self_name(method)
            if self_name is None:
                continue
            for sub in ast.walk(method):
                if isinstance(sub, ast.Assign):
                    targets, value, ann = sub.targets, sub.value, None
                elif isinstance(sub, ast.AnnAssign):
                    targets, value, ann = [sub.target], sub.value, sub.annotation
                else:
                    continue
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                    ):
                        continue
                    if self._is_set_value(value, ann):
                        set_attrs.setdefault(target.attr, set()).add(method.name)
                    elif value is not None:
                        non_set.add(target.attr)
        flaggable = {
            attr: binders for attr, binders in set_attrs.items()
            if attr not in non_set
        }
        for method in methods:
            self_name = self._self_name(method)
            if self_name is None or not flaggable:
                continue
            for sub in ast.walk(method):
                for it in self._iterated(sub):
                    if not (
                        isinstance(it, ast.Attribute)
                        and isinstance(it.value, ast.Name)
                        and it.value.id == self_name
                    ):
                        continue
                    binders = flaggable.get(it.attr)
                    if binders and binders != {method.name}:
                        self.violations.append(
                            Violation(
                                "SIM012", self.path,
                                it.lineno, it.col_offset,
                                RULES["SIM012"]
                                + f" (self.{it.attr} is bound in "
                                f"{', '.join(sorted(binders))}())",
                            )
                        )
        self.generic_visit(node)  # nested classes

    @staticmethod
    def _iterated(node: ast.AST) -> list[ast.expr]:
        """Expressions ``node`` iterates in an order-fixing way."""
        if isinstance(node, ast.For):
            return [node.iter]
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return [gen.iter for gen in node.generators]
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ITER_CALLS
            and node.args
        ):
            return [node.args[0]]
        return []


def _is_set_expr(value: ast.expr | None) -> bool:
    """Literal/constructor expressions that produce an unordered set."""
    if isinstance(value, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in ("set", "frozenset")
    )


def _container_with_set_elements(value: ast.expr | None) -> bool:
    if isinstance(value, (ast.List, ast.Tuple)):
        return any(_is_set_expr(e) for e in value.elts)
    if isinstance(value, ast.Dict):
        return any(v is not None and _is_set_expr(v) for v in value.values)
    return False


class _ElementSetVisitor(ast.NodeVisitor):
    """SIM015: unordered taint carried by container *elements*.

    The sequential tracker (SIM004) and its cross-method (SIM012),
    cross-return (SIM013), and cross-yield (SIM014) extensions all
    follow sets by the *name* they are bound to.  A set dropped into a
    list or dict slot has no name: ``groups.append({a, b})`` launders
    the taint through an ordered container, and the later
    ``for g in groups: for x in g`` iterates hash order with every
    name-based pass blind.  Two phases: collect every bare-name
    container that ever holds a set-valued element (literal elements,
    ``append``/``insert``/``setdefault``, keyed assignment), then flag
    order-fixing iteration over those containers' *elements* — a loop
    variable drawn from the container, or a direct subscript.
    ``sorted(...)`` stays exempt, as everywhere in the linter.
    """

    def __init__(self, path: str):
        self.path = path
        self.violations: list[Violation] = []
        self._tainted: set[str] = set()
        #: live element aliases (loop vars drawn from a tainted
        #: container) -> the container they came from
        self._aliases: dict[str, str] = {}

    # -- phase 1 ------------------------------------------------------------
    def collect(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                value = node.value
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and _container_with_set_elements(value)
                    ):
                        self._tainted.add(target.id)
                    elif (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and _is_set_expr(value)
                    ):
                        self._tainted.add(target.value.id)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.args
            ):
                attr, args = node.func.attr, node.args
                if (
                    (attr == "append" and _is_set_expr(args[0]))
                    or (attr == "insert" and len(args) >= 2
                        and _is_set_expr(args[1]))
                    or (attr == "setdefault" and len(args) >= 2
                        and _is_set_expr(args[1]))
                ):
                    self._tainted.add(node.func.value.id)

    # -- phase 2 ------------------------------------------------------------
    def _element_source(self, expr: ast.expr) -> str | None:
        """Container name if ``expr`` denotes a set-valued element."""
        if isinstance(expr, ast.Name) and expr.id in self._aliases:
            return self._aliases[expr.id]
        if (
            isinstance(expr, ast.Subscript)
            and isinstance(expr.value, ast.Name)
            and expr.value.id in self._tainted
        ):
            return expr.value.id
        return None

    def _alias_targets(self, it: ast.expr) -> ast.expr | None:
        """The loop-target expr that aliases elements of a tainted
        container iterated by ``it`` (direct, ``.values()``, or the
        value half of ``.items()``)."""
        if isinstance(it, ast.Name) and it.id in self._tainted:
            return it
        if (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Attribute)
            and isinstance(it.func.value, ast.Name)
            and it.func.value.id in self._tainted
            and it.func.attr in ("values", "items")
        ):
            return it
        return None

    @staticmethod
    def _bound_alias(target: ast.expr, it: ast.expr) -> list[str]:
        """Names the loop target binds to set-valued elements."""
        values_only = not (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Attribute)
            and it.func.attr == "items"
        )
        if isinstance(target, ast.Name):
            return [target.id] if values_only else []
        if isinstance(target, (ast.Tuple, ast.List)) and not values_only:
            # for k, g in X.items(): the second name is the element
            if len(target.elts) == 2 and isinstance(target.elts[1], ast.Name):
                return [target.elts[1].id]
        return []

    def _container_of(self, it: ast.expr) -> str:
        return (
            it.id if isinstance(it, ast.Name) else it.func.value.id  # type: ignore[union-attr]
        )

    def _emit(self, node: ast.expr, container: str) -> None:
        self.violations.append(
            Violation(
                "SIM015", self.path, node.lineno, node.col_offset,
                RULES["SIM015"] + f" (element of {container!r})",
            )
        )

    def visit_For(self, node: ast.For) -> None:
        src = self._element_source(node.iter)
        if src is not None:
            self._emit(node.iter, src)
        self.visit(node.iter)
        added: dict[str, str] = {}
        it = self._alias_targets(node.iter)
        if it is not None:
            container = self._container_of(it)
            for name in self._bound_alias(node.target, it):
                added[name] = container
        saved = dict(self._aliases)
        self._aliases.update(added)
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        self._aliases = saved

    def _visit_comp(self, node) -> None:
        saved = dict(self._aliases)
        for gen in node.generators:
            src = self._element_source(gen.iter)
            if src is not None:
                self._emit(gen.iter, src)
            self.visit(gen.iter)
            it = self._alias_targets(gen.iter)
            if it is not None:
                container = self._container_of(it)
                for name in self._bound_alias(gen.target, it):
                    self._aliases[name] = container
            for cond in gen.ifs:
                self.visit(cond)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)
        self._aliases = saved

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _ITER_CALLS
            and node.args
        ):
            src = self._element_source(node.args[0])
            if src is not None:
                self._emit(node.args[0], src)
        self.generic_visit(node)


#: annotation heads that denote an unordered set type
_SET_ANNOTATIONS = (
    "set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet",
)


def _is_set_annotation(ann: ast.expr | None) -> bool:
    if ann is None:
        return False
    if isinstance(ann, ast.Name):
        return ann.id in _SET_ANNOTATIONS
    if isinstance(ann, ast.Attribute):
        return ann.attr in _SET_ANNOTATIONS
    if isinstance(ann, ast.Subscript):
        return _is_set_annotation(ann.value)
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        head = ann.value.split("[", 1)[0].strip()
        return head.rsplit(".", 1)[-1] in _SET_ANNOTATIONS
    return False


def _decorator_name(dec: ast.expr) -> str | None:
    if isinstance(dec, ast.Call):
        dec = dec.func
    if isinstance(dec, ast.Name):
        return dec.id
    if isinstance(dec, ast.Attribute):
        return dec.attr
    return None


class _RecordSetVisitor(ast.NodeVisitor):
    """SIM016: unordered taint carried by dataclass/namedtuple *fields*.

    Records launder set taint the same way container elements do
    (SIM015), but through a typed attribute instead of an index:
    ``Unit(paths={a, b})`` drops the set into ``unit.paths``, and the
    later ``for p in unit.paths`` iterates hash order with every
    name-based pass blind.  Two phases: collect the record classes
    (``@dataclass``-decorated, ``NamedTuple`` subclasses,
    ``collections.namedtuple`` factories) and which of their fields are
    set-valued — from field annotations, ``field(default_factory=set)``
    defaults, and set-expression construction arguments — then flag
    order-fixing iteration over ``instance.field`` (or over a bare name
    the field was unpacked/aliased into).  ``sorted(...)`` stays
    exempt, as everywhere in the linter.
    """

    def __init__(self, path: str):
        self.path = path
        self.violations: list[Violation] = []
        #: record class -> field names in declaration order
        self._fields: dict[str, list[str]] = {}
        #: record class -> the set-valued subset
        self._set_fields: dict[str, set[str]] = {}
        #: bare variable -> record class it holds an instance of
        self._instances: dict[str, str] = {}
        #: bare names a set-valued field was unpacked or aliased into
        self._unpacked: set[str] = set()

    # -- phase 1 ------------------------------------------------------------
    def collect(self, tree: ast.AST) -> None:
        # Record classes first (a construction site may lexically
        # precede the class definition it instantiates).
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                self._collect_class(node)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                self._collect_namedtuple(node)
        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._collect_binding(node)
            elif isinstance(node, ast.Call):
                # construction sites taint fields wherever they appear
                # (returns, nested calls), not just in assignments
                self._record_call(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                a = node.args
                for arg in a.posonlyargs + a.args + a.kwonlyargs:
                    if (
                        isinstance(arg.annotation, ast.Name)
                        and arg.annotation.id in self._fields
                    ):
                        self._instances[arg.arg] = arg.annotation.id

    def _collect_class(self, node: ast.ClassDef) -> None:
        is_record = any(
            _decorator_name(d) == "dataclass" for d in node.decorator_list
        ) or any(
            (isinstance(b, ast.Name) and b.id == "NamedTuple")
            or (isinstance(b, ast.Attribute) and b.attr == "NamedTuple")
            for b in node.bases
        )
        if not is_record:
            return
        fields: list[str] = []
        tainted: set[str] = set()
        for stmt in node.body:
            if not (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ):
                continue
            name = stmt.target.id
            fields.append(name)
            if _is_set_annotation(stmt.annotation) or _is_set_expr(stmt.value):
                tainted.add(name)
            elif (
                isinstance(stmt.value, ast.Call)
                and _decorator_name(stmt.value.func) == "field"
            ):
                for kw in stmt.value.keywords:
                    if (
                        kw.arg == "default_factory"
                        and isinstance(kw.value, ast.Name)
                        and kw.value.id in ("set", "frozenset")
                    ):
                        tainted.add(name)
        self._fields[node.name] = fields
        self._set_fields[node.name] = tainted

    def _collect_namedtuple(self, node: ast.Assign) -> None:
        target, value = node.targets[0], node.value
        if not (
            isinstance(target, ast.Name)
            and isinstance(value, ast.Call)
            and _decorator_name(value.func) == "namedtuple"
            and len(value.args) >= 2
        ):
            return
        spec = value.args[1]
        fields: list[str] = []
        if isinstance(spec, ast.Constant) and isinstance(spec.value, str):
            fields = spec.value.replace(",", " ").split()
        elif isinstance(spec, (ast.List, ast.Tuple)):
            fields = [
                e.value
                for e in spec.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
        self._fields[target.id] = fields
        self._set_fields[target.id] = set()

    def _record_call(self, value: ast.expr) -> str | None:
        """Record class name if ``value`` constructs a known record,
        folding any set-expression arguments into its tainted fields."""
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in self._fields
        ):
            return None
        klass = value.func.id
        fields = self._fields[klass]
        for i, arg in enumerate(value.args):
            if i < len(fields) and _is_set_expr(arg):
                self._set_fields[klass].add(fields[i])
        for kw in value.keywords:
            if kw.arg in fields and _is_set_expr(kw.value):
                self._set_fields[klass].add(kw.arg)
        return klass

    def _collect_binding(self, node: ast.Assign | ast.AnnAssign) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        value = node.value
        klass = self._record_call(value) if value is not None else None
        if (
            klass is None
            and isinstance(node, ast.AnnAssign)
            and isinstance(node.annotation, ast.Name)
            and node.annotation.id in self._fields
        ):
            klass = node.annotation.id
        if klass is None and isinstance(value, ast.Name):
            klass = self._instances.get(value.id)
        for target in targets:
            if isinstance(target, ast.Name):
                if klass is not None:
                    self._instances[target.id] = klass
                elif value is not None and self._field_source(value):
                    # alias: s = rec.paths carries the taint to a name
                    self._unpacked.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)) and klass is not None:
                # positional unpack: names at set-valued field slots
                fields = self._fields[klass]
                tainted = self._set_fields[klass]
                for i, elt in enumerate(target.elts):
                    if (
                        isinstance(elt, ast.Name)
                        and i < len(fields)
                        and fields[i] in tainted
                    ):
                        self._unpacked.add(elt.id)

    # -- phase 2 ------------------------------------------------------------
    def _field_source(self, expr: ast.expr) -> str | None:
        """Human label if ``expr`` denotes a set-valued record field."""
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
        ):
            klass = self._instances.get(expr.value.id)
            if klass is not None and expr.attr in self._set_fields[klass]:
                return f"{klass}.{expr.attr}"
        if isinstance(expr, ast.Name) and expr.id in self._unpacked:
            return f"unpacked {expr.id!r}"
        return None

    def _emit(self, node: ast.expr, source: str) -> None:
        self.violations.append(
            Violation(
                "SIM016", self.path, node.lineno, node.col_offset,
                RULES["SIM016"] + f" ({source})",
            )
        )

    def _check_iter(self, it: ast.expr) -> None:
        source = self._field_source(it)
        if source is not None:
            self._emit(it, source)

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _ITER_CALLS
            and node.args
        ):
            self._check_iter(node.args[0])
        self.generic_visit(node)


def collect_violations(
    tree: ast.AST,
    path: str,
    scope: str = "sim",
    rules: Iterable[str] | None = None,
) -> list[Violation]:
    """All rule hits in one parsed module.

    ``scope`` is ``"sim"`` for code that runs under the DES kernel and
    ``"runtime"`` for code that legitimately touches real clocks and
    threads (``repro.runtime``, ``repro.posix``); the wall-clock and
    blocking rules only apply to sim scope.
    """
    active = set(rules) if rules is not None else set(RULES)
    visitor = _SimVisitor(path, scope, active)
    visitor.visit(tree)
    violations = visitor.violations
    if "SIM012" in active:
        # SIM012 complements SIM004: anything the sequential tracker
        # already sees at the same site stays a SIM004, regardless of
        # which rules the caller selected
        spots = {
            (v.line, v.col) for v in violations if v.rule == "SIM004"
        }
        if "SIM004" not in active:
            aux = _SimVisitor(path, scope, {"SIM004"})
            aux.visit(tree)
            spots = {(v.line, v.col) for v in aux.violations}
        cls_visitor = _ClassSetVisitor(path)
        cls_visitor.visit(tree)
        violations.extend(
            v for v in cls_visitor.violations if (v.line, v.col) not in spots
        )
    if "SIM015" in active and scope == "sim":
        # Same dedup contract as SIM012: a site the sequential tracker
        # already reports keeps its SIM004.
        spots = {(v.line, v.col) for v in violations if v.rule == "SIM004"}
        if "SIM004" not in active:
            aux = _SimVisitor(path, scope, {"SIM004"})
            aux.visit(tree)
            spots = {(v.line, v.col) for v in aux.violations}
        elem_visitor = _ElementSetVisitor(path)
        elem_visitor.collect(tree)
        elem_visitor.visit(tree)
        violations.extend(
            v for v in elem_visitor.violations if (v.line, v.col) not in spots
        )
    if "SIM016" in active and scope == "sim":
        # Same dedup contract as SIM012/SIM015: a site the sequential
        # tracker already reports keeps its SIM004.
        spots = {(v.line, v.col) for v in violations if v.rule == "SIM004"}
        if "SIM004" not in active:
            aux = _SimVisitor(path, scope, {"SIM004"})
            aux.visit(tree)
            spots = {(v.line, v.col) for v in aux.violations}
        rec_visitor = _RecordSetVisitor(path)
        rec_visitor.collect(tree)
        rec_visitor.visit(tree)
        violations.extend(
            v for v in rec_visitor.violations if (v.line, v.col) not in spots
        )
    return violations
