#!/usr/bin/env python3
"""Real-file HVAC on your machine (runtime mode, no simulation).

Creates a throwaway "PFS" directory with an artificial per-read delay
(standing in for a loaded parallel file system), deploys thread-based
HVAC servers over it, and runs an *unmodified* data-loading loop twice —
first through plain ``open()``, then under the interposed ``open()``.
This is the working analog of ``LD_PRELOAD=libhvac_client.so``.

    python examples/real_file_cache_demo.py
"""

import os
import random
import tempfile
import time

from repro.runtime import RuntimeDeployment, interposed_open

N_FILES = 60
FILE_SIZE = 64 * 1024
PFS_DELAY = 0.004  # 4 ms per cold read: a busy PFS's latency
EPOCHS = 3


def data_loading_loop(paths: list[str]) -> int:
    """An 'application' that knows nothing about HVAC."""
    total = 0
    order = list(paths)
    random.Random(0).shuffle(order)
    for path in order:
        with open(path, "rb") as fh:
            total += len(fh.read())
    return total


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="hvac-demo-") as root:
        pfs_dir = os.path.join(root, "pfs")
        os.makedirs(pfs_dir)
        rng = random.Random(42)
        paths = []
        for i in range(N_FILES):
            p = os.path.join(pfs_dir, f"sample-{i:04d}.bin")
            with open(p, "wb") as fh:
                fh.write(rng.randbytes(FILE_SIZE))
            paths.append(p)
        print(f"dataset: {N_FILES} files x {FILE_SIZE // 1024} KiB in {pfs_dir}")

        with RuntimeDeployment(
            pfs_dir,
            n_servers=4,
            capacity_bytes_per_server=16 * FILE_SIZE * N_FILES,
            pfs_read_delay=PFS_DELAY,
        ) as dep:
            # Simulate the slow PFS for the direct path too, for fairness.
            print(f"\n--- direct open() [every epoch pays the "
                  f"{1000 * PFS_DELAY:.0f} ms/file PFS delay] ---")
            for epoch in range(EPOCHS):
                t0 = time.perf_counter()
                for p in paths:
                    time.sleep(PFS_DELAY)  # the PFS cost the cache removes
                    data_loading_loop([p])
                print(f"epoch {epoch + 1}: {time.perf_counter() - t0:.2f} s")

            print("\n--- interposed open() [HVAC cache] ---")
            with interposed_open(dep):
                for epoch in range(EPOCHS):
                    t0 = time.perf_counter()
                    total = data_loading_loop(paths)
                    print(f"epoch {epoch + 1}: {time.perf_counter() - t0:.2f} s "
                          f"({total // 1024} KiB read, "
                          f"hit rate so far {dep.hit_rate:.0%})")

            print(f"\nservers: {len(dep.servers)}; per-server cached files:",
                  [s.cached_files for s in dep.servers])
            print(f"total hits {dep.total_hits}, misses {dep.total_misses}")


if __name__ == "__main__":
    main()
