"""Tests for the per-figure experiment drivers (small-scale instances).

Each test runs the *same* experiment code the benchmarks run, at unit
scale, and asserts the paper's qualitative claim for that figure.
"""

import pytest

from repro.cluster import SUMMIT
from repro.dl import COSMOUNIVERSE, IMAGENET21K, RESNET50, TRESNET_M
from repro.experiments import (
    LARGE_FILE,
    SMALL_FILE,
    Scale,
    batch_size_scaling,
    cache_split,
    epoch_scaling,
    load_balance,
    mdtest_scaling,
    mdtest_scaling_analytic,
    node_scaling,
    node_scaling_analytic,
    normalized_to_gpfs,
    overhead_vs_xfs,
    per_epoch_analysis,
    resolve_setup,
    run_training,
)

TINY = Scale(files_per_rank=6, sim_batch_size=3, repetitions=1, procs_per_node=2)


class TestHarness:
    def test_resolve_setup_by_name(self):
        assert resolve_setup("gpfs").label == "GPFS"

    def test_resolve_setup_passthrough(self):
        setup = resolve_setup("hvac2")
        assert resolve_setup(setup) is setup

    def test_resolve_unknown(self):
        with pytest.raises(ValueError):
            resolve_setup("tape-robot")

    def test_run_training_returns_result(self):
        res = run_training("xfs", RESNET50, IMAGENET21K, 2, TINY)
        assert len(res.epoch_times) == 2
        assert res.system_label == "XFS-on-NVMe"

    def test_hvac_hit_rate_populated(self):
        res = run_training("hvac1", RESNET50, IMAGENET21K, 2, TINY)
        assert res.cache_hit_rate > 0


class TestFig3and4:
    def test_mdtest_small_gap_widens(self):
        res = mdtest_scaling(
            SMALL_FILE, [2, 8], ranks_per_node=4, files_per_rank=6
        )
        ratios = res.ratio()
        assert ratios[-1] > ratios[0] > 1.0  # gap grows with nodes

    def test_mdtest_large_files_bandwidth_regime(self):
        res = mdtest_scaling_analytic(LARGE_FILE, [64, 4096])
        gpfs = res.tx_per_sec["GPFS"]
        # At 8 MB the ceiling is 2.5 TB/s / 8 MiB ≈ 298k tx/s, flat in nodes
        assert gpfs[1] == pytest.approx(2.51e12 / LARGE_FILE, rel=0.05)

    def test_analytic_small_file_saturation(self):
        res = mdtest_scaling_analytic(SMALL_FILE, [16, 512, 4096])
        gpfs = res.tx_per_sec["GPFS"]
        xfs = res.tx_per_sec["XFS-on-NVMe"]
        assert gpfs[2] == pytest.approx(gpfs[1], rel=0.05)  # saturated
        assert xfs[2] == pytest.approx(xfs[1] * 8, rel=0.05)  # linear

    def test_render(self):
        res = mdtest_scaling_analytic(SMALL_FILE, [1, 2])
        assert "Fig 3" in res.render()


class TestFig8and9:
    def test_des_node_scaling_shape(self):
        res = node_scaling(
            RESNET50,
            IMAGENET21K,
            [2, 4],
            TINY,
            systems=("gpfs", "hvac1", "xfs"),
            total_epochs=4,
        )
        assert set(res.total_minutes) == {"GPFS", "HVAC(1x1)", "XFS-on-NVMe"}
        assert all(len(v) == 2 for v in res.total_minutes.values())
        assert "Fig 8" in res.render()

    def test_analytic_fig8_full_sweep(self):
        res = node_scaling_analytic(
            RESNET50, IMAGENET21K, [32, 128, 512, 1024], total_epochs=10
        )
        gpfs = res.total_minutes["GPFS"]
        hvac4 = res.total_minutes["HVAC(4x1)"]
        xfs = res.total_minutes["XFS-on-NVMe"]
        # XFS is the lower bound everywhere; GPFS the upper at scale.
        assert all(x <= h <= g * 1.02 for x, h, g in zip(xfs, hvac4, gpfs))
        # GPFS saturates: barely improves from 512 → 1024 nodes.
        assert gpfs[3] > gpfs[2] * 0.7

    def test_fig9a_improvement_over_50pct_at_scale(self):
        res = node_scaling_analytic(
            RESNET50, IMAGENET21K, [128, 512, 1024], total_epochs=10
        )
        improvement = normalized_to_gpfs(res)["HVAC(4x1)"]
        assert improvement[1] > 50.0
        assert improvement[2] > 50.0

    def test_fig9b_overhead_bands(self):
        res = node_scaling_analytic(
            RESNET50, IMAGENET21K, [64, 256], total_epochs=10
        )
        overhead = overhead_vs_xfs(res)
        o1 = overhead["HVAC(1x1)"]
        o4 = overhead["HVAC(4x1)"]
        assert all(a > b for a, b in zip(o1, o4))  # 1×1 worst
        assert all(0 <= b < 40 for b in o4)


class TestFig10and11:
    def test_epoch_scaling_hvac_grows_slower(self):
        # Weak MDS so GPFS is saturated even at unit-test scale —
        # the regime where Fig 10's divergence appears.
        spec = SUMMIT.with_pfs(metadata_ops_per_sec=300.0, n_metadata_servers=2)
        res = epoch_scaling(
            RESNET50,
            IMAGENET21K,
            [2, 8, 32],
            TINY,
            n_nodes=4,
            spec=spec,
            systems=("gpfs", "hvac1"),
        )
        gpfs = res.total_minutes["GPFS"]
        hvac = res.total_minutes["HVAC(1x1)"]
        # HVAC's marginal epoch is cheaper than GPFS's.
        gpfs_slope = gpfs[-1] - gpfs[0]
        hvac_slope = hvac[-1] - hvac[0]
        assert hvac_slope < gpfs_slope
        assert "Fig 10" in res.render()

    def test_per_epoch_cold_equals_warm_plus(self):
        res = per_epoch_analysis(
            RESNET50,
            IMAGENET21K,
            TINY,
            n_nodes=4,
            batch_size=4,
            epochs=3,
            systems=("gpfs", "hvac1", "xfs"),
        )
        # Fig 11 claims: HVAC epoch-1 >= its cached epochs.
        assert res.epoch1["HVAC(1x1)"] >= res.r_epoch["HVAC(1x1)"]
        # and the cached epoch beats GPFS's.
        assert res.r_epoch["HVAC(1x1)"] < res.epoch1["GPFS"] * 1.05
        assert "Fig 11" in res.render()
        assert res.speedup_vs_gpfs("HVAC(1x1)") > 0


class TestFig12:
    def test_batch_size_marginal_effect(self):
        res = batch_size_scaling(
            TRESNET_M,
            IMAGENET21K,
            [4, 32, 128],
            TINY,
            n_nodes=4,
            total_epochs=8,
            systems=("xfs", "hvac1"),
        )
        for label in res.total_minutes:
            # Larger batches help a little, never hurt much: |range| small.
            assert abs(res.improvement_range(label)) < 15.0
        assert "Fig 12" in res.render()


class TestFig13:
    def test_locality_split_negligible(self):
        res = cache_split(
            RESNET50,
            IMAGENET21K,
            TINY,
            n_nodes=4,
            batch_size=8,
            local_fractions=(1.0, 0.5, 0.0),
        )
        assert len(res.epoch_seconds) == 3
        assert res.max_relative_spread() < 0.25
        assert "Fig 13" in res.render()


class TestFig15:
    def test_balance_improves_with_more_files_per_server(self):
        res = load_balance([4, 64], n_files=20_000)
        assert res.gini_files[4] < res.gini_files[64]

    def test_gini_small(self):
        res = load_balance([16], n_files=50_000)
        assert res.gini_files[16] < 0.05
        assert res.imbalance_files[16] < 1.15

    def test_byte_balance_worse_than_file_balance(self):
        """The paper's 'deviation attributed to random file sizes'."""
        res = load_balance([64], n_files=20_000)
        assert res.gini_bytes[64] >= res.gini_files[64]

    def test_render(self):
        res = load_balance([4], n_files=5_000)
        assert "Fig 15" in res.render()


class TestPrefetchExperiment:
    TINY = dict(n_nodes=2, n_files=48, file_size=40_000, epochs=2, windows=4)

    def test_runs_all_three_modes(self):
        from repro.experiments import PREFETCH_MODES, prefetch_comparison

        res = prefetch_comparison(**self.TINY)
        assert tuple(res.outcomes) == PREFETCH_MODES
        for oc in res.outcomes.values():
            assert oc.epoch1_seconds > 0
            assert oc.pfs_bytes > 0
        # The compressed tier alone pays decompression CPU.
        assert res.outcomes["clairvoyant"].decompress_seconds == 0.0
        assert res.outcomes["clairvoyant+compressed"].decompress_seconds > 0.0

    def test_same_seed_reruns_are_identical(self):
        """The acceptance bar: identical report *and* window logs."""
        from repro.experiments import prefetch_comparison

        a = prefetch_comparison(**self.TINY, seed=0)
        b = prefetch_comparison(**self.TINY, seed=0)
        assert a.window_log() == b.window_log()
        assert a.render() == b.render()

    def test_full_defaults_dominate(self):
        """`repro prefetch` exits 0 iff this predicate holds — pinned
        here at the CLI's own default scale."""
        from repro.experiments import prefetch_comparison

        res = prefetch_comparison()
        assert res.dominates(), res.render()
