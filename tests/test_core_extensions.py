"""Tests for the paper's future-work extensions: prefetching & striping."""

import pytest

from repro.cluster import Allocation, TESTING
from repro.core import CachePrefetcher, HVACDeployment
from repro.simcore import AllOf, Environment
from repro.storage import GPFS


def build(n_nodes=4, instances=1, spec=None, **hvac):
    env = Environment()
    spec = (spec or TESTING).with_hvac(instances_per_node=instances, **hvac)
    alloc = Allocation(env, spec, n_nodes=n_nodes)
    pfs = GPFS(env, spec.pfs, n_nodes, spec.network.nic_bandwidth)
    dep = HVACDeployment(alloc, pfs)
    return env, dep, pfs


FILES = [(f"/data/f{i}", 30_000) for i in range(40)]


def read_epoch(env, dep, files, node_ids):
    def reader(node_id):
        cli = dep.client(node_id)
        for path, size in files:
            yield from cli.read_file(path, size, node_id)

    procs = [env.process(reader(n)) for n in node_ids]

    def wait():
        yield AllOf(env, procs)

    t0 = env.now
    env.run(env.process(wait()))
    return env.now - t0


class TestPrefetcher:
    def test_prefetch_populates_all_caches(self):
        env, dep, pfs = build()
        pre = CachePrefetcher(dep, [p for p, _ in FILES], [s for _, s in FILES])
        env.run(pre.start())
        assert pre.done
        assert dep.total_cached_files == len(FILES)
        assert pre.files_prefetched == len(FILES)
        assert pre.bytes_prefetched == sum(s for _, s in FILES)

    def test_prefetched_epoch_is_all_hits(self):
        env, dep, pfs = build()
        pre = CachePrefetcher(dep, [p for p, _ in FILES], [s for _, s in FILES])
        env.run(pre.start())
        misses_after_prefetch = dep.metrics.counter("hvac.cache_misses").value
        assert misses_after_prefetch == len(FILES)  # the prefetch fetches
        read_epoch(env, dep, FILES, [0, 1])
        # Demand traffic added zero misses: everything was pre-populated.
        assert dep.metrics.counter("hvac.cache_misses").value == misses_after_prefetch
        assert dep.metrics.counter("hvac.cache_hits").value == 2 * len(FILES)

    def test_prefetch_reduces_first_epoch_time(self):
        """The exact benefit the paper projects for epoch-1."""
        env1, dep1, _ = build()
        t_cold = read_epoch(env1, dep1, FILES, [0, 1, 2, 3])

        env2, dep2, _ = build()
        pre = CachePrefetcher(dep2, [p for p, _ in FILES], [s for _, s in FILES])
        env2.run(pre.start())
        t_warmed = read_epoch(env2, dep2, FILES, [0, 1, 2, 3])
        assert t_warmed < t_cold

    def test_prefetch_overlapping_demand_dedups(self):
        """Demand reads during an in-flight prefetch must not double-fetch."""
        env, dep, pfs = build()
        pre = CachePrefetcher(dep, [p for p, _ in FILES], [s for _, s in FILES])
        pre.start()
        read_epoch(env, dep, FILES, [0])  # runs concurrently with prefetch
        env.run()  # drain remaining prefetch work
        assert pfs.metrics.counter("gpfs.opens").value == len(FILES)

    def test_skips_already_cached(self):
        env, dep, _ = build()
        read_epoch(env, dep, FILES[:10], [0])
        pre = CachePrefetcher(dep, [p for p, _ in FILES], [s for _, s in FILES])
        env.run(pre.start())
        assert pre.files_prefetched == len(FILES) - 10

    def test_dead_server_is_skipped(self):
        env, dep, _ = build(n_nodes=2)
        dep.fail_node(1)
        pre = CachePrefetcher(dep, [p for p, _ in FILES], [s for _, s in FILES])
        env.run(pre.start())
        # Only node 0's share got prefetched; no crash.
        assert 0 < dep.total_cached_files < len(FILES)

    def test_validation(self):
        env, dep, _ = build()
        with pytest.raises(ValueError):
            CachePrefetcher(dep, ["/a"], [1, 2])
        with pytest.raises(ValueError):
            CachePrefetcher(dep, ["/a"], [1], max_outstanding=0)
        pre = CachePrefetcher(dep, ["/a"], [1])
        pre.start()
        with pytest.raises(RuntimeError):
            pre.start()


class TestStriping:
    BIG = 3_000_000  # > threshold below

    def striped_spec(self):
        return dict(
            stripe_large_files=True,
            stripe_threshold=1_000_000,
            stripe_segment=500_000,
        )

    def test_segments_spread_across_servers(self):
        env, dep, _ = build(n_nodes=4, **self.striped_spec())
        read_epoch(env, dep, [("/d/huge", self.BIG)], [0])
        # 6 segments of 500 KB land on multiple servers.
        populated = [s for s in dep.servers if s.cache.n_files > 0]
        assert len(populated) >= 2
        assert sum(s.cache.n_files for s in dep.servers) == 6
        assert dep.total_cached_bytes == self.BIG

    def test_striped_second_read_hits(self):
        env, dep, _ = build(n_nodes=4, **self.striped_spec())
        read_epoch(env, dep, [("/d/huge", self.BIG)], [0])
        read_epoch(env, dep, [("/d/huge", self.BIG)], [0])
        assert dep.metrics.counter("hvac.client_hits").value == 1
        assert dep.metrics.counter("hvac.client_striped_reads").value == 2

    def test_small_files_not_striped(self):
        env, dep, _ = build(n_nodes=4, **self.striped_spec())
        read_epoch(env, dep, [("/d/small", 100_000)], [0])
        assert dep.metrics.counter("hvac.client_striped_reads").value == 0
        assert dep.total_cached_files == 1

    def test_striping_faster_for_large_files_warm(self):
        """Parallel segment reads beat one serial whole-file read."""
        def warm_read_time(**hvac):
            env, dep, _ = build(n_nodes=4, **hvac)
            read_epoch(env, dep, [("/d/huge", self.BIG)], [0])  # warm-up
            return read_epoch(env, dep, [("/d/huge", self.BIG)], [0])

        t_plain = warm_read_time()
        t_striped = warm_read_time(**self.striped_spec())
        assert t_striped < t_plain

    def test_striping_improves_byte_balance(self):
        """The §III-E motivation: skewed sizes balance at segment level."""
        sizes = [4_000_000, 100_000, 100_000, 100_000]
        files = [(f"/d/f{i}", s) for i, s in enumerate(sizes)]
        def byte_spread(**hvac):
            env, dep, _ = build(n_nodes=4, **hvac)
            read_epoch(env, dep, files, [0])
            loads = [s.cache.used_bytes for s in dep.servers]
            return max(loads) - min(loads)

        spread_plain = byte_spread()
        spread_striped = byte_spread(**self.striped_spec())
        assert spread_striped < spread_plain

    def test_spec_validation(self):
        from repro.cluster import HVACSpec

        with pytest.raises(ValueError):
            HVACSpec(stripe_segment=0)


class TestStripedReadSemantics:
    """Striped reads operate at whole-file granularity — the DL access
    pattern (§III-F: one read covering the file).  These tests pin that
    contract."""

    def build(self):
        return build(
            n_nodes=4,
            stripe_large_files=True,
            stripe_threshold=1_000_000,
            stripe_segment=500_000,
        )

    def test_partial_read_still_fetches_whole_file_segments(self):
        env, dep, _ = self.build()
        cli = dep.client(0)

        def proc():
            h = yield from cli.open("/d/huge", 3_000_000, 0)
            n = yield from cli.read(h, 1_000_000)  # partial request
            yield from cli.close(h)
            return n

        n = env.run(env.process(proc()))
        assert n == 1_000_000  # caller got what it asked for...
        # ...and the cache holds the full file's segments (6 × 500 KB),
        # like the prototype's whole-file fs::copy.
        assert dep.total_cached_bytes == 3_000_000

    def test_offset_tracking_across_partial_reads(self):
        env, dep, _ = self.build()
        cli = dep.client(0)

        def proc():
            h = yield from cli.open("/d/huge", 3_000_000, 0)
            n1 = yield from cli.read(h, 2_000_000)
            n2 = yield from cli.read(h, 2_000_000)  # clamped to EOF
            yield from cli.close(h)
            return n1, n2, h.offset

        n1, n2, offset = env.run(env.process(proc()))
        assert (n1, n2) == (2_000_000, 1_000_000)
        assert offset == 3_000_000

    def test_exact_threshold_not_striped(self):
        env, dep, _ = self.build()
        cli = dep.client(0)

        def proc():
            # size == threshold: whole-file path (strictly greater stripes)
            yield from cli.read_file("/d/edge", 1_000_000, 0)

        env.run(env.process(proc()))
        assert dep.metrics.counter("hvac.client_striped_reads").value == 0
        assert dep.total_cached_files == 1
