"""IOR-style streaming bandwidth benchmark.

MDTest (Figs 3–4) measures transactions; IOR measures sustained
sequential bandwidth — large files read in fixed-size blocks by every
rank.  Used here to validate the calibrated aggregate-bandwidth anchors
(2.5 TB/s GPFS, 5.5 GB/s/node NVMe) that the MDTest large-file regime
and the DL big-file workloads both rest on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

from ..simcore import AllOf, Environment
from ..storage.base import FileBackend

__all__ = ["IORConfig", "IORResult", "run_ior"]


@dataclass(frozen=True)
class IORConfig:
    """One IOR read phase (file-per-process, sequential)."""

    n_nodes: int
    ranks_per_node: int = 6
    file_size: int = 1 * 1024**3
    block_size: int = 16 * 1024**2

    def __post_init__(self):
        if self.n_nodes < 1 or self.ranks_per_node < 1:
            raise ValueError("need at least one rank")
        if not 0 < self.block_size <= self.file_size:
            raise ValueError("0 < block_size <= file_size required")

    @property
    def n_ranks(self) -> int:
        return self.n_nodes * self.ranks_per_node

    @property
    def total_bytes(self) -> int:
        return self.n_ranks * self.file_size


@dataclass
class IORResult:
    config: IORConfig
    system_label: str
    elapsed: float

    @property
    def aggregate_bandwidth(self) -> float:
        """bytes/s across all ranks."""
        return self.config.total_bytes / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def per_node_bandwidth(self) -> float:
        return self.aggregate_bandwidth / self.config.n_nodes


def run_ior(
    env: Environment,
    config: IORConfig,
    backend_for_node: Callable[[int], FileBackend],
    system_label: str = "storage",
) -> IORResult:
    """Execute the read phase; returns aggregate bandwidth."""

    def rank_proc(rank: int) -> Generator:
        node_id = rank // config.ranks_per_node
        backend = backend_for_node(node_id)
        path = f"/gpfs/ior/rank{rank}.dat"
        handle = yield from backend.open(path, config.file_size, node_id)
        remaining = config.file_size
        while remaining > 0:
            got = yield from backend.read(
                handle, min(config.block_size, remaining)
            )
            remaining -= got
        yield from backend.close(handle)

    t0 = env.now
    procs = [
        env.process(rank_proc(r), name=f"ior.r{r}") for r in range(config.n_ranks)
    ]

    def driver() -> Generator:
        yield AllOf(env, procs)

    env.run(env.process(driver(), name="ior"))
    return IORResult(config=config, system_label=system_label, elapsed=env.now - t0)
