"""SIM016 fixture: a set laundered through record fields.

``Row`` is an ordered record, so every name-based set pass (SIM004,
and the cross-method/element extensions) sees nothing wrong — but the
``members`` field is a set dropped in at the construction site, and
both the attribute access and the positional unpack iterate it in
hash order at a sim-scope site.
"""

from collections import namedtuple

Row = namedtuple("Row", "key members")


def enroll(a, b):
    return Row("k", {a, b})


def flush(env, a, b):
    row = Row("k", {a, b})
    for waiter in row.members:
        env.process(waiter)
    key, members = row
    return list(members)
