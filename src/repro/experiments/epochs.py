"""Figures 10 & 11: epoch scaling and per-epoch breakdown.

Fig 10: total training time vs epoch count (ResNet50 and CosmoFlow at
512 nodes in the paper) — HVAC's advantage grows linearly with epochs
because only epoch 1 touches the PFS.

Fig 11: per-epoch anatomy at BS=4, 10 epochs, 512 nodes: ``epoch-1``
(cold), ``R_epoch`` (best non-first epoch), and ``avg_epoch``.  The
paper's headline here: epoch-1 ≈ GPFS for every HVAC variant, while the
cached epoch is ≈3× faster than GPFS for HVAC(4×1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import format_series, format_table
from ..cluster import ClusterSpec, SUMMIT
from ..dl import DatasetSpec, ModelSpec
from .harness import Scale, run_training

__all__ = [
    "EpochScalingResult",
    "epoch_scaling",
    "PerEpochResult",
    "per_epoch_analysis",
]


@dataclass
class EpochScalingResult:
    """Fig 10 panel: total minutes per system per epoch count."""

    model_name: str
    n_nodes: int
    epoch_counts: list[int]
    total_minutes: dict[str, list[float]] = field(default_factory=dict)

    def render(self) -> str:
        return format_series(
            "epochs",
            self.epoch_counts,
            self.total_minutes,
            title=(
                f"Fig 10 ({self.model_name}, {self.n_nodes} nodes): "
                "training time vs epochs, minutes"
            ),
        )


def epoch_scaling(
    model: ModelSpec,
    dataset_spec: DatasetSpec,
    epoch_counts: list[int],
    scale: Scale,
    n_nodes: int = 512,
    spec: ClusterSpec = SUMMIT,
    systems: tuple[str, ...] = ("gpfs", "hvac1", "hvac2", "hvac4", "xfs"),
) -> EpochScalingResult:
    """Simulate cold+warm once per system; extrapolate each epoch count.

    Valid because epochs ≥2 are statistically identical (uniform
    reshuffle of a fully cached dataset); the paper's own Fig 11
    presents exactly this cold/warm decomposition.
    """
    from ..baselines import SYSTEM_SETUPS

    result = EpochScalingResult(
        model_name=model.name, n_nodes=n_nodes, epoch_counts=list(epoch_counts)
    )
    for system in systems:
        label = SYSTEM_SETUPS[system].label
        res = run_training(system, model, dataset_spec, n_nodes, scale, spec=spec)
        result.total_minutes[label] = [
            res.extrapolate_total(e) / 60.0 for e in epoch_counts
        ]
    return result


@dataclass
class PerEpochResult:
    """Fig 11: epoch-1 / best-random-epoch / average-epoch per system."""

    model_name: str
    n_nodes: int
    epochs: int
    epoch1: dict[str, float] = field(default_factory=dict)
    r_epoch: dict[str, float] = field(default_factory=dict)
    avg_epoch: dict[str, float] = field(default_factory=dict)

    def speedup_vs_gpfs(self, label: str) -> float:
        """Cached-epoch speedup of ``label`` over GPFS (paper: ≈3×)."""
        return self.r_epoch["GPFS"] / self.r_epoch[label]

    def render(self) -> str:
        systems = list(self.epoch1)
        rows = [
            [label, self.epoch1[label], self.r_epoch[label], self.avg_epoch[label]]
            for label in systems
        ]
        return format_table(
            ["system", "epoch-1 (s)", "R_epoch (s)", "avg_epoch (s)"],
            rows,
            title=(
                f"Fig 11 ({self.model_name}, {self.n_nodes} nodes, "
                f"{self.epochs} epochs): per-epoch training time"
            ),
        )


def per_epoch_analysis(
    model: ModelSpec,
    dataset_spec: DatasetSpec,
    scale: Scale,
    n_nodes: int = 512,
    batch_size: int = 4,
    epochs: int = 4,
    spec: ClusterSpec = SUMMIT,
    systems: tuple[str, ...] = ("gpfs", "hvac1", "hvac2", "hvac4", "xfs"),
) -> PerEpochResult:
    """Simulate ``epochs`` full epochs and decompose (paper: Eps=10)."""
    from ..baselines import SYSTEM_SETUPS

    result = PerEpochResult(model_name=model.name, n_nodes=n_nodes, epochs=epochs)
    for system in systems:
        label = SYSTEM_SETUPS[system].label
        res = run_training(
            system,
            model,
            dataset_spec,
            n_nodes,
            scale,
            spec=spec,
            batch_size=batch_size,
            epochs=epochs,
        )
        result.epoch1[label] = res.first_epoch
        result.r_epoch[label] = res.best_random_epoch
        result.avg_epoch[label] = res.avg_epoch
    return result
