"""RACE204 fixture (clean): the same cells with non-intersecting
literal prefixes and a separator between every pair of holes."""

RACE_CELLS = (
    ("pool.slot.<a>", ("_slots",), "per-pool slot table"),
    ("pool.sub.<a>.<b>", ("_subslots",), "per-slot sub-table"),
    ("job.t<t>.n<n>", ("_jobs",), "per-(tenant, job) row"),
)


class Board:
    def __init__(self, env):
        self.env = env
        self._slots = {}
        self._subslots = {}
        self._jobs = {}

    def claim(self, a):
        self.env.note_access(f"pool.slot.{a}", "w")
        self._slots[a] = True

    def subclaim(self, a, b):
        self.env.note_access(f"pool.sub.{a}.{b}", "w")
        self._subslots[(a, b)] = True

    def enqueue(self, t, n):
        self.env.note_access(f"job.t{t}.n{n}", "w")
        self._jobs[(t, n)] = True
