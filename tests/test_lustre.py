"""Tests for the Lustre personality + HVAC-over-Lustre generality."""

import pytest

from repro.cluster import Allocation, MiB, TESTING
from repro.core import HVACDeployment
from repro.simcore import Environment
from repro.storage import Lustre, LustreSpec


def make_lustre(env, n_nodes=4, **overrides):
    defaults = dict(
        n_mds=2,
        mds_ops_per_sec=100.0,  # 10 ms/op
        ops_per_open=2.0,
        ops_per_close=1.0,
        client_lock_cache=8,
        n_oss=2,
        osts_per_oss=2,
        ost_bandwidth=1e6,
        stripe_count=2,
        stripe_threshold=2 * MiB,
        stripe_size=1 * MiB,
        data_latency=0.001,
        client_overhead=0.0,
    )
    defaults.update(overrides)
    return Lustre(
        env, LustreSpec(**defaults), n_client_nodes=n_nodes,
        client_link_bandwidth=1e7,
    )


class TestLustreSpec:
    def test_default_bandwidth_matches_alpine_envelope(self):
        assert LustreSpec().aggregate_bandwidth == pytest.approx(2.5e12, rel=0.01)

    def test_n_osts(self):
        assert LustreSpec(n_oss=3, osts_per_oss=4).n_osts == 12


class TestLustreSemantics:
    def test_first_open_pays_mds(self):
        env = Environment()
        fs = make_lustre(env)

        def proc():
            yield from fs.open("/l/f", 100, client_node=0)

        env.run(env.process(proc()))
        assert env.now == pytest.approx(0.02)  # 2 ops × 10 ms
        assert fs.metrics.counter("lustre.lock_misses").value == 1

    def test_reopen_hits_client_lock_cache(self):
        """The ldlm behaviour GPFS's token model lacks."""
        env = Environment()
        fs = make_lustre(env)

        def proc():
            yield from fs.read_file("/l/f", 100, client_node=0)
            t0 = env.now
            h = yield from fs.open("/l/f", 100, client_node=0)
            yield from fs.close(h)
            return env.now - t0

        elapsed = env.run(env.process(proc()))
        assert fs.metrics.counter("lustre.lock_hits").value >= 1
        assert elapsed < 0.001  # no MDS round-trip

    def test_lock_cache_is_per_node(self):
        env = Environment()
        fs = make_lustre(env)

        def proc():
            yield from fs.read_file("/l/f", 100, client_node=0)
            yield from fs.read_file("/l/f", 100, client_node=1)

        env.run(env.process(proc()))
        # Node 1's open missed despite node 0 holding the lock.
        assert fs.metrics.counter("lustre.lock_misses").value == 2

    def test_lock_cache_lru_eviction(self):
        """DL's huge shuffled namespaces defeat the lock cache."""
        env = Environment()
        fs = make_lustre(env)  # cache of 8 entries

        def proc():
            for i in range(16):
                yield from fs.read_file(f"/l/f{i}", 100, client_node=0)
            # Re-read the first file: its lock was evicted.
            yield from fs.read_file("/l/f0", 100, client_node=0)

        env.run(env.process(proc()))
        assert fs.lock_cache_size(0) == 8
        assert fs.metrics.counter("lustre.lock_misses").value == 17

    def test_small_file_single_stripe(self):
        env = Environment()
        fs = make_lustre(env)
        assert fs.layout_of(100_000) == (1, 100_000)

    def test_large_file_striped(self):
        env = Environment()
        fs = make_lustre(env)
        count, size = fs.layout_of(4 * MiB)
        assert count == 2
        assert size == 1 * MiB

    def test_large_read_parallel_on_osts(self):
        env = Environment()
        fs = make_lustre(env)

        def proc():
            yield from fs.read_file("/l/big", 4 * MiB, client_node=0)

        env.run(env.process(proc()))
        # 4 MiB over parallel OSTs at 1e6 B/s each — far below serial 4.2 s.
        assert env.now < 3.0

    def test_double_close_rejected(self):
        env = Environment()
        fs = make_lustre(env)

        def proc():
            h = yield from fs.open("/l/f", 10, client_node=0)
            yield from fs.close(h)
            yield from fs.close(h)

        with pytest.raises(ValueError):
            env.run(env.process(proc()))

    def test_read_past_eof(self):
        env = Environment()
        fs = make_lustre(env)

        def proc():
            h = yield from fs.open("/l/f", 50, client_node=0)
            n1 = yield from fs.read(h, 100)
            n2 = yield from fs.read(h, 100)
            yield from fs.close(h)
            return n1, n2

        assert env.run(env.process(proc())) == (50, 0)


class TestHVACOverLustre:
    """The paper's generality claim: HVAC needs no changes per PFS."""

    def build(self, n_nodes=4):
        env = Environment()
        alloc = Allocation(env, TESTING, n_nodes=n_nodes)
        pfs = make_lustre(env, n_nodes=n_nodes, client_lock_cache=64_000)
        dep = HVACDeployment(alloc, pfs)
        return env, dep, pfs

    def read_all(self, env, dep, files, nodes):
        def reader(node):
            cli = dep.client(node)
            for path, size in files:
                yield from cli.read_file(path, size, node)

        from repro.simcore import AllOf

        procs = [env.process(reader(n)) for n in nodes]

        def wait():
            yield AllOf(env, procs)

        env.run(env.process(wait()))

    FILES = [(f"/l/f{i}", 20_000) for i in range(20)]

    def test_cold_epoch_fetches_from_lustre(self):
        env, dep, pfs = self.build()
        self.read_all(env, dep, self.FILES, [0, 1])
        assert pfs.metrics.counter("lustre.opens").value == len(self.FILES)
        assert dep.total_cached_files == len(self.FILES)

    def test_warm_epoch_bypasses_lustre(self):
        env, dep, pfs = self.build()
        self.read_all(env, dep, self.FILES, [0, 1])
        opens = pfs.metrics.counter("lustre.opens").value
        self.read_all(env, dep, self.FILES, [0, 1])
        assert pfs.metrics.counter("lustre.opens").value == opens

    def test_failover_to_lustre_works(self):
        env, dep, pfs = self.build()
        self.read_all(env, dep, self.FILES, [0])
        dep.fail_node(1)
        self.read_all(env, dep, self.FILES, [0])
        assert dep.metrics.counter("hvac.client_pfs_fallback").value > 0
