"""Plain-text table/series rendering for experiment results.

Every benchmark prints its figure/table through these helpers so the
output "prints the same rows/series the paper reports" in a uniform,
diffable format.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series", "format_kv"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_fmt: str = "{:.3g}",
) -> str:
    """Render an aligned monospace table."""
    def cell(x: object) -> str:
        if isinstance(x, float):
            return float_fmt.format(x)
        return str(x)

    str_rows = [[cell(x) for x in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, x in enumerate(row):
            widths[i] = max(widths[i], len(x))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    float_fmt: str = "{:.4g}",
) -> str:
    """Render one figure's line series: x column + one column per line."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        row: list[object] = [x]
        for values in series.values():
            row.append(float(values[i]))
        rows.append(row)
    return format_table(headers, rows, title=title, float_fmt=float_fmt)


def format_kv(pairs: Mapping[str, object], title: str = "") -> str:
    """Render key/value summary lines."""
    width = max(len(k) for k in pairs) if pairs else 0
    lines = [title] if title else []
    for key, value in pairs.items():
        if isinstance(value, float):
            value = f"{value:.4g}"
        lines.append(f"{key.ljust(width)} : {value}")
    return "\n".join(lines)
